#!/usr/bin/env python3
"""Stitch a per-CPU dipc trace into per-request flame-style tracks.

The simulator's --trace export (obs::TraceRing::ChromeTraceJson) lays events
out by CPU: pid 0, tid = simulated cpu. That answers "what was each core
doing", but a single fabric operation hops across cores (client acquire ->
request send -> worker recv -> handler -> response send -> completion
dispatch), so one request's story is shredded across tracks.

This tool regroups the same events by operation id: every span or instant
whose args.opid is non-zero lands in a process named "op <opid>", with one
thread per retry *attempt* so retries render as sibling tracks under the
operation. Hop ordering inside a track comes from the packed hop byte
(args.arg bits 8..15), not from timestamps, so same-instant hops keep their
causal order.

Usage:
  trace_assemble.py INPUT.trace.json [-o OUT.json] [--only-opid N]
  trace_assemble.py --self-test

Exit status is non-zero on malformed input or when --self-test fails. A
non-zero droppedEvents count in the input produces a loud stderr warning
(the assembled view may be missing hops) but is not fatal.
"""

import argparse
import json
import sys

# Mirrors the hop numbering in src/fabric/fabric.cc.
HOP_NAMES = {
    0: "req_acquire",
    1: "req_send",
    2: "worker_recv",
    3: "handler",
    4: "resp_send",
    5: "completion_dispatch",
}


def decode_arg(arg):
    """Split the packed hop-span arg into (aux, hop, attempt)."""
    return (arg >> 16) & 0xFFFFFFFF, (arg >> 8) & 0xFF, arg & 0xFF


def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents key)")
    return doc


def assemble(doc, only_opid=None):
    """Return (out_doc, stats) regrouping opid-tagged events by operation."""
    ops = {}  # opid -> list of events
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") not in ("X", "i"):
            continue
        opid = ev.get("args", {}).get("opid", 0)
        if not opid or (only_opid is not None and opid != only_opid):
            continue
        ops.setdefault(opid, []).append(ev)

    out_events = []
    attempts_per_op = {}
    for opid in sorted(ops):
        out_events.append({
            "ph": "M", "pid": opid, "name": "process_name",
            "args": {"name": f"op {opid}"},
        })
        attempts = set()
        events = []
        for ev in ops[opid]:
            aux, hop, attempt = decode_arg(ev.get("args", {}).get("arg", 0))
            # The whole-operation span (fabric_dispatch) carries the opid in
            # arg rather than a packed hop word; park it on attempt track 0
            # spanning the full operation.
            if ev.get("name") == "fabric_dispatch":
                hop, attempt, aux = None, 0, 0
            attempts.add(attempt)
            new = dict(ev)
            new["pid"] = opid
            new["tid"] = attempt
            args = dict(ev.get("args", {}))
            args["cpu"] = ev.get("tid", 0)
            if hop is not None:
                args["hop"] = hop
                args["hop_name"] = HOP_NAMES.get(hop, f"hop{hop}")
                args["aux"] = aux
            new["args"] = args
            # Sort key: causal hop order wins over timestamp ties; the
            # whole-op span sorts first so it renders as the enclosing frame.
            events.append(((ev.get("ts", 0.0), -1 if hop is None else hop), new))
        events.sort(key=lambda pair: pair[0])
        out_events.extend(e for _, e in events)
        for attempt in sorted(attempts):
            out_events.append({
                "ph": "M", "pid": opid, "tid": attempt, "name": "thread_name",
                "args": {"name": f"attempt {attempt}"},
            })
        attempts_per_op[opid] = len(attempts)

    out_doc = {
        "traceEvents": out_events,
        "displayTimeUnit": doc.get("displayTimeUnit", "ns"),
        "droppedEvents": doc.get("droppedEvents", 0),
    }
    stats = {
        "ops": len(ops),
        "events": sum(len(v) for v in ops.values()),
        "attempts_per_op": attempts_per_op,
        "dropped": doc.get("droppedEvents", 0),
    }
    return out_doc, stats


def span(name, ts, dur, cpu, obj, arg, opid, ph="X"):
    ev = {"ph": ph, "pid": 0, "tid": cpu, "name": name, "ts": ts,
          "args": {"obj": obj, "arg": arg, "opid": opid}}
    if ph == "X":
        ev["dur"] = dur
    else:
        ev["s"] = "t"
    return ev


def hop_arg(aux, hop, attempt):
    return (aux << 16) | (hop << 8) | attempt


def self_test():
    # Two operations on interleaved CPUs; op 7 retried once (attempts 0+1);
    # an untagged event (opid 0) that must be filtered out.
    doc = {
        "traceEvents": [
            {"ph": "M", "pid": 0, "name": "process_name", "args": {"name": "dipc-sim"}},
            span("req_acquire", 1.0, 0.5, 0, 11, hop_arg(0, 0, 0), 7),
            span("req_send", 1.5, 0.2, 0, 11, hop_arg(2, 1, 0), 7),
            span("worker_recv", 1.7, 0.1, 3, 11, hop_arg(2, 2, 0), 7),
            # Retry: attempt 1 of the same opid.
            span("req_acquire", 9.0, 0.5, 0, 11, hop_arg(0, 0, 1), 7),
            span("handler", 9.7, 2.0, 3, 11, hop_arg(2, 3, 1), 7),
            span("fabric_dispatch", 0.0, 12.0, 0, 11, 7, 7),
            span("worker_recv", 2.0, 0.1, 1, 11, hop_arg(0, 2, 0), 8),
            span("sched_migrate", 2.5, 0.0, 1, 42, (0 << 32) | 1, 0, ph="i"),
        ],
        "displayTimeUnit": "ns",
        "droppedEvents": 0,
    }
    out, stats = assemble(doc)
    assert stats["ops"] == 2, stats
    assert stats["events"] == 7, stats
    assert stats["attempts_per_op"][7] == 2, stats
    assert stats["attempts_per_op"][8] == 1, stats
    pids = {e["pid"] for e in out["traceEvents"] if e["ph"] != "M"}
    assert pids == {7, 8}, pids
    # Retry renders as a sibling track: attempt byte becomes the tid.
    op7_tids = {e["tid"] for e in out["traceEvents"]
                if e["ph"] == "X" and e["pid"] == 7}
    assert op7_tids == {0, 1}, op7_tids
    # Causal order survives timestamp ties; the whole-op span sorts first.
    op7_names = [e["name"] for e in out["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == 7]
    assert op7_names[0] == "fabric_dispatch", op7_names
    # Hop decode round-trips.
    recv = next(e for e in out["traceEvents"]
                if e["ph"] == "X" and e["pid"] == 8)
    assert recv["args"]["hop_name"] == "worker_recv", recv
    assert recv["args"]["cpu"] == 1, recv
    # The untagged scheduler instant is not assigned to any op.
    assert not any(e["name"] == "sched_migrate" for e in out["traceEvents"])
    # --only-opid narrows the output.
    only, only_stats = assemble(doc, only_opid=8)
    assert only_stats["ops"] == 1 and 8 in only_stats["attempts_per_op"], only_stats
    # Dropped events propagate to the output doc.
    doc["droppedEvents"] = 3
    out2, stats2 = assemble(doc)
    assert out2["droppedEvents"] == 3 and stats2["dropped"] == 3
    print("self-test: OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("input", nargs="?", help="Chrome trace JSON from --trace")
    ap.add_argument("-o", "--output", help="output path "
                    "(default: INPUT with .requests.json suffix)")
    ap.add_argument("--only-opid", type=int, default=None,
                    help="assemble a single operation id")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in checks on synthetic traces and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.input:
        ap.error("INPUT is required unless --self-test is given")

    try:
        doc = load_trace(args.input)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_assemble: {e}", file=sys.stderr)
        return 1

    out_doc, stats = assemble(doc, only_opid=args.only_opid)
    if stats["dropped"]:
        print(f"trace_assemble: WARNING: input ring dropped {stats['dropped']} "
              "events on wraparound; assembled requests may be missing hops "
              "(raise the ring capacity or trace a shorter run)", file=sys.stderr)
    if stats["ops"] == 0:
        print("trace_assemble: no opid-tagged events found (was the run traced "
              "through fabric::ServiceFabric::Call?)", file=sys.stderr)

    out_path = args.output
    if out_path is None:
        base = args.input
        if base.endswith(".trace.json"):
            base = base[: -len(".trace.json")]
        elif base.endswith(".json"):
            base = base[: -len(".json")]
        out_path = base + ".requests.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(out_doc, f, indent=1)
        f.write("\n")
    print(f"trace_assemble: {stats['ops']} operation(s), {stats['events']} "
          f"event(s) -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
