#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json files and gate on regressions.

Each BENCH_*.json (written by the bench harness's JsonEmitter under --json)
holds {"bench": name, "unit": "ns", "rows": [{"series", "x", "value"}, ...]}.
This tool matches rows across a baseline directory and a current directory by
(bench, series, x) and exits nonzero when any value regressed by more than the
threshold (default 15%). Lower is better for every series (values are ns).

Usage:
  bench_trend.py BASELINE_DIR CURRENT_DIR [--threshold PCT] [--warn-only]
                 [--prefix-threshold PREFIX=PCT ...]
  bench_trend.py --self-test

One global threshold fits nobody: microbenchmark points are stable to a few
percent while the OLTP macro rows are workload-noisy. --prefix-threshold
overrides the default for every (bench, series) whose "bench/series" name
starts with PREFIX; the longest matching prefix wins, so
  --prefix-threshold 'fig8_oltp/=30' --prefix-threshold 'fig8_oltp/chan_mem_workers=20'
loosens all fig8 series to 30% except the worker sweep at 20%.

New series (no baseline) and removed series are reported but never fail the
gate: trajectory files are expected to grow.

Counter deltas. The "metrics" object optionally embedded by --metrics holds
per-series (or whole-run) counter snapshots. Counters are workload-sized, so
they are NOT gated by default — but a drifting counter (retries, faults,
migrations) often regresses long before latency does. --counter-threshold
PREFIX=PCT opts specific counters into gating: every counter whose
"bench/series/counter" name starts with PREFIX fails the gate when its value
grew more than PCT percent over baseline (longest matching prefix wins;
shrinking is never a failure). All-digit name components (object ids like
fabric/17/calls) are normalized to '*' and summed, so ids that differ run to
run still match:
  --counter-threshold 'fabric_echo/fabric/*/retries=0'
fails on ANY new retry in the fabric_echo bench.
"""

import argparse
import glob
import json
import os
import sys
import tempfile


def load_dir(path):
    """Returns {(bench, series, x): value_ns} over every BENCH_*.json in path."""
    rows = {}
    for f in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        if f.endswith(".trace.json"):
            continue  # Chrome traces share the prefix but are not trend data
        try:
            with open(f) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {f}: {e}", file=sys.stderr)
            continue
        bench = doc.get("bench")
        for row in doc.get("rows", []):
            try:
                key = (bench, row["series"], int(row["x"]))
                rows[key] = float(row["value"])
            except (KeyError, TypeError, ValueError) as e:
                print(f"warning: skipping malformed row in {f}: {e}", file=sys.stderr)
    return rows


def normalize_counter(name):
    """Replaces all-digit path components (per-object ids) with '*'."""
    return "/".join("*" if part.isdigit() else part for part in name.split("/"))


def load_counters(path):
    """Returns {(bench, series_label, normalized_counter): summed value} from
    the metrics maps embedded by --metrics. Whole-run snapshots (no
    BeginSeries boundaries) use the empty series label. Counters whose ids
    normalize to the same name are summed."""
    counters = {}
    for f in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        if f.endswith(".trace.json"):
            continue
        try:
            with open(f) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue  # load_dir already warned about this file
        bench = doc.get("bench")
        metrics = doc.get("metrics")
        if not isinstance(metrics, dict):
            continue
        if isinstance(metrics.get("counters"), dict):
            snapshots = {"": metrics}  # whole-run shape
        else:
            snapshots = {k: v for k, v in metrics.items() if isinstance(v, dict)}
        for label, snap in snapshots.items():
            for cname, val in (snap.get("counters") or {}).items():
                key = (bench, label, normalize_counter(cname))
                try:
                    counters[key] = counters.get(key, 0.0) + float(val)
                except (TypeError, ValueError):
                    print(f"warning: non-numeric counter {cname} in {f}",
                          file=sys.stderr)
    return counters


def counter_name(key):
    """Flat name for prefix matching and display: bench/series/counter with
    the empty whole-run label elided."""
    return "/".join(part for part in key if part)


def compare_counters(baseline, current, counter_thresholds):
    """Returns [(key, base, cur, delta_pct, threshold_pct)] for every gated
    counter that grew past its threshold. Only counters matching a
    --counter-threshold prefix are gated; growth from a zero/small baseline
    is measured against max(base, 1) so new noise cannot divide by zero."""
    regressions = []
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            continue  # new counters never fail
        name = counter_name(key)
        best_len = -1
        thr = None
        for prefix, pct in counter_thresholds:
            if name.startswith(prefix) and len(prefix) > best_len:
                best_len = len(prefix)
                thr = pct
        if thr is None:
            continue  # not opted into gating
        delta_pct = (cur - base) / max(base, 1.0) * 100.0
        if delta_pct > thr:
            regressions.append((key, base, cur, delta_pct, thr))
    return regressions


def threshold_for(key, default_pct, prefix_thresholds):
    """Threshold for one (bench, series, x) key: longest matching prefix of
    "bench/series" wins; the default applies when nothing matches."""
    name = f"{key[0]}/{key[1]}"
    best_len = -1
    best_pct = default_pct
    for prefix, pct in prefix_thresholds:
        if name.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best_pct = pct
    return best_pct


def compare(baseline, current, threshold_pct, prefix_thresholds=()):
    """Returns (regressions, improvements, new_keys, removed_keys).

    A regression is (key, base, cur, delta_pct, threshold_pct) with delta
    over that key's threshold (per-prefix override or the default).
    """
    regressions = []
    improvements = []
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            continue
        if base <= 0:
            continue  # degenerate baseline; nothing sensible to gate on
        thr = threshold_for(key, threshold_pct, prefix_thresholds)
        delta_pct = (cur - base) / base * 100.0
        if delta_pct > thr:
            regressions.append((key, base, cur, delta_pct, thr))
        elif delta_pct < -thr:
            improvements.append((key, base, cur, delta_pct, thr))
    new_keys = sorted(set(current) - set(baseline))
    removed_keys = sorted(set(baseline) - set(current))
    return regressions, improvements, new_keys, removed_keys


def fmt_key(key):
    bench, series, x = key
    return f"{bench}/{series}@{x}"


def run(baseline_dir, current_dir, threshold_pct, warn_only, prefix_thresholds=(),
        counter_thresholds=()):
    baseline = load_dir(baseline_dir)
    current = load_dir(current_dir)
    if not current:
        print(f"error: no BENCH_*.json found in {current_dir}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"no baseline data in {baseline_dir}; nothing to gate (first run?)")
        return 0
    regressions, improvements, new_keys, removed_keys = compare(
        baseline, current, threshold_pct, prefix_thresholds
    )
    counter_regressions = []
    if counter_thresholds:
        base_counters = load_counters(baseline_dir)
        cur_counters = load_counters(current_dir)
        counter_regressions = compare_counters(
            base_counters, cur_counters, counter_thresholds
        )
        gated = sum(
            1
            for key in cur_counters
            if key in base_counters
            and any(counter_name(key).startswith(p) for p, _ in counter_thresholds)
        )
        print(f"gating {gated} counter(s) against {len(counter_thresholds)} "
              "counter-threshold rule(s)")
    matched = len(set(baseline) & set(current))
    overrides = (
        ", ".join(f"{p}={t:.1f}%" for p, t in prefix_thresholds)
        if prefix_thresholds
        else "none"
    )
    print(
        f"compared {matched} series points "
        f"({len(new_keys)} new, {len(removed_keys)} removed), "
        f"threshold {threshold_pct:.1f}% (prefix overrides: {overrides})"
    )
    for key, base, cur, delta, thr in improvements:
        print(f"  improved  {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns ({delta:+.1f}%)")
    for key in new_keys:
        print(f"  new       {fmt_key(key)}: {current[key]:.1f} ns")
    for key in removed_keys:
        print(f"  removed   {fmt_key(key)} (baseline {baseline[key]:.1f} ns)")
    for key, base, cur, delta, thr in regressions:
        print(
            f"  REGRESSED {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns "
            f"({delta:+.1f}% > {thr:.1f}%)"
        )
    for key, base, cur, delta, thr in counter_regressions:
        print(
            f"  COUNTER   {counter_name(key)}: {base:.0f} -> {cur:.0f} "
            f"({delta:+.1f}% > {thr:.1f}%)"
        )
    failures = len(regressions) + len(counter_regressions)
    if failures:
        verdict = "warning" if warn_only else "FAIL"
        print(f"{verdict}: {len(regressions)} series and "
              f"{len(counter_regressions)} counter(s) regressed past their threshold")
        return 0 if warn_only else 1
    print("ok: no regressions")
    return 0


def parse_prefix_threshold(spec):
    """Parses one --prefix-threshold PREFIX=PCT argument."""
    prefix, sep, pct = spec.rpartition("=")
    if not sep or not prefix:
        raise ValueError(f"expected PREFIX=PCT, got {spec!r}")
    return prefix, float(pct)


def self_test():
    """Round-trips synthetic BENCH files through the full compare pipeline."""
    base_doc = {
        "bench": "t",
        "unit": "ns",
        "rows": [
            {"series": "a", "x": 1, "value": 100.0},
            {"series": "a", "x": 2, "value": 200.0},
            {"series": "gone", "x": 1, "value": 50.0},
        ],
    }
    base_doc["metrics"] = {
        "warm": {"counters": {"chan/1/sends": 100, "fabric/9/retries": 0}},
        "hot": {"counters": {"chan/1/sends": 50, "chan/2/sends": 50}},
    }
    cur_doc = {
        "bench": "t",
        "unit": "ns",
        "rows": [
            {"series": "a", "x": 1, "value": 110.0},  # +10%: within threshold
            {"series": "a", "x": 2, "value": 260.0},  # +30%: regression
            {"series": "fresh", "x": 1, "value": 10.0},
        ],
        "metrics": {
            # Same sends, but two retries appeared (zero baseline) and the
            # hot series' per-object send counters merged under chan/*/sends
            # grew 20%.
            "warm": {"counters": {"chan/1/sends": 100, "fabric/9/retries": 2}},
            "hot": {"counters": {"chan/3/sends": 70, "chan/4/sends": 50}},
        },
    }
    with tempfile.TemporaryDirectory() as tmp:
        bdir = os.path.join(tmp, "base")
        cdir = os.path.join(tmp, "cur")
        os.mkdir(bdir)
        os.mkdir(cdir)
        with open(os.path.join(bdir, "BENCH_t.json"), "w") as f:
            json.dump(base_doc, f)
        with open(os.path.join(cdir, "BENCH_t.json"), "w") as f:
            json.dump(cur_doc, f)
        baseline = load_dir(bdir)
        current = load_dir(cdir)
        assert len(baseline) == 3, baseline
        assert len(current) == 3, current
        regs, imps, new, removed = compare(baseline, current, 15.0)
        assert [r[0] for r in regs] == [("t", "a", 2)], regs
        assert abs(regs[0][3] - 30.0) < 1e-9, regs
        assert imps == [], imps
        assert new == [("t", "fresh", 1)], new
        assert removed == [("t", "gone", 1)], removed
        # The gate itself: strict fails, warn-only passes.
        assert run(bdir, cdir, 15.0, warn_only=False) == 1
        assert run(bdir, cdir, 15.0, warn_only=True) == 0
        assert run(bdir, cdir, 50.0, warn_only=False) == 0
        # Per-prefix thresholds: the override names "t/a" and lifts only
        # that series past its +30% delta; an unrelated prefix changes
        # nothing; the longest matching prefix wins over a shorter one.
        assert threshold_for(("t", "a", 2), 15.0, [("t/", 40.0)]) == 40.0
        assert threshold_for(("t", "a", 2), 15.0, [("u/", 40.0)]) == 15.0
        assert threshold_for(("t", "a", 2), 15.0, [("t/", 40.0), ("t/a", 25.0)]) == 25.0
        assert threshold_for(("t", "a", 2), 15.0, [("t/a", 25.0), ("t/", 40.0)]) == 25.0
        regs, _, _, _ = compare(baseline, current, 15.0, [("t/a", 40.0)])
        assert regs == [], regs
        regs, _, _, _ = compare(baseline, current, 15.0, [("other/", 40.0)])
        assert [r[0] for r in regs] == [("t", "a", 2)], regs
        assert run(bdir, cdir, 15.0, warn_only=False, prefix_thresholds=[("t/", 40.0)]) == 0
        assert run(bdir, cdir, 40.0, warn_only=False, prefix_thresholds=[("t/a", 15.0)]) == 1
        # CLI spec parsing, including '=' in the series name.
        assert parse_prefix_threshold("fig8_oltp/=30") == ("fig8_oltp/", 30.0)
        assert parse_prefix_threshold("t/a=25.5") == ("t/a", 25.5)
        for bad in ("noequals", "=30", "t/a="):
            try:
                parse_prefix_threshold(bad)
            except ValueError:
                pass
            else:
                raise AssertionError(f"{bad!r} should not parse")
        # Counter deltas: id components normalize to '*' and sum; gating is
        # opt-in per prefix; growth from a zero baseline divides by 1.
        assert normalize_counter("fabric/17/calls") == "fabric/*/calls"
        assert normalize_counter("os/sched/cpu3/runq_depth") == "os/sched/cpu3/runq_depth"
        bc = load_counters(bdir)
        cc = load_counters(cdir)
        assert bc[("t", "hot", "chan/*/sends")] == 100.0, bc
        assert cc[("t", "hot", "chan/*/sends")] == 120.0, cc
        assert counter_name(("t", "", "chan/*/sends")) == "t/chan/*/sends"
        # Ungated by default: no thresholds, no counter regressions.
        assert compare_counters(bc, cc, []) == []
        # Retries grew 0 -> 2 = +200% over max(base, 1).
        regs_c = compare_counters(bc, cc, [("t/warm/fabric/*/retries", 0.0)])
        assert len(regs_c) == 1 and abs(regs_c[0][3] - 200.0) < 1e-9, regs_c
        # The merged sends counter grew 20%; a 25% gate passes, 15% fails,
        # and the longest prefix wins.
        assert compare_counters(bc, cc, [("t/hot/chan", 25.0)]) == []
        regs_c = compare_counters(bc, cc, [("t/hot/chan", 15.0)])
        assert [r[0] for r in regs_c] == [("t", "hot", "chan/*/sends")], regs_c
        assert compare_counters(bc, cc, [("t/", 0.0), ("t/hot/chan", 25.0)]) != []
        assert compare_counters(
            bc, cc, [("t/warm", 500.0), ("t/hot/chan", 25.0)]) == []
        # Shrinking counters and new counters never fail.
        assert compare_counters(cc, bc, [("t/", 0.0)]) == []
        # End-to-end: a counter gate alone flips the exit code.
        assert run(bdir, cdir, 50.0, warn_only=False,
                   counter_thresholds=[("t/warm/fabric", 0.0)]) == 1
        assert run(bdir, cdir, 50.0, warn_only=True,
                   counter_thresholds=[("t/warm/fabric", 0.0)]) == 0
        assert run(bdir, cdir, 50.0, warn_only=False,
                   counter_thresholds=[("t/warm/fabric", 300.0)]) == 0
        # Missing baseline never fails (first CI run on a branch).
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        assert run(empty, cdir, 15.0, warn_only=False) == 0
        assert run(bdir, empty, 15.0, warn_only=False) == 2
    print("self-test ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="directory with baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="directory with current BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression threshold in percent (default 15)",
    )
    ap.add_argument(
        "--prefix-threshold",
        action="append",
        default=[],
        metavar="PREFIX=PCT",
        help="per-series threshold override for keys whose bench/series name "
        "starts with PREFIX (repeatable; longest matching prefix wins)",
    )
    ap.add_argument(
        "--counter-threshold",
        action="append",
        default=[],
        metavar="PREFIX=PCT",
        help="gate counters whose bench/series/counter name starts with PREFIX "
        "when they grow more than PCT percent (repeatable; longest matching "
        "prefix wins; all-digit name components match as '*')",
    )
    ap.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI warm-up mode)",
    )
    ap.add_argument("--self-test", action="store_true", help="run the built-in checks")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.error("baseline and current directories are required (or --self-test)")
    try:
        prefix_thresholds = [parse_prefix_threshold(s) for s in args.prefix_threshold]
        counter_thresholds = [parse_prefix_threshold(s) for s in args.counter_threshold]
    except ValueError as e:
        ap.error(str(e))
    sys.exit(
        run(args.baseline, args.current, args.threshold, args.warn_only,
            prefix_thresholds, counter_thresholds)
    )


if __name__ == "__main__":
    main()
