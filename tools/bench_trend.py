#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json files and gate on regressions.

Each BENCH_*.json (written by the bench harness's JsonEmitter under --json)
holds {"bench": name, "unit": "ns", "rows": [{"series", "x", "value"}, ...]}.
This tool matches rows across a baseline directory and a current directory by
(bench, series, x) and exits nonzero when any value regressed by more than the
threshold (default 15%). Lower is better for every series (values are ns).

Usage:
  bench_trend.py BASELINE_DIR CURRENT_DIR [--threshold PCT] [--warn-only]
                 [--prefix-threshold PREFIX=PCT ...]
  bench_trend.py --self-test

One global threshold fits nobody: microbenchmark points are stable to a few
percent while the OLTP macro rows are workload-noisy. --prefix-threshold
overrides the default for every (bench, series) whose "bench/series" name
starts with PREFIX; the longest matching prefix wins, so
  --prefix-threshold 'fig8_oltp/=30' --prefix-threshold 'fig8_oltp/chan_mem_workers=20'
loosens all fig8 series to 30% except the worker sweep at 20%.

New series (no baseline) and removed series are reported but never fail the
gate: trajectory files are expected to grow. The "metrics" object optionally
embedded by --metrics is ignored — counters are workload-sized, not
regressions.
"""

import argparse
import glob
import json
import os
import sys
import tempfile


def load_dir(path):
    """Returns {(bench, series, x): value_ns} over every BENCH_*.json in path."""
    rows = {}
    for f in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        if f.endswith(".trace.json"):
            continue  # Chrome traces share the prefix but are not trend data
        try:
            with open(f) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {f}: {e}", file=sys.stderr)
            continue
        bench = doc.get("bench")
        for row in doc.get("rows", []):
            try:
                key = (bench, row["series"], int(row["x"]))
                rows[key] = float(row["value"])
            except (KeyError, TypeError, ValueError) as e:
                print(f"warning: skipping malformed row in {f}: {e}", file=sys.stderr)
    return rows


def threshold_for(key, default_pct, prefix_thresholds):
    """Threshold for one (bench, series, x) key: longest matching prefix of
    "bench/series" wins; the default applies when nothing matches."""
    name = f"{key[0]}/{key[1]}"
    best_len = -1
    best_pct = default_pct
    for prefix, pct in prefix_thresholds:
        if name.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best_pct = pct
    return best_pct


def compare(baseline, current, threshold_pct, prefix_thresholds=()):
    """Returns (regressions, improvements, new_keys, removed_keys).

    A regression is (key, base, cur, delta_pct, threshold_pct) with delta
    over that key's threshold (per-prefix override or the default).
    """
    regressions = []
    improvements = []
    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            continue
        if base <= 0:
            continue  # degenerate baseline; nothing sensible to gate on
        thr = threshold_for(key, threshold_pct, prefix_thresholds)
        delta_pct = (cur - base) / base * 100.0
        if delta_pct > thr:
            regressions.append((key, base, cur, delta_pct, thr))
        elif delta_pct < -thr:
            improvements.append((key, base, cur, delta_pct, thr))
    new_keys = sorted(set(current) - set(baseline))
    removed_keys = sorted(set(baseline) - set(current))
    return regressions, improvements, new_keys, removed_keys


def fmt_key(key):
    bench, series, x = key
    return f"{bench}/{series}@{x}"


def run(baseline_dir, current_dir, threshold_pct, warn_only, prefix_thresholds=()):
    baseline = load_dir(baseline_dir)
    current = load_dir(current_dir)
    if not current:
        print(f"error: no BENCH_*.json found in {current_dir}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"no baseline data in {baseline_dir}; nothing to gate (first run?)")
        return 0
    regressions, improvements, new_keys, removed_keys = compare(
        baseline, current, threshold_pct, prefix_thresholds
    )
    matched = len(set(baseline) & set(current))
    overrides = (
        ", ".join(f"{p}={t:.1f}%" for p, t in prefix_thresholds)
        if prefix_thresholds
        else "none"
    )
    print(
        f"compared {matched} series points "
        f"({len(new_keys)} new, {len(removed_keys)} removed), "
        f"threshold {threshold_pct:.1f}% (prefix overrides: {overrides})"
    )
    for key, base, cur, delta, thr in improvements:
        print(f"  improved  {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns ({delta:+.1f}%)")
    for key in new_keys:
        print(f"  new       {fmt_key(key)}: {current[key]:.1f} ns")
    for key in removed_keys:
        print(f"  removed   {fmt_key(key)} (baseline {baseline[key]:.1f} ns)")
    for key, base, cur, delta, thr in regressions:
        print(
            f"  REGRESSED {fmt_key(key)}: {base:.1f} -> {cur:.1f} ns "
            f"({delta:+.1f}% > {thr:.1f}%)"
        )
    if regressions:
        verdict = "warning" if warn_only else "FAIL"
        print(f"{verdict}: {len(regressions)} series regressed past their threshold")
        return 0 if warn_only else 1
    print("ok: no regressions")
    return 0


def parse_prefix_threshold(spec):
    """Parses one --prefix-threshold PREFIX=PCT argument."""
    prefix, sep, pct = spec.rpartition("=")
    if not sep or not prefix:
        raise ValueError(f"expected PREFIX=PCT, got {spec!r}")
    return prefix, float(pct)


def self_test():
    """Round-trips synthetic BENCH files through the full compare pipeline."""
    base_doc = {
        "bench": "t",
        "unit": "ns",
        "rows": [
            {"series": "a", "x": 1, "value": 100.0},
            {"series": "a", "x": 2, "value": 200.0},
            {"series": "gone", "x": 1, "value": 50.0},
        ],
    }
    cur_doc = {
        "bench": "t",
        "unit": "ns",
        "rows": [
            {"series": "a", "x": 1, "value": 110.0},  # +10%: within threshold
            {"series": "a", "x": 2, "value": 260.0},  # +30%: regression
            {"series": "fresh", "x": 1, "value": 10.0},
        ],
        "metrics": {"counters": {"chan/1/sends": 5}},
    }
    with tempfile.TemporaryDirectory() as tmp:
        bdir = os.path.join(tmp, "base")
        cdir = os.path.join(tmp, "cur")
        os.mkdir(bdir)
        os.mkdir(cdir)
        with open(os.path.join(bdir, "BENCH_t.json"), "w") as f:
            json.dump(base_doc, f)
        with open(os.path.join(cdir, "BENCH_t.json"), "w") as f:
            json.dump(cur_doc, f)
        baseline = load_dir(bdir)
        current = load_dir(cdir)
        assert len(baseline) == 3, baseline
        assert len(current) == 3, current
        regs, imps, new, removed = compare(baseline, current, 15.0)
        assert [r[0] for r in regs] == [("t", "a", 2)], regs
        assert abs(regs[0][3] - 30.0) < 1e-9, regs
        assert imps == [], imps
        assert new == [("t", "fresh", 1)], new
        assert removed == [("t", "gone", 1)], removed
        # The gate itself: strict fails, warn-only passes.
        assert run(bdir, cdir, 15.0, warn_only=False) == 1
        assert run(bdir, cdir, 15.0, warn_only=True) == 0
        assert run(bdir, cdir, 50.0, warn_only=False) == 0
        # Per-prefix thresholds: the override names "t/a" and lifts only
        # that series past its +30% delta; an unrelated prefix changes
        # nothing; the longest matching prefix wins over a shorter one.
        assert threshold_for(("t", "a", 2), 15.0, [("t/", 40.0)]) == 40.0
        assert threshold_for(("t", "a", 2), 15.0, [("u/", 40.0)]) == 15.0
        assert threshold_for(("t", "a", 2), 15.0, [("t/", 40.0), ("t/a", 25.0)]) == 25.0
        assert threshold_for(("t", "a", 2), 15.0, [("t/a", 25.0), ("t/", 40.0)]) == 25.0
        regs, _, _, _ = compare(baseline, current, 15.0, [("t/a", 40.0)])
        assert regs == [], regs
        regs, _, _, _ = compare(baseline, current, 15.0, [("other/", 40.0)])
        assert [r[0] for r in regs] == [("t", "a", 2)], regs
        assert run(bdir, cdir, 15.0, warn_only=False, prefix_thresholds=[("t/", 40.0)]) == 0
        assert run(bdir, cdir, 40.0, warn_only=False, prefix_thresholds=[("t/a", 15.0)]) == 1
        # CLI spec parsing, including '=' in the series name.
        assert parse_prefix_threshold("fig8_oltp/=30") == ("fig8_oltp/", 30.0)
        assert parse_prefix_threshold("t/a=25.5") == ("t/a", 25.5)
        for bad in ("noequals", "=30", "t/a="):
            try:
                parse_prefix_threshold(bad)
            except ValueError:
                pass
            else:
                raise AssertionError(f"{bad!r} should not parse")
        # Missing baseline never fails (first CI run on a branch).
        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        assert run(empty, cdir, 15.0, warn_only=False) == 0
        assert run(bdir, empty, 15.0, warn_only=False) == 2
    print("self-test ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="directory with baseline BENCH_*.json")
    ap.add_argument("current", nargs="?", help="directory with current BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="regression threshold in percent (default 15)",
    )
    ap.add_argument(
        "--prefix-threshold",
        action="append",
        default=[],
        metavar="PREFIX=PCT",
        help="per-series threshold override for keys whose bench/series name "
        "starts with PREFIX (repeatable; longest matching prefix wins)",
    )
    ap.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI warm-up mode)",
    )
    ap.add_argument("--self-test", action="store_true", help="run the built-in checks")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        ap.error("baseline and current directories are required (or --self-test)")
    try:
        prefix_thresholds = [parse_prefix_threshold(s) for s in args.prefix_threshold]
    except ValueError as e:
        ap.error(str(e))
    sys.exit(
        run(args.baseline, args.current, args.threshold, args.warn_only, prefix_thresholds)
    )


if __name__ == "__main__":
    main()
