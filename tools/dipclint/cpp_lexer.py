"""Lightweight C++ tokenizer for dipclint.

Not a real C++ lexer: just enough to walk this repository's sources —
comments and string/char literals are isolated (so rule logic never
pattern-matches inside them), identifiers/numbers/punctuation carry line
numbers, and raw strings / line continuations are handled. Preprocessor
lines are kept as tokens too (the manifest rules read #include targets).
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
COMMENT = "comment"
STRING = "string"
CHAR = "char"
IDENT = "ident"
NUMBER = "number"
PUNCT = "punct"
PREPROC = "preproc"


@dataclass
class Tok:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}:{self.line}:{self.text!r}"


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident(c: str) -> bool:
    return c.isalnum() or c == "_"


def lex(text: str) -> list[Tok]:
    toks: list[Tok] = []
    i = 0
    line = 1
    n = len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r":
            i += 1
            continue
        # Preprocessor directive: consume to end of line (with continuations).
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                i += 1
            toks.append(Tok(PREPROC, text[start:i], start_line))
            continue
        at_line_start = False
        # Line comment.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            toks.append(Tok(COMMENT, text[start:i], line))
            continue
        # Block comment.
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start = i
            start_line = line
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            toks.append(Tok(COMMENT, text[start:i], start_line))
            continue
        # Raw string literal R"delim(...)delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j != -1:
                delim = text[i + 2 : j]
                close = ")" + delim + '"'
                k = text.find(close, j + 1)
                if k != -1:
                    start_line = line
                    seg = text[i : k + len(close)]
                    line += seg.count("\n")
                    toks.append(Tok(STRING, seg, start_line))
                    i = k + len(close)
                    continue
        # String / char literal.
        if c in "\"'":
            quote = c
            start = i
            start_line = line
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    line += 1  # unterminated; tolerate
                i += 1
            i = min(i + 1, n)
            toks.append(Tok(STRING if quote == '"' else CHAR, text[start:i], start_line))
            continue
        if _is_ident_start(c):
            start = i
            while i < n and _is_ident(text[i]):
                i += 1
            toks.append(Tok(IDENT, text[start:i], line))
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isalnum() or text[i] in "._'" or
                             (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            toks.append(Tok(NUMBER, text[start:i], line))
            continue
        for p in _PUNCT3:
            if text.startswith(p, i):
                toks.append(Tok(PUNCT, p, line))
                i += len(p)
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    toks.append(Tok(PUNCT, p, line))
                    i += len(p)
                    break
            else:
                toks.append(Tok(PUNCT, c, line))
                i += 1
    return toks


def code_toks(toks: list[Tok]) -> list[Tok]:
    """Tokens with comments and preprocessor lines stripped."""
    return [t for t in toks if t.kind not in (COMMENT, PREPROC)]
