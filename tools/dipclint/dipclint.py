#!/usr/bin/env python3
"""dipclint: repo-specific static analyzer for the dIPC simulator.

Enforces the repo's cross-cutting invariants that generic tools cannot
see: capability-buffer lifetimes, futex predicate discipline, deadline
propagation on blocking APIs, fault-probe and metric-name manifests, and
memory-order justifications. See tools/dipclint/README-worthy docs in the
top-level README ("Static analysis").

Usage:
  dipclint.py [--json] [--root DIR] [PATH ...]   # default: src/ under root
  dipclint.py --self-test                        # run the fixture corpus

Suppression: append `// NOLINT-DIPC(RULE): reason` on the finding line or
in the comment block directly above it. The reason is mandatory.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from cpp_lexer import COMMENT, code_toks, lex
from cpp_model import extract_functions
from rules import (
    ALL_RULES,
    FileModel,
    Finding,
    RepoContext,
    RULE_FUNCS,
    load_metric_schema,
    load_probe_manifest,
)

_NOLINT_RE = re.compile(r"NOLINT-DIPC\(([A-Z\-, ]+)\)(:\s*\S.*)?")


def build_model(path: str, rel: str) -> FileModel:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    toks = lex(text)
    code = code_toks(toks)
    funcs, decls = extract_functions(code)
    return FileModel(path=rel, toks=toks, code=code, funcs=funcs, decls=decls)


def collect_suppressions(fm: FileModel) -> tuple[dict[int, set[str]], list[Finding]]:
    """Maps line -> suppressed rules. A NOLINT comment covers its own line
    and, when it is the only thing on its line, the next code line below.
    Returns NOLINT-REASON findings for reason-less suppressions."""
    by_line: dict[int, set[str]] = {}
    bad: list[Finding] = []
    comment_lines: set[int] = set()
    for t in fm.toks:
        if t.kind == COMMENT:
            comment_lines.add(t.line)
    for t in fm.toks:
        if t.kind != COMMENT:
            continue
        m = _NOLINT_RE.search(t.text)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        unknown = rules - set(ALL_RULES)
        if unknown:
            bad.append(Finding(
                "NOLINT-REASON", fm.path, t.line,
                f"unknown rule name(s) in NOLINT-DIPC: {', '.join(sorted(unknown))}"))
        if not m.group(2):
            bad.append(Finding(
                "NOLINT-REASON", fm.path, t.line,
                "NOLINT-DIPC without a ': reason' — suppressions must say why"))
            continue
        # The comment's own line(s)...
        span = [t.line]
        # ...and, for comment-only lines, extend downward through the
        # contiguous comment block to the first code line below it.
        ln = t.line
        while ln + 1 in comment_lines:
            ln += 1
            span.append(ln)
        span.append(ln + 1)
        for s in span:
            by_line.setdefault(s, set()).update(rules)
    return by_line, bad


def lint_file(path: str, rel: str, ctx: RepoContext) -> list[Finding]:
    fm = build_model(path, rel)
    suppress, findings = collect_suppressions(fm)
    for rule_fn in RULE_FUNCS:
        for f in rule_fn(fm, ctx):
            lines = (f.line, *f.extra_lines)
            if any(f.rule in suppress.get(ln, ()) for ln in lines):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def load_context(root: str) -> RepoContext:
    probes = os.path.join(root, "src", "fault", "probes.def")
    schema = os.path.join(root, "src", "obs", "metric_schema.def")
    idents: set[str] = set()
    names: set[str] = set()
    entries: list[tuple[str, list[str]]] = []
    if os.path.exists(probes):
        with open(probes, encoding="utf-8") as f:
            idents, names = load_probe_manifest(f.read())
    if os.path.exists(schema):
        with open(schema, encoding="utf-8") as f:
            entries = load_metric_schema(f.read())
    return RepoContext(probe_idents=idents, probe_names=names, metric_schema=entries)


def iter_sources(paths: list[str], root: str):
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith((".cc", ".h")):
                    yield os.path.join(dirpath, fn)


def run_lint(paths: list[str], root: str, as_json: bool) -> int:
    ctx = load_context(root)
    all_findings: list[Finding] = []
    nfiles = 0
    for ap in iter_sources(paths, root):
        rel = os.path.relpath(ap, root).replace(os.sep, "/")
        nfiles += 1
        all_findings.extend(lint_file(ap, rel, ctx))
    if as_json:
        print(json.dumps({
            "files": nfiles,
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
                for f in all_findings
            ],
        }, indent=2))
    else:
        for f in all_findings:
            print(f)
        print(f"dipclint: {nfiles} files, {len(all_findings)} finding(s)")
    return 1 if all_findings else 0


# ---- Fixture self-test ----------------------------------------------------

_DIR_TO_RULE = {
    "cap_leak": "CAP-LEAK",
    "futex_predicate": "FUTEX-PREDICATE",
    "deadline_thread": "DEADLINE-THREAD",
    "probe_manifest": "PROBE-MANIFEST",
    "metric_schema": "METRIC-SCHEMA",
    "mem_order": "MEM-ORDER",
    "nolint_reason": "NOLINT-REASON",
}


def self_test(root: str) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixdir = os.path.join(here, "fixtures")
    ctx = load_context(root)
    failures = []
    ncases = 0
    for rule_dir in sorted(os.listdir(fixdir)):
        rule = _DIR_TO_RULE.get(rule_dir)
        if rule is None:
            continue
        dpath = os.path.join(fixdir, rule_dir)
        for fn in sorted(os.listdir(dpath)):
            if not fn.endswith(".cc"):
                continue
            ncases += 1
            fpath = os.path.join(dpath, fn)
            # Fixtures pretend to live in a rule-appropriate src/ path so
            # path-scoped rules fire; an optional first-line comment
            # `// dipclint-path: src/...` overrides the default.
            with open(fpath, encoding="utf-8") as f:
                first = f.readline()
            m = re.match(r"//\s*dipclint-path:\s*(\S+)", first)
            rel = m.group(1) if m else f"src/chan/{fn}"
            findings = lint_file(fpath, rel, ctx)
            hits = [f for f in findings if f.rule == rule]
            if fn.startswith("bad_") and not hits:
                failures.append(f"{rule_dir}/{fn}: expected a {rule} finding, got "
                                f"{[str(f) for f in findings] or 'none'}")
            elif fn.startswith("good_") and hits:
                failures.append(f"{rule_dir}/{fn}: expected no {rule} findings, got "
                                f"{[str(f) for f in hits]}")
            # Cross-rule noise in fixtures is a bug too: good/bad fixtures
            # must be clean of every OTHER rule.
            other = [f for f in findings if f.rule != rule]
            if other:
                failures.append(f"{rule_dir}/{fn}: unexpected cross-rule findings: "
                                f"{[str(f) for f in other]}")
    for msg in failures:
        print(f"SELF-TEST FAIL: {msg}")
    print(f"dipclint --self-test: {ncases} fixtures, {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="dipclint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument("--root", help="repo root (default: autodetect from this script)")
    ap.add_argument("--json", action="store_true", help="machine-readable output")
    ap.add_argument("--self-test", action="store_true", help="run the fixture corpus")
    args = ap.parse_args(argv)
    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if args.self_test:
        return self_test(root)
    paths = args.paths or ["src"]
    return run_lint(paths, root, args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
