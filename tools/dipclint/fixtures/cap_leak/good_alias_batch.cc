// dipclint-path: src/apps/fix/good_alias_batch.cc
// Batch acquire consumed through aliases: a range-for binding and a
// container that absorbs the handles before a batched send.
#include "chan/channel.h"

namespace dipc {

sim::Task<base::Status> ProduceBurst(os::Env env, chan::Endpoint& ep) {
  auto batch = co_await ep.AcquireBufBatch(env, 4);
  if (!batch.ok()) {
    co_return batch.code();
  }
  std::vector<chan::SendItem> items;
  for (const chan::SendBuf& b : batch.value()) {
    items.push_back(chan::SendItem{b, 64});
  }
  co_return co_await ep.SendBatch(env, items);
}

}  // namespace dipc
