// dipclint-path: src/apps/fix/good_guarded_consume.cc
// The canonical shape: acquire-failure guard, Abandon on the error path,
// Send on the happy path.
#include "chan/channel.h"

namespace dipc {

sim::Task<base::Status> ProduceOne(os::Env env, chan::Endpoint& ep, os::Kernel& k) {
  auto buf = co_await ep.AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  auto produced = co_await k.TouchUser(env, buf.value().va, 64, hw::AccessType::kWrite);
  if (!produced.ok()) {
    co_await ep.AbandonBuf(env, buf.value());
    co_return produced.code();
  }
  co_return co_await ep.Send(env, buf.value(), 64);
}

}  // namespace dipc
