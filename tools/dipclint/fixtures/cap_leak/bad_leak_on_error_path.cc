// dipclint-path: src/apps/fix/bad_leak_on_error_path.cc
// An acquired send buffer escapes on the error path of a LATER operation:
// the early return checks `produced`, not the buffer, so the grant leaks.
#include "chan/channel.h"

namespace dipc {

sim::Task<base::Status> ProduceOne(os::Env env, chan::Endpoint& ep, os::Kernel& k) {
  auto buf = co_await ep.AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  auto produced = co_await k.TouchUser(env, buf.value().va, 64, hw::AccessType::kWrite);
  if (!produced.ok()) {
    co_return produced.code();  // leaks buf: no Abandon before bailing
  }
  co_return co_await ep.Send(env, buf.value(), 64);
}

}  // namespace dipc
