// dipclint-path: src/apps/fix/bad_scope_end.cc
// The buffer goes out of scope without ever reaching a consuming call.
#include "chan/channel.h"

namespace dipc {

sim::Task<void> ProduceNothing(os::Env env, chan::Endpoint& ep) {
  {
    auto buf = co_await ep.AcquireBuf(env);
    if (!buf.ok()) {
      co_return;
    }
    // ... forgot to Send or Abandon ...
  }
  co_return;
}

}  // namespace dipc
