// dipclint-path: src/apps/fix/good_probe.cc
// A probe site naming a manifest ident (src/fault/probes.def).
#include "fault/fault.h"

namespace dipc {

void Frob(os::Env env) {
  DIPC_FAULT_POINT(kChanSend, env);
}

}  // namespace dipc
