// dipclint-path: src/apps/fix/bad_raw_probe.cc
// Raw Injector access outside src/fault/: bypasses the manifest macro, so
// the site neither compiles out under DIPC_FAULT_OFF nor stays listed.
#include "fault/fault.h"

namespace dipc {

void Frob(fault::Injector& injector) {
  if (injector.Probe("chan/send")) {
    return;
  }
}

}  // namespace dipc
