// dipclint-path: src/apps/fix/bad_unknown_probe.cc
// A probe ident missing from src/fault/probes.def: no plan could ever arm
// it, so the site is dead weight that looks covered.
#include "fault/fault.h"

namespace dipc {

void Frob(os::Env env) {
  DIPC_FAULT_POINT(kTotallyUnknownProbe, env);
}

}  // namespace dipc
