// A deliberate never-deadline wrapper, suppressed with a reason.
#include "sim/task.h"

namespace dipc::chan {

class Pipe {
 public:
  // NOLINT-DIPC(DEADLINE-THREAD): convenience wrapper over WriteUntil for
  // tests; production callers thread a deadline through WriteUntil.
  sim::Task<base::Status> Write(os::Env env, uint64_t value);
};

}  // namespace dipc::chan
