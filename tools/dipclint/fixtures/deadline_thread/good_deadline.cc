// The compliant shape: a defaulted os::Deadline parameter (default = Never
// preserves untimed callers) threaded through to FutexBlockUntil.
#include "chan/futex.h"
#include "os/deadline.h"
#include "sim/task.h"

namespace dipc::chan {

class Pipe {
 public:
  sim::Task<base::Status> Write(os::Env env, uint64_t value, os::Deadline deadline = {});
  sim::Task<base::Result<uint64_t>> Read(os::Env env, os::Deadline deadline = {});
};

}  // namespace dipc::chan
