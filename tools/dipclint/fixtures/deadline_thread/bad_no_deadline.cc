// A blocking channel API (coroutine, takes Env) with no way to bound the
// park. Fixture path defaults to src/chan/, which is in rule scope.
#include "os/deadline.h"
#include "sim/task.h"

namespace dipc::chan {

class Pipe {
 public:
  sim::Task<base::Status> Write(os::Env env, uint64_t value);
};

}  // namespace dipc::chan
