// An untimed FutexBlock call inside the channel layer: the caller's
// deadline (if any) cannot reach the park.
#include "chan/futex.h"

namespace dipc::chan {

sim::Task<void> DrainPark(os::Env env, os::WaitQueue& q, const size_t& fill) {
  co_await FutexBlock(env, q, [&] { return fill > 0; });
}

}  // namespace dipc::chan
