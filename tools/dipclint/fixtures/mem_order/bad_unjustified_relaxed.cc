// dipclint-path: src/apps/fix/bad_unjustified_relaxed.cc
// memory_order_relaxed outside the metrics counter classes with no
// adjacent justification comment.
#include <atomic>

namespace dipc {

int Sample(const std::atomic<int>& gen) {
  return gen.load(std::memory_order_relaxed);
}

}  // namespace dipc
