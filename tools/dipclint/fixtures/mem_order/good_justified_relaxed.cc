// dipclint-path: src/apps/fix/good_justified_relaxed.cc
// The justification comment makes the site pass: same line or up to three
// lines above.
#include <atomic>

namespace dipc {

int Sample(const std::atomic<int>& gen) {
  // relaxed: generation counter is monotonic and only compared for
  // equality; no other data is published under it.
  return gen.load(std::memory_order_relaxed);
}

int SampleInline(const std::atomic<int>& gen) {
  return gen.load(std::memory_order_relaxed);  // relaxed: stats-only read
}

}  // namespace dipc
