// dipclint-path: src/apps/fix/good_predicate.cc
// Real still-blocked predicates: a capturing lambda re-checking state.
#include "chan/futex.h"

namespace dipc {

sim::Task<void> ParkUntilDrained(os::Env env, os::WaitQueue& q, const size_t& fill) {
  co_await chan::FutexBlock(env, q, [&] { return fill > 0; });
}

sim::Task<bool> ParkBounded(os::Env env, os::WaitQueue& q, os::Deadline d,
                            const bool& closed, const size_t& fill) {
  co_return co_await chan::FutexBlockUntil(env, q, d,
                                           [&] { return fill == 0 && !closed; });
}

}  // namespace dipc
