// dipclint-path: src/apps/fix/bad_missing_predicate.cc
// No predicate at all: the call can never re-check the blocked condition.
#include "chan/futex.h"

namespace dipc {

sim::Task<void> Park(os::Env env, os::WaitQueue& q) {
  co_await chan::FutexBlock(env, q);
}

}  // namespace dipc
