// dipclint-path: src/apps/fix/bad_trivial_predicate.cc
// A constant-true predicate defeats the wake-precedes-park re-check: a
// wake issued between the caller's own test and the park is lost forever.
#include "chan/futex.h"

namespace dipc {

sim::Task<void> ParkForever(os::Env env, os::WaitQueue& q) {
  co_await chan::FutexBlock(env, q, [] { return true; });
}

sim::Task<void> ParkBounded(os::Env env, os::WaitQueue& q, os::Deadline d) {
  (void)co_await chan::FutexBlockUntil(env, q, d, nullptr);
}

}  // namespace dipc
