// dipclint-path: src/apps/fix/good_schema_names.cc
// Schema-conformant registrations: fixed names, wildcard components built
// from variables, a prefix component, and the '**' fault-point tail.
#include "obs/metrics.h"

namespace dipc {

void Register(const std::string& id, int cpu) {
  obs::Counter* a = obs::Registry::Default().GetCounter("fault/injected");
  obs::Counter* b = obs::Registry::Default().GetCounter("chan/" + id + "/sends");
  obs::Gauge* c = obs::Registry::Default().GetGauge(
      "os/sched/cpu" + std::to_string(cpu) + "/runq_depth");
  obs::Counter* d = obs::Registry::Default().GetCounter("fault/point/" + id);
  obs::Histogram* e = obs::Registry::Default().GetHistogram("ring/" + id + "/park_ns");
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
}

}  // namespace dipc
