// dipclint-path: src/apps/fix/bad_off_schema_name.cc
// Metric registrations the schema rejects: a fully literal name that is in
// no pattern, and a kind mismatch (chan/*/sends is a Counter series, but
// the site registers a Histogram).
#include "obs/metrics.h"

namespace dipc {

void Register(const std::string& id) {
  obs::Counter* a = obs::Registry::Default().GetCounter("definitely/not/in/schema");
  obs::Histogram* b = obs::Registry::Default().GetHistogram("chan/" + id + "/sends");
  (void)a;
  (void)b;
}

}  // namespace dipc
