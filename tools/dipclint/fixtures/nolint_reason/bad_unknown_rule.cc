// dipclint-path: src/apps/fix/bad_unknown_rule.cc
// A suppression naming a rule that does not exist (typo'd suppressions
// otherwise rot silently).
namespace dipc {

// NOLINT-DIPC(CAP-LEEK): the rule name is misspelled
int kNothingHere = 0;

}  // namespace dipc
