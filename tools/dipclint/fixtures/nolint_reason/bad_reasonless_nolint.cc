// dipclint-path: src/apps/fix/bad_reasonless_nolint.cc
// A suppression with no ': reason' — it neither suppresses nor explains.
namespace dipc {

// NOLINT-DIPC(MEM-ORDER)
int kNothingHere = 0;

}  // namespace dipc
