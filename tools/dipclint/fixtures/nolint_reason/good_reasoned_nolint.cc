// dipclint-path: src/apps/fix/good_reasoned_nolint.cc
// A well-formed suppression: known rule, mandatory reason, and it actually
// suppresses the finding on the next code line.
#include <atomic>

namespace dipc {

int Sample(const std::atomic<int>& gen) {
  // NOLINT-DIPC(MEM-ORDER): fixture exercising the suppression syntax.
  return gen.load(std::memory_order_relaxed);
}

}  // namespace dipc
