"""dipclint rules.

Each rule is a function over one file's tokens/model plus shared repo
context (the probe and metric manifests), returning Finding objects. The
driver applies NOLINT-DIPC suppressions afterwards, so rules just report.

Rules (see README "Static analysis" for the catalog):
  CAP-LEAK         acquired send buffers must reach a consuming call on
                   every path (flow walk over the statement tree)
  FUTEX-PREDICATE  FutexBlock[Until] must receive a real still-blocked
                   predicate
  DEADLINE-THREAD  public blocking channel/fabric/semaphore APIs must
                   accept an os::Deadline (and nobody calls the untimed
                   FutexBlock outside its home header)
  PROBE-MANIFEST   DIPC_FAULT_POINT idents must exist in probes.def; raw
                   Injector.Probe calls are reserved to src/fault/
  METRIC-SCHEMA    registered metric names must be derivable from
                   metric_schema.def patterns (kind-checked)
  MEM-ORDER        memory_order_relaxed outside the metrics counter
                   classes needs an adjacent "// relaxed:" justification
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpp_lexer import COMMENT, IDENT, PUNCT, STRING, Tok
from cpp_model import (
    Decl,
    Func,
    extract_lambda_bodies,
    match_forward,
    parse_statements,
    split_args,
    Stmt,
)

ALL_RULES = (
    "CAP-LEAK",
    "FUTEX-PREDICATE",
    "DEADLINE-THREAD",
    "PROBE-MANIFEST",
    "METRIC-SCHEMA",
    "MEM-ORDER",
    "NOLINT-REASON",
)


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    # Extra lines whose suppressions also cover this finding (declaration
    # regions span several lines).
    extra_lines: tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class FileModel:
    path: str        # repo-relative, forward slashes
    toks: list[Tok]  # full stream (comments included)
    code: list[Tok]  # comments/preproc stripped
    funcs: list[Func]
    decls: list[Decl]


@dataclass
class RepoContext:
    probe_idents: set[str]
    probe_names: set[str]
    # (kind, [components]) with kind in {"Counter", "Gauge", "Histogram"}
    metric_schema: list[tuple[str, list[str]]]


# ---- Manifest loading -----------------------------------------------------

_PROBE_RE = re.compile(r'DIPC_FAULT_PROBE\((\w+)\s*,\s*"([^"]+)"\)')
_METRIC_RE = re.compile(r'DIPC_METRIC\((\w+)\s*,\s*"([^"]+)"\)')


def load_probe_manifest(text: str) -> tuple[set[str], set[str]]:
    idents, names = set(), set()
    for m in _PROBE_RE.finditer(text):
        idents.add(m.group(1))
        names.add(m.group(2))
    return idents, names


def load_metric_schema(text: str) -> list[tuple[str, list[str]]]:
    out = []
    for m in _METRIC_RE.finditer(text):
        out.append((m.group(1), m.group(2).split("/")))
    return out


def schema_examples(entry: tuple[str, list[str]]) -> list[str]:
    """Concrete example names a schema pattern covers (for regex checks)."""
    _, comps = entry
    parts: list[list[str]] = []
    for c in comps:
        if c == "**":
            parts.append(["x", "x/y"])
        elif c == "*":
            parts.append(["0"])
        elif c.endswith("*"):
            parts.append([c[:-1] + "0"])
        else:
            parts.append([c])
    examples = [""]
    for options in parts:
        examples = [e + ("/" if e else "") + o for e in examples for o in options]
    return examples


# ---- CAP-LEAK -------------------------------------------------------------

_ACQUIRES = {"AcquireBuf", "AcquireBufBatch"}
_SINKS = {
    "Send", "SendTo", "SendBatch", "SendBatchTo",
    "Abandon", "AbandonBuf", "AbandonBatch",
    "Release", "ReleaseBatch", "ReleaseAll",
    "BindSendCap", "BindRecvCap",
}
_ALIAS_RECEIVERS = {"push_back", "emplace_back", "insert", "assign"}


class _CapWalk:
    """Per-function symbolic walk tracking acquired-buffer liveness.

    Approximations, chosen to keep false positives at zero on this tree:
      - loops run 0-or-1 times for the post-state, but consumption inside a
        loop body counts afterwards (real loops here always run);
      - an early return inside an `if` whose condition mentions the handle
        (or an alias) is exempt — that is the acquire-failure guard shape,
        and also the thread-killed shape where the grant is already gone;
      - `break`/`continue` are not exit points; per-iteration leaks are
        caught at the declaring block's scope end instead.
    """

    def __init__(self, fm: FileModel, func: Func):
        self.fm = fm
        self.func = func
        self.findings: list[Finding] = []
        self.roots: dict[str, int] = {}      # var name -> root id
        self.consumed: dict[int, bool] = {}  # root id -> consumed
        self.acq_line: dict[int, int] = {}
        self.acq_var: dict[int, str] = {}
        self.next_root = 0
        self.guard: list[set[int]] = []      # roots mentioned by enclosing ifs

    # -- helpers --

    def _mentioned(self, toks: list[Tok]) -> set[int]:
        out = set()
        for t in toks:
            if t.kind == IDENT and t.text in self.roots:
                out.add(self.roots[t.text])
        return out

    def _scan(self, toks: list[Tok]) -> None:
        """Consumption + receiver-alias detection over a token run."""
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != IDENT or i + 1 >= n or toks[i + 1].text != "(":
                continue
            close = match_forward(toks, i + 1)
            inside = toks[i + 2 : close]
            touched = self._mentioned(inside)
            if not touched:
                continue
            if t.text in _SINKS:
                for r in touched:
                    self.consumed[r] = True
            elif t.text in _ALIAS_RECEIVERS and i >= 2 and \
                    toks[i - 1].kind == PUNCT and toks[i - 1].text in (".", "->") and \
                    toks[i - 2].kind == IDENT:
                # items.push_back(SendItem{b, ...}) -> `items` carries b now.
                receiver = toks[i - 2].text
                self.roots[receiver] = next(iter(touched))

    def _maybe_acquire(self, toks: list[Tok]) -> None:
        depth = 0
        for i, t in enumerate(toks):
            if t.kind == PUNCT:
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                continue
            # An acquire nested in a bracket group belongs to a lambda (or a
            # call argument) this statement only carries; the lambda body is
            # walked separately, so tracking it here would be double vision.
            if depth == 0 and t.kind == IDENT and t.text in _ACQUIRES and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                # find `var =` to the left
                for j in range(i - 1, 0, -1):
                    if toks[j].kind == PUNCT and toks[j].text == "=":
                        if toks[j - 1].kind == IDENT:
                            var = toks[j - 1].text
                            rid = self.next_root
                            self.next_root += 1
                            self.roots[var] = rid
                            self.consumed[rid] = False
                            self.acq_line[rid] = t.line
                            self.acq_var[rid] = var
                        return
                return

    def _maybe_alias(self, toks: list[Tok]) -> None:
        # `Type X = <root>...;` where the RHS is a pure handle expression
        # (member/index access only, no arithmetic/calls-with-commas).
        depth = 0
        for j, t in enumerate(toks):
            if t.kind == PUNCT:
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                elif t.text == "=" and depth == 0:
                    rhs = toks[j + 1 :]
                    while rhs and rhs[0].kind == IDENT and rhs[0].text in ("std", "move") or \
                            (rhs and rhs[0].kind == PUNCT and rhs[0].text in ("::", "(")):
                        rhs = rhs[1:]
                    if not rhs or rhs[0].kind != IDENT or rhs[0].text not in self.roots:
                        return
                    for r in rhs[1:]:
                        if r.kind == IDENT and r.text not in ("value", "front", "back", "at"):
                            return
                        if r.kind == PUNCT and r.text in ("+", ",", "?"):
                            return
                    if j >= 1 and toks[j - 1].kind == IDENT:
                        self.roots[toks[j - 1].text] = self.roots[rhs[0].text]
                    return
        return

    def _check_exit(self, line: int) -> None:
        exempt = set().union(*self.guard) if self.guard else set()
        for rid, done in self.consumed.items():
            if not done and rid not in exempt:
                self.findings.append(Finding(
                    "CAP-LEAK", self.fm.path, line,
                    f"'{self.acq_var[rid]}' (acquired at line {self.acq_line[rid]}) "
                    f"can reach this exit without Send/Abandon/Release",
                    extra_lines=(self.acq_line[rid],)))
                self.consumed[rid] = True  # report once per root

    def _check_scope_end(self, created: set[int], line: int) -> None:
        for rid in created:
            if not self.consumed.get(rid, True):
                self.findings.append(Finding(
                    "CAP-LEAK", self.fm.path, self.acq_line[rid],
                    f"'{self.acq_var[rid]}' acquired here goes out of scope "
                    f"without Send/Abandon/Release"))
                self.consumed[rid] = True
            self.consumed.pop(rid, None)
        self.roots = {v: r for v, r in self.roots.items() if r not in created}

    # -- walk --

    def run(self) -> list[Finding]:
        stmts = parse_statements(self.func.body)
        outcome = self._walk_block(stmts, check_scope=False)
        if outcome == "flow":
            # Falling off the end is an implicit co_return.
            last = self.func.body[-1].line if self.func.body else self.func.line
            self._check_exit(last)
        # Any root still live leaks at function end.
        self._check_scope_end(set(self.consumed.keys()), self.func.line)
        return self.findings

    def _walk_block(self, stmts: list[Stmt], check_scope: bool = True) -> str:
        before = set(self.consumed.keys())
        outcome = "flow"
        for s in stmts:
            outcome = self._walk_stmt(s)
            if outcome == "exit":
                break
        created = set(self.consumed.keys()) - before
        if outcome == "flow" and check_scope:
            self._check_scope_end(created, 0)
        return outcome

    def _walk_stmt(self, s: Stmt) -> str:
        if s.kind == "plain":
            first = s.toks[0] if s.toks else None
            if first is not None and first.kind == IDENT and \
                    first.text in ("return", "co_return"):
                for rid in self._mentioned(s.toks):
                    self.consumed[rid] = True
                self._scan(s.toks)
                self._check_exit(s.line)
                return "exit"
            self._scan(s.toks)
            self._maybe_acquire(s.toks)
            self._maybe_alias(s.toks)
            return "flow"
        if s.kind == "block":
            return self._walk_block(s.children)
        if s.kind == "if":
            self._scan(s.header)
            self._maybe_acquire(s.header)  # `if (auto b = co_await Acquire...)`
            mentioned = self._mentioned(s.header)
            snapshot = dict(self.consumed)
            self.guard.append(mentioned)
            out_then = self._walk_block(s.children)
            after_then = dict(self.consumed)
            self.consumed = dict(snapshot)
            # Roots acquired in the then-branch are gone; keep common ones.
            out_else = "flow"
            if s.orelse:
                out_else = self._walk_block(s.orelse)
            after_else = dict(self.consumed)
            self.guard.pop()
            if out_then == "exit" and out_else == "exit":
                self.consumed = {r: True for r in snapshot}
                return "exit"
            if out_then == "exit":
                self.consumed = after_else
            elif out_else == "exit":
                self.consumed = after_then
            else:
                merged = {}
                for rid in set(after_then) | set(after_else):
                    merged[rid] = after_then.get(rid, True) and after_else.get(rid, True)
                self.consumed = merged
            return "flow"
        if s.kind in ("loop", "switch", "do"):
            self._scan(s.header)
            self._range_for_alias(s.header)
            snapshot = dict(self.consumed)
            self._walk_block(s.children, check_scope=True)
            # 0-or-1 iteration post-state, except consumption sticks (loops
            # that consume do run in this codebase).
            merged = dict(snapshot)
            for rid, done in self.consumed.items():
                if rid in merged:
                    merged[rid] = merged[rid] or done
            self.consumed = merged
            return "flow"
        return "flow"

    def _range_for_alias(self, header: list[Tok]) -> None:
        depth = 0
        for j, t in enumerate(header):
            if t.kind == PUNCT:
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                elif t.text == ":" and depth == 0:
                    rng = header[j + 1 :]
                    if rng and rng[0].kind == IDENT and rng[0].text in self.roots:
                        # `for (const SendBuf& b : bufs.value())`
                        for k in range(j - 1, -1, -1):
                            if header[k].kind == IDENT:
                                self.roots[header[k].text] = self.roots[rng[0].text]
                                break
                    return


def rule_cap_leak(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    if not fm.path.endswith(".cc"):
        return []
    out: list[Finding] = []
    for f in fm.funcs:
        if f.name in _ACQUIRES:
            continue  # the channel's own delegating acquire implementations
        if not any(t.kind == IDENT and t.text in _ACQUIRES for t in f.body):
            continue
        out.extend(_CapWalk(fm, f).run())
        # Lambda bodies (Spawn thunks, handlers) get their own walk — the
        # enclosing function's walk treats them as opaque statement tokens.
        for body, line in extract_lambda_bodies(f.body):
            if not any(t.kind == IDENT and t.text in _ACQUIRES for t in body):
                continue
            out.extend(_CapWalk(fm, Func("<lambda>", f"{f.qualname}::<lambda>",
                                         line, [], [], body, line)).run())
    return out


# ---- FUTEX-PREDICATE ------------------------------------------------------

_FUTEX_ARITY = {"FutexBlock": 3, "FutexBlockUntil": 4}


def rule_futex_predicate(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    out: list[Finding] = []
    toks = fm.code
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _FUTEX_ARITY:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = match_forward(toks, i + 1)
        args = split_args(toks[i + 2 : close])
        want = _FUTEX_ARITY[t.text]
        if len(args) < want:
            out.append(Finding(
                "FUTEX-PREDICATE", fm.path, t.line,
                f"{t.text} takes a still-blocked predicate as its last "
                f"argument ({len(args)} of {want} arguments given)"))
            continue
        pred = args[-1]
        if len(pred) == 1 and pred[0].text in ("true", "false", "nullptr"):
            out.append(Finding(
                "FUTEX-PREDICATE", fm.path, t.line,
                f"{t.text} predicate '{pred[0].text}' is not a still-blocked "
                f"re-check; wakes issued while entering the kernel get lost"))
            continue
        # Lambda predicate: body must not be trivially `return true/false;`.
        for j, p in enumerate(pred):
            if p.kind == PUNCT and p.text == "{":
                bclose = match_forward(pred, j)
                body = [b for b in pred[j + 1 : bclose]]
                texts = [b.text for b in body]
                if texts in (["return", "true", ";"], ["return", "false", ";"], []):
                    out.append(Finding(
                        "FUTEX-PREDICATE", fm.path, t.line,
                        f"{t.text} predicate is trivially "
                        f"{'empty' if not texts else texts[1]}; it must "
                        f"re-check the blocked condition"))
                break
    return out


# ---- DEADLINE-THREAD ------------------------------------------------------

_DEADLINE_SCOPE = ("src/chan/", "src/fabric/")
_DEADLINE_FILES = ("src/os/semaphore.h",)
_BLOCKING_VERB = re.compile(r"^(Acquire|Recv|Push|Pop|Wait|Write|Read|Call)")


def _deadline_in_scope(path: str) -> bool:
    return path.startswith(_DEADLINE_SCOPE) or path in _DEADLINE_FILES


def rule_deadline_thread(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    if not _deadline_in_scope(fm.path):
        return []
    out: list[Finding] = []

    def check(name: str, line: int, lead: list[Tok], params: list[Tok],
              lead_line: int) -> None:
        if not _BLOCKING_VERB.match(name):
            return
        if not any(t.kind == IDENT and t.text == "Task" for t in lead):
            return  # not a coroutine API (no blocking surface)
        if not any(t.kind == IDENT and t.text == "Env" for t in params):
            return  # no thread context: not a blocking entry point
        if any(t.kind == IDENT and t.text == "Deadline" for t in params):
            return
        out.append(Finding(
            "DEADLINE-THREAD", fm.path, line,
            f"blocking API '{name}' takes no os::Deadline; callers cannot "
            f"bound the park (add a defaulted deadline parameter)",
            extra_lines=tuple(range(lead_line, line))))

    seen: set[tuple[str, int]] = set()
    for d in fm.decls:
        key = (d.qualname, d.line)
        if key not in seen:
            seen.add(key)
            check(d.name, d.line, d.lead, d.params, d.lead_line)
    for f in fm.funcs:
        # Out-of-line definitions are covered by their header declaration;
        # still check header-inline definitions (wrappers) found as Funcs.
        if "::" in f.qualname and fm.path.endswith(".cc"):
            continue
        key = (f.qualname, f.line)
        if key not in seen:
            seen.add(key)
            check(f.name, f.line, f.lead, f.params, f.lead_line)

    # Nobody outside the futex header may park without a deadline path.
    if fm.path != "src/chan/futex.h":
        toks = fm.code
        for i, t in enumerate(toks):
            if t.kind == IDENT and t.text == "FutexBlock" and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                out.append(Finding(
                    "DEADLINE-THREAD", fm.path, t.line,
                    "untimed FutexBlock call; use FutexBlockUntil and thread "
                    "the caller's os::Deadline through"))
    return out


# ---- PROBE-MANIFEST -------------------------------------------------------

def rule_probe_manifest(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    out: list[Finding] = []
    toks = fm.code
    in_fault = fm.path.startswith("src/fault/")
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text == "DIPC_FAULT_POINT" and i + 1 < len(toks) and toks[i + 1].text == "(":
            close = match_forward(toks, i + 1)
            args = split_args(toks[i + 2 : close])
            ident = args[0][0].text if args and args[0] else ""
            if ident and ident not in ctx.probe_idents:
                out.append(Finding(
                    "PROBE-MANIFEST", fm.path, t.line,
                    f"probe ident '{ident}' is not declared in "
                    f"src/fault/probes.def; plans could never arm it"))
        elif t.text == "Probe" and not in_fault and \
                i >= 1 and toks[i - 1].kind == PUNCT and toks[i - 1].text in (".", "->") and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            out.append(Finding(
                "PROBE-MANIFEST", fm.path, t.line,
                "raw Injector Probe call; use DIPC_FAULT_POINT(<ident>) so "
                "the site stays in the manifest and compiles out under "
                "DIPC_FAULT_OFF"))
    return out


# ---- METRIC-SCHEMA --------------------------------------------------------

_GETTERS = {"GetCounter": "Counter", "GetGauge": "Gauge", "GetHistogram": "Histogram"}


def _name_regex(arg: list[Tok]) -> str | None:
    """Regex over the metric name from the call argument: string-literal
    fragments stay literal, everything else becomes a wildcard. Returns
    None when nothing literal is known (nothing to check)."""
    frags = []
    for frag in _split_plus(arg):
        lit = None
        if len(frag) == 1 and frag[0].kind == STRING and frag[0].text.startswith('"'):
            lit = frag[0].text[1:-1]
        frags.append(lit)
    if not any(f is not None for f in frags):
        return None
    return "^" + "".join(re.escape(f) if f is not None else ".*" for f in frags) + "$"


def _split_plus(toks: list[Tok]) -> list[list[Tok]]:
    out: list[list[Tok]] = []
    cur: list[Tok] = []
    depth = 0
    for t in toks:
        if t.kind == PUNCT:
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == "+" and depth == 0:
                out.append(cur)
                cur = []
                continue
    # (fallthrough appends below)
        cur.append(t)
    out.append(cur)
    return out


def rule_metric_schema(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    out: list[Finding] = []
    toks = fm.code
    examples: dict[str, list[str]] = {}
    for entry in ctx.metric_schema:
        examples.setdefault(entry[0], []).extend(schema_examples(entry))
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _GETTERS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        close = match_forward(toks, i + 1)
        args = split_args(toks[i + 2 : close])
        if not args or not args[0]:
            continue
        pattern = _name_regex(args[0])
        if pattern is None:
            continue  # fully dynamic name: nothing checkable statically
        kind = _GETTERS[t.text]
        rx = re.compile(pattern)
        if not any(rx.match(e) for e in examples.get(kind, [])):
            lit = pattern[1:-1].replace("\\", "").replace(".*", "<*>")
            out.append(Finding(
                "METRIC-SCHEMA", fm.path, t.line,
                f"{kind.lower()} name '{lit}' matches no "
                f"src/obs/metric_schema.def pattern of that kind; add the "
                f"series to the manifest (and README) or fix the name"))
    return out


# ---- MEM-ORDER ------------------------------------------------------------

_MEMORDER_EXEMPT = ("src/obs/metrics.h",)


def rule_mem_order(fm: FileModel, ctx: RepoContext) -> list[Finding]:
    if fm.path in _MEMORDER_EXEMPT:
        return []
    out: list[Finding] = []
    justified: set[int] = set()
    for t in fm.toks:
        if t.kind == COMMENT and "relaxed:" in t.text:
            last = t.line + t.text.count("\n")
            for ln in range(t.line, last + 1):
                justified.add(ln)
    for t in fm.toks:
        if t.kind == IDENT and t.text == "memory_order_relaxed":
            window = {t.line, t.line - 1, t.line - 2, t.line - 3}
            if not (window & justified):
                out.append(Finding(
                    "MEM-ORDER", fm.path, t.line,
                    "memory_order_relaxed outside the metrics counter "
                    "classes needs an adjacent '// relaxed:' comment "
                    "justifying why no ordering is required"))
    return out


RULE_FUNCS = (
    rule_cap_leak,
    rule_futex_predicate,
    rule_deadline_thread,
    rule_probe_manifest,
    rule_metric_schema,
    rule_mem_order,
)
