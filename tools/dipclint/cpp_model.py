"""Structural model over the token stream: function extraction, a
statement tree for flow-aware rules, and call-argument splitting.

The model is deliberately approximate — it understands the subset of C++
this repository writes (namespaces, classes, free/member functions,
coroutines, lambdas-in-statements) rather than the language. Rules that
need flow (CAP-LEAK) walk the statement tree; token-local rules scan the
flat stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpp_lexer import IDENT, PUNCT, Tok

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")": "(", "]": "[", "}": "{"}

# Tokens allowed between a parameter list's ')' and a function body's '{'
# (plus a ':' ctor-initializer region and a '->' trailing return, which are
# handled separately).
_SPECIFIERS = {"const", "noexcept", "override", "final", "mutable", "try", "&", "&&"}


def match_forward(toks: list[Tok], i: int) -> int:
    """Index of the token matching the bracket at toks[i] (or len(toks))."""
    want = _OPEN[toks[i].text]
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if toks[j].kind != PUNCT:
            continue
        if t == toks[i].text:
            depth += 1
        elif t == want:
            depth -= 1
            if depth == 0:
                return j
        # Other bracket kinds nest independently; plain counting of the one
        # bracket char is enough for well-formed code.
    return len(toks)


def split_args(toks: list[Tok]) -> list[list[Tok]]:
    """Splits the tokens BETWEEN a call's parens into top-level arguments."""
    args: list[list[Tok]] = []
    cur: list[Tok] = []
    depth = 0
    angle = 0
    for t in toks:
        if t.kind == PUNCT:
            if t.text in _OPEN:
                depth += 1
            elif t.text in _CLOSE:
                depth -= 1
            elif t.text == "<":
                angle += 1
            elif t.text == ">" and angle > 0:
                angle -= 1
            elif t.text == "," and depth == 0 and angle == 0:
                args.append(cur)
                cur = []
                continue
        cur.append(t)
    if cur or args:
        args.append(cur)
    return args


@dataclass
class Func:
    name: str            # unqualified ("AcquireBuf")
    qualname: str        # as written ("Channel::AcquireBuf" when qualified)
    line: int            # line of the name token
    lead: list[Tok]      # tokens from the previous boundary to the name
    params: list[Tok]    # tokens between the parameter parens
    body: list[Tok]      # tokens between the body braces (exclusive)
    lead_line: int = 0   # first line of `lead` (for suppression lookups)


@dataclass
class Decl:
    """A parameter-list declaration without a body we scanned over (pure
    declarations in headers end in ';')."""
    name: str
    qualname: str
    line: int
    lead: list[Tok]
    params: list[Tok]
    lead_line: int = 0


def _walk_name(toks: list[Tok], open_paren: int) -> tuple[str, str, int]:
    """(name, qualname, name_index) for the '(' at open_paren."""
    i = open_paren - 1
    if i < 0 or toks[i].kind != IDENT:
        return "", "", -1
    name = toks[i].text
    qual = [name]
    j = i
    while j >= 2 and toks[j - 1].kind == PUNCT and toks[j - 1].text == "::" \
            and toks[j - 2].kind == IDENT:
        qual.insert(0, toks[j - 2].text)
        j -= 2
    return name, "::".join(qual), i


_NOT_FUNC_NAMES = {
    "if", "while", "for", "switch", "catch", "return", "co_return", "co_await",
    "sizeof", "alignof", "decltype", "static_assert", "co_yield", "new", "delete",
}


def extract_functions(toks: list[Tok]) -> tuple[list[Func], list[Decl]]:
    """Finds function definitions (and bodiless declarations) in a token
    stream with comments/preprocessor already stripped.

    Strategy: scan at "declaration scope" (outside any function body). A
    '{' is a function body iff the tokens since the last top-level paren
    group are an allowed specifier run (or a ctor-init / trailing-return
    region) and the group is named by a plain identifier. Everything else
    ('namespace x {', 'class Y {', '= {...}') just nests.
    """
    funcs: list[Func] = []
    decls: list[Decl] = []
    n = len(toks)
    i = 0
    boundary = 0          # index just after the last ';' '}' '{' at decl scope
    group: tuple[int, int] | None = None  # (open_idx, close_idx) of last paren group

    def lead_for(name_idx: int) -> list[Tok]:
        lead = toks[boundary:name_idx]
        # Drop access specifiers etc. at the front ("public :").
        while lead and lead[0].kind == IDENT and lead[0].text in ("public", "private", "protected"):
            lead = lead[1:]
            if lead and lead[0].text == ":":
                lead = lead[1:]
        return lead

    while i < n:
        t = toks[i]
        if t.kind == PUNCT and t.text == "(":
            j = match_forward(toks, i)
            name, qualname, name_idx = _walk_name(toks, i)
            if name and name not in _NOT_FUNC_NAMES:
                group = (i, j)
                # Pure declaration: group followed by specifier run then ';'
                # (or '= 0 ;' / '= default ;' etc.).
                k = j + 1
                while k < n and ((toks[k].kind == IDENT and toks[k].text in _SPECIFIERS)
                                 or (toks[k].kind == PUNCT and toks[k].text in ("&", "&&"))):
                    k += 1
                if k < n and toks[k].kind == PUNCT and toks[k].text in (";", "="):
                    lead = lead_for(name_idx)
                    decls.append(Decl(name, qualname, toks[name_idx].line, lead,
                                      toks[i + 1 : j],
                                      lead[0].line if lead else toks[name_idx].line))
            else:
                group = None
            i = j + 1
            continue
        if t.kind == PUNCT and t.text == "{":
            body_open = i
            close = match_forward(toks, i)
            is_func = False
            if group is not None:
                gopen, gclose = group
                between = toks[gclose + 1 : body_open]
                ok = True
                k = 0
                while k < len(between):
                    b = between[k]
                    if b.kind == IDENT and b.text in _SPECIFIERS:
                        k += 1
                        continue
                    if b.kind == PUNCT and b.text in ("&", "&&"):
                        k += 1
                        continue
                    if b.kind == PUNCT and b.text in (":", "->"):
                        k = len(between)  # ctor-init / trailing return: accept rest
                        continue
                    ok = False
                    break
                if ok:
                    name, qualname, name_idx = _walk_name(toks, gopen)
                    if name and name not in _NOT_FUNC_NAMES:
                        lead = lead_for(name_idx)
                        funcs.append(Func(name, qualname, toks[name_idx].line, lead,
                                          toks[gopen + 1 : gclose],
                                          toks[body_open + 1 : close],
                                          lead[0].line if lead else toks[name_idx].line))
                        is_func = True
            if is_func:
                i = close + 1
                boundary = i
                group = None
                continue
            # Not a function body: descend (namespace/class) or skip
            # (initializer). Initializers are brace groups preceded by '='
            # or a type-ish context; descending into them is harmless for
            # namespaces/classes and wrong for init-lists, so: skip when
            # preceded by '=' or ',' or '(' or 'return', descend otherwise.
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and prev.kind == PUNCT and prev.text in ("=", ",", "(", "["):
                i = close + 1
            else:
                i += 1
            boundary = i
            group = None
            continue
        if t.kind == PUNCT and t.text in (";", "}"):
            boundary = i + 1
            group = None
        i += 1
    return funcs, decls


_LAMBDA_LINK = {"::", "<", ">", "->", "&", "&&", "*"}


def extract_lambda_bodies(toks: list[Tok]) -> list[tuple[list[Tok], int]]:
    """(body_tokens, line) for every lambda literal in a token run.

    The scan is linear and resumes just past each capture list, so lambdas
    nested inside other lambdas' bodies are found too. Flow rules walk these
    bodies as pseudo-functions; the enclosing function's walk sees the
    lambda only as opaque tokens inside one plain statement.
    """
    out: list[tuple[list[Tok], int]] = []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != PUNCT or t.text != "[":
            i += 1
            continue
        j = match_forward(toks, i)
        k = j + 1
        if k < n and toks[k].kind == PUNCT and toks[k].text == "(":
            k = match_forward(toks, k) + 1
        # Skim specifiers / trailing-return tokens up to the body brace.
        while k < n and (toks[k].kind == IDENT or
                         (toks[k].kind == PUNCT and toks[k].text in _LAMBDA_LINK)):
            k += 1
        if k < n and toks[k].kind == PUNCT and toks[k].text == "{":
            close = match_forward(toks, k)
            out.append((toks[k + 1 : close], t.line))
        i = j + 1
    return out


# ---- Statement tree -------------------------------------------------------

@dataclass
class Stmt:
    kind: str                       # "plain" | "block" | "if" | "loop" | "switch" | "do"
    toks: list[Tok] = field(default_factory=list)   # plain: the statement tokens
    header: list[Tok] = field(default_factory=list)  # if/loop/switch: the (...) tokens
    children: list["Stmt"] = field(default_factory=list)  # block body
    orelse: list["Stmt"] = field(default_factory=list)    # if: else branch
    line: int = 0


def _parse_stmt_run(toks: list[Tok], i: int) -> tuple[Stmt, int]:
    """Parses one statement starting at toks[i]; returns (stmt, next_i)."""
    n = len(toks)
    t = toks[i]
    if t.kind == PUNCT and t.text == "{":
        close = match_forward(toks, i)
        return Stmt("block", children=parse_statements(toks[i + 1 : close]), line=t.line), close + 1
    if t.kind == IDENT and t.text in ("if", "while", "for", "switch"):
        j = i + 1
        if j < n and toks[j].kind == IDENT and toks[j].text == "constexpr":
            j += 1
        if j >= n or toks[j].text != "(":
            return _parse_plain(toks, i)
        hclose = match_forward(toks, j)
        header = toks[j + 1 : hclose]
        body, k = _parse_stmt_run(toks, hclose + 1) if hclose + 1 < n else (Stmt("block"), n)
        if t.text == "if":
            orelse: list[Stmt] = []
            if k < n and toks[k].kind == IDENT and toks[k].text == "else":
                els, k = _parse_stmt_run(toks, k + 1)
                orelse = [els]
            return Stmt("if", header=header, children=[body], orelse=orelse, line=t.line), k
        kind = "switch" if t.text == "switch" else "loop"
        return Stmt(kind, header=header, children=[body], line=t.line), k
    if t.kind == IDENT and t.text == "do":
        body, k = _parse_stmt_run(toks, i + 1) if i + 1 < n else (Stmt("block"), n)
        # consume "while ( ... ) ;"
        if k < n and toks[k].kind == IDENT and toks[k].text == "while":
            j = k + 1
            if j < n and toks[j].text == "(":
                hclose = match_forward(toks, j)
                k = hclose + 1
                if k < n and toks[k].text == ";":
                    k += 1
        return Stmt("do", children=[body], line=t.line), k
    if t.kind == IDENT and t.text in ("case", "default"):
        # consume "case X :" / "default :" as a no-op plain statement
        j = i
        while j < n and not (toks[j].kind == PUNCT and toks[j].text == ":"):
            j += 1
        return Stmt("plain", toks=toks[i : j + 1], line=t.line), j + 1
    return _parse_plain(toks, i)


def _parse_plain(toks: list[Tok], i: int) -> tuple[Stmt, int]:
    n = len(toks)
    j = i
    depth = 0
    while j < n:
        t = toks[j]
        if t.kind == PUNCT:
            if t.text in _OPEN:
                depth += 1
            elif t.text in _CLOSE:
                depth -= 1
            elif t.text == ";" and depth == 0:
                j += 1
                break
        j += 1
    return Stmt("plain", toks=toks[i:j], line=toks[i].line), j


def parse_statements(toks: list[Tok]) -> list[Stmt]:
    out: list[Stmt] = []
    i = 0
    n = len(toks)
    while i < n:
        # Skip labels like "done:" rarely used; treat as plain content.
        stmt, i2 = _parse_stmt_run(toks, i)
        if i2 <= i:  # safety against non-progress
            i2 = i + 1
        out.append(stmt)
        i = i2
    return out
