// XDR-style (de)marshalling for the local-RPC baseline (glibc rpcgen flavor).
//
// The paper's "Local RPC" baseline pays for argument (de)marshalling in user
// code (Fig. 2 block 1). Encoder/Decoder move real bytes; their *time* cost
// is returned so callers charge it as user compute.
#ifndef DIPC_RPC_MARSHAL_H_
#define DIPC_RPC_MARSHAL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/result.h"
#include "sim/time.h"

namespace dipc::rpc {

using ProcId = uint32_t;

// Wire header for the socket RPC protocol: xid, procedure, body length —
// three 4-byte XDR units. The on-wire size is derived from the struct
// itself (and pinned by the static_assert) so the layout and the constant
// can never drift apart.
struct WireHeader {
  uint32_t xid;
  ProcId proc;
  uint32_t len;
};
inline constexpr uint64_t kHeaderBytes = sizeof(WireHeader);
static_assert(kHeaderBytes == 12 && sizeof(WireHeader) == 3 * sizeof(uint32_t),
              "WireHeader must stay exactly three packed XDR units; fix every "
              "Pack/Unpack site before changing the wire layout");

// Calibration: XDR walks encode trees field by field; ~150 ns fixed per
// message plus ~0.25 ns/byte (4-byte units, bounds checks, byte swaps),
// anchored so the full rpcgen round trip lands on Fig. 5's ~6.9 us.
inline constexpr sim::Duration kMarshalFixed = sim::Duration::Nanos(150.0);
inline constexpr double kMarshalPerByteNs = 0.25;

inline sim::Duration MarshalCost(uint64_t bytes) {
  return kMarshalFixed + sim::Duration::Nanos(kMarshalPerByteNs * static_cast<double>(bytes));
}

class Encoder {
 public:
  void PutU32(uint32_t v) { Append(&v, sizeof(v)); }
  void PutU64(uint64_t v) { Append(&v, sizeof(v)); }
  void PutI64(int64_t v) { Append(&v, sizeof(v)); }

  void PutBytes(std::span<const std::byte> data) {
    PutU32(static_cast<uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
    Pad();
  }

  void PutString(const std::string& s) {
    PutBytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> Take() { return std::move(buf_); }
  sim::Duration cost() const { return MarshalCost(buf_.size()); }

 private:
  void Append(const void* p, size_t n) {
    const std::byte* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void Pad() {
    while (buf_.size() % 4 != 0) {
      buf_.push_back(std::byte{0});
    }
  }
  std::vector<std::byte> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> data) : data_(data) {}

  base::Result<uint32_t> GetU32() { return Get<uint32_t>(); }
  base::Result<uint64_t> GetU64() { return Get<uint64_t>(); }
  base::Result<int64_t> GetI64() { return Get<int64_t>(); }

  base::Result<std::vector<std::byte>> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) {
      return len.code();
    }
    if (data_.size() - pos_ < *len) {
      return base::ErrorCode::kInvalidArgument;
    }
    std::vector<std::byte> out(data_.begin() + pos_, data_.begin() + pos_ + *len);
    pos_ += *len;
    while (pos_ % 4 != 0 && pos_ < data_.size()) {
      ++pos_;
    }
    return out;
  }

  base::Result<std::string> GetString() {
    auto b = GetBytes();
    if (!b.ok()) {
      return b.code();
    }
    return std::string(reinterpret_cast<const char*>(b->data()), b->size());
  }

  sim::Duration cost() const { return MarshalCost(data_.size()); }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  base::Result<T> Get() {
    if (data_.size() - pos_ < sizeof(T)) {
      return base::ErrorCode::kInvalidArgument;
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace dipc::rpc

#endif  // DIPC_RPC_MARSHAL_H_
