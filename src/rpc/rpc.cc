#include "rpc/rpc.h"

#include <cstring>

namespace dipc::rpc {

namespace {

// Serializes a header into a small stack buffer.
void PackHeader(const WireHeader& h, std::byte out[kHeaderBytes]) {
  std::memcpy(out, &h.xid, 4);
  std::memcpy(out + 4, &h.proc, 4);
  std::memcpy(out + 8, &h.len, 4);
}

WireHeader UnpackHeader(const std::byte in[kHeaderBytes]) {
  WireHeader h;
  std::memcpy(&h.xid, in, 4);
  std::memcpy(&h.proc, in + 4, 4);
  std::memcpy(&h.len, in + 8, 4);
  return h;
}

constexpr uint64_t kIoBufSize = 2 * 1024 * 1024;  // generous: Fig. 6 sweeps to 1 MB

}  // namespace

sim::Task<base::Result<std::unique_ptr<RpcClient>>> RpcClient::Connect(os::Env env,
                                                                       const std::string& path) {
  auto conn = co_await os::UnixListener::Connect(env, path);
  if (!conn.ok()) {
    co_return conn.code();
  }
  auto buf = env.kernel->MapAnonymous(env.self->process(), kIoBufSize,
                                      hw::PageFlags{.writable = true});
  if (!buf.ok()) {
    co_return buf.code();
  }
  co_return std::make_unique<RpcClient>(std::move(conn).value(), buf.value());
}

sim::Task<base::Result<std::vector<std::byte>>> RpcClient::Call(os::Env env, ProcId proc,
                                                                std::span<const std::byte> args) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  // Client stub: bookkeeping + marshalling (user time, Fig. 2 block 1).
  co_await k.Spend(self, kClientStubCost + MarshalCost(args.size()), os::TimeCat::kUser);
  WireHeader h{next_xid_++, proc, static_cast<uint32_t>(args.size())};
  std::byte hdr[kHeaderBytes];
  PackHeader(h, hdr);
  base::Status s = k.UserWrite(self, io_buf_, std::span<const std::byte>(hdr, kHeaderBytes));
  if (s.ok() && !args.empty()) {
    s = k.UserWrite(self, io_buf_ + kHeaderBytes, args);
  }
  if (!s.ok()) {
    co_return s.code();
  }
  auto sent = co_await sock_->Send(env, io_buf_, kHeaderBytes + args.size());
  if (!sent.ok()) {
    co_return sent.code();
  }
  // Block for the reply header, then the body.
  s = co_await sock_->RecvExact(env, io_buf_, kHeaderBytes);
  if (!s.ok()) {
    co_return s.code();
  }
  std::byte rhdr[kHeaderBytes];
  DIPC_CHECK(k.UserRead(self, io_buf_, std::span<std::byte>(rhdr, kHeaderBytes)).ok());
  WireHeader rh = UnpackHeader(rhdr);
  std::vector<std::byte> body(rh.len);
  if (rh.len > 0) {
    s = co_await sock_->RecvExact(env, io_buf_ + kHeaderBytes, rh.len);
    if (!s.ok()) {
      co_return s.code();
    }
    DIPC_CHECK(k.UserRead(self, io_buf_ + kHeaderBytes, body).ok());
  }
  // Unmarshal results (user time).
  co_await k.Spend(self, MarshalCost(body.size()), os::TimeCat::kUser);
  co_return body;
}

base::Result<std::shared_ptr<os::UnixListener>> RpcServer::Bind(const std::string& path) {
  auto listener = std::make_shared<os::UnixListener>(kernel_);
  base::Status s = kernel_.BindPath(path, listener);
  if (!s.ok()) {
    return s.code();
  }
  return listener;
}

sim::Task<void> RpcServer::ServeConn(os::Env env, std::shared_ptr<os::UnixStreamEnd> conn) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  auto buf = k.MapAnonymous(self.process(), kIoBufSize, hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  hw::VirtAddr io = buf.value();
  while (true) {
    auto s = co_await conn->RecvExact(env, io, kHeaderBytes);
    if (!s.ok()) {
      co_return;  // peer hung up
    }
    std::byte hdr[kHeaderBytes];
    DIPC_CHECK(k.UserRead(self, io, std::span<std::byte>(hdr, kHeaderBytes)).ok());
    WireHeader h = UnpackHeader(hdr);
    std::vector<std::byte> body(h.len);
    if (h.len > 0) {
      s = co_await conn->RecvExact(env, io + kHeaderBytes, h.len);
      if (!s.ok()) {
        co_return;
      }
      DIPC_CHECK(k.UserRead(self, io + kHeaderBytes, body).ok());
    }
    // Demultiplex + unmarshal (user time; §2.2 "callees must also dispatch
    // requests from a single IPC channel into their respective handler").
    co_await k.Spend(self, kServerDispatchCost + MarshalCost(body.size()), os::TimeCat::kUser);
    auto it = handlers_.find(h.proc);
    std::vector<std::byte> reply;
    if (it != handlers_.end()) {
      reply = co_await it->second(env, std::move(body));
    }
    // Marshal + send the reply.
    co_await k.Spend(self, MarshalCost(reply.size()), os::TimeCat::kUser);
    WireHeader rh{h.xid, h.proc, static_cast<uint32_t>(reply.size())};
    PackHeader(rh, hdr);
    DIPC_CHECK(k.UserWrite(self, io, std::span<const std::byte>(hdr, kHeaderBytes)).ok());
    if (!reply.empty()) {
      DIPC_CHECK(k.UserWrite(self, io + kHeaderBytes, reply).ok());
    }
    auto sent = co_await conn->Send(env, io, kHeaderBytes + reply.size());
    if (!sent.ok()) {
      co_return;
    }
  }
}

}  // namespace dipc::rpc
