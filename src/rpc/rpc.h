// Local RPC over UNIX sockets, modeled after glibc's rpcgen output (§2.2,
// footnote 1: "efficient UNIX socket-based RPC").
//
// Client: stub marshals arguments -> send over socket -> block on reply ->
// unmarshal results. Server: dispatch loop receives, demultiplexes by
// procedure number, calls the handler, marshals and sends the reply. These
// are exactly the overheads Fig. 2 attributes to "Local RPC" (big user
// block 1 + 4 socket crossings per call).
#ifndef DIPC_RPC_RPC_H_
#define DIPC_RPC_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "os/kernel.h"
#include "os/unix_socket.h"
#include "rpc/marshal.h"
#include "sim/task.h"

namespace dipc::rpc {

// ProcId, WireHeader and kHeaderBytes live in rpc/marshal.h (single
// static_assert'd source of truth for the wire layout).

// Calibration: rpcgen stub entry/exit, clnt_call bookkeeping, timeout setup
// on the client; svc_getreqset, xprt handling and dispatch on the server.
inline constexpr sim::Duration kClientStubCost = sim::Duration::Nanos(1290.0);
inline constexpr sim::Duration kServerDispatchCost = sim::Duration::Nanos(1180.0);

class RpcClient {
 public:
  // Connects to a named RPC service; allocates the client's I/O buffer.
  static sim::Task<base::Result<std::unique_ptr<RpcClient>>> Connect(os::Env env,
                                                                     const std::string& path);

  RpcClient(std::shared_ptr<os::UnixStreamEnd> sock, hw::VirtAddr io_buf)
      : sock_(std::move(sock)), io_buf_(io_buf) {}

  // Synchronous call: marshals `args`, sends, blocks for the reply.
  sim::Task<base::Result<std::vector<std::byte>>> Call(os::Env env, ProcId proc,
                                                       std::span<const std::byte> args);

 private:
  std::shared_ptr<os::UnixStreamEnd> sock_;
  hw::VirtAddr io_buf_;
  uint32_t next_xid_ = 1;
};

class RpcServer {
 public:
  // A handler consumes the request body and produces the reply body.
  using Handler =
      std::function<sim::Task<std::vector<std::byte>>(os::Env, std::vector<std::byte>)>;

  explicit RpcServer(os::Kernel& kernel) : kernel_(kernel) {}

  void RegisterHandler(ProcId proc, Handler handler) {
    handlers_[proc] = std::move(handler);
  }

  // Binds `path` and returns the listener (caller spawns ServeConn threads).
  base::Result<std::shared_ptr<os::UnixListener>> Bind(const std::string& path);

  // Serves one connection until the peer hangs up. Run as a service-thread
  // body: the "false concurrency" artifact of §2.3.
  sim::Task<void> ServeConn(os::Env env, std::shared_ptr<os::UnixStreamEnd> conn);

 private:
  os::Kernel& kernel_;
  std::unordered_map<ProcId, Handler> handlers_;
};

}  // namespace dipc::rpc

#endif  // DIPC_RPC_RPC_H_
