// Discrete-event simulation core: a cancellable time-ordered event queue.
//
// Events scheduled for the same instant fire in scheduling order, which keeps
// whole-system runs deterministic (a requirement for reproducible benchmarks).
#ifndef DIPC_SIM_EVENT_QUEUE_H_
#define DIPC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace dipc::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `t` (must be >= now()).
  EventId ScheduleAt(Time t, std::function<void()> fn);

  // Schedules `fn` to run `d` after now().
  EventId ScheduleAfter(Duration d, std::function<void()> fn) {
    return ScheduleAt(now_ + d, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already fired or was cancelled.
  bool Cancel(EventId id);

  // Runs the earliest pending event; returns false if the queue is empty.
  bool RunOne();

  // Runs events until the queue drains or `max_events` fire. Returns the count.
  uint64_t RunUntilIdle(uint64_t max_events = UINT64_MAX);

  // Runs events with firing time <= `deadline`; advances now() to `deadline`
  // even if the queue drains earlier.
  uint64_t RunUntil(Time deadline);

  bool empty() const { return live_count_ == 0; }
  uint64_t pending() const { return live_count_; }
  uint64_t total_fired() const { return fired_count_; }

 private:
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventId id;
    // Ordered as a min-heap via std::greater.
    bool operator>(const Entry& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  Time now_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t live_count_ = 0;
  uint64_t fired_count_ = 0;
};

}  // namespace dipc::sim

#endif  // DIPC_SIM_EVENT_QUEUE_H_
