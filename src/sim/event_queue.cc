#include "sim/event_queue.h"

#include <utility>

#include "base/check.h"

namespace dipc::sim {

EventId EventQueue::ScheduleAt(Time t, std::function<void()> fn) {
  DIPC_CHECK(t >= now_);
  DIPC_CHECK(fn != nullptr);
  EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  actions_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) {
    return false;
  }
  actions_.erase(it);  // heap entry becomes a tombstone, skipped in RunOne
  --live_count_;
  return true;
}

bool EventQueue::RunOne() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = actions_.find(top.id);
    if (it == actions_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    heap_.pop();
    std::function<void()> fn = std::move(it->second);
    actions_.erase(it);
    --live_count_;
    DIPC_CHECK(top.at >= now_);
    now_ = top.at;
    ++fired_count_;
    fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

uint64_t EventQueue::RunUntil(Time deadline) {
  uint64_t n = 0;
  while (!heap_.empty()) {
    // Peek past tombstones to find the next live event time.
    Entry top = heap_.top();
    if (actions_.find(top.id) == actions_.end()) {
      heap_.pop();
      continue;
    }
    if (top.at > deadline) {
      break;
    }
    RunOne();
    ++n;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return n;
}

}  // namespace dipc::sim
