// Deterministic pseudo-random generator for workloads (SplitMix64 core).
//
// std::mt19937 would also be deterministic, but its distributions are not
// specified bit-exactly across standard libraries; we implement the few
// distributions we need so results reproduce everywhere.
#ifndef DIPC_SIM_RANDOM_H_
#define DIPC_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "base/check.h"

namespace dipc::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    DIPC_CHECK(lo <= hi);
    uint64_t span = hi - lo + 1;
    if (span == 0) {  // full 64-bit range
      return Next();
    }
    return lo + Next() % span;
  }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Exponential with the given mean (> 0).
  double Exponential(double mean) {
    DIPC_CHECK(mean > 0);
    double u = NextDouble();
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(1.0 - u);
  }

  // Bounded Pareto-ish heavy tail used for request size/service variation.
  double HeavyTail(double min, double max, double alpha = 1.5) {
    DIPC_CHECK(min > 0 && max > min && alpha > 0);
    double u = NextDouble();
    double ha = std::pow(min / max, alpha);
    double x = min / std::pow(1.0 - u * (1.0 - ha), 1.0 / alpha);
    return x;
  }

 private:
  uint64_t state_;
};

}  // namespace dipc::sim

#endif  // DIPC_SIM_RANDOM_H_
