// Small statistics helpers for benchmark harnesses.
#ifndef DIPC_SIM_STATS_H_
#define DIPC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "base/check.h"

namespace dipc::sim {

// Streaming mean / variance (Welford).
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample collector with percentiles (keeps all samples; benches are small).
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    stat_.Add(x);
  }

  size_t count() const { return values_.size(); }
  double mean() const { return stat_.mean(); }
  double stddev() const { return stat_.stddev(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }

  double Percentile(double p) const {
    DIPC_CHECK(!values_.empty());
    DIPC_CHECK(p >= 0.0 && p <= 100.0);
    // Sort once and reuse across the p50/p95/p99 calls every bench series
    // makes; Add() only appends, so a size mismatch is the staleness signal.
    if (sorted_.size() != values_.size()) {
      sorted_ = values_;
      std::sort(sorted_.begin(), sorted_.end());
    }
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
  }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  RunningStat stat_;
};

}  // namespace dipc::sim

#endif  // DIPC_SIM_STATS_H_
