// C++20 coroutine task used for simulated thread bodies.
//
// Simulated threads are coroutines: kernel blocking points (futex wait, pipe
// read, proxy upcalls...) are `co_await` expressions, and the discrete-event
// engine resumes them at the right virtual time. Tasks are lazy (they do not
// run until Start() or co_await), compose via symmetric transfer, and carry a
// value or an exception back to the awaiter.
#ifndef DIPC_SIM_TASK_H_
#define DIPC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "base/check.h"

namespace dipc::sim {

template <typename T>
class Task;

namespace internal {

class PromiseBase {
 public:
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& promise = h.promise();
      promise.done_ = true;
      if (promise.on_complete_) {
        promise.on_complete_();
      }
      if (promise.continuation_) {
        return promise.continuation_;
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception_ = std::current_exception(); }

  void set_continuation(std::coroutine_handle<> h) { continuation_ = h; }
  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }
  bool done() const { return done_; }

  void RethrowIfFailed() {
    if (exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::coroutine_handle<> continuation_;
  std::function<void()> on_complete_;
  std::exception_ptr exception_;
  bool done_ = false;
};

}  // namespace internal

// Task<T>: a lazily-started coroutine producing a T (or void).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T value) { value_ = std::move(value); }
    std::optional<T> value_;
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return h_ != nullptr; }
  bool done() const { return h_ && h_.promise().done(); }

  // Starts a top-level task; `on_complete` fires when the coroutine finishes.
  void Start(std::function<void()> on_complete = nullptr) {
    DIPC_CHECK(h_ != nullptr);
    if (on_complete) {
      h_.promise().set_on_complete(std::move(on_complete));
    }
    h_.resume();
  }

  // Retrieves the result after completion (rethrows stored exceptions).
  T TakeResult() {
    DIPC_CHECK(done());
    h_.promise().RethrowIfFailed();
    return std::move(*h_.promise().value_);
  }

  // Awaiter for nesting: `T x = co_await SubTask();`
  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        h.promise().RethrowIfFailed();
        return std::move(*h.promise().value_);
      }
    };
    return Awaiter{h_};
  }

 private:
  void Destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_;
};

template <>
struct Task<void>::promise_type : internal::PromiseBase {
  Task get_return_object() {
    return Task(std::coroutine_handle<promise_type>::from_promise(*this));
  }
  void return_void() {}
};

template <>
inline void Task<void>::TakeResult() {
  DIPC_CHECK(done());
  h_.promise().RethrowIfFailed();
}

template <>
inline auto Task<void>::operator co_await() && {
  struct Awaiter {
    Handle h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().set_continuation(cont);
      return h;
    }
    void await_resume() { h.promise().RethrowIfFailed(); }
  };
  return Awaiter{h_};
}

// Suspends the current coroutine and hands its handle to `receiver`, which is
// responsible for arranging resumption (e.g. parking it on a wait queue).
template <typename Receiver>
auto SuspendTo(Receiver receiver) {
  struct Awaiter {
    Receiver receiver;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { receiver(h); }
    void await_resume() noexcept {}
  };
  return Awaiter{std::move(receiver)};
}

}  // namespace dipc::sim

#endif  // DIPC_SIM_TASK_H_
