// Virtual time for the discrete-event simulation.
//
// Time is kept in integer picoseconds so that sub-nanosecond costs (a 3.1 GHz
// cycle is ~322.6 ps) accumulate without floating-point drift and simulations
// stay bit-for-bit deterministic.
#ifndef DIPC_SIM_TIME_H_
#define DIPC_SIM_TIME_H_

#include <compare>
#include <concepts>
#include <cstdint>

namespace dipc::sim {

class Duration {
 public:
  constexpr Duration() : ps_(0) {}

  static constexpr Duration Picos(int64_t ps) { return Duration(ps); }
  static constexpr Duration Nanos(double ns) {
    return Duration(static_cast<int64_t>(ns * 1e3 + (ns >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration Micros(double us) { return Nanos(us * 1e3); }
  static constexpr Duration Millis(double ms) { return Nanos(ms * 1e6); }
  static constexpr Duration Seconds(double s) { return Nanos(s * 1e9); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t picos() const { return ps_; }
  constexpr double nanos() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double micros() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double millis() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double seconds() const { return static_cast<double>(ps_) / 1e12; }

  constexpr Duration operator+(Duration other) const { return Duration(ps_ + other.ps_); }
  constexpr Duration operator-(Duration other) const { return Duration(ps_ - other.ps_); }
  template <typename K>
    requires std::integral<K>
  constexpr Duration operator*(K k) const {
    return Duration(ps_ * static_cast<int64_t>(k));
  }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ps_) * k));
  }
  constexpr Duration& operator+=(Duration other) {
    ps_ += other.ps_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ps_ -= other.ps_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(int64_t ps) : ps_(ps) {}
  int64_t ps_;
};

class Time {
 public:
  constexpr Time() : ps_(0) {}

  static constexpr Time FromPicos(int64_t ps) { return Time(ps); }
  static constexpr Time Zero() { return Time(0); }
  static constexpr Time Max() { return Time(INT64_MAX); }

  constexpr int64_t picos() const { return ps_; }
  constexpr double nanos() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double micros() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double millis() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double seconds() const { return static_cast<double>(ps_) / 1e12; }

  constexpr Time operator+(Duration d) const { return Time(ps_ + d.picos()); }
  constexpr Time operator-(Duration d) const { return Time(ps_ - d.picos()); }
  constexpr Duration operator-(Time other) const { return Duration::Picos(ps_ - other.ps_); }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  constexpr explicit Time(int64_t ps) : ps_(ps) {}
  int64_t ps_;
};

}  // namespace dipc::sim

#endif  // DIPC_SIM_TIME_H_
