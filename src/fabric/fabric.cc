#include "fabric/fabric.h"

#include <string>

#include "base/check.h"
#include "chan/desc.h"
#include "fault/fault.h"

namespace dipc::fabric {

using os::TimeCat;
using sim::Duration;

namespace {

// Hop numbering for one fabric operation, in causal order. The number is
// packed into both the hop-span arg and the descriptor trace word, so the
// assembler can order spans within a request without trusting timestamps.
constexpr uint8_t kHopReqAcquire = 0;
constexpr uint8_t kHopReqSend = 1;
constexpr uint8_t kHopWorkerRecv = 2;
constexpr uint8_t kHopHandler = 3;
constexpr uint8_t kHopRespSend = 4;
constexpr uint8_t kHopCompletion = 5;

// Hop-span arg layout: (aux << 16) | (hop << 8) | attempt, where aux is the
// hop-specific index (client, shard or worker). The opid rides the event's
// dedicated field; trace_assemble.py decodes this word for the track layout.
uint64_t HopArg(uint32_t aux, uint8_t hop, uint8_t attempt) {
  return (static_cast<uint64_t>(aux) << 16) | (static_cast<uint64_t>(hop) << 8) |
         static_cast<uint64_t>(attempt);
}

}  // namespace

ServiceFabric::ServiceFabric(core::Dipc& dipc, std::span<os::Process* const> clients,
                             std::span<os::Process* const> workers, FabricConfig cfg)
    : dipc_(dipc),
      kernel_(dipc.kernel()),
      client_procs_(clients.begin(), clients.end()),
      worker_procs_(workers.begin(), workers.end()),
      cfg_(cfg) {}

void ServiceFabric::RegisterMetrics() {
  obs_id_ = obs::NewObjectId();
  const std::string p = "fabric/" + std::to_string(obs_id_) + "/";
  obs::Registry& reg = obs::Registry::Default();
  m_calls_ = reg.GetCounter(p + "calls");
  m_completions_ = reg.GetCounter(p + "completions");
  m_retries_ = reg.GetCounter(p + "retries");
  m_failures_ = reg.GetCounter(p + "failures");
  m_duplicates_ = reg.GetCounter(p + "duplicate_completions");
  m_rebinds_ = reg.GetCounter(p + "worker_rebinds");
  m_call_ns_ = reg.GetHistogram(p + "call_ns");
}

base::Result<std::shared_ptr<ServiceFabric>> ServiceFabric::Create(
    core::Dipc& dipc, std::span<os::Process* const> clients,
    std::span<os::Process* const> workers, FabricConfig cfg) {
  if (clients.empty() || workers.empty() || cfg.req_bytes < sizeof(uint64_t) ||
      cfg.resp_bytes < sizeof(uint64_t)) {
    return base::ErrorCode::kInvalidArgument;
  }
  auto fab = std::shared_ptr<ServiceFabric>(new ServiceFabric(dipc, clients, workers, cfg));
  fab->RegisterMetrics();
  fab->progress_.assign(workers.size(), 0);

  // Tag trios: shared across planes by default (identical trust relationship
  // for every tenant), so the per-CPU APL cache sees 6 tags no matter how
  // many clients ride the fabric. Leaving the tags invalid makes each
  // channel allocate its own trio — the cache-thrash design point.
  chan::FanOutConfig req_cfg{.slots = cfg.req_slots,
                             .buf_bytes = cfg.req_bytes,
                             .credits = cfg.req_credits,
                             .lag_policy = chan::LagPolicy::kBlock};
  chan::FanInConfig resp_cfg{
      .slots = cfg.resp_slots, .buf_bytes = cfg.resp_bytes, .credits = cfg.resp_credits};
  if (cfg.shared_trio) {
    codoms::AplTable& apl = dipc.kernel().codoms().apl_table();
    req_cfg.ctrl_tag = apl.AllocateTag();
    req_cfg.data_tag = apl.AllocateTag();
    req_cfg.rt_tag = apl.AllocateTag();
    resp_cfg.ctrl_tag = apl.AllocateTag();
    resp_cfg.data_tag = apl.AllocateTag();
    resp_cfg.rt_tag = apl.AllocateTag();
  }
  fab->req_.reserve(clients.size());
  fab->resp_.reserve(clients.size());
  for (os::Process* c : clients) {
    auto req = chan::FanOutChannel::Create(dipc, *c, workers, req_cfg);
    if (!req.ok()) {
      return req.code();
    }
    auto resp = chan::FanInChannel::Create(dipc, workers, *c, resp_cfg);
    if (!resp.ok()) {
      return resp.code();
    }
    fab->req_.push_back(req.value());
    fab->resp_.push_back(resp.value());
  }
  return fab;
}

bool ServiceFabric::client_broken(uint32_t c) const {
  return req_[c]->broken() != base::ErrorCode::kOk ||
         resp_[c]->broken() != base::ErrorCode::kOk;
}

bool ServiceFabric::worker_alive(uint32_t w) const {
  for (uint32_t c = 0; c < client_count(); ++c) {
    if (!client_broken(c)) {
      return req_[c]->receiver_alive(w);
    }
  }
  return false;
}

bool ServiceFabric::WorkerOutstanding(uint32_t w) const {
  for (uint32_t c = 0; c < client_count(); ++c) {
    if (!client_broken(c) && req_[c]->credits(w) < req_[c]->credit_line()) {
      return true;
    }
  }
  return false;
}

base::Status ServiceFabric::RebindWorker(uint32_t worker, os::Process& proc) {
  if (worker >= worker_count()) {
    return base::ErrorCode::kInvalidArgument;
  }
  // Dead-client planes are skipped: their channels are broken and the other
  // tenants must not be held hostage by them.
  base::Status st = base::ErrorCode::kBrokenChannel;
  bool any_live = false;
  for (uint32_t c = 0; c < client_count(); ++c) {
    if (client_broken(c)) {
      continue;
    }
    any_live = true;
    base::Status s = req_[c]->RebindReceiver(worker, proc);
    if (!s.ok()) {
      return s;
    }
    s = resp_[c]->RebindProducer(worker, proc);
    if (!s.ok()) {
      return s;
    }
    st = base::Status::Ok();
  }
  if (!any_live) {
    return st;
  }
  worker_procs_[worker] = &proc;
  ++rebinds_;
  m_rebinds_->Add();
  return base::Status::Ok();
}

sim::Task<base::Status> ServiceFabric::Call(os::Env env, uint32_t client, uint64_t req_len) {
  os::Kernel& k = *env.kernel;
  if (client >= client_count() || req_len < sizeof(uint64_t) || req_len > cfg_.req_bytes) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  const std::shared_ptr<chan::FanOutChannel>& req = req_[client];
  const uint64_t opid = ++next_opid_;
  auto sem = std::make_shared<os::Semaphore>(0);
  {
    base::MutexLock lock(&completions_mu_);
    completions_[opid] = sem;
  }
  ++calls_;
  m_calls_->Add();
  const sim::Time t0 = k.now();
  Duration backoff = cfg_.backoff_initial;
  bool done = false;
  // Every blocking step of an attempt carries the per-attempt deadline; a
  // kTimedOut/kCalleeFailed/kFault attempt is retried under the SAME opid
  // with capped exponential backoff — the single completions-map entry keeps
  // delivery exactly-once no matter how many attempts race.
  for (int attempt = 0; !done && !stopped_; ++attempt) {
    if (attempt > 0) {
      if (attempt > cfg_.max_call_retries) {
        ++failed_;
        m_failures_->Add();
        break;
      }
      ++retried_;
      m_retries_->Add();
      co_await k.Sleep(env, backoff);
      backoff = backoff * 2;
      if (backoff > cfg_.backoff_cap) {
        backoff = cfg_.backoff_cap;
      }
    }
    {
      fault::Decision d = DIPC_FAULT_POINT(kFabricDispatch, env.self->last_cpu());
      if (d.fail()) {
        continue;  // this attempt is lost before it starts; back off and retry
      }
      if (d.action == fault::Action::kDelay) {
        co_await k.Spend(*env.self, d.delay, TimeCat::kUser);
      }
    }
    const os::Deadline dl = cfg_.call_deadline > Duration::Zero()
                                ? os::Deadline::After(k.now(), cfg_.call_deadline)
                                : os::Deadline::Never();
    const uint8_t att = static_cast<uint8_t>(attempt > 255 ? 255 : attempt);
    const sim::Time t_acq = k.now();
    auto buf = co_await req->AcquireBuf(env, dl);
    if (!buf.ok()) {
      if (req->broken() != base::ErrorCode::kOk ||
          buf.code() == base::ErrorCode::kBrokenChannel) {
        break;  // the plane itself is gone; retrying is hopeless
      }
      continue;  // kTimedOut / kCalleeFailed / kFault: back off
    }
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kReqAcquire, obs_id_,
                        HopArg(client, kHopReqAcquire, att), k.now(), k.now() - t_acq, opid);
    // The spare descriptor header word carries the trace context across the
    // request plane: the worker's recv hop unpacks the same opid from it.
    chan::SendBuf sb = buf.value();
    sb.tctx = chan::internal::PackTraceWord(obs::TraceCtx{opid, kHopWorkerRecv, att});
    DIPC_CHECK(k.UserWrite(*env.self, sb.va, std::as_bytes(std::span(&opid, 1))).ok());
    (void)co_await k.TouchUser(env, sb.va, req_len, hw::AccessType::kWrite);
    // Shard round-robin; a shard that died under the send is retried on the
    // next live worker (the buffer stays owned until a send succeeds). Give
    // the buffer back when no live worker remains or the deadline fired.
    bool sent = false;
    uint32_t shard_used = 0;
    const sim::Time t_send = k.now();
    while (req->broken() == base::ErrorCode::kOk) {
      uint32_t shard = req->NextShard();
      if (shard >= req->receiver_count()) {
        break;
      }
      auto s = co_await req->SendTo(env, sb, req_len, shard, dl);
      if (s.ok()) {
        sent = true;
        shard_used = shard;
        break;
      }
      if (s.code() != base::ErrorCode::kCalleeFailed) {
        break;  // timeout, close or a caller bug — resharding won't help
      }
    }
    if (!sent) {
      (void)co_await req->AbandonBuf(env, sb);
      if (req->broken() != base::ErrorCode::kOk) {
        break;
      }
      continue;
    }
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kReqSend, obs_id_,
                        HopArg(shard_used, kHopReqSend, att), k.now(), k.now() - t_send, opid);
    auto w = co_await sem->WaitUntil(env, dl);
    if (w.ok()) {
      done = true;
    }
    // kTimedOut: the worker wedged or died mid-request. Back off and resend
    // the same opid — the supervisor restores capacity and the dispatcher
    // drops any late duplicate completion.
  }
  if (sem->count() > 0) {
    // A retry raced with a late completion of an earlier attempt and both
    // landed: the extra tokens are duplicates.
    duplicates_ += static_cast<uint64_t>(sem->count());
    m_duplicates_->Add(static_cast<uint64_t>(sem->count()));
  }
  {
    base::MutexLock lock(&completions_mu_);
    completions_.erase(opid);
  }
  if (!done) {
    co_return base::ErrorCode::kCalleeFailed;
  }
  ++completed_;
  m_completions_->Add();
  const Duration rtt = k.now() - t0;
  m_call_ns_->Record(rtt.nanos());
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFabricDispatch, obs_id_, opid,
                      k.now(), rtt, opid);
  co_return base::Status::Ok();
}

sim::Task<void> ServiceFabric::Serve(os::Env env, uint32_t client, uint32_t worker,
                                     Handler handler) {
  os::Kernel& k = *env.kernel;
  DIPC_CHECK(client < client_count() && worker < worker_count());
  const std::shared_ptr<chan::FanOutChannel>& req = req_[client];
  const std::shared_ptr<chan::FanInChannel>& resp = resp_[client];
  while (!stopped_) {
    const sim::Time t_recv = k.now();
    auto msg = co_await req->Recv(env, worker);
    if (!msg.ok()) {
      co_return;
    }
    // The descriptor trace word joins this hop to the client's opid. The recv
    // span deliberately includes idle time waiting for work (queueing delay).
    const obs::TraceCtx rctx = chan::internal::UnpackTraceWord(msg.value().tctx);
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kWorkerRecv, obs_id_,
                        HopArg(worker, rctx.hop, rctx.attempt), k.now(), k.now() - t_recv,
                        rctx.opid);
    uint64_t opid = 0;
    if (!k.UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(&opid, 1)))
             .ok()) {
      // This worker incarnation was killed between Recv handing over the
      // message and the header read: its grants are already swept. The
      // client will time out and retry the opid elsewhere.
      co_return;
    }
    (void)co_await k.TouchUser(env, msg.value().va, msg.value().len, hw::AccessType::kRead);
    const sim::Time t_handler = k.now();
    co_await handler(env, msg.value());
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kHandler, obs_id_,
                        HopArg(worker, kHopHandler, rctx.attempt), k.now(),
                        k.now() - t_handler, rctx.opid);
    if (!(co_await req->Release(env, worker, msg.value())).ok()) {
      co_return;
    }
    const sim::Time t_resp = k.now();
    auto buf = co_await resp->AcquireBuf(env, worker);
    if (!buf.ok()) {
      co_return;
    }
    chan::SendBuf rb = buf.value();
    rb.tctx = chan::internal::PackTraceWord(
        obs::TraceCtx{rctx.opid, kHopCompletion, rctx.attempt});
    if (!k.UserWrite(*env.self, rb.va, std::as_bytes(std::span(&opid, 1))).ok()) {
      co_return;  // killed after the acquire; the write grant is gone
    }
    (void)co_await k.TouchUser(env, rb.va, cfg_.resp_bytes, hw::AccessType::kWrite);
    if (!(co_await resp->Send(env, worker, rb, cfg_.resp_bytes)).ok()) {
      co_return;
    }
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kRespSend, obs_id_,
                        HopArg(worker, kHopRespSend, rctx.attempt), k.now(), k.now() - t_resp,
                        rctx.opid);
    ++progress_[worker];  // the supervisor's liveness signal
  }
}

void ServiceFabric::StartDispatcher(uint32_t client) {
  DIPC_CHECK(client < client_count());
  auto self = shared_from_this();
  kernel_.Spawn(*client_procs_[client], "fabric-disp",
                [self, client](os::Env env) -> sim::Task<void> {
                  os::Kernel& k = *env.kernel;
                  const std::shared_ptr<chan::FanInChannel>& resp = self->resp_[client];
                  while (true) {
                    const sim::Time t_disp = k.now();
                    auto msg = co_await resp->Recv(env);
                    if (!msg.ok()) {
                      co_return;
                    }
                    const obs::TraceCtx cctx =
                        chan::internal::UnpackTraceWord(msg.value().tctx);
                    uint64_t opid = 0;
                    if (!k.UserRead(*env.self, msg.value().va,
                                    std::as_writable_bytes(std::span(&opid, 1)))
                             .ok()) {
                      co_return;  // client died mid-dispatch; teardown swept us
                    }
                    (void)co_await k.TouchUser(env, msg.value().va, msg.value().len,
                                               hw::AccessType::kRead);
                    if (!(co_await resp->Release(env, msg.value())).ok()) {
                      co_return;
                    }
                    std::shared_ptr<os::Semaphore> sem;
                    {
                      base::MutexLock lock(&self->completions_mu_);
                      auto it = self->completions_.find(opid);
                      if (it != self->completions_.end()) {
                        sem = it->second;
                      }
                    }
                    if (sem != nullptr) {
                      co_await sem->Post(env);
                    } else {
                      // The client already retried and its retry won the
                      // race: this late completion of the earlier attempt is
                      // dropped, keeping completion delivery exactly-once
                      // per operation.
                      ++self->duplicates_;
                      self->m_duplicates_->Add();
                    }
                    // Recorded even for dropped duplicates — the forensic
                    // value of a late completion is exactly why it's traced.
                    obs::Trace().Record(env.self->last_cpu(),
                                        obs::EventType::kCompletionDispatch, self->obs_id_,
                                        HopArg(client, cctx.hop, cctx.attempt), k.now(),
                                        k.now() - t_disp, cctx.opid);
                  }
                });
}

void ServiceFabric::StartAllDispatchers() {
  for (uint32_t c = 0; c < client_count(); ++c) {
    StartDispatcher(c);
  }
}

void ServiceFabric::Close() {
  stopped_ = true;
  for (auto& ch : req_) {
    ch->Close();
  }
  for (auto& ch : resp_) {
    ch->Close();
  }
}

}  // namespace dipc::fabric
