// N x M service fabric: M client domains sharded across N worker domains
// behind one handle, with per-worker reverse rings feeding each client.
//
// This generalizes the opid-matched request/response dispatch that
// src/apps/oltp/ used to hand-roll per worker. Per client the fabric
// composes the two channel flavors into the duplex pattern pushed N-wide:
//
//        requests (FanOutChannel, sharded SendTo)
//   client c ========================================> workers 0..N-1
//        <======================================== responses
//        (FanInChannel: every worker a producer, client the consumer)
//
//   - Call(): the client-side request path — opid-stamped request, shard
//     round-robin with re-shard on dead workers, per-attempt deadline and
//     capped-backoff retry under the SAME opid, blocking on a per-operation
//     completion semaphore. Exactly-once: one completions-map entry per
//     operation; late completions of earlier attempts are dropped at
//     dispatch and counted.
//   - Serve(): the worker-side loop for one (client, worker) pair — drain
//     the request shard, run the app handler, respond with the matching
//     opid into the client's fan-in as that worker's producer slot.
//   - StartDispatcher(): per-client completion pump draining the fan-in
//     and posting the matching semaphore.
//   - RebindWorker(): the supervisor's respawn path — one call splices a
//     fresh process into worker w's receiver slot on every client's
//     request plane AND its producer slot on every client's response
//     plane (FanOutChannel::RebindReceiver + FanInChannel::RebindProducer).
//
// Tag strategy: with FabricConfig::shared_trio (default) all request
// planes share one domain-tag trio and all response planes another —
// 6 tags total no matter how many clients, so hundreds of tenants stay
// within the 32-entry per-CPU APL cache. Disabling it gives every channel
// its own trio (the cache-thrash design point the benches sweep).
#ifndef DIPC_FABRIC_FABRIC_H_
#define DIPC_FABRIC_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/thread_annotations.h"
#include "chan/fanin.h"
#include "chan/fanout.h"
#include "dipc/dipc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "os/semaphore.h"
#include "sim/task.h"

namespace dipc::fabric {

struct FabricConfig {
  uint32_t req_slots = 8;     // per-client request-plane pool
  uint64_t req_bytes = 512;   // >= 8 (the opid header)
  uint32_t resp_slots = 8;    // per-client response-plane pool
  uint64_t resp_bytes = 2048;
  uint32_t req_credits = 0;   // per-worker credit line, request plane (0 = slots)
  uint32_t resp_credits = 0;  // per-worker credit line, response plane (0 = slots)
  // One shared tag trio across all request planes + one across all response
  // planes (APL-cache friendly) vs a private trio per channel.
  bool shared_trio = true;
  // Per-attempt deadline for every blocking step of Call(); zero waits
  // forever (no retries fire without it).
  sim::Duration call_deadline = sim::Duration::Zero();
  int max_call_retries = 0;  // further attempts after the first
  sim::Duration backoff_initial = sim::Duration::Micros(20);
  sim::Duration backoff_cap = sim::Duration::Micros(640);
};

class ServiceFabric : public std::enable_shared_from_this<ServiceFabric> {
 public:
  // Runs with the request payload (already delivered, not yet released);
  // the fabric handles opid extraction, release and the response itself.
  using Handler = std::function<sim::Task<void>(os::Env, const chan::Msg&)>;

  static base::Result<std::shared_ptr<ServiceFabric>> Create(
      core::Dipc& dipc, std::span<os::Process* const> clients,
      std::span<os::Process* const> workers, FabricConfig cfg = {});

  // One request/response round trip from client `client` (call on a thread
  // of that client's process). `req_len` in [8, req_bytes]. Returns kOk once
  // the completion arrived; kCalleeFailed when every retry was exhausted or
  // the client's planes broke.
  // NOLINT-DIPC(DEADLINE-THREAD): the per-attempt deadline is policy carried
  // by FabricConfig::call_deadline, not a per-call parameter — retry/backoff
  // needs one consistent bound across attempts.
  sim::Task<base::Status> Call(os::Env env, uint32_t client, uint64_t req_len);

  // Worker-side serve loop for one (client, worker) pair; spawn it on a
  // thread of worker w's *current* process (and again after every rebind).
  // Exits when either plane fails for this endpoint.
  sim::Task<void> Serve(os::Env env, uint32_t client, uint32_t worker, Handler handler);

  // Spawns client c's completion dispatcher thread (named "fabric-disp").
  void StartDispatcher(uint32_t client);
  void StartAllDispatchers();

  // Supervisor respawn: rebind worker w's endpoints on every live client
  // plane to `proc`. Best-effort across broken (dead-client) planes.
  base::Status RebindWorker(uint32_t worker, os::Process& proc);

  // Stops Call/Serve loops and closes every plane (orderly).
  void Close();

  // ---- Introspection ----
  uint32_t client_count() const { return static_cast<uint32_t>(client_procs_.size()); }
  uint32_t worker_count() const { return static_cast<uint32_t>(worker_procs_.size()); }
  // Worker liveness as seen by the first live client plane.
  bool worker_alive(uint32_t w) const;
  // True when some live client plane has undelivered work at worker w.
  bool WorkerOutstanding(uint32_t w) const;
  // Requests worker slot w completed, ever (rebinds keep the counter) — the
  // supervisor's wedge heuristic diffs this between heartbeats.
  uint64_t WorkerProgress(uint32_t w) const { return progress_[w]; }
  // True once client c's planes are unusable (its process died).
  bool client_broken(uint32_t c) const;
  uint64_t calls() const { return calls_; }
  uint64_t completions() const { return completed_; }
  uint64_t retries() const { return retried_; }
  uint64_t failures() const { return failed_; }
  uint64_t duplicate_completions() const { return duplicates_; }
  uint64_t worker_rebinds() const { return rebinds_; }
  const FabricConfig& config() const { return cfg_; }
  uint32_t obs_id() const { return obs_id_; }
  // Plane access (tests / stress harness).
  const std::shared_ptr<chan::FanOutChannel>& request_plane(uint32_t c) const {
    return req_[c];
  }
  const std::shared_ptr<chan::FanInChannel>& response_plane(uint32_t c) const {
    return resp_[c];
  }

 private:
  ServiceFabric(core::Dipc& dipc, std::span<os::Process* const> clients,
                std::span<os::Process* const> workers, FabricConfig cfg);
  void RegisterMetrics();

  core::Dipc& dipc_;
  os::Kernel& kernel_;
  std::vector<os::Process*> client_procs_;
  std::vector<os::Process*> worker_procs_;  // current incarnations
  FabricConfig cfg_;
  std::vector<std::shared_ptr<chan::FanOutChannel>> req_;  // per client
  std::vector<std::shared_ptr<chan::FanInChannel>> resp_;  // per client
  bool stopped_ = false;
  // Opid-matched completion delivery (fabric-wide unique opids). The map is
  // the one fabric structure shared between caller and dispatcher coroutine
  // contexts; its mutex is held only across map lookups/updates — never
  // across a co_await (Post happens on a handle copied out under the lock).
  uint64_t next_opid_ = 0;
  mutable base::Mutex completions_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<os::Semaphore>> completions_
      DIPC_GUARDED_BY(completions_mu_);
  std::vector<uint64_t> progress_;  // per worker slot
  uint64_t calls_ = 0;
  uint64_t completed_ = 0;
  uint64_t retried_ = 0;
  uint64_t failed_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t rebinds_ = 0;
  uint32_t obs_id_ = 0;
  obs::Counter* m_calls_ = nullptr;
  obs::Counter* m_completions_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_rebinds_ = nullptr;
  obs::Histogram* m_call_ns_ = nullptr;
};

}  // namespace dipc::fabric

#endif  // DIPC_FABRIC_FABRIC_H_
