// M-producer / one-consumer fan-in channels with per-producer capability
// grants and per-producer credit lines.
//
// The mirror image of FanOutChannel (fanout.h): the paper's server tiers
// are fed from many client domains at once, so the descriptor plane needs
// the N->1 shape — many producers publishing into one consumer's FIFO —
// with the same zero-copy ownership-transfer semantics as Channel:
//
//   - Message buffers live in one data domain shared by the group; the
//     descriptor FIFO is a single MpmcQueue (natively multi-producer), so
//     the consumer drains one ring no matter how many producers feed it.
//   - Each producer holds its *own* epoch-rebindable write capability per
//     slot (its own revocation counters, tagged with a per-producer owner
//     key in the RevocationTable). Revoking one producer never touches
//     another's grants: a dead producer is excised individually via the
//     core::Dipc death hook — its acquired-but-unsent slots return to the
//     pool, its published messages stay deliverable (the payload is
//     immutable and consumer-owned by then) — and the group keeps flowing.
//   - Flow control is credit-based *per producer*: each producer starts
//     with `credits` admission credits, AcquireBuf consumes one per slot,
//     the consumer's ReleaseBatch returns them. One greedy (or dead)
//     producer can therefore pin at most its own credit line of the shared
//     pool and can never starve or wedge the rest of the group.
//   - The consumer's read capabilities are epoch-rebindable per slot and
//     tagged with a consumer owner key; consumer death breaks the whole
//     channel (there is nobody left to deliver to).
//
// RebindProducer mirrors FanOutChannel::RebindReceiver: a supervisor can
// splice a fresh process into a dead producer slot — fresh owner key,
// cleared capability templates, a full credit line, APL grants — without
// disturbing in-flight traffic from the other producers.
#ifndef DIPC_CHAN_FANIN_H_
#define DIPC_CHAN_FANIN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "base/result.h"
#include "chan/channel.h"
#include "chan/mpmc_queue.h"
#include "chan/segment.h"
#include "codoms/capability.h"
#include "dipc/dipc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

struct FanInConfig {
  uint32_t slots = 8;            // in-flight message buffers (shared pool)
  uint64_t buf_bytes = 1 << 16;  // payload capacity per buffer
  // Per-producer credit line (0 = slots). A producer can hold at most this
  // many slots of the shared pool at once (acquired or unreleased), which is
  // what keeps one flooding producer from starving the rest — set it below
  // `slots` whenever producers are mutually untrusted.
  uint32_t credits = 0;
  // Optional shared domain-tag trio (see ChannelConfig).
  hw::DomainTag ctrl_tag = hw::kInvalidDomainTag;
  hw::DomainTag data_tag = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag = hw::kInvalidDomainTag;
};

class FanInChannel : public std::enable_shared_from_this<FanInChannel> {
 public:
  static constexpr uint32_t kSenderCapReg = Channel::kSenderCapReg;
  static constexpr uint32_t kReceiverCapReg = Channel::kReceiverCapReg;

  // Creates a {producers} -> consumer fan-in channel in `dipc`'s global VAS
  // and registers dead-peer teardown for every endpoint process.
  static base::Result<std::shared_ptr<FanInChannel>> Create(
      core::Dipc& dipc, std::span<os::Process* const> producers, os::Process& consumer,
      FanInConfig cfg = {});

  // ---- Producer side (every call names the producer index) ----

  // Credit-gated batched acquire: blocks until producer `p` has admission
  // credit, then pops up to min(max_n, credits) free buffers and grants p's
  // write capabilities (epoch rebind on the warm path). A finite `deadline`
  // bounds both the credit wait and the free-pool pop with kTimedOut (no
  // credits consumed and no grants held on a timeout).
  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env, uint32_t producer,
                                              os::Deadline deadline = {});
  sim::Task<base::Result<std::vector<SendBuf>>> AcquireBufBatch(os::Env env, uint32_t producer,
                                                                uint32_t max_n,
                                                                os::Deadline deadline = {});

  // Publish: the consumer gets a read-only capability over the (immutable)
  // payload; the producer's write ownership ends before the consumer can
  // observe the descriptor. Never blocks for queue space (admission credit
  // was already paid at acquire). Fails with kCalleeFailed once the consumer
  // is gone.
  //
  // Ownership contract on failure: while broken() == kOk the producer still
  // owns every buffer of a failed send and may retry or hand it back with
  // AbandonBufBatch. Once broken() != kOk teardown has already swept the
  // grants and the buffers are gone with the channel.
  sim::Task<base::Status> Send(os::Env env, uint32_t producer, const SendBuf& buf,
                               uint64_t len);
  sim::Task<base::Status> SendBatch(os::Env env, uint32_t producer,
                                    std::span<const SendItem> items);

  // Returns acquired-but-unsent buffers to the free pool (revoking the write
  // grants and refunding the admission credits).
  sim::Task<base::Status> AbandonBuf(os::Env env, uint32_t producer, const SendBuf& buf);
  sim::Task<base::Status> AbandonBufBatch(os::Env env, uint32_t producer,
                                          std::span<const SendBuf> bufs);

  void BindSendCap(os::Thread& t, const SendBuf& buf) const;

  // Orderly shutdown: the consumer drains, then sees kBrokenChannel.
  void Close();

  // ---- Consumer side ----

  sim::Task<base::Result<Msg>> Recv(os::Env env, os::Deadline deadline = {});
  sim::Task<base::Result<std::vector<Msg>>> RecvBatch(os::Env env, uint32_t max_n,
                                                      os::Deadline deadline = {});

  // Returns the slot to the free pool and the admission credit to the
  // producer that sent it (wake-suppressed credit wake, like fan-out).
  sim::Task<base::Status> Release(os::Env env, const Msg& msg);
  sim::Task<base::Status> ReleaseBatch(os::Env env, std::span<const Msg> msgs);

  void BindRecvCap(os::Thread& t, const Msg& msg) const;

  // ---- Introspection ----

  uint32_t producer_count() const { return static_cast<uint32_t>(producer_procs_.size()); }
  uint32_t live_producer_count() const;
  bool producer_alive(uint32_t p) const { return p < alive_.size() && alive_[p]; }
  uint32_t credit_line() const { return credit_line_; }
  uint64_t credits(uint32_t p) const { return credits_[p]; }
  // RevocationTable owner key of producer p's write grants (test support).
  uint64_t producer_owner(uint32_t p) const { return owner_key_[p]; }
  // RevocationTable owner key of the consumer's read grants.
  uint64_t consumer_owner() const { return consumer_owner_key_; }
  const FanInConfig& config() const { return cfg_; }
  base::ErrorCode broken() const { return broken_; }
  uint64_t sends() const { return sends_; }
  uint64_t recvs() const { return recvs_; }
  uint64_t cold_mints() const { return cold_mints_; }
  uint64_t blocked_on_credit() const { return blocked_on_credit_; }
  uint64_t LiveGrantCount() const;
  hw::VirtAddr buf_va(uint32_t index) const { return data_seg_.base + index * buf_stride_; }
  // Id under which this group's metrics ("fanin/<id>/...", per-producer
  // "tx/<p>/...") and trace events are attributed.
  uint32_t obs_id() const { return obs_id_; }

  // Dead-peer teardown (fired via the core::Dipc death hook). A dead
  // producer is excised individually; a dead consumer breaks the channel.
  void OnProcessDeath(os::Process& proc);

  // Rebinds a dead producer slot to a fresh process (the supervisor's
  // respawn path); mirrors FanOutChannel::RebindReceiver. The slot gets a
  // fresh RevocationTable owner key, cleared write templates, a full credit
  // line and APL grants for `proc`. Late releases of the dead incarnation's
  // in-flight messages are detected by owner-key generation and do NOT
  // refund the fresh incarnation's credits.
  base::Status RebindProducer(uint32_t producer, os::Process& proc);

 private:
  FanInChannel(core::Dipc& dipc, std::span<os::Process* const> producers,
               os::Process& consumer, FanInConfig cfg);

  // Waits (futex path) until producer `p` has `need` credits, the channel
  // closes/breaks, or p itself is excised. Returns the error to surface, or
  // kOk once admitted; kTimedOut when a finite deadline expires first.
  sim::Task<base::ErrorCode> AwaitCredit(os::Env env, uint32_t p, uint64_t need,
                                         os::Deadline deadline);
  // Grant over slot `index`: kWrite mints/rebinds producer p's template
  // (counter tagged with p's owner key); kRead the consumer's (tagged with
  // the consumer owner key, `p` ignored).
  base::Result<codoms::Capability> GrantCap(os::Env env, uint32_t index, uint32_t p,
                                            codoms::Perm rights, sim::Duration* cost);
  // Revokes the consumer's grant over `index`, recycles the slot and refunds
  // the admission credit to the sending producer — unless that incarnation
  // is gone (owner-key generation mismatch). Teardown-safe (no env).
  void DropDelivery(uint32_t index, std::vector<uint64_t>* freed);
  // Refunds `n` credits to producer p (gauge + waiter wake bookkeeping is
  // the caller's).
  void RefundCredits(uint32_t p, uint64_t n);

  hw::VirtAddr CapSlotVa(uint32_t index) const {
    return cap_seg_.base + uint64_t{index} * codoms::kCapMemBytes;
  }

  os::Kernel& kernel_;
  std::vector<os::Process*> producer_procs_;
  os::Process* consumer_proc_;
  FanInConfig cfg_;
  uint64_t buf_stride_ = 0;
  uint32_t credit_line_ = 0;  // cfg_.credits resolved against cfg_.slots
  hw::DomainTag ctrl_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag data_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag_ = hw::kInvalidDomainTag;
  Segment data_seg_;
  Segment cap_seg_;  // one capability-storage slot per buffer (one consumer)
  std::unique_ptr<MpmcQueue> free_;
  std::unique_ptr<MpmcQueue> desc_;  // single consumer FIFO, M producers push
  // Producer-side in-flight write caps + per-(producer, slot) templates.
  std::vector<std::optional<codoms::Capability>> sender_caps_;
  std::vector<std::vector<std::optional<codoms::Capability>>> wcap_tmpl_;  // [p][slot]
  // Per-slot trace-context side-band (chan/desc.h): stamped at publish,
  // read at RecvBatch; slot ownership moves with the descriptor.
  std::vector<uint64_t> tctx_;
  // Which producer currently holds / sent each slot, and under which
  // owner-key generation (guards credit refunds across RebindProducer).
  std::vector<uint32_t> slot_owner_;
  std::vector<uint64_t> slot_owner_key_;
  // Consumer-side in-flight read caps + per-slot templates.
  std::vector<std::optional<codoms::Capability>> rcaps_;
  std::vector<std::optional<codoms::Capability>> rcap_tmpl_;
  std::vector<uint64_t> credits_;    // per producer
  std::vector<bool> alive_;          // per producer
  std::vector<uint64_t> owner_key_;  // per producer RevocationTable owner
  uint64_t consumer_owner_key_ = 0;
  os::WaitQueue credit_waiters_;
  uint64_t credit_wait_count_ = 0;  // live waiter counter (wake suppression)
  bool closed_ = false;
  base::ErrorCode broken_ = base::ErrorCode::kOk;
  uint64_t sends_ = 0;
  uint64_t recvs_ = 0;
  uint64_t cold_mints_ = 0;
  uint64_t blocked_on_credit_ = 0;
  // Registry handles ("fanin/<id>/..." plus per-producer "tx/<p>/...");
  // registered once in Create, the getters above stay the source of truth.
  void RegisterMetrics();
  uint32_t obs_id_ = 0;
  obs::Counter* m_sends_ = nullptr;
  obs::Counter* m_recvs_ = nullptr;
  obs::Counter* m_blocked_on_credit_ = nullptr;
  std::vector<obs::Counter*> m_tx_sends_;
  std::vector<obs::Gauge*> m_tx_credits_;
  std::vector<obs::Histogram*> m_tx_stall_ns_;
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_FANIN_H_
