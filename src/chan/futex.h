// Futex-style block/wake for the user-level channel primitives.
//
// The uncontended paths of the ring/queue/channel never enter the kernel;
// these helpers model the contended slow path: FUTEX_WAIT (syscall + kernel
// futex work + park on a FIFO wait queue) and FUTEX_WAKE (syscall + kernel
// work + IPI when the waiter sits on another CPU). Costs mirror
// os::Semaphore so the channel's blocking behavior stays calibrated to the
// same §2.2 anchors.
#ifndef DIPC_CHAN_FUTEX_H_
#define DIPC_CHAN_FUTEX_H_

#include "os/kernel.h"
#include "os/semaphore.h"
#include "sim/task.h"

namespace dipc::chan {

// Parks the calling thread on `q` through the futex wait path — unless
// `still_blocked()` turned false while entering the kernel (the futex value
// re-check, cf. os::Semaphore::Wait: a wake issued in that window finds no
// parked thread, so parking anyway would lose it and deadlock). The caller
// re-checks its predicate after resumption (standard futex loop).
template <typename Pred>
inline sim::Task<void> FutexBlock(os::Env env, os::WaitQueue& q, Pred still_blocked) {
  os::Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWaitKernel, os::TimeCat::kKernel);
  if (still_blocked()) {
    co_await q.Wait(env);
  }
  co_await k.SyscallExit(env);
}

// Wakes one thread parked on `q`, if any, paying the futex wake syscall and
// any cross-CPU IPI cost on the waker's side.
inline sim::Task<void> FutexWakeOne(os::Env env, os::WaitQueue& q) {
  os::Kernel& k = *env.kernel;
  os::Thread* waiter = q.WakeOneThread();
  if (waiter == nullptr) {
    co_return;
  }
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWakeKernel, os::TimeCat::kKernel);
  sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
  if (ipi > sim::Duration::Zero()) {
    co_await k.Spend(*env.self, ipi, os::TimeCat::kKernel);
  }
  co_await k.SyscallExit(env);
}

// Wake-suppressed flavor: the caller already consulted a user-level waiter
// counter and committed to waking, so the FUTEX_WAKE syscall cost is paid
// unconditionally — exactly like a real futex, where the kernel cannot be
// asked for free whether anyone is parked. When the race left nobody parked
// (the waiter was still entering the kernel), the wake is wasted but not
// lost: the waiter re-checks its predicate before parking (FutexBlock).
inline sim::Task<void> FutexWakeCommitted(os::Env env, os::WaitQueue& q) {
  os::Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWakeKernel, os::TimeCat::kKernel);
  os::Thread* waiter = q.WakeOneThread();
  if (waiter != nullptr) {
    sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
    if (ipi > sim::Duration::Zero()) {
      co_await k.Spend(*env.self, ipi, os::TimeCat::kKernel);
    }
  }
  co_await k.SyscallExit(env);
}

}  // namespace dipc::chan

#endif  // DIPC_CHAN_FUTEX_H_
