// Futex-style block/wake for the user-level channel primitives.
//
// The uncontended paths of the ring/queue/channel never enter the kernel;
// these helpers model the contended slow path: FUTEX_WAIT (syscall + kernel
// futex work + park on a FIFO wait queue) and FUTEX_WAKE (syscall + kernel
// work + IPI when the waiter sits on another CPU). Costs mirror
// os::Semaphore so the channel's blocking behavior stays calibrated to the
// same §2.2 anchors.
#ifndef DIPC_CHAN_FUTEX_H_
#define DIPC_CHAN_FUTEX_H_

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "os/semaphore.h"
#include "sim/task.h"

namespace dipc::chan {

// FUTEX_WAIT with an absolute timeout (the timed flavor real futexes have).
// Parks the calling thread on `q` through the futex wait path — unless
// `still_blocked()` turned false while entering the kernel (the futex value
// re-check, cf. os::Semaphore::Wait: a wake issued in that window finds no
// parked thread, so parking anyway would lose it and deadlock). A finite
// deadline arms an EventQueue timer that pulls the thread off the queue and
// resumes it when it fires first; co_returns true iff the park timed out.
// The caller re-checks its predicate after resumption either way (standard
// futex loop) — a true return is a hint, not a verdict, because a wake and
// the timer can land on the same picosecond.
template <typename Pred>
inline sim::Task<bool> FutexBlockUntil(os::Env env, os::WaitQueue& q, os::Deadline deadline,
                                       Pred still_blocked) {
  os::Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWaitKernel, os::TimeCat::kKernel);
  {
    fault::Decision d = DIPC_FAULT_POINT(kFutexPark, env.self->last_cpu());
    if (d.action == fault::Action::kDelay) {
      co_await k.Spend(*env.self, d.delay, os::TimeCat::kKernel);
    }
  }
  bool timed_out = false;
  if (still_blocked()) {
    if (deadline.ExpiredAt(k.now())) {
      timed_out = true;  // ETIMEDOUT without parking, like FUTEX_WAIT
    } else {
      // Park telemetry: global parked-thread gauge, queue-length instant,
      // and the parked interval billed to the domain as futex-wait time
      // (blocked time — deliberately outside the CPU-time categories).
      obs::Gauge* waiters_gauge = obs::Registry::Default().GetGauge("os/sched/futex_waiters");
      waiters_gauge->Add(1);
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexQDepth, /*obj=*/0,
                          static_cast<uint64_t>(q.size() + 1), k.now());
      const sim::Time park_start = k.now();
      if (deadline.never()) {
        co_await q.Wait(env);
      } else {
        // The timer only acts if the thread is still parked on `q`: a normal
        // wake at the same instant wins (FIFO event order) and Remove returns
        // false. MakeRunnable on a thread killed while parked is a safe no-op,
        // and the coroutine frame outlives the kill (kernel keeps
        // Thread::task_ until teardown), so capturing frame locals by
        // reference is sound.
        bool timer_fired = false;
        os::Thread* self = env.self;
        sim::EventId timer = k.machine().events().ScheduleAt(
            deadline.at(), [&k, &q, self, &timer_fired] {
              if (q.Remove(self)) {
                timer_fired = true;
                (void)k.MakeRunnable(*self, std::nullopt);
              }
            });
        co_await q.Wait(env);
        if (timer_fired) {
          timed_out = true;
        } else {
          (void)k.machine().events().Cancel(timer);
        }
      }
      waiters_gauge->Sub(1);
      obs::ChargeDomainTime(static_cast<uint32_t>(env.self->cap_ctx().current_domain),
                            obs::DomainTimeKind::kFutexWait, (k.now() - park_start).picos());
    }
  }
  co_await k.SyscallExit(env);
  co_return timed_out;
}

// Untimed flavor: the historical API, now a never-deadline park.
// NOLINT-DIPC(DEADLINE-THREAD): this IS the never-deadline adapter over
// FutexBlockUntil; blocking APIs that want a bound take one and call that.
template <typename Pred>
inline sim::Task<void> FutexBlock(os::Env env, os::WaitQueue& q, Pred still_blocked) {
  (void)co_await FutexBlockUntil(env, q, os::Deadline::Never(), still_blocked);
}

// Wakes one thread parked on `q`, if any, paying the futex wake syscall and
// any cross-CPU IPI cost on the waker's side.
inline sim::Task<void> FutexWakeOne(os::Env env, os::WaitQueue& q) {
  os::Kernel& k = *env.kernel;
  os::Thread* waiter = q.WakeOneThread();
  if (waiter == nullptr) {
    co_return;
  }
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWakeKernel, os::TimeCat::kKernel);
  sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
  if (ipi > sim::Duration::Zero()) {
    co_await k.Spend(*env.self, ipi, os::TimeCat::kKernel);
  }
  co_await k.SyscallExit(env);
}

// Wake-suppressed flavor: the caller already consulted a user-level waiter
// counter and committed to waking, so the FUTEX_WAKE syscall cost is paid
// unconditionally — exactly like a real futex, where the kernel cannot be
// asked for free whether anyone is parked. When the race left nobody parked
// (the waiter was still entering the kernel), the wake is wasted but not
// lost: the waiter re-checks its predicate before parking (FutexBlock).
inline sim::Task<void> FutexWakeCommitted(os::Env env, os::WaitQueue& q) {
  os::Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, os::Semaphore::kFutexWakeKernel, os::TimeCat::kKernel);
  os::Thread* waiter = q.WakeOneThread();
  if (waiter != nullptr) {
    sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
    if (ipi > sim::Duration::Zero()) {
      co_await k.Spend(*env.self, ipi, os::TimeCat::kKernel);
    }
  }
  co_await k.SyscallExit(env);
}

}  // namespace dipc::chan

#endif  // DIPC_CHAN_FUTEX_H_
