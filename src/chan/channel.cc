#include "chan/channel.h"

#include <algorithm>

#include "chan/desc.h"
#include "chan/futex.h"
#include "fault/fault.h"

namespace dipc::chan {

using internal::ClearRegIfHolds;
using internal::DescIndex;
using internal::DescLen;
using internal::kLenMask;
using internal::kMaxSlots;
using internal::PackDesc;
using os::TimeCat;

Channel::Channel(core::Dipc& dipc, os::Process& sender, os::Process& receiver, ChannelConfig cfg)
    : kernel_(dipc.kernel()), sender_proc_(&sender), receiver_proc_(&receiver), cfg_(cfg) {}

base::Result<std::shared_ptr<Channel>> Channel::Create(core::Dipc& dipc, os::Process& sender,
                                                       os::Process& receiver, ChannelConfig cfg) {
  if (cfg.slots == 0 || cfg.slots > kMaxSlots || cfg.buf_bytes == 0 ||
      cfg.buf_bytes > kLenMask) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (!sender.dipc_enabled() || !receiver.dipc_enabled()) {
    // The zero-copy path needs the shared page table of the global VAS.
    return base::ErrorCode::kNotSupported;
  }
  os::Kernel& kernel = dipc.kernel();
  auto ch = std::shared_ptr<Channel>(new Channel(dipc, sender, receiver, cfg));
  codoms::AplTable& apl = kernel.codoms().apl_table();
  ch->ctrl_tag_ = cfg.ctrl_tag != hw::kInvalidDomainTag ? cfg.ctrl_tag : apl.AllocateTag();
  ch->data_tag_ = cfg.data_tag != hw::kInvalidDomainTag ? cfg.data_tag : apl.AllocateTag();
  ch->rt_tag_ = cfg.rt_tag != hw::kInvalidDomainTag ? cfg.rt_tag : apl.AllocateTag();
  // One-time APL setup (creation is rare; per-message paths never touch
  // APLs, so APL-cache entries stay warm): both endpoints may use the
  // control segment, both may *call into* the runtime domain, and only the
  // runtime domain reaches the data domain.
  apl.Grant(sender.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(receiver.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(sender.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  apl.Grant(receiver.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  apl.Grant(ch->rt_tag_, ch->data_tag_, codoms::Perm::kWrite);

  ch->buf_stride_ = hw::PageRoundUp(cfg.buf_bytes);
  auto data = MapSegment(kernel, sender, ch->buf_stride_ * cfg.slots, ch->data_tag_);
  if (!data.ok()) {
    return data.code();
  }
  ch->data_seg_ = data.value();
  auto caps = MapSegment(kernel, sender, uint64_t{cfg.slots} * codoms::kCapMemBytes,
                         ch->ctrl_tag_, /*cap_storage=*/true);
  if (!caps.ok()) {
    return caps.code();
  }
  ch->cap_seg_ = caps.value();
  ch->RegisterMetrics();
  const std::string prefix = "chan/" + std::to_string(ch->obs_id_);
  ch->desc_ = std::make_unique<MpmcQueue>(kernel, sender, cfg.slots, ch->ctrl_tag_,
                                          prefix + "/desc", ch->obs_id_);
  ch->free_ = std::make_unique<MpmcQueue>(kernel, sender, cfg.slots, ch->ctrl_tag_,
                                          prefix + "/free", ch->obs_id_);
  for (uint32_t i = 0; i < cfg.slots; ++i) {
    ch->free_->Prime(i);
  }
  ch->sender_caps_.resize(cfg.slots);
  ch->receiver_caps_.resize(cfg.slots);
  ch->wcap_tmpl_.resize(cfg.slots);
  ch->rcap_tmpl_.resize(cfg.slots);
  ch->tctx_.resize(cfg.slots, 0);

  std::weak_ptr<Channel> weak = ch;
  dipc.AddDeathHook([weak](os::Process& dead) {
    auto live = weak.lock();
    if (live == nullptr) {
      return false;  // channel gone: unregister the hook
    }
    live->OnProcessDeath(dead);
    return true;
  });
  return ch;
}

void Channel::RegisterMetrics() {
  obs_id_ = obs::NewObjectId();
  const std::string p = "chan/" + std::to_string(obs_id_) + "/";
  obs::Registry& reg = obs::Registry::Default();
  m_sends_ = reg.GetCounter(p + "sends");
  m_recvs_ = reg.GetCounter(p + "recvs");
  m_acquires_ = reg.GetCounter(p + "acquires");
  m_releases_ = reg.GetCounter(p + "releases");
  m_cold_mints_ = reg.GetCounter(p + "cold_mints");
  m_rebinds_ = reg.GetCounter(p + "rebinds");
  m_revokes_ = reg.GetCounter(p + "revokes");
  m_send_batch_ = reg.GetHistogram(p + "send_batch");
  m_recv_batch_ = reg.GetHistogram(p + "recv_batch");
}

base::Result<codoms::Capability> Channel::GrantCap(os::Env env, uint32_t index,
                                                   codoms::Perm rights, sim::Duration* cost) {
  const bool write = rights == codoms::Perm::kWrite;
  std::optional<codoms::Capability>& tmpl = write ? wcap_tmpl_[index] : rcap_tmpl_[index];
  codoms::ThreadCapContext& ctx = env.self->cap_ctx();
  hw::DomainTag saved = ctx.current_domain;
  ctx.current_domain = rt_tag_;
  sim::Duration c;
  base::Result<codoms::Capability> cap = base::ErrorCode::kFault;
  obs::TraceRing& tr = obs::Trace();
  if (tmpl.has_value()) {
    // Warm path: re-snapshot the cached capability against its counter —
    // no mint, no APL traversal (§4.2 revocation counters as an ownership
    // rotation mechanism).
    cap = env.kernel->codoms().CapRebind(*tmpl, ctx, &c);
    m_rebinds_->Add();
    c += tr.event_cost();
    tr.Record(env.self->last_cpu(), obs::EventType::kCapRebind, obs_id_, index,
              env.kernel->now());
  } else {
    // Cold path, once per slot per direction: full mint through the
    // runtime's APL grant over the data domain.
    ++cold_mints_;
    m_cold_mints_->Add();
    c += tr.event_cost();
    tr.Record(env.self->last_cpu(), obs::EventType::kCapMint, obs_id_, index,
              env.kernel->now());
    cap = env.kernel->codoms().CapFromApl(env.self->last_cpu(),
                                          env.self->process().page_table(), ctx, buf_va(index),
                                          buf_stride_, rights, codoms::CapType::kAsync, &c);
  }
  ctx.current_domain = saved;
  *cost += c;
  if (cap.ok()) {
    tmpl = cap.value();
  }
  return cap;
}

sim::Task<base::Result<SendBuf>> Channel::AcquireBuf(os::Env env, os::Deadline deadline) {
  auto batch = co_await AcquireBufBatch(env, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<SendBuf>>> Channel::AcquireBufBatch(os::Env env,
                                                                       uint32_t max_n,
                                                                       os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  std::vector<uint64_t> indices(std::min<uint32_t>(max_n, cfg_.slots));
  auto popped = co_await free_->PopN(env, std::span(indices), deadline);
  if (!popped.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
  }
  indices.resize(popped.value());
  // One cross-domain call into the runtime covers the whole batch.
  sim::Duration cost = k.costs().function_call + k.costs().domain_switch * 2;
  std::vector<codoms::Capability> caps;
  caps.reserve(indices.size());
  for (uint64_t idx : indices) {
    auto cap = GrantCap(env, static_cast<uint32_t>(idx), codoms::Perm::kWrite, &cost);
    if (!cap.ok()) {
      // Undo: revoke what was granted and return every slot to the pool.
      for (const auto& granted : caps) {
        DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
      }
      (void)co_await free_->PushN(env, std::span(indices));  // don't leak the slots
      co_return cap.code();
    }
    caps.push_back(cap.value());
  }
  m_acquires_->Add(indices.size());
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kAcquireBatch, obs_id_,
                      indices.size(), k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend: teardown has already swept
    // sender_caps_, so recording the grants now would leave them unrevoked
    // forever. Revoke them ourselves and surface the crash.
    for (const auto& granted : caps) {
      DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
    }
    co_return broken_;
  }
  std::vector<SendBuf> out;
  out.reserve(indices.size());
  for (size_t j = 0; j < indices.size(); ++j) {
    auto index = static_cast<uint32_t>(indices[j]);
    sender_caps_[index] = caps[j];
    out.push_back(SendBuf{buf_va(index), cfg_.buf_bytes, index});
  }
  env.self->cap_ctx().regs.Set(kSenderCapReg, caps.back());
  co_return out;
}

void Channel::BindSendCap(os::Thread& t, const SendBuf& buf) const {
  if (buf.index < cfg_.slots && sender_caps_[buf.index].has_value()) {
    t.cap_ctx().regs.Set(kSenderCapReg, *sender_caps_[buf.index]);
  }
}

void Channel::BindRecvCap(os::Thread& t, const Msg& msg) const {
  if (msg.index < cfg_.slots && receiver_caps_[msg.index].has_value()) {
    t.cap_ctx().regs.Set(kReceiverCapReg, *receiver_caps_[msg.index]);
  }
}

sim::Task<base::Status> Channel::Send(os::Env env, const SendBuf& buf, uint64_t len,
                                      os::Deadline deadline) {
  SendItem item{buf, len};
  co_return co_await SendBatch(env, std::span(&item, 1), deadline);
}

sim::Task<base::Status> Channel::SendBatch(os::Env env, std::span<const SendItem> items,
                                           os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  sim::Duration fault_delay;
  {
    // Probed before the broken_ check so a scripted "kill at the Nth send"
    // surfaces through the regular dead-peer path on this very call.
    fault::Decision d = DIPC_FAULT_POINT(kChanSend, env.self->last_cpu());
    if (d.fail()) {
      co_return base::ErrorCode::kFault;
    }
    if (d.action == fault::Action::kDelay) {
      fault_delay = d.delay;
    }
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (items.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  // Pairwise duplicate check: batches are small (<= slots, typically <= 64),
  // so O(N^2) beats allocating an O(slots) table on every Send (N=1 is the
  // single-message hot path and must stay allocation-light).
  for (size_t j = 0; j < items.size(); ++j) {
    const SendItem& it = items[j];
    if (it.buf.index >= cfg_.slots || it.len == 0 || it.len > cfg_.buf_bytes ||
        !sender_caps_[it.buf.index].has_value()) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (items[i].buf.index == it.buf.index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  // One fast-path charge and one runtime entry for the whole batch.
  sim::Duration cost = cm.chan_fast_path + cm.function_call + cm.domain_switch * 2 + fault_delay;
  // Phase 1 (no suspension): grant the read-only views (immutability: a
  // published message can never be modified again, by anyone) and publish
  // them through the capability-storage descriptor slots. An error here
  // leaves the sender owning every buffer — nothing leaks, nothing moves.
  std::vector<codoms::Capability> rcaps;
  rcaps.reserve(items.size());
  for (const SendItem& it : items) {
    auto rcap = GrantCap(env, it.buf.index, codoms::Perm::kRead, &cost);
    if (!rcap.ok()) {
      for (const auto& granted : rcaps) {
        DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
      }
      co_return rcap.code();
    }
    sim::Duration store_cost;
    base::Status stored = k.codoms().CapStore(env.self->process().page_table(),
                                              env.self->cap_ctx(), CapSlotVa(it.buf.index),
                                              rcap.value(), &store_cost);
    if (!stored.ok()) {
      // The minted read grants are not yet referenced anywhere; revoke them
      // so no unreachable-but-valid capability over the buffers leaks.
      DIPC_CHECK(k.codoms().CapRevoke(rcap.value()).ok());
      for (const auto& granted : rcaps) {
        DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
      }
      co_return stored;
    }
    cost += store_cost;
    rcaps.push_back(rcap.value());
  }
  // Move semantics: the sender's ownership of the whole batch ends *before*
  // the receiver can observe any of it (the descriptor push below is what
  // publishes). Revocation is one unprivileged counter bump per buffer.
  for (const SendItem& it : items) {
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[it.buf.index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[it.buf.index]).ok());
    cost += cm.cap_revoke;
    sender_caps_[it.buf.index].reset();
  }
  m_revokes_->Add(items.size());
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kSendBatch, obs_id_, items.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend above: OnProcessDeath has already swept
    // receiver_caps_, so recording the rcaps now would leave live grants
    // over the data domain that teardown never sees. Revoke them ourselves.
    for (const auto& granted : rcaps) {
      DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
    }
    co_return broken_;
  }
  std::vector<uint64_t> descs;
  descs.reserve(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    receiver_caps_[items[j].buf.index] = rcaps[j];
    tctx_[items[j].buf.index] = items[j].buf.tctx;
    descs.push_back(PackDesc(items[j].buf.index, items[j].len));
  }
  uint64_t published = 0;
  auto pushed = co_await desc_->PushN(env, std::span(descs), &published, deadline);
  if (!pushed.ok()) {
    if (broken_ == base::ErrorCode::kOk) {
      // Orderly Close — or a deadline expiry — raced the publish: the
      // unpublished descriptors never reached the receiver and no teardown
      // will run, so revoke their recorded read grants here or they stay
      // live forever, and hand the orphaned buffers back to the pool so a
      // timeout doesn't shrink the channel's capacity (after Close the
      // give-back push fails harmlessly — the pool is retired anyway).
      std::vector<uint64_t> orphaned;
      for (size_t j = published; j < items.size(); ++j) {
        uint32_t index = items[j].buf.index;
        if (receiver_caps_[index].has_value()) {
          DIPC_CHECK(k.codoms().CapRevoke(*receiver_caps_[index]).ok());
          receiver_caps_[index].reset();
        }
        orphaned.push_back(index);
      }
      if (!orphaned.empty()) {
        (void)co_await free_->PushN(env, std::span(orphaned));
      }
    }
    sends_ += published;
    m_sends_->Add(published);
    m_send_batch_->Record(static_cast<double>(published));
    co_return broken_ != base::ErrorCode::kOk ? broken_ : pushed.code();
  }
  sends_ += items.size();
  m_sends_->Add(items.size());
  m_send_batch_->Record(static_cast<double>(items.size()));
  co_return base::Status::Ok();
}

sim::Task<base::Result<Msg>> Channel::Recv(os::Env env, os::Deadline deadline) {
  auto batch = co_await RecvBatch(env, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<Msg>>> Channel::RecvBatch(os::Env env, uint32_t max_n,
                                                             os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  std::vector<uint64_t> descs(std::min<uint32_t>(max_n, cfg_.slots));
  auto popped = co_await desc_->PopN(env, std::span(descs), deadline);
  if (!popped.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
  }
  descs.resize(popped.value());
  // One accounting charge covers every capability load of the batch.
  sim::Duration cost;
  std::vector<Msg> out;
  std::vector<codoms::Capability> caps;
  std::vector<uint64_t> corrupted;  // slots whose stored capability is gone
  out.reserve(descs.size());
  caps.reserve(descs.size());
  for (uint64_t desc : descs) {
    uint32_t index = DescIndex(desc);
    uint64_t len = DescLen(desc);
    sim::Duration load_cost;
    auto cap = k.codoms().CapLoad(env.self->process().page_table(), env.self->cap_ctx(),
                                  CapSlotVa(index), &load_cost);
    cost += load_cost;
    if (!cap.ok()) {
      // A plain write destroyed the stored capability (unforgeability,
      // §4.2). Dropping the whole batch here would forfeit the healthy
      // messages AND leak every popped slot from the free pool; instead the
      // corrupted slot is recycled below and the rest are delivered.
      corrupted.push_back(index);
      continue;
    }
    caps.push_back(cap.value());
    out.push_back(Msg{buf_va(index), len, index, tctx_[index]});
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kRecvBatch, obs_id_, out.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend and teardown already revoked the
    // loaded capabilities; handing the dead grants to the consumer would
    // make its payload reads fault instead of surfacing the crash.
    co_return broken_;
  }
  if (!corrupted.empty()) {
    // Recycle the corrupted slots: revoke the read grant recorded at Send
    // (nobody can ever load it again) and return the buffers to the pool.
    for (uint64_t index : corrupted) {
      if (receiver_caps_[index].has_value()) {
        DIPC_CHECK(k.codoms().CapRevoke(*receiver_caps_[index]).ok());
        receiver_caps_[index].reset();
      }
    }
    (void)co_await free_->PushN(env, std::span(corrupted));
    if (broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
  }
  if (out.empty()) {
    co_return base::ErrorCode::kFault;  // every descriptor was corrupted
  }
  env.self->cap_ctx().regs.Set(kReceiverCapReg, caps.front());
  recvs_ += out.size();
  m_recvs_->Add(out.size());
  m_recv_batch_->Record(static_cast<double>(out.size()));
  co_return out;
}

sim::Task<base::Status> Channel::Abandon(os::Env env, const SendBuf& buf) {
  co_return co_await AbandonBatch(env, std::span(&buf, 1));
}

sim::Task<base::Status> Channel::AbandonBatch(os::Env env, std::span<const SendBuf> bufs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (bufs.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  for (size_t j = 0; j < bufs.size(); ++j) {
    if (bufs[j].index >= cfg_.slots || !sender_caps_[bufs[j].index].has_value()) {
      co_return broken_ != base::ErrorCode::kOk ? broken_
                                                : base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (bufs[i].index == bufs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> indices;
  indices.reserve(bufs.size());
  for (const SendBuf& b : bufs) {
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[b.index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[b.index]).ok());
    cost += cm.cap_revoke;
    sender_caps_[b.index].reset();
    indices.push_back(b.index);
  }
  m_revokes_->Add(bufs.size());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;  // dead-peer teardown already retired the pool
  }
  auto pushed = co_await free_->PushN(env, std::span(indices));
  if (!pushed.ok()) {
    // After an orderly Close the free list is retired; the revocations
    // above are all that matters. Only dead-peer errors surface.
    co_return broken_ != base::ErrorCode::kOk ? base::Status(broken_) : base::Status::Ok();
  }
  co_return base::Status::Ok();
}

sim::Task<base::Status> Channel::Release(os::Env env, const Msg& msg) {
  co_return co_await ReleaseBatch(env, std::span(&msg, 1));
}

sim::Task<base::Status> Channel::ReleaseBatch(os::Env env, std::span<const Msg> msgs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (msgs.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  for (size_t j = 0; j < msgs.size(); ++j) {
    if (msgs[j].index >= cfg_.slots) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (msgs[i].index == msgs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  if (broken_ != base::ErrorCode::kOk) {
    // Dead-peer teardown already revoked the in-flight capabilities; a
    // crash must surface as the broken code, not as a caller bug.
    co_return broken_;
  }
  for (const Msg& msg : msgs) {
    if (!receiver_caps_[msg.index].has_value()) {
      co_return base::ErrorCode::kInvalidArgument;
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> indices;
  indices.reserve(msgs.size());
  for (const Msg& msg : msgs) {
    ClearRegIfHolds(*env.self, kReceiverCapReg, *receiver_caps_[msg.index]);
    DIPC_CHECK(k.codoms().CapRevoke(*receiver_caps_[msg.index]).ok());
    cost += cm.cap_revoke;
    receiver_caps_[msg.index].reset();
    indices.push_back(msg.index);
  }
  m_releases_->Add(msgs.size());
  m_revokes_->Add(msgs.size());
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kReleaseBatch, obs_id_, msgs.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  auto pushed = co_await free_->PushN(env, std::span(indices));
  if (!pushed.ok()) {
    // After an orderly Close the free list is retired; the revocations above
    // are all that matters. Only dead-peer errors surface.
    co_return broken_ != base::ErrorCode::kOk ? base::Status(broken_) : base::Status::Ok();
  }
  co_return base::Status::Ok();
}

void Channel::Close() {
  desc_->Close(base::ErrorCode::kBrokenChannel);
  free_->Close(base::ErrorCode::kBrokenChannel);
}

uint64_t Channel::LiveGrantCount() const {
  const codoms::RevocationTable& rt = kernel_.codoms().revocations();
  uint64_t live = 0;
  for (const auto* side : {&sender_caps_, &receiver_caps_}) {
    for (const auto& cap : *side) {
      if (cap.has_value() && rt.Epoch(cap->revocation_id) == cap->revocation_epoch) {
        ++live;
      }
    }
  }
  return live;
}

base::Result<std::shared_ptr<DuplexChannel>> DuplexChannel::Create(
    core::Dipc& dipc, os::Process& a, os::Process& b, ChannelConfig fwd,
    std::optional<ChannelConfig> rev) {
  // Both directions express the same trust relationship, so they share one
  // domain-tag trio (keeps the per-CPU APL cache warm; see ChannelConfig).
  // The trio is atomic: either the caller pins all three tags or none — a
  // partial trio would silently give the two rings different data/rt tags
  // and defeat the sharing the API promises.
  const int pinned = (fwd.ctrl_tag != hw::kInvalidDomainTag ? 1 : 0) +
                     (fwd.data_tag != hw::kInvalidDomainTag ? 1 : 0) +
                     (fwd.rt_tag != hw::kInvalidDomainTag ? 1 : 0);
  if (pinned != 0 && pinned != 3) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (pinned == 0) {
    codoms::AplTable& apl = dipc.kernel().codoms().apl_table();
    fwd.ctrl_tag = apl.AllocateTag();
    fwd.data_tag = apl.AllocateTag();
    fwd.rt_tag = apl.AllocateTag();
  }
  ChannelConfig rcfg = rev.value_or(fwd);
  rcfg.ctrl_tag = fwd.ctrl_tag;
  rcfg.data_tag = fwd.data_tag;
  rcfg.rt_tag = fwd.rt_tag;
  auto f = Channel::Create(dipc, a, b, fwd);
  if (!f.ok()) {
    return f.code();
  }
  auto r = Channel::Create(dipc, b, a, rcfg);
  if (!r.ok()) {
    return r.code();
  }
  return std::shared_ptr<DuplexChannel>(new DuplexChannel(f.value(), r.value()));
}

void Channel::OnProcessDeath(os::Process& proc) {
  if (&proc != sender_proc_ && &proc != receiver_proc_) {
    return;
  }
  if (broken_ != base::ErrorCode::kOk) {
    return;
  }
  broken_ = base::ErrorCode::kCalleeFailed;
  // KCS-style unwind: revoke every in-flight ownership capability so no
  // stale grant survives the crash, then fail both queues — blocked peers
  // wake and surface the error code. Cached templates need no sweep of
  // their own: a template not recorded in-flight is already epoch-stale
  // (its counter was bumped when ownership last rotated away), and broken_
  // gates every future rebind.
  uint64_t revoked = 0;
  for (auto* side : {&sender_caps_, &receiver_caps_}) {
    for (auto& cap : *side) {
      if (cap.has_value()) {
        DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
        cap.reset();
        ++revoked;
      }
    }
  }
  m_revokes_->Add(revoked);
  obs::Trace().Record(0, obs::EventType::kCapRevoke, obs_id_, revoked, kernel_.now());
  desc_->Fail(base::ErrorCode::kCalleeFailed);
  free_->Fail(base::ErrorCode::kCalleeFailed);
}

}  // namespace dipc::chan
