#include "chan/channel.h"

#include <algorithm>

#include "chan/futex.h"

namespace dipc::chan {

using os::TimeCat;

namespace {

// Descriptors pack {buffer index, payload length} into one queue slot.
constexpr uint64_t kLenBits = 48;
constexpr uint64_t kLenMask = (uint64_t{1} << kLenBits) - 1;
constexpr uint64_t kMaxSlots = uint64_t{1} << (64 - kLenBits);

uint64_t PackDesc(uint32_t index, uint64_t len) {
  DIPC_CHECK(len <= kLenMask);
  DIPC_CHECK(index < kMaxSlots);
  return (uint64_t{index} << kLenBits) | len;
}

// Clears `reg` only when it still holds `cap` (same mint), so a thread
// interleaving several channels doesn't lose another channel's live
// capability from its register file.
void ClearRegIfHolds(os::Thread& t, uint32_t reg, const codoms::Capability& cap) {
  const auto& held = t.cap_ctx().regs.reg(reg);
  if (held.has_value() && held->type == codoms::CapType::kAsync &&
      held->revocation_id == cap.revocation_id) {
    t.cap_ctx().regs.Clear(reg);
  }
}

}  // namespace

Channel::Channel(core::Dipc& dipc, os::Process& sender, os::Process& receiver, ChannelConfig cfg)
    : kernel_(dipc.kernel()), sender_proc_(&sender), receiver_proc_(&receiver), cfg_(cfg) {}

base::Result<std::shared_ptr<Channel>> Channel::Create(core::Dipc& dipc, os::Process& sender,
                                                       os::Process& receiver, ChannelConfig cfg) {
  if (cfg.slots == 0 || cfg.slots > kMaxSlots || cfg.buf_bytes == 0 ||
      cfg.buf_bytes > kLenMask) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (!sender.dipc_enabled() || !receiver.dipc_enabled()) {
    // The zero-copy path needs the shared page table of the global VAS.
    return base::ErrorCode::kNotSupported;
  }
  os::Kernel& kernel = dipc.kernel();
  auto ch = std::shared_ptr<Channel>(new Channel(dipc, sender, receiver, cfg));
  codoms::AplTable& apl = kernel.codoms().apl_table();
  ch->ctrl_tag_ = apl.AllocateTag();
  ch->data_tag_ = apl.AllocateTag();
  ch->rt_tag_ = apl.AllocateTag();
  // One-time APL setup (creation is rare; per-message paths never touch
  // APLs, so APL-cache entries stay warm): both endpoints may use the
  // control segment, both may *call into* the runtime domain, and only the
  // runtime domain reaches the data domain.
  apl.Grant(sender.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(receiver.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(sender.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  apl.Grant(receiver.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  apl.Grant(ch->rt_tag_, ch->data_tag_, codoms::Perm::kWrite);

  ch->buf_stride_ = hw::PageRoundUp(cfg.buf_bytes);
  auto data = MapSegment(kernel, sender, ch->buf_stride_ * cfg.slots, ch->data_tag_);
  if (!data.ok()) {
    return data.code();
  }
  ch->data_seg_ = data.value();
  auto caps = MapSegment(kernel, sender, uint64_t{cfg.slots} * codoms::kCapMemBytes,
                         ch->ctrl_tag_, /*cap_storage=*/true);
  if (!caps.ok()) {
    return caps.code();
  }
  ch->cap_seg_ = caps.value();
  ch->desc_ = std::make_unique<MpmcQueue>(kernel, sender, cfg.slots, ch->ctrl_tag_);
  ch->free_ = std::make_unique<MpmcQueue>(kernel, sender, cfg.slots, ch->ctrl_tag_);
  for (uint32_t i = 0; i < cfg.slots; ++i) {
    ch->free_->Prime(i);
  }
  ch->sender_caps_.resize(cfg.slots);
  ch->receiver_caps_.resize(cfg.slots);

  std::weak_ptr<Channel> weak = ch;
  dipc.AddDeathHook([weak](os::Process& dead) {
    auto live = weak.lock();
    if (live == nullptr) {
      return false;  // channel gone: unregister the hook
    }
    live->OnProcessDeath(dead);
    return true;
  });
  return ch;
}

base::Result<codoms::Capability> Channel::RuntimeMintCap(os::Env env, hw::VirtAddr base,
                                                         uint64_t size, codoms::Perm rights,
                                                         sim::Duration* cost) {
  codoms::ThreadCapContext& ctx = env.self->cap_ctx();
  const hw::CostModel& cm = env.kernel->costs();
  // Cross-domain call into the runtime's code and back: two implicit domain
  // switches at plain-call cost (§4: "negligible performance impact").
  *cost += cm.function_call + cm.domain_switch * 2;
  hw::DomainTag saved = ctx.current_domain;
  ctx.current_domain = rt_tag_;
  sim::Duration mint_cost;
  auto cap = env.kernel->codoms().CapFromApl(env.self->last_cpu(),
                                             env.self->process().page_table(), ctx, base, size,
                                             rights, codoms::CapType::kAsync, &mint_cost);
  ctx.current_domain = saved;
  *cost += mint_cost;
  return cap;
}

sim::Task<base::Result<SendBuf>> Channel::AcquireBuf(os::Env env) {
  os::Kernel& k = *env.kernel;
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  auto idx = co_await free_->Pop(env);
  if (!idx.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : idx.code();
  }
  auto index = static_cast<uint32_t>(idx.value());
  sim::Duration cost;
  auto cap = RuntimeMintCap(env, buf_va(index), buf_stride_, codoms::Perm::kWrite, &cost);
  if (!cap.ok()) {
    (void)co_await free_->Push(env, index);  // don't leak the slot
    co_return cap.code();
  }
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend: teardown has already swept
    // sender_caps_, so recording the grant now would leave it unrevoked
    // forever. Revoke it ourselves and surface the crash.
    DIPC_CHECK(k.codoms().CapRevoke(cap.value()).ok());
    co_return broken_;
  }
  env.self->cap_ctx().regs.Set(kSenderCapReg, cap.value());
  sender_caps_[index] = cap.value();
  co_return SendBuf{buf_va(index), cfg_.buf_bytes, index};
}

sim::Task<base::Status> Channel::Send(os::Env env, const SendBuf& buf, uint64_t len) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (buf.index >= cfg_.slots || len == 0 || len > cfg_.buf_bytes ||
      !sender_caps_[buf.index].has_value()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  sim::Duration cost = cm.chan_fast_path;
  // Mint the receiver's read-only view (immutability: a published message
  // can never be modified again, by anyone) and publish it through the
  // capability-storage descriptor slot. Errors here leave the sender owning
  // the buffer — the slot must not leak.
  auto rcap = RuntimeMintCap(env, buf.va, len, codoms::Perm::kRead, &cost);
  if (!rcap.ok()) {
    co_return rcap.code();
  }
  sim::Duration store_cost;
  base::Status stored = k.codoms().CapStore(env.self->process().page_table(),
                                            env.self->cap_ctx(), CapSlotVa(buf.index),
                                            rcap.value(), &store_cost);
  if (!stored.ok()) {
    // The minted read grant is not yet referenced anywhere; revoke it so no
    // unreachable-but-valid capability over the buffer leaks.
    DIPC_CHECK(k.codoms().CapRevoke(rcap.value()).ok());
    co_return stored;
  }
  cost += store_cost;
  // Move semantics: the sender's ownership ends *before* the receiver can
  // observe the message (the descriptor push below is what publishes it).
  // Revocation is one unprivileged counter bump.
  ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[buf.index]);
  DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[buf.index]).ok());
  cost += cm.cap_revoke;
  sender_caps_[buf.index].reset();
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend above: OnProcessDeath has already swept
    // receiver_caps_, so recording rcap now would leave a live grant over the
    // data domain that teardown never sees. Revoke it ourselves.
    DIPC_CHECK(k.codoms().CapRevoke(rcap.value()).ok());
    co_return broken_;
  }
  receiver_caps_[buf.index] = rcap.value();
  auto pushed = co_await desc_->Push(env, PackDesc(buf.index, len));
  if (!pushed.ok()) {
    if (broken_ == base::ErrorCode::kOk && receiver_caps_[buf.index].has_value()) {
      // Orderly Close raced the publish: the descriptor never reached the
      // receiver and no teardown will run, so revoke the recorded read
      // grant here or it stays live forever.
      DIPC_CHECK(k.codoms().CapRevoke(*receiver_caps_[buf.index]).ok());
      receiver_caps_[buf.index].reset();
    }
    co_return broken_ != base::ErrorCode::kOk ? broken_ : pushed.code();
  }
  ++sends_;
  co_return base::Status::Ok();
}

sim::Task<base::Result<Msg>> Channel::Recv(os::Env env) {
  os::Kernel& k = *env.kernel;
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  auto desc = co_await desc_->Pop(env);
  if (!desc.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : desc.code();
  }
  auto index = static_cast<uint32_t>(desc.value() >> kLenBits);
  uint64_t len = desc.value() & kLenMask;
  sim::Duration cost;
  auto cap = k.codoms().CapLoad(env.self->process().page_table(), env.self->cap_ctx(),
                                CapSlotVa(index), &cost);
  if (!cap.ok()) {
    co_return cap.code();
  }
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // The peer died during the Spend and teardown already revoked the
    // loaded capability; handing the dead grant to the consumer would make
    // its payload read fault instead of surfacing the crash.
    co_return broken_;
  }
  env.self->cap_ctx().regs.Set(kReceiverCapReg, cap.value());
  ++recvs_;
  co_return Msg{buf_va(index), len, index};
}

sim::Task<base::Status> Channel::Release(os::Env env, const Msg& msg) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (msg.index >= cfg_.slots) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    // Dead-peer teardown already revoked the in-flight capabilities; a
    // crash must surface as the broken code, not as a caller bug.
    co_return broken_;
  }
  if (!receiver_caps_[msg.index].has_value()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  sim::Duration cost = cm.chan_fast_path + cm.cap_revoke;
  ClearRegIfHolds(*env.self, kReceiverCapReg, *receiver_caps_[msg.index]);
  DIPC_CHECK(k.codoms().CapRevoke(*receiver_caps_[msg.index]).ok());
  receiver_caps_[msg.index].reset();
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  auto pushed = co_await free_->Push(env, msg.index);
  if (!pushed.ok()) {
    // After an orderly Close the free list is retired; the revocation above
    // is all that matters. Only dead-peer errors surface.
    co_return broken_ != base::ErrorCode::kOk ? base::Status(broken_) : base::Status::Ok();
  }
  co_return base::Status::Ok();
}

void Channel::Close() {
  desc_->Close(base::ErrorCode::kBrokenChannel);
  free_->Close(base::ErrorCode::kBrokenChannel);
}

void Channel::OnProcessDeath(os::Process& proc) {
  if (&proc != sender_proc_ && &proc != receiver_proc_) {
    return;
  }
  if (broken_ != base::ErrorCode::kOk) {
    return;
  }
  broken_ = base::ErrorCode::kCalleeFailed;
  // KCS-style unwind: revoke every in-flight ownership capability so no
  // stale grant survives the crash, then fail both queues — blocked peers
  // wake and surface the error code.
  for (auto& cap : sender_caps_) {
    if (cap.has_value()) {
      DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
      cap.reset();
    }
  }
  for (auto& cap : receiver_caps_) {
    if (cap.has_value()) {
      DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
      cap.reset();
    }
  }
  desc_->Fail(base::ErrorCode::kCalleeFailed);
  free_->Fail(base::ErrorCode::kCalleeFailed);
}

}  // namespace dipc::chan
