// MPMC slot queue in a VAS-mapped shared segment.
//
// A bounded queue of 8-byte slots (values or packed descriptors) shared by
// any number of producer/consumer threads across dIPC processes. The
// uncontended path is user-level (atomics on head/tail plus one slot
// access); full/empty block through the futex path with FIFO wakeups, which
// makes consumer scheduling fair and deterministic under the event queue.
//
// Batching: PushN/PopN move N slots per call, paying the fixed per-op
// software toll (fast-path accounting + at most one futex wake) once per
// batch instead of once per slot. Wakes are *suppressed* through live
// waiter counters kept next to the queue words (the user-level futex
// convention): a waker that reads a zero counter skips the FUTEX_WAKE
// syscall entirely, and a woken thread chains the wake onward when work or
// space remains for further parked peers, so one wake per batch is enough
// for liveness.
//
// Closing is two-flavored, mirroring pipe EOF vs. peer crash:
//   - Close(): producers fail immediately, consumers drain then see the
//     close code (orderly shutdown);
//   - Fail(code): every operation fails immediately and all blocked threads
//     wake with `code` (dead-peer teardown).
#ifndef DIPC_CHAN_MPMC_QUEUE_H_
#define DIPC_CHAN_MPMC_QUEUE_H_

#include <cstdint>
#include <span>
#include <string>

#include "base/result.h"
#include "chan/segment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

class MpmcQueue {
 public:
  static constexpr uint64_t kSlotBytes = 8;

  // Maps a `capacity`-slot segment through `proc`, tagged `tag` (callers
  // grant `tag` to every participating domain). `obs_name` prefixes the
  // queue's metrics ("<obs_name>/blocked_pushes", ...; empty picks
  // "mpmc/<fresh id>") and `obs_obj` is the trace-event object id (0
  // allocates a fresh one); owners pass their own id so queue events
  // attribute to the channel they serve.
  MpmcQueue(os::Kernel& kernel, os::Process& proc, uint32_t capacity, hw::DomainTag tag,
            std::string obs_name = {}, uint32_t obs_obj = 0);

  // Setup-time enqueue: no cost, no blocking (used to pre-fill free lists).
  void Prime(uint64_t value);

  // Teardown-time enqueue from a context with no thread Env (death hooks):
  // direct store like Prime, but additionally wakes one parked consumer so a
  // peer blocked on Pop sees the slot a dead process gave back. No cost is
  // charged (the work happens inside the kill sweep, like Close/Fail wakes).
  void PushNoEnv(uint64_t value);

  // Blocking push; fails with the close/fail code once closed. A finite
  // `deadline` bounds the full-queue park with kTimedOut.
  sim::Task<base::Status> Push(os::Env env, uint64_t value, os::Deadline deadline = {});

  // Blocking pop. After Close() it drains remaining slots, then fails with
  // the close code; after Fail() it fails immediately. A finite `deadline`
  // bounds the empty-queue park with kTimedOut.
  sim::Task<base::Result<uint64_t>> Pop(os::Env env, os::Deadline deadline = {});

  // Batched push of all of `values` (blocking for space between chunks when
  // the batch exceeds the free room). One fast-path accounting charge and at
  // most one futex wake per chunk — one per call in the common non-blocking
  // case. On failure, `*pushed` (when non-null) reports how many values were
  // published before the queue closed under the call. A finite `deadline`
  // bounds every park: an expired park where the queue is still full fails
  // with kTimedOut (partial progress reported through `*pushed`).
  sim::Task<base::Status> PushN(os::Env env, std::span<const uint64_t> values,
                                uint64_t* pushed = nullptr, os::Deadline deadline = {});

  // Batched pop of up to `out.size()` slots: blocks until at least one slot
  // is available, then drains what is there (never blocks for a full batch).
  // Returns the number popped. Same close/fail semantics as Pop; a finite
  // `deadline` bounds the empty-queue park with kTimedOut.
  sim::Task<base::Result<uint64_t>> PopN(os::Env env, std::span<uint64_t> out,
                                         os::Deadline deadline = {});

  void Close(base::ErrorCode code = base::ErrorCode::kBrokenChannel);
  void Fail(base::ErrorCode code);

  uint64_t size() const { return count_; }
  uint32_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }
  uint64_t blocked_pushes() const { return blocked_pushes_; }
  uint64_t blocked_pops() const { return blocked_pops_; }
  uint64_t futex_wakes() const { return futex_wakes_; }
  uint64_t timeouts() const { return timeouts_; }
  uint32_t obs_obj() const { return obs_obj_; }

 private:
  hw::VirtAddr SlotVa(uint64_t pos) const { return seg_.base + (pos % capacity_) * kSlotBytes; }
  void WakeAllNoEnv();
  // Wake-suppression gate: pays the FUTEX_WAKE only when the live waiter
  // counter says someone is (or is about to be) parked on `q`.
  sim::Task<void> WakeIfWaiting(os::Env env, os::WaitQueue& q, const uint64_t& live_waiters);
  // Copies `n` values between `values` and the ring starting at `pos`,
  // split at the wrap point; accumulates the (batched) slot access cost.
  base::Status AccessSlots(os::Env env, uint64_t pos, std::span<const uint64_t> values,
                           std::span<uint64_t> out, sim::Duration* cost);

  os::Kernel& kernel_;
  hw::PageTable* pt_;  // the page table the segment was mapped through
  Segment seg_;
  uint32_t capacity_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t count_ = 0;
  bool closed_ = false;
  bool drain_allowed_ = true;
  base::ErrorCode code_ = base::ErrorCode::kBrokenChannel;
  uint64_t blocked_pushes_ = 0;  // cumulative (stats)
  uint64_t blocked_pops_ = 0;    // cumulative (stats)
  // Live waiter counts (the user-level futex counters): incremented before
  // the kernel entry of a park, decremented on resume. A waker reading zero
  // skips the wake syscall; reading nonzero commits to paying it.
  uint64_t waiting_pushes_ = 0;
  uint64_t waiting_pops_ = 0;
  uint64_t futex_wakes_ = 0;  // wake syscalls actually issued (stats)
  uint64_t timeouts_ = 0;     // parks that expired with the predicate still true
  // Registry mirrors of the stats above, plus the park-time distribution;
  // trace events carry obs_obj_ so a timeline attributes to this queue.
  uint32_t obs_obj_ = 0;
  obs::Counter* m_blocked_pushes_ = nullptr;
  obs::Counter* m_blocked_pops_ = nullptr;
  obs::Counter* m_futex_wakes_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
  obs::Histogram* m_park_ns_ = nullptr;
  os::WaitQueue producers_;
  os::WaitQueue consumers_;
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_MPMC_QUEUE_H_
