// MPMC slot queue in a VAS-mapped shared segment.
//
// A bounded queue of 8-byte slots (values or packed descriptors) shared by
// any number of producer/consumer threads across dIPC processes. The
// uncontended path is user-level (atomics on head/tail plus one slot
// access); full/empty block through the futex path with FIFO wakeups, which
// makes consumer scheduling fair and deterministic under the event queue.
//
// Closing is two-flavored, mirroring pipe EOF vs. peer crash:
//   - Close(): producers fail immediately, consumers drain then see the
//     close code (orderly shutdown);
//   - Fail(code): every operation fails immediately and all blocked threads
//     wake with `code` (dead-peer teardown).
#ifndef DIPC_CHAN_MPMC_QUEUE_H_
#define DIPC_CHAN_MPMC_QUEUE_H_

#include <cstdint>

#include "base/result.h"
#include "chan/segment.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

class MpmcQueue {
 public:
  static constexpr uint64_t kSlotBytes = 8;

  // Maps a `capacity`-slot segment through `proc`, tagged `tag` (callers
  // grant `tag` to every participating domain).
  MpmcQueue(os::Kernel& kernel, os::Process& proc, uint32_t capacity, hw::DomainTag tag);

  // Setup-time enqueue: no cost, no blocking (used to pre-fill free lists).
  void Prime(uint64_t value);

  // Blocking push; fails with the close/fail code once closed.
  sim::Task<base::Status> Push(os::Env env, uint64_t value);

  // Blocking pop. After Close() it drains remaining slots, then fails with
  // the close code; after Fail() it fails immediately.
  sim::Task<base::Result<uint64_t>> Pop(os::Env env);

  void Close(base::ErrorCode code = base::ErrorCode::kBrokenChannel);
  void Fail(base::ErrorCode code);

  uint64_t size() const { return count_; }
  uint32_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }
  uint64_t blocked_pushes() const { return blocked_pushes_; }
  uint64_t blocked_pops() const { return blocked_pops_; }

 private:
  hw::VirtAddr SlotVa(uint64_t pos) const { return seg_.base + (pos % capacity_) * kSlotBytes; }
  void WakeAllNoEnv();

  os::Kernel& kernel_;
  hw::PageTable* pt_;  // the page table the segment was mapped through
  Segment seg_;
  uint32_t capacity_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t count_ = 0;
  bool closed_ = false;
  bool drain_allowed_ = true;
  base::ErrorCode code_ = base::ErrorCode::kBrokenChannel;
  uint64_t blocked_pushes_ = 0;
  uint64_t blocked_pops_ = 0;
  os::WaitQueue producers_;
  os::WaitQueue consumers_;
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_MPMC_QUEUE_H_
