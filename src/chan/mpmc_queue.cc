#include "chan/mpmc_queue.h"

#include <cstring>

#include "chan/futex.h"

namespace dipc::chan {

using os::TimeCat;

namespace {

std::span<const std::byte> ValueBytes(const uint64_t& v) {
  return std::as_bytes(std::span(&v, 1));
}

}  // namespace

MpmcQueue::MpmcQueue(os::Kernel& kernel, os::Process& proc, uint32_t capacity, hw::DomainTag tag)
    : kernel_(kernel), pt_(&proc.page_table()), capacity_(capacity) {
  DIPC_CHECK(capacity > 0);
  auto seg = MapSegment(kernel, proc, uint64_t{capacity} * kSlotBytes, tag);
  DIPC_CHECK(seg.ok());
  seg_ = seg.value();
}

void MpmcQueue::Prime(uint64_t value) {
  DIPC_CHECK(count_ < capacity_);
  // Setup-time direct store through physical memory: no thread context, no
  // cost. Slots never straddle pages (8-byte slots, page-aligned base).
  auto pa = pt_->Translate(SlotVa(tail_));
  DIPC_CHECK(pa.has_value());
  kernel_.machine().mem().Write(*pa, ValueBytes(value));
  ++tail_;
  ++count_;
}

sim::Task<base::Status> MpmcQueue::Push(os::Env env, uint64_t value) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  co_await k.Spend(self, k.costs().chan_fast_path, TimeCat::kUser);
  while (count_ == capacity_) {
    if (closed_) {
      co_return code_;
    }
    ++blocked_pushes_;
    co_await FutexBlock(env, producers_, [&] { return count_ == capacity_ && !closed_; });
  }
  if (closed_) {
    co_return code_;
  }
  // The slot write and the tail_/count_ update must stay in one synchronous
  // block with the full check above: a co_await in between is a scheduling
  // point where a second producer could claim the same slot.
  hw::VirtAddr va = SlotVa(tail_);
  auto cost = k.UserAccessCost(self, va, kSlotBytes, hw::AccessType::kWrite);
  if (!cost.ok()) {
    co_return cost.status();
  }
  base::Status ws = k.UserWrite(self, va, ValueBytes(value));
  DIPC_CHECK(ws.ok());
  ++tail_;
  ++count_;
  co_await k.Spend(self, cost.value(), TimeCat::kUser);
  co_await FutexWakeOne(env, consumers_);
  co_return base::Status::Ok();
}

sim::Task<base::Result<uint64_t>> MpmcQueue::Pop(os::Env env) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  co_await k.Spend(self, k.costs().chan_fast_path, TimeCat::kUser);
  while (count_ == 0) {
    if (closed_) {
      co_return code_;
    }
    ++blocked_pops_;
    co_await FutexBlock(env, consumers_, [&] { return count_ == 0 && !closed_; });
  }
  if (!drain_allowed_) {
    co_return code_;
  }
  // Mirror of Push: read the slot and retire head_/count_ synchronously with
  // the empty check, then pay the access cost. Suspending before the claim
  // would let a second consumer pop the same slot; suspending between the
  // claim and the read would let a producer overwrite it (a freed slot is
  // immediately reusable when the queue was full).
  hw::VirtAddr va = SlotVa(head_);
  auto cost = k.UserAccessCost(self, va, kSlotBytes, hw::AccessType::kRead);
  if (!cost.ok()) {
    co_return cost.status();
  }
  uint64_t value = 0;
  base::Status rs = k.UserRead(self, va, std::as_writable_bytes(std::span(&value, 1)));
  DIPC_CHECK(rs.ok());
  ++head_;
  --count_;
  co_await k.Spend(self, cost.value(), TimeCat::kUser);
  co_await FutexWakeOne(env, producers_);
  co_return value;
}

void MpmcQueue::Close(base::ErrorCode code) {
  if (closed_) {
    return;
  }
  closed_ = true;
  code_ = code;
  WakeAllNoEnv();
}

void MpmcQueue::Fail(base::ErrorCode code) {
  closed_ = true;
  drain_allowed_ = false;
  code_ = code;
  WakeAllNoEnv();
}

void MpmcQueue::WakeAllNoEnv() {
  // Close/Fail have no Env (they may run from teardown hooks); wakeups go
  // through the scheduler with no waker-side cost, like Pipe close.
  while (os::Thread* t = producers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
  while (os::Thread* t = consumers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
}

}  // namespace dipc::chan
