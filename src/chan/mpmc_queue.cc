#include "chan/mpmc_queue.h"

#include <algorithm>
#include <cstring>

#include "chan/futex.h"

namespace dipc::chan {

using os::TimeCat;

MpmcQueue::MpmcQueue(os::Kernel& kernel, os::Process& proc, uint32_t capacity, hw::DomainTag tag,
                     std::string obs_name, uint32_t obs_obj)
    : kernel_(kernel), pt_(&proc.page_table()), capacity_(capacity) {
  DIPC_CHECK(capacity > 0);
  auto seg = MapSegment(kernel, proc, uint64_t{capacity} * kSlotBytes, tag);
  DIPC_CHECK(seg.ok());
  seg_ = seg.value();
  obs_obj_ = obs_obj != 0 ? obs_obj : obs::NewObjectId();
  if (obs_name.empty()) {
    obs_name = "mpmc/" + std::to_string(obs_obj_);
  }
  obs::Registry& reg = obs::Registry::Default();
  m_blocked_pushes_ = reg.GetCounter(obs_name + "/blocked_pushes");
  m_blocked_pops_ = reg.GetCounter(obs_name + "/blocked_pops");
  m_futex_wakes_ = reg.GetCounter(obs_name + "/futex_wakes");
  m_timeouts_ = reg.GetCounter(obs_name + "/timeouts");
  m_park_ns_ = reg.GetHistogram(obs_name + "/park_ns");
}

void MpmcQueue::Prime(uint64_t value) {
  DIPC_CHECK(count_ < capacity_);
  // Setup-time direct store through physical memory: no thread context, no
  // cost. Slots never straddle pages (8-byte slots, page-aligned base).
  auto pa = pt_->Translate(SlotVa(tail_));
  DIPC_CHECK(pa.has_value());
  kernel_.machine().mem().Write(*pa, std::as_bytes(std::span(&value, 1)));
  ++tail_;
  ++count_;
}

void MpmcQueue::PushNoEnv(uint64_t value) {
  DIPC_CHECK(count_ < capacity_);
  auto pa = pt_->Translate(SlotVa(tail_));
  DIPC_CHECK(pa.has_value());
  kernel_.machine().mem().Write(*pa, std::as_bytes(std::span(&value, 1)));
  ++tail_;
  ++count_;
  if (os::Thread* t = consumers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
}

sim::Task<void> MpmcQueue::WakeIfWaiting(os::Env env, os::WaitQueue& q,
                                         const uint64_t& live_waiters) {
  if (live_waiters == 0) {
    co_return;  // suppressed: no syscall, no kernel work
  }
  if (DIPC_FAULT_POINT(kFutexWake, env.self->last_cpu()).drop_wake()) {
    co_return;  // injected lost wake; deadline-armed parks recover
  }
  ++futex_wakes_;
  m_futex_wakes_->Add();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexWake, obs_obj_, live_waiters,
                      env.kernel->now());
  co_await FutexWakeCommitted(env, q);
}

base::Status MpmcQueue::AccessSlots(os::Env env, uint64_t pos, std::span<const uint64_t> values,
                                    std::span<uint64_t> out, sim::Duration* cost) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  const bool writing = !values.empty();
  const uint64_t n = writing ? values.size() : out.size();
  uint64_t off = pos % capacity_;
  uint64_t first = std::min(n, capacity_ - off);
  for (auto [start, span_off, span_n] :
       {std::tuple{off, uint64_t{0}, first}, std::tuple{uint64_t{0}, first, n - first}}) {
    if (span_n == 0) {
      continue;
    }
    hw::VirtAddr va = seg_.base + start * kSlotBytes;
    auto c = k.UserAccessCost(self, va, span_n * kSlotBytes,
                              writing ? hw::AccessType::kWrite : hw::AccessType::kRead);
    if (!c.ok()) {
      return c.status();
    }
    *cost += c.value();
    if (writing) {
      base::Status ws =
          k.UserWrite(self, va, std::as_bytes(values.subspan(span_off, span_n)));
      DIPC_CHECK(ws.ok());
    } else {
      base::Status rs =
          k.UserRead(self, va, std::as_writable_bytes(out.subspan(span_off, span_n)));
      DIPC_CHECK(rs.ok());
    }
  }
  return base::Status::Ok();
}

sim::Task<base::Status> MpmcQueue::Push(os::Env env, uint64_t value, os::Deadline deadline) {
  co_return co_await PushN(env, std::span(&value, 1), nullptr, deadline);
}

sim::Task<base::Result<uint64_t>> MpmcQueue::Pop(os::Env env, os::Deadline deadline) {
  uint64_t value = 0;
  auto n = co_await PopN(env, std::span(&value, 1), deadline);
  if (!n.ok()) {
    co_return n.code();
  }
  co_return value;
}

sim::Task<base::Status> MpmcQueue::PushN(os::Env env, std::span<const uint64_t> values,
                                         uint64_t* pushed, os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  if (pushed != nullptr) {
    *pushed = 0;
  }
  if (values.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  // The fixed fast-path toll (head/tail atomics + bookkeeping) is paid once
  // per batch — the O(1/batch) half of the batching argument.
  co_await k.Spend(self, k.costs().chan_fast_path, TimeCat::kUser);
  {
    // Perturbs *timing* only, before the full/empty check — the claim itself
    // stays synchronous with the check, so the queue invariant holds.
    fault::Decision d = DIPC_FAULT_POINT(kSlotClaim, self.last_cpu());
    if (d.action == fault::Action::kDelay) {
      co_await k.Spend(self, d.delay, TimeCat::kUser);
    }
  }
  uint64_t done = 0;
  while (done < values.size()) {
    while (count_ == capacity_) {
      if (closed_) {
        co_return code_;
      }
      ++blocked_pushes_;
      m_blocked_pushes_->Add();
      ++waiting_pushes_;
      sim::Time park_start = k.now();
      bool expired = co_await FutexBlockUntil(
          env, producers_, deadline, [&] { return count_ == capacity_ && !closed_; });
      --waiting_pushes_;
      sim::Duration parked = k.now() - park_start;
      m_park_ns_->Record(parked.nanos());
      obs::Trace().Record(self.last_cpu(), obs::EventType::kFutexPark, obs_obj_, 0, k.now(),
                          parked);
      if (expired && count_ == capacity_ && !closed_) {
        ++timeouts_;
        m_timeouts_->Add();
        obs::Trace().Record(self.last_cpu(), obs::EventType::kTimeout, obs_obj_,
                            values.size() - done, k.now());
        co_return base::ErrorCode::kTimedOut;
      }
    }
    if (closed_) {
      co_return code_;
    }
    // Claim up to the free room in one synchronous block with the full check
    // above: a co_await between the check and the tail_/count_ update is a
    // scheduling point where another producer could claim the same slots.
    uint64_t n = std::min<uint64_t>(values.size() - done, capacity_ - count_);
    sim::Duration cost;
    base::Status s = AccessSlots(env, tail_, values.subspan(done, n), {}, &cost);
    if (!s.ok()) {
      co_return s;
    }
    tail_ += n;
    count_ += n;
    done += n;
    if (pushed != nullptr) {
      *pushed = done;
    }
    co_await k.Spend(self, cost, TimeCat::kUser);
    // One (suppressed) wake per chunk; the woken consumer chains further
    // wakes while a backlog remains (see PopN), so one is enough.
    co_await WakeIfWaiting(env, consumers_, waiting_pops_);
  }
  // Wake chaining, producer side: when a consumer freed a multi-slot run it
  // woke only one producer; if room remains after this push, pass the wake
  // on so parked peers don't wait for the next pop.
  if (count_ < capacity_ && !closed_) {
    co_await WakeIfWaiting(env, producers_, waiting_pushes_);
  }
  co_return base::Status::Ok();
}

sim::Task<base::Result<uint64_t>> MpmcQueue::PopN(os::Env env, std::span<uint64_t> out,
                                                  os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  if (out.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  co_await k.Spend(self, k.costs().chan_fast_path, TimeCat::kUser);
  {
    fault::Decision d = DIPC_FAULT_POINT(kSlotClaim, self.last_cpu());
    if (d.action == fault::Action::kDelay) {
      co_await k.Spend(self, d.delay, TimeCat::kUser);
    }
  }
  while (count_ == 0) {
    if (closed_) {
      co_return code_;
    }
    ++blocked_pops_;
    m_blocked_pops_->Add();
    ++waiting_pops_;
    sim::Time park_start = k.now();
    bool expired = co_await FutexBlockUntil(env, consumers_, deadline,
                                            [&] { return count_ == 0 && !closed_; });
    --waiting_pops_;
    sim::Duration parked = k.now() - park_start;
    m_park_ns_->Record(parked.nanos());
    obs::Trace().Record(self.last_cpu(), obs::EventType::kFutexPark, obs_obj_, 1, k.now(),
                        parked);
    if (expired && count_ == 0 && !closed_) {
      ++timeouts_;
      m_timeouts_->Add();
      obs::Trace().Record(self.last_cpu(), obs::EventType::kTimeout, obs_obj_, out.size(),
                          k.now());
      co_return base::ErrorCode::kTimedOut;
    }
  }
  if (!drain_allowed_) {
    co_return code_;
  }
  // Mirror of PushN: claim the run and retire head_/count_ synchronously
  // with the empty check, then pay the (batched) access cost. Suspending
  // before the claim would let a second consumer pop the same slots;
  // suspending between the claim and the read would let a producer
  // overwrite them (freed slots are immediately reusable when the queue was
  // full). Never blocks for a full batch: drains what is there.
  uint64_t n = std::min<uint64_t>(out.size(), count_);
  sim::Duration cost;
  base::Status s = AccessSlots(env, head_, {}, out.subspan(0, n), &cost);
  if (!s.ok()) {
    co_return s.code();
  }
  head_ += n;
  count_ -= n;
  co_await k.Spend(self, cost, TimeCat::kUser);
  co_await WakeIfWaiting(env, producers_, waiting_pushes_);
  // Wake chaining, consumer side: a batched push woke only one consumer; if
  // a backlog remains, pass the wake on to the next parked consumer.
  if (count_ > 0) {
    co_await WakeIfWaiting(env, consumers_, waiting_pops_);
  }
  co_return n;
}

void MpmcQueue::Close(base::ErrorCode code) {
  if (closed_) {
    return;
  }
  closed_ = true;
  code_ = code;
  WakeAllNoEnv();
}

void MpmcQueue::Fail(base::ErrorCode code) {
  closed_ = true;
  drain_allowed_ = false;
  code_ = code;
  WakeAllNoEnv();
}

void MpmcQueue::WakeAllNoEnv() {
  // Close/Fail have no Env (they may run from teardown hooks); wakeups go
  // through the scheduler with no waker-side cost, like Pipe close.
  while (os::Thread* t = producers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
  while (os::Thread* t = consumers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
}

}  // namespace dipc::chan
