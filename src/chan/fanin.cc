#include "chan/fanin.h"

#include <algorithm>

#include "chan/desc.h"
#include "chan/futex.h"
#include "fault/fault.h"

namespace dipc::chan {

using internal::ClearRegIfHolds;
using internal::DescIndex;
using internal::DescLen;
using internal::kLenMask;
using internal::kMaxSlots;
using internal::NextOwnerKey;
using internal::PackDesc;
using os::TimeCat;

namespace {

// Sentinel for slot_owner_ when nobody holds the slot.
constexpr uint32_t kNoProducer = ~uint32_t{0};

}  // namespace

FanInChannel::FanInChannel(core::Dipc& dipc, std::span<os::Process* const> producers,
                           os::Process& consumer, FanInConfig cfg)
    : kernel_(dipc.kernel()),
      producer_procs_(producers.begin(), producers.end()),
      consumer_proc_(&consumer),
      cfg_(cfg) {}

void FanInChannel::RegisterMetrics() {
  obs_id_ = obs::NewObjectId();
  const std::string p = "fanin/" + std::to_string(obs_id_) + "/";
  obs::Registry& reg = obs::Registry::Default();
  m_sends_ = reg.GetCounter(p + "sends");
  m_recvs_ = reg.GetCounter(p + "recvs");
  m_blocked_on_credit_ = reg.GetCounter(p + "blocked_on_credit");
  const uint32_t n = producer_count();
  m_tx_sends_.resize(n);
  m_tx_credits_.resize(n);
  m_tx_stall_ns_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    const std::string tp = p + "tx/" + std::to_string(i) + "/";
    m_tx_sends_[i] = reg.GetCounter(tp + "sends");
    m_tx_credits_[i] = reg.GetGauge(tp + "credits");
    m_tx_stall_ns_[i] = reg.GetHistogram(tp + "credit_stall_ns");
  }
}

base::Result<std::shared_ptr<FanInChannel>> FanInChannel::Create(
    core::Dipc& dipc, std::span<os::Process* const> producers, os::Process& consumer,
    FanInConfig cfg) {
  if (cfg.slots == 0 || cfg.slots > kMaxSlots || cfg.buf_bytes == 0 ||
      cfg.buf_bytes > kLenMask || cfg.credits > cfg.slots || producers.empty()) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (!consumer.dipc_enabled()) {
    return base::ErrorCode::kNotSupported;
  }
  for (os::Process* p : producers) {
    if (p == nullptr || !p->dipc_enabled()) {
      return base::ErrorCode::kNotSupported;
    }
  }
  os::Kernel& kernel = dipc.kernel();
  auto ch = std::shared_ptr<FanInChannel>(new FanInChannel(dipc, producers, consumer, cfg));
  codoms::AplTable& apl = kernel.codoms().apl_table();
  ch->ctrl_tag_ = cfg.ctrl_tag != hw::kInvalidDomainTag ? cfg.ctrl_tag : apl.AllocateTag();
  ch->data_tag_ = cfg.data_tag != hw::kInvalidDomainTag ? cfg.data_tag : apl.AllocateTag();
  ch->rt_tag_ = cfg.rt_tag != hw::kInvalidDomainTag ? cfg.rt_tag : apl.AllocateTag();
  // One-time APL setup, as in Channel::Create: every endpoint may use the
  // control segment and call into the runtime; only the runtime domain
  // reaches the data domain.
  apl.Grant(consumer.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(consumer.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  for (os::Process* p : ch->producer_procs_) {
    apl.Grant(p->default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
    apl.Grant(p->default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  }
  apl.Grant(ch->rt_tag_, ch->data_tag_, codoms::Perm::kWrite);

  const uint32_t n_prod = ch->producer_count();
  ch->buf_stride_ = hw::PageRoundUp(cfg.buf_bytes);
  auto data = MapSegment(kernel, consumer, ch->buf_stride_ * cfg.slots, ch->data_tag_);
  if (!data.ok()) {
    return data.code();
  }
  ch->data_seg_ = data.value();
  // One capability-storage slot per buffer: there is a single consumer, so
  // (unlike fan-out) the stored read capability needs no per-peer fan.
  auto caps = MapSegment(kernel, consumer, uint64_t{cfg.slots} * codoms::kCapMemBytes,
                         ch->ctrl_tag_, /*cap_storage=*/true);
  if (!caps.ok()) {
    return caps.code();
  }
  ch->cap_seg_ = caps.value();
  ch->RegisterMetrics();
  const std::string prefix = "fanin/" + std::to_string(ch->obs_id_);
  ch->free_ = std::make_unique<MpmcQueue>(kernel, consumer, cfg.slots, ch->ctrl_tag_,
                                          prefix + "/free", ch->obs_id_);
  for (uint32_t i = 0; i < cfg.slots; ++i) {
    ch->free_->Prime(i);
  }
  // Every in-flight slot comes out of the `slots`-deep pool, so the
  // descriptor FIFO can never see more than `slots` outstanding entries —
  // publishes never block for ring space.
  ch->desc_ = std::make_unique<MpmcQueue>(kernel, consumer, cfg.slots, ch->ctrl_tag_,
                                          prefix + "/desc", ch->obs_id_);
  ch->credit_line_ = cfg.credits != 0 ? cfg.credits : cfg.slots;
  ch->sender_caps_.resize(cfg.slots);
  ch->tctx_.assign(cfg.slots, 0);
  ch->wcap_tmpl_.assign(n_prod, std::vector<std::optional<codoms::Capability>>(cfg.slots));
  ch->slot_owner_.assign(cfg.slots, kNoProducer);
  ch->slot_owner_key_.assign(cfg.slots, 0);
  ch->rcaps_.resize(cfg.slots);
  ch->rcap_tmpl_.resize(cfg.slots);
  ch->credits_.assign(n_prod, ch->credit_line_);
  for (uint32_t i = 0; i < n_prod; ++i) {
    ch->m_tx_credits_[i]->Set(ch->credit_line_);
  }
  ch->alive_.assign(n_prod, true);
  ch->owner_key_.resize(n_prod);
  for (uint32_t i = 0; i < n_prod; ++i) {
    ch->owner_key_[i] = NextOwnerKey();
  }
  ch->consumer_owner_key_ = NextOwnerKey();

  std::weak_ptr<FanInChannel> weak = ch;
  dipc.AddDeathHook([weak](os::Process& dead) {
    auto live = weak.lock();
    if (live == nullptr) {
      return false;
    }
    live->OnProcessDeath(dead);
    return true;
  });
  return ch;
}

uint32_t FanInChannel::live_producer_count() const {
  uint32_t live = 0;
  for (bool a : alive_) {
    live += a ? 1 : 0;
  }
  return live;
}

sim::Task<base::ErrorCode> FanInChannel::AwaitCredit(os::Env env, uint32_t p, uint64_t need,
                                                     os::Deadline deadline) {
  const uint64_t gen = owner_key_[p];
  sim::Time stall_start;
  bool stalled = false;
  while (true) {
    if (broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
    if (closed_) {
      co_return base::ErrorCode::kBrokenChannel;
    }
    if (!alive_[p] || owner_key_[p] != gen) {
      // This producer slot was excised (and possibly rebound to a new
      // incarnation) while we were parked — the caller belongs to the dead
      // incarnation.
      co_return base::ErrorCode::kCalleeFailed;
    }
    if (credits_[p] >= need) {
      // No suspension between this check and the caller's reservation: the
      // admitted credits cannot change under the caller.
      if (stalled) {
        sim::Duration stall = env.kernel->now() - stall_start;
        m_tx_stall_ns_[p]->Record(stall.nanos());
        obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCreditStall, obs_id_, p,
                            env.kernel->now(), stall);
      }
      co_return base::ErrorCode::kOk;
    }
    if (!stalled) {
      stalled = true;
      stall_start = env.kernel->now();
    }
    ++blocked_on_credit_;
    m_blocked_on_credit_->Add();
    ++credit_wait_count_;
    bool expired = co_await FutexBlockUntil(env, credit_waiters_, deadline, [this, p, need, gen] {
      return (credits_[p] < need && alive_[p] && owner_key_[p] == gen &&
              broken_ == base::ErrorCode::kOk && !closed_);
    });
    --credit_wait_count_;
    if (expired && credits_[p] < need && alive_[p] && owner_key_[p] == gen &&
        broken_ == base::ErrorCode::kOk && !closed_) {
      // Deadline fired with the gate still closed: nothing admitted, nothing
      // granted — the caller surfaces kTimedOut leak-free.
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kTimeout, obs_id_, need,
                          env.kernel->now());
      co_return base::ErrorCode::kTimedOut;
    }
  }
}

base::Result<codoms::Capability> FanInChannel::GrantCap(os::Env env, uint32_t index, uint32_t p,
                                                        codoms::Perm rights,
                                                        sim::Duration* cost) {
  const bool write = rights == codoms::Perm::kWrite;
  std::optional<codoms::Capability>& tmpl = write ? wcap_tmpl_[p][index] : rcap_tmpl_[index];
  codoms::ThreadCapContext& ctx = env.self->cap_ctx();
  hw::DomainTag saved = ctx.current_domain;
  ctx.current_domain = rt_tag_;
  sim::Duration c;
  base::Result<codoms::Capability> cap = base::ErrorCode::kFault;
  if (tmpl.has_value()) {
    cap = env.kernel->codoms().CapRebind(*tmpl, ctx, &c);
    c += obs::Trace().event_cost();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCapRebind, obs_id_, index,
                        env.kernel->now());
  } else {
    ++cold_mints_;
    c += obs::Trace().event_cost();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCapMint, obs_id_, index,
                        env.kernel->now());
    cap = env.kernel->codoms().CapFromApl(env.self->last_cpu(),
                                          env.self->process().page_table(), ctx, buf_va(index),
                                          buf_stride_, rights, codoms::CapType::kAsync, &c);
    if (cap.ok()) {
      // Per-endpoint grant bookkeeping: producer counters carry the
      // producer's owner key (a dead producer's grants are revocable — and
      // auditable — as one set), consumer counters the consumer's.
      env.kernel->codoms().revocations().SetOwner(
          cap.value().revocation_id, write ? owner_key_[p] : consumer_owner_key_);
    }
  }
  ctx.current_domain = saved;
  *cost += c;
  if (cap.ok()) {
    tmpl = cap.value();
  }
  return cap;
}

sim::Task<base::Result<SendBuf>> FanInChannel::AcquireBuf(os::Env env, uint32_t producer,
                                                          os::Deadline deadline) {
  auto batch = co_await AcquireBufBatch(env, producer, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<SendBuf>>> FanInChannel::AcquireBufBatch(
    os::Env env, uint32_t producer, uint32_t max_n, os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0 || producer >= producer_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!alive_[producer]) {
    co_return base::ErrorCode::kCalleeFailed;
  }
  const uint64_t gen = owner_key_[producer];
  // Per-producer admission: don't even take a buffer while this producer's
  // credit line is exhausted — that is what keeps one flooding producer from
  // draining the shared pool under everyone else.
  base::ErrorCode gate = co_await AwaitCredit(env, producer, 1, deadline);
  if (gate != base::ErrorCode::kOk) {
    co_return gate;
  }
  // Reserve the credits before the (possibly blocking) pool pop, so a
  // sibling thread of the same producer cannot overshoot the line across
  // our suspension; unused reservations are refunded below.
  const uint32_t want =
      static_cast<uint32_t>(std::min<uint64_t>({max_n, credits_[producer], cfg_.slots}));
  credits_[producer] -= want;
  m_tx_credits_[producer]->Set(static_cast<int64_t>(credits_[producer]));
  std::vector<uint64_t> indices(want);
  auto popped = co_await free_->PopN(env, std::span(indices), deadline);
  if (!popped.ok() || !alive_[producer] || owner_key_[producer] != gen) {
    if (alive_[producer] && owner_key_[producer] == gen) {
      RefundCredits(producer, want);
    } else if (popped.ok()) {
      // Excised (or rebound) while parked in the pool: the slots we popped
      // belong back in the pool, the reservation died with the incarnation.
      (void)co_await free_->PushN(env, std::span(indices.data(), popped.value()));
    }
    if (!popped.ok()) {
      co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
    }
    co_return base::ErrorCode::kCalleeFailed;
  }
  indices.resize(popped.value());
  RefundCredits(producer, want - indices.size());
  sim::Duration cost = k.costs().function_call + k.costs().domain_switch * 2;
  std::vector<codoms::Capability> caps;
  caps.reserve(indices.size());
  for (uint64_t idx : indices) {
    auto cap =
        GrantCap(env, static_cast<uint32_t>(idx), producer, codoms::Perm::kWrite, &cost);
    if (!cap.ok()) {
      for (const auto& granted : caps) {
        DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
      }
      (void)co_await free_->PushN(env, std::span(indices));
      RefundCredits(producer, indices.size());
      co_return cap.code();
    }
    caps.push_back(cap.value());
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kAcquireBatch, obs_id_,
                      indices.size(), k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    for (const auto& granted : caps) {
      DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
    }
    co_return broken_;
  }
  if (!alive_[producer] || owner_key_[producer] != gen) {
    // Excised during the Spend: the death sweep already revoked this
    // producer's grants and recycled any slots it had claimed — but these
    // were claimed under the sweep's nose (recorded below), so hand them
    // back ourselves.
    for (const auto& granted : caps) {
      (void)k.codoms().CapRevoke(granted);
    }
    (void)co_await free_->PushN(env, std::span(indices));
    co_return base::ErrorCode::kCalleeFailed;
  }
  std::vector<SendBuf> out;
  out.reserve(indices.size());
  for (size_t j = 0; j < indices.size(); ++j) {
    auto index = static_cast<uint32_t>(indices[j]);
    sender_caps_[index] = caps[j];
    slot_owner_[index] = producer;
    slot_owner_key_[index] = gen;
    out.push_back(SendBuf{buf_va(index), cfg_.buf_bytes, index});
  }
  env.self->cap_ctx().regs.Set(kSenderCapReg, caps.back());
  co_return out;
}

void FanInChannel::BindSendCap(os::Thread& t, const SendBuf& buf) const {
  if (buf.index < cfg_.slots && sender_caps_[buf.index].has_value()) {
    t.cap_ctx().regs.Set(kSenderCapReg, *sender_caps_[buf.index]);
  }
}

void FanInChannel::BindRecvCap(os::Thread& t, const Msg& msg) const {
  if (msg.index < cfg_.slots && rcaps_[msg.index].has_value()) {
    t.cap_ctx().regs.Set(kReceiverCapReg, *rcaps_[msg.index]);
  }
}

sim::Task<base::Status> FanInChannel::Send(os::Env env, uint32_t producer, const SendBuf& buf,
                                           uint64_t len) {
  SendItem item{buf, len};
  co_return co_await SendBatch(env, producer, std::span(&item, 1));
}

sim::Task<base::Status> FanInChannel::SendBatch(os::Env env, uint32_t producer,
                                                std::span<const SendItem> items) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (items.empty() || producer >= producer_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  sim::Duration fault_delay;
  {
    // Probed before the broken_ check so a scripted "kill at the Nth send"
    // surfaces through the regular dead-peer path on this very call.
    fault::Decision d = DIPC_FAULT_POINT(kChanSend, env.self->last_cpu());
    if (d.fail()) {
      co_return base::ErrorCode::kFault;
    }
    if (d.action == fault::Action::kDelay) {
      fault_delay = d.delay;
    }
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (closed_) {
    co_return base::ErrorCode::kBrokenChannel;
  }
  if (!alive_[producer]) {
    co_return base::ErrorCode::kCalleeFailed;
  }
  const uint64_t gen = owner_key_[producer];
  for (size_t j = 0; j < items.size(); ++j) {
    const SendItem& it = items[j];
    if (it.buf.index >= cfg_.slots || it.len == 0 || it.len > cfg_.buf_bytes ||
        !sender_caps_[it.buf.index].has_value() || slot_owner_[it.buf.index] != producer ||
        slot_owner_key_[it.buf.index] != gen) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (items[i].buf.index == it.buf.index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  // Admission credit was paid at acquire, so there is no gate here. The
  // delivery plan (consumer read grants) is computed and recorded
  // synchronously — no suspension point can change ownership under us.
  sim::Duration cost = cm.chan_fast_path + cm.function_call + cm.domain_switch * 2 + fault_delay;
  std::vector<codoms::Capability> granted;  // undo list
  granted.reserve(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    const uint32_t index = items[j].buf.index;
    auto rcap = GrantCap(env, index, producer, codoms::Perm::kRead, &cost);
    base::Status stored = base::ErrorCode::kFault;
    if (rcap.ok()) {
      sim::Duration store_cost;
      stored = k.codoms().CapStore(env.self->process().page_table(), env.self->cap_ctx(),
                                   CapSlotVa(index), rcap.value(), &store_cost);
      cost += store_cost;
    }
    if (!rcap.ok() || !stored.ok()) {
      // Undo everything this call granted; the producer still owns every
      // buffer of the batch.
      if (rcap.ok()) {
        DIPC_CHECK(k.codoms().CapRevoke(rcap.value()).ok());
      }
      for (size_t jj = 0; jj < j; ++jj) {
        DIPC_CHECK(k.codoms().CapRevoke(granted[jj]).ok());
        rcaps_[items[jj].buf.index].reset();
      }
      co_return rcap.ok() ? stored : base::Status(rcap.code());
    }
    granted.push_back(rcap.value());
    rcaps_[index] = rcap.value();
  }
  // The write-grant revokes land after the Spend (the producer may be
  // excised mid-suspension and the sweep must still see which slots it
  // held), but always before any descriptor is published — the consumer can
  // never observe a message whose writer still holds the buffer.
  cost += cm.cap_revoke * items.size();
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kSendBatch, obs_id_, items.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // Consumer died during the Spend: teardown already swept every recorded
    // grant (they were recorded before the suspension).
    co_return broken_;
  }
  if (!alive_[producer] || owner_key_[producer] != gen) {
    // This producer was excised during the Spend: its write grants and the
    // planned read grants were swept and its slots recycled. Nothing to
    // publish, nothing left to own.
    co_return base::ErrorCode::kCalleeFailed;
  }
  std::vector<uint64_t> descs;
  descs.reserve(items.size());
  for (const SendItem& it : items) {
    const uint32_t index = it.buf.index;
    tctx_[index] = it.buf.tctx;
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[index]).ok());
    sender_caps_[index].reset();
    descs.push_back(PackDesc(index, it.len));
  }
  // Publish: one batched descriptor push, at most one futex wake. Slots are
  // pool-bounded, so the ring always has room and this never parks.
  auto pushed = co_await desc_->PushN(env, std::span(descs));
  if (!pushed.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : pushed.code();
  }
  sends_ += items.size();
  m_sends_->Add(items.size());
  m_tx_sends_[producer]->Add(items.size());
  co_return base::Status::Ok();
}

sim::Task<base::Status> FanInChannel::AbandonBuf(os::Env env, uint32_t producer,
                                                 const SendBuf& buf) {
  co_return co_await AbandonBufBatch(env, producer, std::span(&buf, 1));
}

sim::Task<base::Status> FanInChannel::AbandonBufBatch(os::Env env, uint32_t producer,
                                                      std::span<const SendBuf> bufs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (bufs.empty() || producer >= producer_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  const uint64_t gen = owner_key_[producer];
  for (size_t j = 0; j < bufs.size(); ++j) {
    if (bufs[j].index >= cfg_.slots || !sender_caps_[bufs[j].index].has_value() ||
        slot_owner_[bufs[j].index] != producer || slot_owner_key_[bufs[j].index] != gen) {
      co_return broken_ != base::ErrorCode::kOk ? broken_
                                                : base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (bufs[i].index == bufs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> indices;
  indices.reserve(bufs.size());
  for (const SendBuf& b : bufs) {
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[b.index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[b.index]).ok());
    cost += cm.cap_revoke;
    sender_caps_[b.index].reset();
    slot_owner_[b.index] = kNoProducer;
    indices.push_back(b.index);
  }
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;  // teardown already retired the pool
  }
  if (alive_[producer] && owner_key_[producer] == gen) {
    RefundCredits(producer, indices.size());
  }
  auto pushed = co_await free_->PushN(env, std::span(indices));
  if (!pushed.ok()) {
    // After an orderly Close the free list is retired; the revocations
    // above are all that matters. Only dead-peer errors surface.
    co_return broken_ != base::ErrorCode::kOk ? base::Status(broken_) : base::Status::Ok();
  }
  if (credit_wait_count_ > 0) {
    co_await FutexWakeCommitted(env, credit_waiters_);
  }
  co_return base::Status::Ok();
}

sim::Task<base::Result<Msg>> FanInChannel::Recv(os::Env env, os::Deadline deadline) {
  auto batch = co_await RecvBatch(env, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<Msg>>> FanInChannel::RecvBatch(os::Env env, uint32_t max_n,
                                                                  os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  std::vector<uint64_t> descs(std::min<uint32_t>(max_n, cfg_.slots));
  auto popped = co_await desc_->PopN(env, std::span(descs), deadline);
  if (!popped.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
  }
  descs.resize(popped.value());
  sim::Duration cost;
  std::vector<Msg> out;
  std::vector<codoms::Capability> caps;
  std::vector<uint64_t> corrupted;
  out.reserve(descs.size());
  caps.reserve(descs.size());
  for (uint64_t desc : descs) {
    uint32_t index = DescIndex(desc);
    uint64_t len = DescLen(desc);
    sim::Duration load_cost;
    auto cap = k.codoms().CapLoad(env.self->process().page_table(), env.self->cap_ctx(),
                                  CapSlotVa(index), &load_cost);
    cost += load_cost;
    if (!cap.ok()) {
      // A plain write destroyed the stored capability; recycle the delivery
      // and keep the healthy messages (cf. Channel::RecvBatch).
      corrupted.push_back(index);
      continue;
    }
    caps.push_back(cap.value());
    out.push_back(Msg{buf_va(index), len, index, tctx_[index]});
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kRecvBatch, obs_id_, out.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!corrupted.empty()) {
    std::vector<uint64_t> freed;
    for (uint64_t index : corrupted) {
      DropDelivery(static_cast<uint32_t>(index), &freed);
    }
    if (!freed.empty()) {
      (void)co_await free_->PushN(env, std::span(freed));
      if (broken_ != base::ErrorCode::kOk) {
        co_return broken_;
      }
    }
    if (credit_wait_count_ > 0) {
      co_await FutexWakeCommitted(env, credit_waiters_);
    }
  }
  if (out.empty()) {
    co_return base::ErrorCode::kFault;
  }
  env.self->cap_ctx().regs.Set(kReceiverCapReg, caps.front());
  recvs_ += out.size();
  m_recvs_->Add(out.size());
  co_return out;
}

sim::Task<base::Status> FanInChannel::Release(os::Env env, const Msg& msg) {
  co_return co_await ReleaseBatch(env, std::span(&msg, 1));
}

sim::Task<base::Status> FanInChannel::ReleaseBatch(os::Env env, std::span<const Msg> msgs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (msgs.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  for (size_t j = 0; j < msgs.size(); ++j) {
    if (msgs[j].index >= cfg_.slots) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (msgs[i].index == msgs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  for (const Msg& msg : msgs) {
    if (!rcaps_[msg.index].has_value()) {
      co_return base::ErrorCode::kInvalidArgument;
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> freed;
  for (const Msg& msg : msgs) {
    ClearRegIfHolds(*env.self, kReceiverCapReg, *rcaps_[msg.index]);
    DropDelivery(msg.index, &freed);
    cost += cm.cap_revoke;
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCreditGrant, obs_id_, msgs.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!freed.empty()) {
    auto pushed = co_await free_->PushN(env, std::span(freed));
    if (!pushed.ok() && broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
  }
  // Returned credit may unblock a parked producer (wake-suppressed).
  if (credit_wait_count_ > 0) {
    fault::Decision d = DIPC_FAULT_POINT(kFanInCreditGrant, env.self->last_cpu());
    if (d.drop_wake()) {
      // Injected lost credit wake: the credits are back (bookkeeping above
      // is done) but no parked producer hears it — deadline-armed waiters
      // recover, never-deadline waiters rely on the next release.
      co_return base::Status::Ok();
    }
    if (d.action == fault::Action::kDelay) {
      co_await k.Spend(*env.self, d.delay, TimeCat::kUser);
    }
    co_await FutexWakeCommitted(env, credit_waiters_);
  }
  co_return base::Status::Ok();
}

void FanInChannel::RefundCredits(uint32_t p, uint64_t n) {
  if (n == 0) {
    return;
  }
  credits_[p] += n;
  DIPC_CHECK(credits_[p] <= credit_line_);
  m_tx_credits_[p]->Set(static_cast<int64_t>(credits_[p]));
}

void FanInChannel::DropDelivery(uint32_t index, std::vector<uint64_t>* freed) {
  std::optional<codoms::Capability>& cap = rcaps_[index];
  if (!cap.has_value()) {
    return;
  }
  DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
  cap.reset();
  const uint32_t p = slot_owner_[index];
  slot_owner_[index] = kNoProducer;
  if (p != kNoProducer && alive_[p] && owner_key_[p] == slot_owner_key_[index]) {
    // The admission credit returns to the producer that paid it — unless
    // that incarnation died (or was rebound, which restored a full line).
    RefundCredits(p, 1);
  }
  freed->push_back(index);
}

void FanInChannel::Close() {
  closed_ = true;
  free_->Close(base::ErrorCode::kBrokenChannel);
  desc_->Close(base::ErrorCode::kBrokenChannel);
  while (os::Thread* t = credit_waiters_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
}

uint64_t FanInChannel::LiveGrantCount() const {
  const codoms::RevocationTable& rt = kernel_.codoms().revocations();
  uint64_t live = 0;
  for (const auto& cap : sender_caps_) {
    if (cap.has_value() && rt.Epoch(cap->revocation_id) == cap->revocation_epoch) {
      ++live;
    }
  }
  for (const auto& cap : rcaps_) {
    if (cap.has_value() && rt.Epoch(cap->revocation_id) == cap->revocation_epoch) {
      ++live;
    }
  }
  return live;
}

void FanInChannel::OnProcessDeath(os::Process& proc) {
  if (broken_ != base::ErrorCode::kOk) {
    return;
  }
  if (&proc == consumer_proc_) {
    // Consumer death breaks the whole group (there is nobody left to
    // deliver to): sweep every in-flight grant and fail every queue.
    broken_ = base::ErrorCode::kCalleeFailed;
    for (auto& cap : sender_caps_) {
      if (cap.has_value()) {
        DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
        cap.reset();
      }
    }
    for (auto& cap : rcaps_) {
      if (cap.has_value()) {
        DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
        cap.reset();
      }
    }
    for (uint32_t p = 0; p < producer_count(); ++p) {
      kernel_.codoms().revocations().RevokeAllForOwner(owner_key_[p]);
    }
    kernel_.codoms().revocations().RevokeAllForOwner(consumer_owner_key_);
    free_->Fail(base::ErrorCode::kCalleeFailed);
    desc_->Fail(base::ErrorCode::kCalleeFailed);
    while (os::Thread* t = credit_waiters_.WakeOneThread()) {
      (void)kernel_.MakeRunnable(*t, std::nullopt);
    }
    return;
  }
  // Producer death: excise that producer alone. Slots it had acquired but
  // not yet published return to the pool (their write grants revoked); its
  // published messages stay — the payload is immutable and consumer-owned by
  // the time a descriptor exists, and late releases refund nobody (the
  // owner-key generation check in DropDelivery). Everybody else's grants,
  // credits and the consumer FIFO are untouched — the group keeps flowing.
  bool any = false;
  for (uint32_t p = 0; p < producer_count(); ++p) {
    if (producer_procs_[p] != &proc || !alive_[p]) {
      continue;
    }
    any = true;
    alive_[p] = false;
    for (uint32_t i = 0; i < cfg_.slots; ++i) {
      if (slot_owner_[i] != p || slot_owner_key_[i] != owner_key_[p] ||
          !sender_caps_[i].has_value()) {
        continue;
      }
      // Acquired (or mid-send) and never published: revoke the write grant,
      // drop any planned-but-unpublished read grant, recycle the slot.
      DIPC_CHECK(kernel_.codoms().CapRevoke(*sender_caps_[i]).ok());
      sender_caps_[i].reset();
      if (rcaps_[i].has_value()) {
        DIPC_CHECK(kernel_.codoms().CapRevoke(*rcaps_[i]).ok());
        rcaps_[i].reset();
      }
      slot_owner_[i] = kNoProducer;
      free_->PushNoEnv(i);
    }
    kernel_.codoms().revocations().RevokeAllForOwner(owner_key_[p]);
  }
  if (any) {
    // Parked threads of the dead incarnation must wake to see kCalleeFailed
    // (the generation check turns them away).
    while (os::Thread* t = credit_waiters_.WakeOneThread()) {
      (void)kernel_.MakeRunnable(*t, std::nullopt);
    }
  }
}

base::Status FanInChannel::RebindProducer(uint32_t producer, os::Process& proc) {
  if (producer >= producer_count() || !proc.dipc_enabled()) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    return broken_;
  }
  if (closed_) {
    return base::ErrorCode::kBrokenChannel;
  }
  if (alive_[producer]) {
    // Only a slot OnProcessDeath already swept may be rebound: the sweep is
    // what guarantees no grant of the old incarnation survives.
    return base::ErrorCode::kInvalidArgument;
  }
  codoms::AplTable& apl = kernel_.codoms().apl_table();
  apl.Grant(proc.default_domain(), ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(proc.default_domain(), rt_tag_, codoms::Perm::kCall);
  producer_procs_[producer] = &proc;
  // Fresh owner key: the dead incarnation's counters stay bulk-revoked under
  // the old key, and its still-queued messages release against the old
  // generation (no credit refund bleeds into the fresh line).
  owner_key_[producer] = NextOwnerKey();
  for (auto& tmpl : wcap_tmpl_[producer]) {
    // Every template points at a revoked counter; the next grant re-mints
    // cold and re-tags it with the new owner key.
    tmpl.reset();
  }
  credits_[producer] = credit_line_;
  m_tx_credits_[producer]->Set(static_cast<int64_t>(credit_line_));
  alive_[producer] = true;
  // No descriptor-FIFO swap (unlike RebindReceiver): the FIFO belongs to the
  // consumer and never failed. Parked producers re-check their gates.
  while (os::Thread* t = credit_waiters_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
  return base::Status::Ok();
}

}  // namespace dipc::chan
