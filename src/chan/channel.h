// Capability-granted zero-copy channels on the dIPC global VAS.
//
// A Channel moves bulk payloads between two dIPC-enabled processes without
// copying and without per-message kernel crossings, by transferring
// *ownership* of fixed message buffers instead of bytes (the paper's
// immutability-by-ownership design, §3/§5, applied to streaming IPC):
//
//   - Message buffers live in a dedicated *data domain* that neither
//     endpoint's APL can reach. Payload access happens exclusively through
//     CODOMs asynchronous capabilities (§4.2) held in capability registers.
//   - Capabilities are minted by a trusted *channel runtime* domain (the
//     only domain with an APL grant over the data domain) — the same
//     trusted-intermediary pattern as dIPC's proxies, entered by a plain
//     cross-domain call at function-call cost.
//   - Send revokes the sender's write capability (one revocation-counter
//     bump: immediate, unprivileged) and publishes a *read-only* capability
//     for the receiver through a capability-storage descriptor slot. The
//     payload never moves; cost is O(1) in message size.
//   - Control flow (descriptor queue + free-buffer queue) is an MpmcQueue
//     pair in a control segment both endpoint domains can access; blocking
//     uses the futex path, so an idle endpoint costs nothing.
//
// Epoch-cached grants: each buffer's write and read capabilities are minted
// through the runtime's APL exactly once (first use) and then *cached*.
// Ownership rotates by revocation-counter arithmetic alone — Send/Release
// bump the loser's counter (revoke) and the runtime re-snapshots the cached
// capability against the counter's current value when the buffer changes
// hands again (epoch rebind, Codoms::CapRebind). The steady-state hot path
// therefore touches no mint and no APL traversal. The cached read view
// covers the whole buffer (the descriptor carries the message length); the
// immutability guarantee is unchanged since the view is read-only.
//
// Batching: AcquireBufBatch/SendBatch/RecvBatch/ReleaseBatch move N
// messages per call, paying one control-queue operation, one
// cost-accounting charge, one runtime entry and at most one futex wake per
// batch — O(1/batch) software overhead instead of O(1/message). The
// single-message Send/Recv are the batch paths with N=1.
//
// Dead peers: channels register a teardown hook with core::Dipc. When
// KillProcess reaps an endpoint process, every in-flight capability is
// revoked and blocked Send/Recv calls wake with kCalleeFailed (KCS-style
// unwinding surfaced as an error code, §5.2.1).
#ifndef DIPC_CHAN_CHANNEL_H_
#define DIPC_CHAN_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "base/result.h"
#include "chan/mpmc_queue.h"
#include "chan/segment.h"
#include "codoms/capability.h"
#include "dipc/dipc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

struct ChannelConfig {
  uint32_t slots = 8;            // in-flight message buffers
  uint64_t buf_bytes = 1 << 16;  // payload capacity per buffer
  // Optional pre-allocated domain-tag trio, shared between channels that
  // express the same trust relationship (e.g. many per-worker channels
  // between the same two tiers). Sharing keeps the per-CPU APL cache (32
  // entries, §4.3) from thrashing when a workload opens hundreds of
  // channels. kInvalidDomainTag (the default) allocates a fresh trio.
  hw::DomainTag ctrl_tag = hw::kInvalidDomainTag;
  hw::DomainTag data_tag = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag = hw::kInvalidDomainTag;
};

// A buffer the sender owns (write capability in register kSenderCapReg).
// `tctx` is the packed request trace context (chan/desc.h PackTraceWord):
// nonzero values ride the descriptor's side-band word to the receiver,
// correlating the hop with the originating fabric call. 0 = untraced.
struct SendBuf {
  hw::VirtAddr va = 0;
  uint64_t capacity = 0;
  uint32_t index = 0;
  uint64_t tctx = 0;
};

// A buffer plus its payload length, for SendBatch.
struct SendItem {
  SendBuf buf;
  uint64_t len = 0;
};

// A received message (read capability in register kReceiverCapReg). `tctx`
// carries the sender's packed trace context, 0 when untraced.
struct Msg {
  hw::VirtAddr va = 0;
  uint64_t len = 0;
  uint32_t index = 0;
  uint64_t tctx = 0;
};

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  // Capability-register convention for channel ownership caps.
  static constexpr uint32_t kSenderCapReg = 6;
  static constexpr uint32_t kReceiverCapReg = 7;

  // Creates a unidirectional sender->receiver channel between two
  // dIPC-enabled processes in `dipc`'s global VAS, and registers dead-peer
  // teardown with the runtime.
  static base::Result<std::shared_ptr<Channel>> Create(core::Dipc& dipc, os::Process& sender,
                                                       os::Process& receiver,
                                                       ChannelConfig cfg = {});

  // ---- Sender side ----

  // Blocks until a free buffer is available, grants the calling thread a
  // write capability for it (epoch rebind on the warm path), and hands it
  // over.
  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env, os::Deadline deadline = {});

  // Batched acquire: blocks for the first free buffer, then takes up to
  // `max_n` without blocking again. One queue op, one runtime entry and one
  // accounting charge for the whole batch. The write capability of the
  // *last* buffer is loaded into kSenderCapReg; use BindSendCap to switch
  // between the batch's buffers while filling them.
  sim::Task<base::Result<std::vector<SendBuf>>> AcquireBufBatch(os::Env env, uint32_t max_n,
                                                              os::Deadline deadline = {});

  // Publishes `len` bytes of `buf` to the receiver: revokes the sender's
  // capability (subsequent sender access faults) and grants a read-only
  // capability to the receiving side. O(1) in `len`.
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len,
                               os::Deadline deadline = {});

  // Batched publish: grants and publishes every item's read view, ends the
  // sender's ownership of all of them, then pushes all descriptors with one
  // queue operation and at most one futex wake. All-or-nothing up to the
  // publish: on a pre-publish error the sender still owns every buffer.
  sim::Task<base::Status> SendBatch(os::Env env, std::span<const SendItem> items,
                                    os::Deadline deadline = {});

  // Gives up an acquired-but-unsent buffer: revokes the sender's write
  // capability and returns the slot to the free pool, unblocking a waiting
  // AcquireBuf. The escape hatch for producers that acquire first and only
  // then discover they cannot fill the buffer (e.g. the payload source
  // died) — dropping the SendBuf on the floor instead leaks the slot and
  // eventually wedges every producer.
  sim::Task<base::Status> Abandon(os::Env env, const SendBuf& buf);
  sim::Task<base::Status> AbandonBatch(os::Env env, std::span<const SendBuf> bufs);

  // Re-loads `buf`'s write capability into kSenderCapReg (a capability
  // register move — no cost, no blocking). Needed when filling a batch of
  // acquired buffers, since the register holds one capability at a time.
  void BindSendCap(os::Thread& t, const SendBuf& buf) const;

  // Orderly shutdown: the receiver drains in-flight messages, then Recv
  // fails with kBrokenChannel.
  void Close();

  // ---- Receiver side ----

  // Blocks until a message arrives; loads its capability into the calling
  // thread's register file. Fails with kBrokenChannel after Close() drains,
  // or kCalleeFailed immediately if a peer process died.
  sim::Task<base::Result<Msg>> Recv(os::Env env, os::Deadline deadline = {});

  // Batched receive: blocks for the first message, then drains up to
  // `max_n` in-flight messages without blocking again. One queue op and one
  // accounting charge cover all the capability loads. The *first* message's
  // capability lands in kReceiverCapReg; use BindRecvCap to walk the batch.
  sim::Task<base::Result<std::vector<Msg>>> RecvBatch(os::Env env, uint32_t max_n,
                                                      os::Deadline deadline = {});

  // Returns the buffer to the free pool: revokes the receiver's capability
  // and unblocks a sender waiting in AcquireBuf.
  sim::Task<base::Status> Release(os::Env env, const Msg& msg);

  // Batched release: one revoke per message but one queue operation, one
  // accounting charge and at most one futex wake for the whole batch.
  sim::Task<base::Status> ReleaseBatch(os::Env env, std::span<const Msg> msgs);

  // Re-loads `msg`'s read capability into kReceiverCapReg (register move —
  // no cost). Needed when consuming a RecvBatch result message by message.
  void BindRecvCap(os::Thread& t, const Msg& msg) const;

  // ---- Introspection ----

  os::Process& sender_process() { return *sender_proc_; }
  os::Process& receiver_process() { return *receiver_proc_; }
  const ChannelConfig& config() const { return cfg_; }
  base::ErrorCode broken() const { return broken_; }
  uint64_t sends() const { return sends_; }
  uint64_t recvs() const { return recvs_; }
  // Full capability mints performed by this channel (2 per slot over a
  // channel's lifetime once warm: one write + one read template).
  uint64_t cold_mints() const { return cold_mints_; }
  // Recorded in-flight grants whose epoch is still live — 0 after teardown
  // means the crash unwound every grant (test support).
  uint64_t LiveGrantCount() const;
  hw::VirtAddr buf_va(uint32_t index) const { return data_seg_.base + index * buf_stride_; }
  // Id under which this channel's metrics ("chan/<id>/...") and trace
  // events are attributed.
  uint32_t obs_id() const { return obs_id_; }

  // Dead-peer teardown (fired via the core::Dipc death hook).
  void OnProcessDeath(os::Process& proc);

 private:
  Channel(core::Dipc& dipc, os::Process& sender, os::Process& receiver, ChannelConfig cfg);

  // Grants ownership of slot `index` with `rights`, inside the runtime
  // domain: a full CapFromApl mint on first use (APL traversal), an epoch
  // rebind of the cached capability afterwards. Accumulates the capability
  // cost only — callers charge the cross-domain call into the runtime once
  // per batch.
  base::Result<codoms::Capability> GrantCap(os::Env env, uint32_t index, codoms::Perm rights,
                                            sim::Duration* cost);

  hw::VirtAddr CapSlotVa(uint32_t index) const {
    return cap_seg_.base + index * codoms::kCapMemBytes;
  }

  os::Kernel& kernel_;
  os::Process* sender_proc_;
  os::Process* receiver_proc_;
  ChannelConfig cfg_;
  uint64_t buf_stride_ = 0;  // page-rounded buf_bytes
  hw::DomainTag ctrl_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag data_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag_ = hw::kInvalidDomainTag;
  Segment data_seg_;
  Segment cap_seg_;
  std::unique_ptr<MpmcQueue> desc_;  // packed {index, len} descriptors
  std::unique_ptr<MpmcQueue> free_;  // free buffer indices
  // In-flight ownership capabilities, by buffer index (the registers hold
  // the architecturally visible copies; these drive revocation).
  std::vector<std::optional<codoms::Capability>> sender_caps_;
  std::vector<std::optional<codoms::Capability>> receiver_caps_;
  // Epoch-cached per-slot capability templates, minted once through the
  // runtime's APL and re-snapshotted (never re-minted) on every rotation.
  std::vector<std::optional<codoms::Capability>> wcap_tmpl_;
  std::vector<std::optional<codoms::Capability>> rcap_tmpl_;
  // Per-slot trace-context side-band (the descriptor's spare header word):
  // written at publish, read at Recv. Slot ownership moves with the
  // descriptor, so sender and receiver never touch the same entry at once.
  std::vector<uint64_t> tctx_;
  base::ErrorCode broken_ = base::ErrorCode::kOk;
  uint64_t sends_ = 0;
  uint64_t recvs_ = 0;
  uint64_t cold_mints_ = 0;
  // Registry handles, registered once in Create (the getters above stay the
  // source of truth for tests; the registry adds the exported view).
  void RegisterMetrics();
  uint32_t obs_id_ = 0;
  obs::Counter* m_sends_ = nullptr;
  obs::Counter* m_recvs_ = nullptr;
  obs::Counter* m_acquires_ = nullptr;
  obs::Counter* m_releases_ = nullptr;
  obs::Counter* m_cold_mints_ = nullptr;
  obs::Counter* m_rebinds_ = nullptr;
  obs::Counter* m_revokes_ = nullptr;
  obs::Histogram* m_send_batch_ = nullptr;
  obs::Histogram* m_recv_batch_ = nullptr;
};

// fd-table endpoints, so channel ends can be delegated between processes
// (SCM_RIGHTS-style or returned from a dIPC entry call; §5.2.2).
class SenderEndpoint : public os::KernelObject {
 public:
  explicit SenderEndpoint(std::shared_ptr<Channel> ch) : ch_(std::move(ch)) {}
  std::string_view type_name() const override { return "chan[send]"; }
  Channel& channel() { return *ch_; }
  std::shared_ptr<Channel> shared() { return ch_; }

  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env, os::Deadline dl = {}) {
    return ch_->AcquireBuf(env, dl);
  }
  sim::Task<base::Result<std::vector<SendBuf>>> AcquireBufBatch(os::Env env, uint32_t max_n,
                                                                os::Deadline dl = {}) {
    return ch_->AcquireBufBatch(env, max_n, dl);
  }
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len,
                               os::Deadline dl = {}) {
    return ch_->Send(env, buf, len, dl);
  }
  sim::Task<base::Status> SendBatch(os::Env env, std::span<const SendItem> items,
                                    os::Deadline dl = {}) {
    return ch_->SendBatch(env, items, dl);
  }
  sim::Task<base::Status> Abandon(os::Env env, const SendBuf& buf) {
    return ch_->Abandon(env, buf);
  }
  sim::Task<base::Status> AbandonBatch(os::Env env, std::span<const SendBuf> bufs) {
    return ch_->AbandonBatch(env, bufs);
  }
  void BindSendCap(os::Thread& t, const SendBuf& buf) const { ch_->BindSendCap(t, buf); }
  void Close() { ch_->Close(); }

 private:
  std::shared_ptr<Channel> ch_;
};

class ReceiverEndpoint : public os::KernelObject {
 public:
  explicit ReceiverEndpoint(std::shared_ptr<Channel> ch) : ch_(std::move(ch)) {}
  std::string_view type_name() const override { return "chan[recv]"; }
  Channel& channel() { return *ch_; }
  std::shared_ptr<Channel> shared() { return ch_; }

  sim::Task<base::Result<Msg>> Recv(os::Env env, os::Deadline dl = {}) {
    return ch_->Recv(env, dl);
  }
  sim::Task<base::Result<std::vector<Msg>>> RecvBatch(os::Env env, uint32_t max_n,
                                                      os::Deadline dl = {}) {
    return ch_->RecvBatch(env, max_n, dl);
  }
  sim::Task<base::Status> Release(os::Env env, const Msg& msg) { return ch_->Release(env, msg); }
  sim::Task<base::Status> ReleaseBatch(os::Env env, std::span<const Msg> msgs) {
    return ch_->ReleaseBatch(env, msgs);
  }
  void BindRecvCap(os::Thread& t, const Msg& msg) const { ch_->BindRecvCap(t, msg); }

 private:
  std::shared_ptr<Channel> ch_;
};

// ---- Duplex channels ----
//
// A DuplexChannel pairs a forward ring (a -> b, requests) with a reverse
// ring (b -> a, completions) sharing one domain-tag trio, giving
// request/response traffic a single object with two directional endpoints.
// Each side *sends* on its outbound ring and *receives* on its inbound one;
// the rings keep their independent slot pools, so a burst of requests can
// be in flight while completions stream back (the driver "doorbell +
// completion queue" shape of §7.3). Either peer's death breaks both rings
// through their own Dipc death hooks.
class DuplexEndpoint;

class DuplexChannel {
 public:
  // Creates the paired rings between `a` (the initiator/client side) and
  // `b` (the responder/server side). `fwd` configures a->b, `rev` b->a; by
  // default the reverse ring mirrors the forward one. The two rings share
  // one freshly allocated domain-tag trio unless `fwd` pins one.
  static base::Result<std::shared_ptr<DuplexChannel>> Create(core::Dipc& dipc, os::Process& a,
                                                             os::Process& b, ChannelConfig fwd = {},
                                                             std::optional<ChannelConfig> rev =
                                                                 std::nullopt);

  Channel& forward() { return *fwd_; }
  Channel& reverse() { return *rev_; }
  std::shared_ptr<Channel> forward_shared() { return fwd_; }
  std::shared_ptr<Channel> reverse_shared() { return rev_; }

  // Endpoint views: the a-side sends requests and receives completions; the
  // b-side is the mirror image.
  std::shared_ptr<DuplexEndpoint> a_end();
  std::shared_ptr<DuplexEndpoint> b_end();

  // Orderly shutdown of both directions.
  void Close() {
    fwd_->Close();
    rev_->Close();
  }

  base::ErrorCode broken() const {
    return fwd_->broken() != base::ErrorCode::kOk ? fwd_->broken() : rev_->broken();
  }

 private:
  DuplexChannel(std::shared_ptr<Channel> fwd, std::shared_ptr<Channel> rev)
      : fwd_(std::move(fwd)), rev_(std::move(rev)) {}

  std::shared_ptr<Channel> fwd_;
  std::shared_ptr<Channel> rev_;
};

// One side of a duplex channel: batched send ops go out on `out`, batched
// receive ops drain `in`. An fd-table object, so duplex ends delegate
// between processes exactly like the unidirectional endpoints (§5.2.2).
class DuplexEndpoint : public os::KernelObject {
 public:
  DuplexEndpoint(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  std::string_view type_name() const override { return "chan[duplex]"; }
  Channel& out() { return *out_; }
  Channel& in() { return *in_; }

  // Outbound (this side's requests or completions).
  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env, os::Deadline dl = {}) {
    return out_->AcquireBuf(env, dl);
  }
  sim::Task<base::Result<std::vector<SendBuf>>> AcquireBufBatch(os::Env env, uint32_t max_n,
                                                                os::Deadline dl = {}) {
    return out_->AcquireBufBatch(env, max_n, dl);
  }
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len,
                               os::Deadline dl = {}) {
    return out_->Send(env, buf, len, dl);
  }
  sim::Task<base::Status> Abandon(os::Env env, const SendBuf& buf) {
    return out_->Abandon(env, buf);
  }
  sim::Task<base::Status> AbandonBatch(os::Env env, std::span<const SendBuf> bufs) {
    return out_->AbandonBatch(env, bufs);
  }
  sim::Task<base::Status> SendBatch(os::Env env, std::span<const SendItem> items,
                                    os::Deadline dl = {}) {
    return out_->SendBatch(env, items, dl);
  }
  void BindSendCap(os::Thread& t, const SendBuf& buf) const { out_->BindSendCap(t, buf); }

  // Inbound (the peer's traffic).
  sim::Task<base::Result<Msg>> Recv(os::Env env, os::Deadline dl = {}) {
    return in_->Recv(env, dl);
  }
  sim::Task<base::Result<std::vector<Msg>>> RecvBatch(os::Env env, uint32_t max_n,
                                                      os::Deadline dl = {}) {
    return in_->RecvBatch(env, max_n, dl);
  }
  sim::Task<base::Status> Release(os::Env env, const Msg& msg) { return in_->Release(env, msg); }
  sim::Task<base::Status> ReleaseBatch(os::Env env, std::span<const Msg> msgs) {
    return in_->ReleaseBatch(env, msgs);
  }
  void BindRecvCap(os::Thread& t, const Msg& msg) const { in_->BindRecvCap(t, msg); }

  void Close() { out_->Close(); }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

inline std::shared_ptr<DuplexEndpoint> DuplexChannel::a_end() {
  return std::make_shared<DuplexEndpoint>(fwd_, rev_);
}
inline std::shared_ptr<DuplexEndpoint> DuplexChannel::b_end() {
  return std::make_shared<DuplexEndpoint>(rev_, fwd_);
}

}  // namespace dipc::chan

#endif  // DIPC_CHAN_CHANNEL_H_
