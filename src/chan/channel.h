// Capability-granted zero-copy channels on the dIPC global VAS.
//
// A Channel moves bulk payloads between two dIPC-enabled processes without
// copying and without per-message kernel crossings, by transferring
// *ownership* of fixed message buffers instead of bytes (the paper's
// immutability-by-ownership design, §3/§5, applied to streaming IPC):
//
//   - Message buffers live in a dedicated *data domain* that neither
//     endpoint's APL can reach. Payload access happens exclusively through
//     CODOMs asynchronous capabilities (§4.2) held in capability registers.
//   - Capabilities are minted by a trusted *channel runtime* domain (the
//     only domain with an APL grant over the data domain) — the same
//     trusted-intermediary pattern as dIPC's proxies, entered by a plain
//     cross-domain call at function-call cost.
//   - Send revokes the sender's write capability (one revocation-counter
//     bump: immediate, unprivileged) and publishes a fresh *read-only*
//     capability for the receiver through a capability-storage descriptor
//     slot. The payload never moves; cost is O(1) in message size.
//   - Control flow (descriptor queue + free-buffer queue) is an MpmcQueue
//     pair in a control segment both endpoint domains can access; blocking
//     uses the futex path, so an idle endpoint costs nothing.
//
// Dead peers: channels register a teardown hook with core::Dipc. When
// KillProcess reaps an endpoint process, every in-flight capability is
// revoked and blocked Send/Recv calls wake with kCalleeFailed (KCS-style
// unwinding surfaced as an error code, §5.2.1).
#ifndef DIPC_CHAN_CHANNEL_H_
#define DIPC_CHAN_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "base/result.h"
#include "chan/mpmc_queue.h"
#include "chan/segment.h"
#include "codoms/capability.h"
#include "dipc/dipc.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

struct ChannelConfig {
  uint32_t slots = 8;            // in-flight message buffers
  uint64_t buf_bytes = 1 << 16;  // payload capacity per buffer
};

// A buffer the sender owns (write capability in register kSenderCapReg).
struct SendBuf {
  hw::VirtAddr va = 0;
  uint64_t capacity = 0;
  uint32_t index = 0;
};

// A received message (read capability in register kReceiverCapReg).
struct Msg {
  hw::VirtAddr va = 0;
  uint64_t len = 0;
  uint32_t index = 0;
};

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  // Capability-register convention for channel ownership caps.
  static constexpr uint32_t kSenderCapReg = 6;
  static constexpr uint32_t kReceiverCapReg = 7;

  // Creates a unidirectional sender->receiver channel between two
  // dIPC-enabled processes in `dipc`'s global VAS, and registers dead-peer
  // teardown with the runtime.
  static base::Result<std::shared_ptr<Channel>> Create(core::Dipc& dipc, os::Process& sender,
                                                       os::Process& receiver,
                                                       ChannelConfig cfg = {});

  // ---- Sender side ----

  // Blocks until a free buffer is available, mints a write capability for
  // it, and hands it to the calling thread.
  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env);

  // Publishes `len` bytes of `buf` to the receiver: revokes the sender's
  // capability (subsequent sender access faults) and grants a read-only
  // capability to the receiving side. O(1) in `len`.
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len);

  // Orderly shutdown: the receiver drains in-flight messages, then Recv
  // fails with kBrokenChannel.
  void Close();

  // ---- Receiver side ----

  // Blocks until a message arrives; loads its capability into the calling
  // thread's register file. Fails with kBrokenChannel after Close() drains,
  // or kCalleeFailed immediately if a peer process died.
  sim::Task<base::Result<Msg>> Recv(os::Env env);

  // Returns the buffer to the free pool: revokes the receiver's capability
  // and unblocks a sender waiting in AcquireBuf.
  sim::Task<base::Status> Release(os::Env env, const Msg& msg);

  // ---- Introspection ----

  os::Process& sender_process() { return *sender_proc_; }
  os::Process& receiver_process() { return *receiver_proc_; }
  const ChannelConfig& config() const { return cfg_; }
  base::ErrorCode broken() const { return broken_; }
  uint64_t sends() const { return sends_; }
  uint64_t recvs() const { return recvs_; }
  hw::VirtAddr buf_va(uint32_t index) const { return data_seg_.base + index * buf_stride_; }

  // Dead-peer teardown (fired via the core::Dipc death hook).
  void OnProcessDeath(os::Process& proc);

 private:
  Channel(core::Dipc& dipc, os::Process& sender, os::Process& receiver, ChannelConfig cfg);

  // Simulates the cross-domain call into the trusted channel runtime that
  // mints an async capability over [base, base+size) (§4.2). Pure user
  // level: two domain switches (function-call cost) plus cap creation.
  base::Result<codoms::Capability> RuntimeMintCap(os::Env env, hw::VirtAddr base, uint64_t size,
                                                  codoms::Perm rights, sim::Duration* cost);

  hw::VirtAddr CapSlotVa(uint32_t index) const {
    return cap_seg_.base + index * codoms::kCapMemBytes;
  }

  os::Kernel& kernel_;
  os::Process* sender_proc_;
  os::Process* receiver_proc_;
  ChannelConfig cfg_;
  uint64_t buf_stride_ = 0;  // page-rounded buf_bytes
  hw::DomainTag ctrl_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag data_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag_ = hw::kInvalidDomainTag;
  Segment data_seg_;
  Segment cap_seg_;
  std::unique_ptr<MpmcQueue> desc_;  // packed {index, len} descriptors
  std::unique_ptr<MpmcQueue> free_;  // free buffer indices
  // In-flight ownership capabilities, by buffer index (the registers hold
  // the architecturally visible copies; these drive revocation).
  std::vector<std::optional<codoms::Capability>> sender_caps_;
  std::vector<std::optional<codoms::Capability>> receiver_caps_;
  base::ErrorCode broken_ = base::ErrorCode::kOk;
  uint64_t sends_ = 0;
  uint64_t recvs_ = 0;
};

// fd-table endpoints, so channel ends can be delegated between processes
// (SCM_RIGHTS-style or returned from a dIPC entry call; §5.2.2).
class SenderEndpoint : public os::KernelObject {
 public:
  explicit SenderEndpoint(std::shared_ptr<Channel> ch) : ch_(std::move(ch)) {}
  std::string_view type_name() const override { return "chan[send]"; }
  Channel& channel() { return *ch_; }
  std::shared_ptr<Channel> shared() { return ch_; }

  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env) { return ch_->AcquireBuf(env); }
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len) {
    return ch_->Send(env, buf, len);
  }
  void Close() { ch_->Close(); }

 private:
  std::shared_ptr<Channel> ch_;
};

class ReceiverEndpoint : public os::KernelObject {
 public:
  explicit ReceiverEndpoint(std::shared_ptr<Channel> ch) : ch_(std::move(ch)) {}
  std::string_view type_name() const override { return "chan[recv]"; }
  Channel& channel() { return *ch_; }
  std::shared_ptr<Channel> shared() { return ch_; }

  sim::Task<base::Result<Msg>> Recv(os::Env env) { return ch_->Recv(env); }
  sim::Task<base::Status> Release(os::Env env, const Msg& msg) { return ch_->Release(env, msg); }

 private:
  std::shared_ptr<Channel> ch_;
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_CHANNEL_H_
