// One-producer / N-receiver fan-out channels with per-receiver capability
// grants and credit-based flow control.
//
// The paper's server scenarios (OLTP tiers, isolated drivers) are
// one-to-many: one producer tier feeding many worker domains. A
// FanOutChannel extends the point-to-point Channel design to that shape
// while keeping its zero-copy ownership-transfer semantics:
//
//   - Message buffers live in one data domain; descriptors travel through a
//     *per-receiver* MpmcQueue, so each receiver has its own FIFO and its
//     own blocking behavior.
//   - Each receiver holds its *own* epoch-rebindable read capability per
//     slot (its own revocation counter, its own capability-storage slot).
//     Revoking one receiver therefore never touches another's grants: a
//     dead receiver is excised individually (via the core::Dipc death hook)
//     and the group keeps flowing. The per-receiver counters are tagged
//     with an owner key in the RevocationTable, so teardown is one bulk
//     RevokeAllForOwner and tests can assert per receiver that no grant
//     survived.
//   - Flow control is credit-based: every receiver starts with `slots`
//     credits, a delivery consumes one, ReleaseBatch returns them. The
//     producer's AcquireBufBatch/SendBatch block only when the *slowest
//     live* receiver is out of credit (LagPolicy::kBlock); under
//     LagPolicy::kDropSlowest a zero-credit receiver is skipped instead
//     (counted in dropped(r)) and the group runs at the speed of the
//     receivers that keep up.
//   - Delivery modes: Send/SendBatch broadcast to every live receiver (a
//     slot returns to the free pool when the last live receiver releases
//     it); SendTo/SendToBatch deliver to one receiver (sharding — the
//     paper's one-tier-feeds-N-workers request distribution). NextShard()
//     round-robins over live receivers.
//
// Batching, epoch-cached grants, futex blocking and the trusted-runtime
// cost model all mirror Channel (see channel.h); per batch the producer
// pays one control-queue op per receiver touched, one runtime entry and at
// most one futex wake per receiver queue.
#ifndef DIPC_CHAN_FANOUT_H_
#define DIPC_CHAN_FANOUT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "base/result.h"
#include "chan/channel.h"
#include "chan/mpmc_queue.h"
#include "chan/segment.h"
#include "codoms/capability.h"
#include "dipc/dipc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

// What the producer does when a live receiver has no credit left.
enum class LagPolicy : uint8_t {
  kBlock,        // wait for the slowest live receiver to return credit
  kDropSlowest,  // skip zero-credit receivers (their messages are dropped)
};

struct FanOutConfig {
  uint32_t slots = 8;            // in-flight message buffers (shared pool)
  uint64_t buf_bytes = 1 << 16;  // payload capacity per buffer
  // Per-receiver credit line (0 = slots). A receiver can hold at most this
  // many unreleased deliveries, which caps how much of the shared pool one
  // laggard can pin — set it below `slots` so kDropSlowest can actually keep
  // the group flowing past a receiver that stops releasing.
  uint32_t credits = 0;
  LagPolicy lag_policy = LagPolicy::kBlock;
  // Optional shared domain-tag trio (see ChannelConfig).
  hw::DomainTag ctrl_tag = hw::kInvalidDomainTag;
  hw::DomainTag data_tag = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag = hw::kInvalidDomainTag;
};

class FanOutChannel : public std::enable_shared_from_this<FanOutChannel> {
 public:
  static constexpr uint32_t kSenderCapReg = Channel::kSenderCapReg;
  static constexpr uint32_t kReceiverCapReg = Channel::kReceiverCapReg;

  // Creates a producer -> {receivers} fan-out channel in `dipc`'s global VAS
  // and registers dead-peer teardown for every endpoint process.
  static base::Result<std::shared_ptr<FanOutChannel>> Create(
      core::Dipc& dipc, os::Process& producer, std::span<os::Process* const> receivers,
      FanOutConfig cfg = {});

  // ---- Producer side ----

  // Credit-gated batched acquire: blocks until the admission gate opens
  // (kBlock: every live receiver has credit; kDropSlowest: at least one
  // does), then pops up to `max_n` free buffers and grants write
  // capabilities (epoch rebind on the warm path), exactly like
  // Channel::AcquireBufBatch. A finite `deadline` bounds both the credit
  // wait and the free-pool pop with kTimedOut (no grants held on a timeout).
  sim::Task<base::Result<SendBuf>> AcquireBuf(os::Env env, os::Deadline deadline = {});
  sim::Task<base::Result<std::vector<SendBuf>>> AcquireBufBatch(os::Env env, uint32_t max_n,
                                                                os::Deadline deadline = {});

  // Broadcast publish: every live receiver with credit gets its own
  // read-only capability over the (immutable) payload; the sender's write
  // ownership ends before any receiver can observe the message. Blocks per
  // the lag policy; fails with kCalleeFailed when no live receiver remains.
  // A finite `deadline` bounds the credit wait: kTimedOut means nothing was
  // published and the producer still owns every buffer (retry or abandon).
  sim::Task<base::Status> Send(os::Env env, const SendBuf& buf, uint64_t len,
                               os::Deadline deadline = {});
  sim::Task<base::Status> SendBatch(os::Env env, std::span<const SendItem> items,
                                    os::Deadline deadline = {});

  // Sharded publish to one receiver (waits for that receiver's credit —
  // sharded requests are never dropped). Fails with kCalleeFailed if the
  // receiver died; the caller reshards via NextShard().
  //
  // Ownership contract on failure, for every Send flavor: while broken()
  // == kOk the producer still owns every buffer of a failed send (a dead
  // shard, a denied grant) and may retry it — SendTo to another shard — or
  // hand it back with AbandonBufBatch. Once broken() != kOk teardown has
  // already swept the grants and the buffers are gone with the channel.
  sim::Task<base::Status> SendTo(os::Env env, const SendBuf& buf, uint64_t len,
                                 uint32_t receiver, os::Deadline deadline = {});
  sim::Task<base::Status> SendToBatch(os::Env env, std::span<const SendItem> items,
                                      uint32_t receiver, os::Deadline deadline = {});

  // Returns acquired-but-unsent buffers to the free pool (revoking the
  // write grants). The producer-side give-up path when every shard it
  // would retry is gone — abandoning a buffer without this leaks its slot
  // and a live write capability for the life of the channel.
  sim::Task<base::Status> AbandonBuf(os::Env env, const SendBuf& buf);
  sim::Task<base::Status> AbandonBufBatch(os::Env env, std::span<const SendBuf> bufs);

  // Round-robin over live receivers (sharding helper). Returns the receiver
  // count if none is alive.
  uint32_t NextShard();

  void BindSendCap(os::Thread& t, const SendBuf& buf) const;

  // Orderly shutdown: receivers drain, then see kBrokenChannel.
  void Close();

  // ---- Receiver side (every call names the receiver index) ----

  sim::Task<base::Result<Msg>> Recv(os::Env env, uint32_t receiver,
                                    os::Deadline deadline = {});
  sim::Task<base::Result<std::vector<Msg>>> RecvBatch(os::Env env, uint32_t receiver,
                                                      uint32_t max_n,
                                                      os::Deadline deadline = {});

  // Returns credit to the producer and the slot to the free pool once the
  // last live receiver released it.
  sim::Task<base::Status> Release(os::Env env, uint32_t receiver, const Msg& msg);
  sim::Task<base::Status> ReleaseBatch(os::Env env, uint32_t receiver,
                                       std::span<const Msg> msgs);

  void BindRecvCap(os::Thread& t, uint32_t receiver, const Msg& msg) const;

  // ---- Introspection ----

  uint32_t receiver_count() const { return static_cast<uint32_t>(receiver_procs_.size()); }
  uint32_t live_receiver_count() const;
  bool receiver_alive(uint32_t r) const { return r < alive_.size() && alive_[r]; }
  uint32_t credit_line() const { return credit_line_; }
  uint64_t credits(uint32_t r) const { return credits_[r]; }
  uint64_t dropped(uint32_t r) const { return dropped_[r]; }
  // RevocationTable owner key of receiver r's read grants (test support).
  uint64_t receiver_owner(uint32_t r) const { return owner_key_[r]; }
  const FanOutConfig& config() const { return cfg_; }
  base::ErrorCode broken() const { return broken_; }
  uint64_t sends() const { return sends_; }          // messages published
  uint64_t deliveries() const { return deliveries_; }  // per-receiver deliveries
  uint64_t recvs() const { return recvs_; }
  uint64_t cold_mints() const { return cold_mints_; }
  uint64_t blocked_on_credit() const { return blocked_on_credit_; }
  uint64_t LiveGrantCount() const;
  hw::VirtAddr buf_va(uint32_t index) const { return data_seg_.base + index * buf_stride_; }
  // Id under which this group's metrics ("fanout/<id>/...") and trace
  // events are attributed.
  uint32_t obs_id() const { return obs_id_; }

  // Dead-peer teardown (fired via the core::Dipc death hook). A dead
  // receiver is revoked individually; a dead producer breaks the channel.
  void OnProcessDeath(os::Process& proc);

  // Rebinds a dead receiver slot to a fresh process (the supervisor's
  // respawn path). The old receiver must have been excised by OnProcessDeath
  // already. The slot gets a fresh RevocationTable owner key, a fresh
  // descriptor FIFO (the failed one is retired, not destroyed — threads may
  // still be resuming out of it), cleared capability templates, a full
  // credit line, and APL grants for `proc`. Producers parked on credit are
  // re-woken so a kDropSlowest group notices the revived receiver.
  base::Status RebindReceiver(uint32_t receiver, os::Process& proc);

 private:
  FanOutChannel(core::Dipc& dipc, os::Process& producer,
                std::span<os::Process* const> receivers, FanOutConfig cfg);

  // True while the producer must wait before admitting `need` more
  // messages. `target` == receiver_count() evaluates the group gate (kBlock:
  // some live receiver below `need` credits; kDropSlowest: no live receiver
  // with any credit); a specific target gates on that receiver alone.
  bool GateClosed(uint32_t target, uint64_t need) const;
  // Waits (futex path) until the gate opens, the channel closes/breaks, the
  // target dies, or every receiver is gone. Returns the error to surface,
  // or kOk once admitted; kTimedOut when a finite deadline expires with the
  // gate still closed.
  sim::Task<base::ErrorCode> AwaitCredit(os::Env env, uint32_t target, uint64_t need,
                                         os::Deadline deadline);
  // Per-receiver-or-producer grant; mirrors Channel::GrantCap. `receiver` ==
  // receiver_count() grants the producer's write capability.
  base::Result<codoms::Capability> GrantCap(os::Env env, uint32_t index, uint32_t receiver,
                                            codoms::Perm rights, sim::Duration* cost);
  // Shared body of SendBatch/SendToBatch; `target` == receiver_count()
  // broadcasts.
  sim::Task<base::Status> SendCommon(os::Env env, std::span<const SendItem> items,
                                     uint32_t target, os::Deadline deadline);
  // Revokes r's grant over `index` and recycles the slot if r was the last
  // holder; returns true when the slot was freed. `env` may be null-free
  // teardown context (uses PushNoEnv).
  void DropDelivery(uint32_t receiver, uint32_t index, std::vector<uint64_t>* freed);

  hw::VirtAddr CapSlotVa(uint32_t receiver, uint32_t index) const {
    return cap_seg_.base + (uint64_t{receiver} * cfg_.slots + index) * codoms::kCapMemBytes;
  }

  os::Kernel& kernel_;
  os::Process* producer_proc_;
  std::vector<os::Process*> receiver_procs_;
  FanOutConfig cfg_;
  uint64_t buf_stride_ = 0;
  uint32_t credit_line_ = 0;  // cfg_.credits resolved against cfg_.slots
  hw::DomainTag ctrl_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag data_tag_ = hw::kInvalidDomainTag;
  hw::DomainTag rt_tag_ = hw::kInvalidDomainTag;
  Segment data_seg_;
  Segment cap_seg_;  // receivers * slots capability-storage slots
  std::unique_ptr<MpmcQueue> free_;
  std::vector<std::unique_ptr<MpmcQueue>> desc_;  // one descriptor FIFO per receiver
  // Failed FIFOs parked here by RebindReceiver: threads blocked in a retired
  // queue may resume after the swap, so the queue must outlive the rebind.
  std::vector<std::unique_ptr<MpmcQueue>> retired_desc_;
  // Producer-side in-flight write caps + per-slot write templates.
  std::vector<std::optional<codoms::Capability>> sender_caps_;
  std::vector<std::optional<codoms::Capability>> wcap_tmpl_;
  // Per-slot trace-context side-band (chan/desc.h): stamped at publish,
  // read at RecvBatch. Ownership moves with the descriptor, so this is
  // single-writer per slot at any instant.
  std::vector<uint64_t> tctx_;
  // Per-receiver in-flight read caps + templates, [receiver][slot].
  std::vector<std::vector<std::optional<codoms::Capability>>> rcaps_;
  std::vector<std::vector<std::optional<codoms::Capability>>> rcap_tmpl_;
  // Live receivers that still have to release each slot; 0 = slot free or
  // producer-owned.
  std::vector<uint32_t> pending_;
  std::vector<uint64_t> credits_;   // per receiver
  std::vector<bool> alive_;         // per receiver
  std::vector<uint64_t> dropped_;   // per receiver (kDropSlowest skips)
  std::vector<uint64_t> owner_key_;  // per receiver RevocationTable owner
  os::WaitQueue credit_waiters_;
  uint64_t credit_wait_count_ = 0;  // live waiter counter (wake suppression)
  bool closed_ = false;
  base::ErrorCode broken_ = base::ErrorCode::kOk;
  uint32_t rr_next_ = 0;
  uint64_t sends_ = 0;
  uint64_t deliveries_ = 0;
  uint64_t recvs_ = 0;
  uint64_t cold_mints_ = 0;
  uint64_t blocked_on_credit_ = 0;
  // Registry handles ("fanout/<id>/..." plus per-receiver "rx/<r>/...");
  // registered once in Create, the getters above stay the source of truth.
  void RegisterMetrics();
  uint32_t obs_id_ = 0;
  obs::Counter* m_sends_ = nullptr;
  obs::Counter* m_deliveries_ = nullptr;
  obs::Counter* m_recvs_ = nullptr;
  obs::Counter* m_blocked_on_credit_ = nullptr;
  obs::Histogram* m_group_stall_ns_ = nullptr;  // broadcast-gate stalls
  std::vector<obs::Counter*> m_rx_deliveries_;
  std::vector<obs::Counter*> m_rx_drops_;
  std::vector<obs::Gauge*> m_rx_credits_;
  std::vector<obs::Histogram*> m_rx_stall_ns_;  // sharded-gate stalls
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_FANOUT_H_
