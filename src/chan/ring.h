// SPSC byte ring in a VAS-mapped shared segment (zeroipc-style design
// point): data moves producer->consumer entirely at user level, with
// cache/TLB costs charged through the memory hierarchy and *no* per-byte
// kernel copy. Only blocking (ring full/empty) enters the kernel, through
// the futex path.
//
// Requires both endpoint threads to run in processes sharing one page table
// (the dIPC global VAS) with APL access to the ring segment's tag.
#ifndef DIPC_CHAN_RING_H_
#define DIPC_CHAN_RING_H_

#include <cstdint>
#include <memory>

#include "base/result.h"
#include "chan/segment.h"
#include "dipc/dipc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::chan {

class Ring {
 public:
  // Maps a `capacity`-byte data segment through `proc`, tagged `tag`.
  // Callers grant `tag` to both endpoint domains.
  Ring(os::Kernel& kernel, os::Process& proc, uint64_t capacity, hw::DomainTag tag);

  // Blocking write of the full `len` bytes from `src` (loops at the wrap
  // point and when the ring fills). Returns `len` on success, or
  // kBrokenChannel (EPIPE-style, possibly after a partial transfer) once
  // the read end is closed — including while blocked on a full ring. A
  // finite `deadline` bounds every full-ring park: expiry with the ring
  // still full fails with kTimedOut (also possibly after a partial
  // transfer) and bumps ring/<id>/timeouts.
  sim::Task<base::Result<uint64_t>> Write(os::Env env, hw::VirtAddr src, uint64_t len,
                                          os::Deadline deadline = {});

  // Blocking read of up to `len` bytes into `dst`; returns 0 at EOF
  // (producer closed and the ring drained). `len` must be nonzero (a
  // 0-byte read would alias the EOF return). Fails with kBrokenChannel
  // after CloseReadEnd. A finite `deadline` bounds the empty-ring park
  // with kTimedOut.
  sim::Task<base::Result<uint64_t>> Read(os::Env env, hw::VirtAddr dst, uint64_t len,
                                         os::Deadline deadline = {});

  void CloseWriteEnd();
  // Closes the read end: blocked and future writers fail with
  // kBrokenChannel instead of parking forever on a full ring that nobody
  // will ever drain.
  void CloseReadEnd();

  // Dead-peer wiring, mirroring Channel's death hook: the writer process
  // dying closes the write end (readers drain then see EOF), the reader
  // process dying closes the read end (blocked writers fail). The hook
  // holds a weak reference and unregisters itself once the ring is gone.
  static void BindDeathHooks(core::Dipc& dipc, const std::shared_ptr<Ring>& ring,
                             os::Process& writer, os::Process& reader);

  uint64_t capacity() const { return capacity_; }
  uint64_t fill() const { return fill_; }
  bool read_closed() const { return read_closed_; }
  hw::VirtAddr data_base() const { return seg_.base; }
  // Id shared by this ring's metrics ("ring/<id>/...") and trace events.
  uint32_t obs_id() const { return obs_id_; }

 private:
  // User-level byte moves between `va` and the ring, split at the wrap
  // point; charges both sides' protection/TLB/cache costs as user time.
  sim::Task<base::Status> CopyIn(os::Env env, hw::VirtAddr src, uint64_t len);
  sim::Task<base::Status> CopyOut(os::Env env, hw::VirtAddr dst, uint64_t len);

  os::Kernel& kernel_;
  Segment seg_;
  uint64_t capacity_;
  uint64_t rpos_ = 0;
  uint64_t wpos_ = 0;
  uint64_t fill_ = 0;
  bool write_closed_ = false;
  bool read_closed_ = false;
  os::WaitQueue readers_;
  os::WaitQueue writers_;
  uint32_t obs_id_ = 0;
  obs::Counter* m_bytes_written_ = nullptr;  // ring/<id>/bytes_written
  obs::Counter* m_bytes_read_ = nullptr;     // ring/<id>/bytes_read
  obs::Counter* m_blocked_writes_ = nullptr; // ring/<id>/blocked_writes
  obs::Counter* m_blocked_reads_ = nullptr;  // ring/<id>/blocked_reads
  obs::Counter* m_timeouts_ = nullptr;       // ring/<id>/timeouts (both sides)
  obs::Histogram* m_park_ns_ = nullptr;      // ring/<id>/park_ns (both sides)
};

}  // namespace dipc::chan

#endif  // DIPC_CHAN_RING_H_
