#include "chan/fanout.h"

#include <algorithm>

#include "chan/desc.h"
#include "chan/futex.h"
#include "fault/fault.h"

namespace dipc::chan {

using internal::ClearRegIfHolds;
using internal::DescIndex;
using internal::DescLen;
using internal::kLenMask;
using internal::kMaxSlots;
using internal::PackDesc;
using os::TimeCat;

using internal::NextOwnerKey;

FanOutChannel::FanOutChannel(core::Dipc& dipc, os::Process& producer,
                             std::span<os::Process* const> receivers, FanOutConfig cfg)
    : kernel_(dipc.kernel()),
      producer_proc_(&producer),
      receiver_procs_(receivers.begin(), receivers.end()),
      cfg_(cfg) {}

void FanOutChannel::RegisterMetrics() {
  obs_id_ = obs::NewObjectId();
  const std::string p = "fanout/" + std::to_string(obs_id_) + "/";
  obs::Registry& reg = obs::Registry::Default();
  m_sends_ = reg.GetCounter(p + "sends");
  m_deliveries_ = reg.GetCounter(p + "deliveries");
  m_recvs_ = reg.GetCounter(p + "recvs");
  m_blocked_on_credit_ = reg.GetCounter(p + "blocked_on_credit");
  m_group_stall_ns_ = reg.GetHistogram(p + "credit_stall_ns");
  const uint32_t n = receiver_count();
  m_rx_deliveries_.resize(n);
  m_rx_drops_.resize(n);
  m_rx_credits_.resize(n);
  m_rx_stall_ns_.resize(n);
  for (uint32_t r = 0; r < n; ++r) {
    const std::string rp = p + "rx/" + std::to_string(r) + "/";
    m_rx_deliveries_[r] = reg.GetCounter(rp + "deliveries");
    m_rx_drops_[r] = reg.GetCounter(rp + "drops");
    m_rx_credits_[r] = reg.GetGauge(rp + "credits");
    m_rx_stall_ns_[r] = reg.GetHistogram(rp + "credit_stall_ns");
  }
}

base::Result<std::shared_ptr<FanOutChannel>> FanOutChannel::Create(
    core::Dipc& dipc, os::Process& producer, std::span<os::Process* const> receivers,
    FanOutConfig cfg) {
  if (cfg.slots == 0 || cfg.slots > kMaxSlots || cfg.buf_bytes == 0 ||
      cfg.buf_bytes > kLenMask || cfg.credits > cfg.slots || receivers.empty()) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (!producer.dipc_enabled()) {
    return base::ErrorCode::kNotSupported;
  }
  for (os::Process* r : receivers) {
    if (r == nullptr || !r->dipc_enabled()) {
      return base::ErrorCode::kNotSupported;
    }
  }
  os::Kernel& kernel = dipc.kernel();
  auto ch = std::shared_ptr<FanOutChannel>(new FanOutChannel(dipc, producer, receivers, cfg));
  codoms::AplTable& apl = kernel.codoms().apl_table();
  ch->ctrl_tag_ = cfg.ctrl_tag != hw::kInvalidDomainTag ? cfg.ctrl_tag : apl.AllocateTag();
  ch->data_tag_ = cfg.data_tag != hw::kInvalidDomainTag ? cfg.data_tag : apl.AllocateTag();
  ch->rt_tag_ = cfg.rt_tag != hw::kInvalidDomainTag ? cfg.rt_tag : apl.AllocateTag();
  // One-time APL setup, as in Channel::Create: every endpoint may use the
  // control segment and call into the runtime; only the runtime domain
  // reaches the data domain.
  apl.Grant(producer.default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(producer.default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  for (os::Process* r : ch->receiver_procs_) {
    apl.Grant(r->default_domain(), ch->ctrl_tag_, codoms::Perm::kWrite);
    apl.Grant(r->default_domain(), ch->rt_tag_, codoms::Perm::kCall);
  }
  apl.Grant(ch->rt_tag_, ch->data_tag_, codoms::Perm::kWrite);

  const uint32_t n_recv = ch->receiver_count();
  ch->buf_stride_ = hw::PageRoundUp(cfg.buf_bytes);
  auto data = MapSegment(kernel, producer, ch->buf_stride_ * cfg.slots, ch->data_tag_);
  if (!data.ok()) {
    return data.code();
  }
  ch->data_seg_ = data.value();
  // One capability-storage slot per (receiver, buffer): each receiver loads
  // its *own* stored read capability, so revocations are per receiver.
  auto caps = MapSegment(kernel, producer,
                         uint64_t{n_recv} * cfg.slots * codoms::kCapMemBytes, ch->ctrl_tag_,
                         /*cap_storage=*/true);
  if (!caps.ok()) {
    return caps.code();
  }
  ch->cap_seg_ = caps.value();
  ch->RegisterMetrics();
  const std::string prefix = "fanout/" + std::to_string(ch->obs_id_);
  ch->free_ = std::make_unique<MpmcQueue>(kernel, producer, cfg.slots, ch->ctrl_tag_,
                                          prefix + "/free", ch->obs_id_);
  for (uint32_t i = 0; i < cfg.slots; ++i) {
    ch->free_->Prime(i);
  }
  ch->credit_line_ = cfg.credits != 0 ? cfg.credits : cfg.slots;
  ch->desc_.reserve(n_recv);
  for (uint32_t r = 0; r < n_recv; ++r) {
    // The credit line bounds a receiver's outstanding deliveries, so its
    // FIFO never needs more room than that.
    ch->desc_.push_back(std::make_unique<MpmcQueue>(kernel, producer, ch->credit_line_,
                                                    ch->ctrl_tag_,
                                                    prefix + "/rx/" + std::to_string(r) + "/desc",
                                                    ch->obs_id_));
  }
  ch->sender_caps_.resize(cfg.slots);
  ch->wcap_tmpl_.resize(cfg.slots);
  ch->tctx_.assign(cfg.slots, 0);
  ch->rcaps_.assign(n_recv, std::vector<std::optional<codoms::Capability>>(cfg.slots));
  ch->rcap_tmpl_.assign(n_recv, std::vector<std::optional<codoms::Capability>>(cfg.slots));
  ch->pending_.assign(cfg.slots, 0);
  ch->credits_.assign(n_recv, ch->credit_line_);  // full credit line per receiver
  for (uint32_t r = 0; r < n_recv; ++r) {
    ch->m_rx_credits_[r]->Set(ch->credit_line_);
  }
  ch->alive_.assign(n_recv, true);
  ch->dropped_.assign(n_recv, 0);
  ch->owner_key_.resize(n_recv);
  for (uint32_t r = 0; r < n_recv; ++r) {
    ch->owner_key_[r] = NextOwnerKey();
  }

  std::weak_ptr<FanOutChannel> weak = ch;
  dipc.AddDeathHook([weak](os::Process& dead) {
    auto live = weak.lock();
    if (live == nullptr) {
      return false;
    }
    live->OnProcessDeath(dead);
    return true;
  });
  return ch;
}

uint32_t FanOutChannel::live_receiver_count() const {
  uint32_t live = 0;
  for (bool a : alive_) {
    live += a ? 1 : 0;
  }
  return live;
}

bool FanOutChannel::GateClosed(uint32_t target, uint64_t need) const {
  if (target < receiver_count()) {
    return alive_[target] && credits_[target] < need;
  }
  uint32_t live = 0;
  uint32_t satisfied = 0;
  uint32_t nonzero = 0;
  for (uint32_t r = 0; r < receiver_count(); ++r) {
    if (!alive_[r]) {
      continue;
    }
    ++live;
    satisfied += credits_[r] >= need ? 1 : 0;
    nonzero += credits_[r] > 0 ? 1 : 0;
  }
  if (live == 0) {
    return false;  // nothing gates; the send itself fails with kCalleeFailed
  }
  // kBlock waits for the slowest live receiver; kDropSlowest only needs one
  // receiver that can take the message (laggards are skipped).
  return cfg_.lag_policy == LagPolicy::kBlock ? satisfied < live : nonzero == 0;
}

sim::Task<base::ErrorCode> FanOutChannel::AwaitCredit(os::Env env, uint32_t target,
                                                      uint64_t need, os::Deadline deadline) {
  sim::Time stall_start;
  bool stalled = false;
  while (true) {
    if (broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
    if (closed_) {
      co_return base::ErrorCode::kBrokenChannel;
    }
    if (live_receiver_count() == 0 || (target < receiver_count() && !alive_[target])) {
      co_return base::ErrorCode::kCalleeFailed;
    }
    if (!GateClosed(target, need)) {
      // No suspension between this check and the caller's (synchronous)
      // delivery plan: the admitted credits cannot change under the caller.
      // Liveness across several parked producer threads needs no chaining
      // here — every ReleaseBatch issues one wake, so every gate-opening
      // event re-checks one waiter.
      if (stalled) {
        sim::Duration stall = env.kernel->now() - stall_start;
        obs::Histogram* h =
            target < receiver_count() ? m_rx_stall_ns_[target] : m_group_stall_ns_;
        h->Record(stall.nanos());
        obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCreditStall, obs_id_, target,
                            env.kernel->now(), stall);
      }
      co_return base::ErrorCode::kOk;
    }
    if (!stalled) {
      stalled = true;
      stall_start = env.kernel->now();
    }
    ++blocked_on_credit_;
    m_blocked_on_credit_->Add();
    ++credit_wait_count_;
    bool expired =
        co_await FutexBlockUntil(env, credit_waiters_, deadline, [this, target, need] {
          return GateClosed(target, need) && broken_ == base::ErrorCode::kOk && !closed_ &&
                 live_receiver_count() > 0 && (target >= receiver_count() || alive_[target]);
        });
    --credit_wait_count_;
    if (expired && GateClosed(target, need) && broken_ == base::ErrorCode::kOk && !closed_ &&
        live_receiver_count() > 0 && (target >= receiver_count() || alive_[target])) {
      // The deadline fired with the gate still closed; nothing was admitted
      // and nothing was granted, so the caller surfaces kTimedOut leak-free.
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kTimeout, obs_id_, need,
                          env.kernel->now());
      co_return base::ErrorCode::kTimedOut;
    }
  }
}

base::Result<codoms::Capability> FanOutChannel::GrantCap(os::Env env, uint32_t index,
                                                         uint32_t receiver, codoms::Perm rights,
                                                         sim::Duration* cost) {
  const bool write = rights == codoms::Perm::kWrite;
  std::optional<codoms::Capability>& tmpl =
      write ? wcap_tmpl_[index] : rcap_tmpl_[receiver][index];
  codoms::ThreadCapContext& ctx = env.self->cap_ctx();
  hw::DomainTag saved = ctx.current_domain;
  ctx.current_domain = rt_tag_;
  sim::Duration c;
  base::Result<codoms::Capability> cap = base::ErrorCode::kFault;
  if (tmpl.has_value()) {
    cap = env.kernel->codoms().CapRebind(*tmpl, ctx, &c);
    c += obs::Trace().event_cost();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCapRebind, obs_id_, index,
                        env.kernel->now());
  } else {
    ++cold_mints_;
    c += obs::Trace().event_cost();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCapMint, obs_id_, index,
                        env.kernel->now());
    cap = env.kernel->codoms().CapFromApl(env.self->last_cpu(),
                                          env.self->process().page_table(), ctx, buf_va(index),
                                          buf_stride_, rights, codoms::CapType::kAsync, &c);
    if (cap.ok() && !write) {
      // Per-receiver grant bookkeeping: tag the counter with the receiver's
      // owner key so a dead receiver's grants are revocable (and auditable)
      // as one set.
      env.kernel->codoms().revocations().SetOwner(cap.value().revocation_id,
                                                  owner_key_[receiver]);
    }
  }
  ctx.current_domain = saved;
  *cost += c;
  if (cap.ok()) {
    tmpl = cap.value();
  }
  return cap;
}

sim::Task<base::Result<SendBuf>> FanOutChannel::AcquireBuf(os::Env env, os::Deadline deadline) {
  auto batch = co_await AcquireBufBatch(env, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<SendBuf>>> FanOutChannel::AcquireBufBatch(
    os::Env env, uint32_t max_n, os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  // Credit-based admission: don't even take a buffer while the (policy's
  // notion of the) group is out of credit — this is where backpressure from
  // the slowest live receiver reaches the producer.
  base::ErrorCode gate = co_await AwaitCredit(env, receiver_count(), 1, deadline);
  if (gate != base::ErrorCode::kOk) {
    co_return gate;
  }
  std::vector<uint64_t> indices(std::min<uint32_t>(max_n, cfg_.slots));
  auto popped = co_await free_->PopN(env, std::span(indices), deadline);
  if (!popped.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
  }
  indices.resize(popped.value());
  sim::Duration cost = k.costs().function_call + k.costs().domain_switch * 2;
  std::vector<codoms::Capability> caps;
  caps.reserve(indices.size());
  for (uint64_t idx : indices) {
    auto cap =
        GrantCap(env, static_cast<uint32_t>(idx), receiver_count(), codoms::Perm::kWrite, &cost);
    if (!cap.ok()) {
      for (const auto& granted : caps) {
        DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
      }
      (void)co_await free_->PushN(env, std::span(indices));
      co_return cap.code();
    }
    caps.push_back(cap.value());
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kAcquireBatch, obs_id_,
                      indices.size(), k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    for (const auto& granted : caps) {
      DIPC_CHECK(k.codoms().CapRevoke(granted).ok());
    }
    co_return broken_;
  }
  std::vector<SendBuf> out;
  out.reserve(indices.size());
  for (size_t j = 0; j < indices.size(); ++j) {
    auto index = static_cast<uint32_t>(indices[j]);
    sender_caps_[index] = caps[j];
    out.push_back(SendBuf{buf_va(index), cfg_.buf_bytes, index});
  }
  env.self->cap_ctx().regs.Set(kSenderCapReg, caps.back());
  co_return out;
}

void FanOutChannel::BindSendCap(os::Thread& t, const SendBuf& buf) const {
  if (buf.index < cfg_.slots && sender_caps_[buf.index].has_value()) {
    t.cap_ctx().regs.Set(kSenderCapReg, *sender_caps_[buf.index]);
  }
}

void FanOutChannel::BindRecvCap(os::Thread& t, uint32_t receiver, const Msg& msg) const {
  if (receiver < receiver_count() && msg.index < cfg_.slots &&
      rcaps_[receiver][msg.index].has_value()) {
    t.cap_ctx().regs.Set(kReceiverCapReg, *rcaps_[receiver][msg.index]);
  }
}

sim::Task<base::Status> FanOutChannel::Send(os::Env env, const SendBuf& buf, uint64_t len,
                                            os::Deadline deadline) {
  SendItem item{buf, len};
  co_return co_await SendCommon(env, std::span(&item, 1), receiver_count(), deadline);
}

sim::Task<base::Status> FanOutChannel::SendBatch(os::Env env, std::span<const SendItem> items,
                                                 os::Deadline deadline) {
  co_return co_await SendCommon(env, items, receiver_count(), deadline);
}

sim::Task<base::Status> FanOutChannel::SendTo(os::Env env, const SendBuf& buf, uint64_t len,
                                              uint32_t receiver, os::Deadline deadline) {
  SendItem item{buf, len};
  co_return co_await SendCommon(env, std::span(&item, 1), receiver, deadline);
}

sim::Task<base::Status> FanOutChannel::SendToBatch(os::Env env, std::span<const SendItem> items,
                                                   uint32_t receiver, os::Deadline deadline) {
  co_return co_await SendCommon(env, items, receiver, deadline);
}

sim::Task<base::Status> FanOutChannel::AbandonBuf(os::Env env, const SendBuf& buf) {
  co_return co_await AbandonBufBatch(env, std::span(&buf, 1));
}

sim::Task<base::Status> FanOutChannel::AbandonBufBatch(os::Env env,
                                                       std::span<const SendBuf> bufs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (bufs.empty()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  for (size_t j = 0; j < bufs.size(); ++j) {
    if (bufs[j].index >= cfg_.slots || !sender_caps_[bufs[j].index].has_value()) {
      co_return broken_ != base::ErrorCode::kOk ? broken_
                                                : base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (bufs[i].index == bufs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> indices;
  indices.reserve(bufs.size());
  for (const SendBuf& b : bufs) {
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[b.index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[b.index]).ok());
    cost += cm.cap_revoke;
    sender_caps_[b.index].reset();
    indices.push_back(b.index);
  }
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;  // teardown already retired the pool
  }
  auto pushed = co_await free_->PushN(env, std::span(indices));
  if (!pushed.ok()) {
    // After an orderly Close the free list is retired; the revocations
    // above are all that matters. Only dead-peer errors surface.
    co_return broken_ != base::ErrorCode::kOk ? base::Status(broken_) : base::Status::Ok();
  }
  co_return base::Status::Ok();
}

uint32_t FanOutChannel::NextShard() {
  for (uint32_t i = 0; i < receiver_count(); ++i) {
    uint32_t r = (rr_next_ + i) % receiver_count();
    if (alive_[r]) {
      rr_next_ = (r + 1) % receiver_count();
      return r;
    }
  }
  return receiver_count();
}

sim::Task<base::Status> FanOutChannel::SendCommon(os::Env env, std::span<const SendItem> items,
                                                  uint32_t target, os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (items.empty() || target > receiver_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  sim::Duration fault_delay;
  {
    // Probed before the broken_ check so a scripted "kill at the Nth send"
    // surfaces through the regular dead-peer path on this very call.
    fault::Decision d = DIPC_FAULT_POINT(kChanSend, env.self->last_cpu());
    if (d.fail()) {
      co_return base::ErrorCode::kFault;
    }
    if (d.action == fault::Action::kDelay) {
      fault_delay = d.delay;
    }
  }
  if (items.size() > credit_line_ && (cfg_.lag_policy == LagPolicy::kBlock ||
                                      target < receiver_count())) {
    // A batch no credit line can ever admit would wait forever.
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (closed_) {
    co_return base::ErrorCode::kBrokenChannel;
  }
  for (size_t j = 0; j < items.size(); ++j) {
    const SendItem& it = items[j];
    if (it.buf.index >= cfg_.slots || it.len == 0 || it.len > cfg_.buf_bytes ||
        !sender_caps_[it.buf.index].has_value()) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (items[i].buf.index == it.buf.index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  // Credit wait. A sharded message is never dropped, so SendTo always waits
  // for the full batch's worth of its target's credit; broadcast waits per
  // the lag policy (kBlock: everyone can take the whole batch, kDropSlowest:
  // someone can take something).
  base::ErrorCode gate = co_await AwaitCredit(env, target, items.size(), deadline);
  if (gate != base::ErrorCode::kOk) {
    co_return gate;
  }
  // From here to the Spend the delivery plan is computed and recorded
  // *synchronously* — no suspension point can change credits, liveness or
  // ownership under us.
  sim::Duration cost = cm.chan_fast_path + cm.function_call + cm.domain_switch * 2 + fault_delay;
  std::vector<std::vector<uint32_t>> dests(items.size());
  std::vector<codoms::Capability> granted;  // undo list
  granted.reserve(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    const uint32_t index = items[j].buf.index;
    for (uint32_t r = 0; r < receiver_count(); ++r) {
      if (!alive_[r] || (target < receiver_count() && r != target)) {
        continue;
      }
      if (credits_[r] == 0) {
        // Only reachable for broadcast under kDropSlowest (the gate blocked
        // every other case): this receiver lags too far — skip it.
        ++dropped_[r];
        m_rx_drops_[r]->Add();
        continue;
      }
      auto rcap = GrantCap(env, index, r, codoms::Perm::kRead, &cost);
      base::Status stored = base::ErrorCode::kFault;
      if (rcap.ok()) {
        sim::Duration store_cost;
        stored = k.codoms().CapStore(env.self->process().page_table(), env.self->cap_ctx(),
                                     CapSlotVa(r, index), rcap.value(), &store_cost);
        cost += store_cost;
      }
      if (!rcap.ok() || !stored.ok()) {
        // Undo everything this call granted; the sender still owns every
        // buffer and every credit is back where it was.
        if (rcap.ok()) {
          DIPC_CHECK(k.codoms().CapRevoke(rcap.value()).ok());
        }
        for (const auto& g : granted) {
          DIPC_CHECK(k.codoms().CapRevoke(g).ok());
        }
        for (size_t jj = 0; jj <= j; ++jj) {
          for (uint32_t rr : dests[jj]) {
            rcaps_[rr][items[jj].buf.index].reset();
            ++credits_[rr];
          }
          pending_[items[jj].buf.index] = 0;
        }
        co_return rcap.ok() ? stored : base::Status(rcap.code());
      }
      granted.push_back(rcap.value());
      rcaps_[r][index] = rcap.value();
      --credits_[r];
      m_rx_credits_[r]->Set(static_cast<int64_t>(credits_[r]));
      dests[j].push_back(r);
    }
    pending_[index] = static_cast<uint32_t>(dests[j].size());
  }
  cost += cm.cap_revoke * items.size();
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kSendBatch, obs_id_, items.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    // Producer died during the Spend: teardown already swept every recorded
    // grant (they were recorded before the suspension).
    co_return broken_;
  }
  // Move semantics: the producer's ownership ends *after* the Spend — so a
  // receiver death during the suspension sweeps against an accurate
  // ownership picture (DropDelivery never recycles a slot whose write grant
  // is still held) — but always *before* any descriptor is published: no
  // receiver can observe a message whose writer still owns the buffer.
  bool any_deliverable = false;
  for (size_t j = 0; j < items.size() && !any_deliverable; ++j) {
    const uint32_t index = items[j].buf.index;
    for (uint32_t r : dests[j]) {
      if (alive_[r] && rcaps_[r][index].has_value()) {
        any_deliverable = true;
        break;
      }
    }
  }
  if (!any_deliverable && (live_receiver_count() == 0 || target < receiver_count())) {
    // Every planned destination died during the Spend (the sweep revoked
    // the read grants and dropped the pending shares, but left the slots
    // with their writer). The send failed with the producer still owning
    // every buffer — the documented contract — so it can re-shard via
    // NextShard()/SendTo or hand the buffers back with AbandonBufBatch.
    co_return base::ErrorCode::kCalleeFailed;
  }
  std::vector<uint64_t> orphaned;  // slots with nobody left to deliver to
  for (size_t j = 0; j < items.size(); ++j) {
    const uint32_t index = items[j].buf.index;
    tctx_[index] = items[j].buf.tctx;
    ClearRegIfHolds(*env.self, kSenderCapReg, *sender_caps_[index]);
    DIPC_CHECK(k.codoms().CapRevoke(*sender_caps_[index]).ok());
    sender_caps_[index].reset();
    bool deliverable = false;
    for (uint32_t r : dests[j]) {
      if (alive_[r] && rcaps_[r][index].has_value()) {
        deliverable = true;
        break;
      }
    }
    if (!deliverable) {
      // Dropped by every laggard at plan time, or every planned destination
      // of this one item died mid-Spend while a sibling item still delivers
      // (broadcast at-most-once): the slot has no holder left — recycle it.
      orphaned.push_back(index);
    }
  }
  if (!orphaned.empty()) {
    (void)co_await free_->PushN(env, std::span(orphaned));
    if (broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
  }
  // Publish: one batched descriptor push (and at most one futex wake) per
  // receiver touched. Credits guarantee room, so these never block.
  uint64_t delivered = 0;
  for (uint32_t r = 0; r < receiver_count(); ++r) {
    std::vector<uint64_t> descs;
    for (size_t j = 0; j < items.size(); ++j) {
      const uint32_t index = items[j].buf.index;
      // Re-filter: a receiver that died during the Spend above was swept
      // (its rcap entry is gone and its pending share was dropped).
      if (std::find(dests[j].begin(), dests[j].end(), r) != dests[j].end() && alive_[r] &&
          rcaps_[r][index].has_value()) {
        descs.push_back(PackDesc(index, items[j].len));
      }
    }
    if (descs.empty()) {
      continue;
    }
    auto pushed = co_await desc_[r]->PushN(env, std::span(descs));
    if (!pushed.ok()) {
      // The receiver died under the push; its grants were swept by the hook.
      continue;
    }
    delivered += descs.size();
    m_rx_deliveries_[r]->Add(descs.size());
  }
  sends_ += items.size();
  deliveries_ += delivered;
  m_sends_->Add(items.size());
  m_deliveries_->Add(delivered);
  if (delivered == 0) {
    // Everyone died (or every laggard dropped a fully-orphaned batch) before
    // publication: surface it — for sharded sends the caller reshards.
    co_return broken_ != base::ErrorCode::kOk
                  ? broken_
                  : (live_receiver_count() == 0 || target < receiver_count()
                         ? base::ErrorCode::kCalleeFailed
                         : base::ErrorCode::kOk);
  }
  co_return base::Status::Ok();
}

sim::Task<base::Result<Msg>> FanOutChannel::Recv(os::Env env, uint32_t receiver,
                                                 os::Deadline deadline) {
  auto batch = co_await RecvBatch(env, receiver, 1, deadline);
  if (!batch.ok()) {
    co_return batch.code();
  }
  co_return batch.value()[0];
}

sim::Task<base::Result<std::vector<Msg>>> FanOutChannel::RecvBatch(os::Env env,
                                                                   uint32_t receiver,
                                                                   uint32_t max_n,
                                                                   os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (max_n == 0 || receiver >= receiver_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  std::vector<uint64_t> descs(std::min<uint32_t>(max_n, cfg_.slots));
  auto popped = co_await desc_[receiver]->PopN(env, std::span(descs), deadline);
  if (!popped.ok()) {
    co_return broken_ != base::ErrorCode::kOk ? broken_ : popped.code();
  }
  descs.resize(popped.value());
  sim::Duration cost;
  std::vector<Msg> out;
  std::vector<codoms::Capability> caps;
  std::vector<uint64_t> corrupted;
  out.reserve(descs.size());
  caps.reserve(descs.size());
  for (uint64_t desc : descs) {
    uint32_t index = DescIndex(desc);
    uint64_t len = DescLen(desc);
    sim::Duration load_cost;
    auto cap = k.codoms().CapLoad(env.self->process().page_table(), env.self->cap_ctx(),
                                  CapSlotVa(receiver, index), &load_cost);
    cost += load_cost;
    if (!cap.ok()) {
      // A plain write destroyed this receiver's stored capability; recycle
      // the delivery and keep the healthy messages (cf. Channel::RecvBatch).
      corrupted.push_back(index);
      continue;
    }
    caps.push_back(cap.value());
    out.push_back(Msg{buf_va(index), len, index, tctx_[index]});
  }
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kRecvBatch, obs_id_, out.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!corrupted.empty()) {
    std::vector<uint64_t> freed;
    for (uint64_t index : corrupted) {
      DropDelivery(receiver, static_cast<uint32_t>(index), &freed);
      ++credits_[receiver];  // the delivery is undone; its credit returns
    }
    m_rx_credits_[receiver]->Set(static_cast<int64_t>(credits_[receiver]));
    if (!freed.empty()) {
      (void)co_await free_->PushN(env, std::span(freed));
      if (broken_ != base::ErrorCode::kOk) {
        co_return broken_;
      }
    }
    if (credit_wait_count_ > 0) {
      co_await FutexWakeCommitted(env, credit_waiters_);
    }
  }
  if (out.empty()) {
    co_return base::ErrorCode::kFault;
  }
  env.self->cap_ctx().regs.Set(kReceiverCapReg, caps.front());
  recvs_ += out.size();
  m_recvs_->Add(out.size());
  co_return out;
}

sim::Task<base::Status> FanOutChannel::Release(os::Env env, uint32_t receiver, const Msg& msg) {
  co_return co_await ReleaseBatch(env, receiver, std::span(&msg, 1));
}

sim::Task<base::Status> FanOutChannel::ReleaseBatch(os::Env env, uint32_t receiver,
                                                    std::span<const Msg> msgs) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (msgs.empty() || receiver >= receiver_count()) {
    co_return base::ErrorCode::kInvalidArgument;
  }
  for (size_t j = 0; j < msgs.size(); ++j) {
    if (msgs[j].index >= cfg_.slots) {
      co_return base::ErrorCode::kInvalidArgument;
    }
    for (size_t i = 0; i < j; ++i) {
      if (msgs[i].index == msgs[j].index) {
        co_return base::ErrorCode::kInvalidArgument;
      }
    }
  }
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!alive_[receiver]) {
    // This receiver's own process died; teardown already revoked its grants
    // and recycled its slots — surface the crash, not a caller bug.
    co_return base::ErrorCode::kCalleeFailed;
  }
  for (const Msg& msg : msgs) {
    if (!rcaps_[receiver][msg.index].has_value()) {
      co_return base::ErrorCode::kInvalidArgument;
    }
  }
  sim::Duration cost = cm.chan_fast_path;
  std::vector<uint64_t> freed;
  for (const Msg& msg : msgs) {
    ClearRegIfHolds(*env.self, kReceiverCapReg, *rcaps_[receiver][msg.index]);
    DropDelivery(receiver, msg.index, &freed);
    cost += cm.cap_revoke;
    ++credits_[receiver];  // the credit returns with the release
  }
  m_rx_credits_[receiver]->Set(static_cast<int64_t>(credits_[receiver]));
  cost += obs::Trace().event_cost();
  obs::Trace().Record(env.self->last_cpu(), obs::EventType::kCreditGrant, obs_id_, msgs.size(),
                      k.now());
  co_await k.Spend(*env.self, cost, TimeCat::kUser);
  if (broken_ != base::ErrorCode::kOk) {
    co_return broken_;
  }
  if (!freed.empty()) {
    auto pushed = co_await free_->PushN(env, std::span(freed));
    if (!pushed.ok() && broken_ != base::ErrorCode::kOk) {
      co_return broken_;
    }
  }
  // Returned credit may unblock the producer (wake-suppressed).
  if (credit_wait_count_ > 0) {
    fault::Decision d = DIPC_FAULT_POINT(kCreditGrant, env.self->last_cpu());
    if (d.drop_wake()) {
      // Injected lost credit wake: the credits are back (bookkeeping above
      // is done) but no parked producer hears it — deadline-armed waiters
      // recover, never-deadline waiters rely on the next release.
      co_return base::Status::Ok();
    }
    if (d.action == fault::Action::kDelay) {
      co_await k.Spend(*env.self, d.delay, TimeCat::kUser);
    }
    co_await FutexWakeCommitted(env, credit_waiters_);
  }
  co_return base::Status::Ok();
}

void FanOutChannel::DropDelivery(uint32_t receiver, uint32_t index,
                                 std::vector<uint64_t>* freed) {
  std::optional<codoms::Capability>& cap = rcaps_[receiver][index];
  if (!cap.has_value()) {
    return;
  }
  DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
  cap.reset();
  DIPC_CHECK(pending_[index] > 0);
  if (--pending_[index] == 0 && !sender_caps_[index].has_value()) {
    // A held write grant means the producer is mid-send (between its plan
    // and its post-Spend ownership handoff): the slot is still the
    // producer's and must NOT return to the pool — SendCommon either
    // retains it (failed send, retryable) or recycles it itself.
    freed->push_back(index);
  }
}

void FanOutChannel::Close() {
  closed_ = true;
  free_->Close(base::ErrorCode::kBrokenChannel);
  for (auto& q : desc_) {
    q->Close(base::ErrorCode::kBrokenChannel);
  }
  while (os::Thread* t = credit_waiters_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
}

uint64_t FanOutChannel::LiveGrantCount() const {
  const codoms::RevocationTable& rt = kernel_.codoms().revocations();
  uint64_t live = 0;
  for (const auto& cap : sender_caps_) {
    if (cap.has_value() && rt.Epoch(cap->revocation_id) == cap->revocation_epoch) {
      ++live;
    }
  }
  for (const auto& per_recv : rcaps_) {
    for (const auto& cap : per_recv) {
      if (cap.has_value() && rt.Epoch(cap->revocation_id) == cap->revocation_epoch) {
        ++live;
      }
    }
  }
  return live;
}

void FanOutChannel::OnProcessDeath(os::Process& proc) {
  if (broken_ != base::ErrorCode::kOk) {
    return;
  }
  if (&proc == producer_proc_) {
    // Producer death breaks the whole group (there is nothing left to
    // deliver): sweep every in-flight grant and fail every queue.
    broken_ = base::ErrorCode::kCalleeFailed;
    for (auto& cap : sender_caps_) {
      if (cap.has_value()) {
        DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
        cap.reset();
      }
    }
    for (uint32_t r = 0; r < receiver_count(); ++r) {
      for (auto& cap : rcaps_[r]) {
        if (cap.has_value()) {
          DIPC_CHECK(kernel_.codoms().CapRevoke(*cap).ok());
          cap.reset();
        }
      }
      kernel_.codoms().revocations().RevokeAllForOwner(owner_key_[r]);
    }
    free_->Fail(base::ErrorCode::kCalleeFailed);
    for (auto& q : desc_) {
      q->Fail(base::ErrorCode::kCalleeFailed);
    }
    while (os::Thread* t = credit_waiters_.WakeOneThread()) {
      (void)kernel_.MakeRunnable(*t, std::nullopt);
    }
    return;
  }
  // Receiver death: excise that receiver alone. Its in-flight grants are
  // revoked (one counter bump each), its undelivered/unreleased slots lose
  // its pending share (recycling slots it was the last holder of), its
  // whole counter set is bulk-revoked via the owner key, and its FIFO fails
  // so its blocked threads wake with the crash code. Everybody else's
  // grants, credits and FIFOs are untouched — the group keeps flowing.
  bool any = false;
  for (uint32_t r = 0; r < receiver_count(); ++r) {
    if (receiver_procs_[r] != &proc || !alive_[r]) {
      continue;
    }
    any = true;
    alive_[r] = false;
    std::vector<uint64_t> freed;
    for (uint32_t i = 0; i < cfg_.slots; ++i) {
      DropDelivery(r, i, &freed);
    }
    kernel_.codoms().revocations().RevokeAllForOwner(owner_key_[r]);
    desc_[r]->Fail(base::ErrorCode::kCalleeFailed);
    for (uint64_t idx : freed) {
      free_->PushNoEnv(idx);
    }
  }
  if (any) {
    // A dead laggard no longer gates the producer; and if nobody is left,
    // blocked producers must wake to see kCalleeFailed.
    while (os::Thread* t = credit_waiters_.WakeOneThread()) {
      (void)kernel_.MakeRunnable(*t, std::nullopt);
    }
  }
}

base::Status FanOutChannel::RebindReceiver(uint32_t receiver, os::Process& proc) {
  if (receiver >= receiver_count() || !proc.dipc_enabled()) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (broken_ != base::ErrorCode::kOk) {
    return broken_;
  }
  if (closed_) {
    return base::ErrorCode::kBrokenChannel;
  }
  if (alive_[receiver]) {
    // Only a slot OnProcessDeath already swept may be rebound: the sweep is
    // what guarantees no grant of the old incarnation survives.
    return base::ErrorCode::kInvalidArgument;
  }
  codoms::AplTable& apl = kernel_.codoms().apl_table();
  apl.Grant(proc.default_domain(), ctrl_tag_, codoms::Perm::kWrite);
  apl.Grant(proc.default_domain(), rt_tag_, codoms::Perm::kCall);
  receiver_procs_[receiver] = &proc;
  // Fresh owner key: the dead incarnation's counters stay bulk-revoked under
  // the old key, and the new incarnation's grants audit as their own set.
  owner_key_[receiver] = NextOwnerKey();
  for (auto& tmpl : rcap_tmpl_[receiver]) {
    // Every template points at a revoked counter; the next grant re-mints
    // cold and re-tags it with the new owner key.
    tmpl.reset();
  }
  // Swap in a fresh descriptor FIFO. The failed one is retired, not
  // destroyed: a thread that parked in it before the death may not have
  // resumed yet, so freeing it here would be use-after-free.
  const std::string prefix = "fanout/" + std::to_string(obs_id_);
  auto fresh = std::make_unique<MpmcQueue>(kernel_, *producer_proc_, credit_line_, ctrl_tag_,
                                           prefix + "/rx/" + std::to_string(receiver) + "/desc",
                                           obs_id_);
  retired_desc_.push_back(std::move(desc_[receiver]));
  desc_[receiver] = std::move(fresh);
  credits_[receiver] = credit_line_;
  m_rx_credits_[receiver]->Set(static_cast<int64_t>(credit_line_));
  alive_[receiver] = true;
  // Parked producers re-check the gate: a kDropSlowest group that had run
  // out of receivers (or a kBlock group gated on nothing) sees the revival.
  while (os::Thread* t = credit_waiters_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*t, std::nullopt);
  }
  return base::Status::Ok();
}

}  // namespace dipc::chan
