// Internal helpers shared by the channel flavors (Channel, FanOutChannel):
// the descriptor wire format and the capability-register hygiene rule.
#ifndef DIPC_CHAN_DESC_H_
#define DIPC_CHAN_DESC_H_

#include <cstdint>

#include "base/check.h"
#include "codoms/capability.h"
#include "os/kernel.h"

namespace dipc::chan::internal {

// Descriptors pack {buffer index, payload length} into one 8-byte queue
// slot. This is the wire format both channel flavors publish through their
// control queues — change it here or nowhere.
inline constexpr uint64_t kLenBits = 48;
inline constexpr uint64_t kLenMask = (uint64_t{1} << kLenBits) - 1;
inline constexpr uint64_t kMaxSlots = uint64_t{1} << (64 - kLenBits);

inline uint64_t PackDesc(uint32_t index, uint64_t len) {
  DIPC_CHECK(len <= kLenMask);
  DIPC_CHECK(index < kMaxSlots);
  return (uint64_t{index} << kLenBits) | len;
}

inline uint32_t DescIndex(uint64_t desc) { return static_cast<uint32_t>(desc >> kLenBits); }
inline uint64_t DescLen(uint64_t desc) { return desc & kLenMask; }

// Owner keys for the RevocationTable partitioning: one global monotonic
// counter shared by every channel flavor, so keys never collide across
// channels — or channel types — in one binary (a collision would let one
// channel's RevokeAllForOwner sweep another's grants).
inline uint64_t NextOwnerKey() {
  static uint64_t next = 1;  // 0 is RevocationTable::kNoOwner
  return next++;
}

// Clears `reg` only when it still holds `cap` (same counter), so a thread
// interleaving several channels doesn't lose another channel's live
// capability from its register file.
inline void ClearRegIfHolds(os::Thread& t, uint32_t reg, const codoms::Capability& cap) {
  const auto& held = t.cap_ctx().regs.reg(reg);
  if (held.has_value() && held->type == codoms::CapType::kAsync &&
      held->revocation_id == cap.revocation_id) {
    t.cap_ctx().regs.Clear(reg);
  }
}

}  // namespace dipc::chan::internal

#endif  // DIPC_CHAN_DESC_H_
