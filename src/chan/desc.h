// Internal helpers shared by the channel flavors (Channel, FanOutChannel):
// the descriptor wire format and the capability-register hygiene rule.
#ifndef DIPC_CHAN_DESC_H_
#define DIPC_CHAN_DESC_H_

#include <cstdint>

#include "base/check.h"
#include "codoms/capability.h"
#include "obs/trace.h"
#include "os/kernel.h"

namespace dipc::chan::internal {

// Descriptors pack {buffer index, payload length} into one 8-byte queue
// slot. This is the wire format both channel flavors publish through their
// control queues — change it here or nowhere.
inline constexpr uint64_t kLenBits = 48;
inline constexpr uint64_t kLenMask = (uint64_t{1} << kLenBits) - 1;
inline constexpr uint64_t kMaxSlots = uint64_t{1} << (64 - kLenBits);

inline uint64_t PackDesc(uint32_t index, uint64_t len) {
  DIPC_CHECK(len <= kLenMask);
  DIPC_CHECK(index < kMaxSlots);
  return (uint64_t{index} << kLenBits) | len;
}

inline uint32_t DescIndex(uint64_t desc) { return static_cast<uint32_t>(desc >> kLenBits); }
inline uint64_t DescLen(uint64_t desc) { return desc & kLenMask; }

// The descriptor's spare header word: one per-slot side-band word riding
// with every published buffer, carrying the request trace context
// (obs::TraceCtx) across the hop. Layout: opid in the top 48 bits, retry
// attempt in the next 8, hop counter in the low 8 — so a 0 word means "not
// request-scoped" and channels that never see a fabric call pay nothing.
inline constexpr uint64_t kTraceOpidBits = 48;
inline constexpr uint64_t kTraceOpidMask = (uint64_t{1} << kTraceOpidBits) - 1;

inline uint64_t PackTraceWord(const obs::TraceCtx& ctx) {
  return ((ctx.opid & kTraceOpidMask) << 16) | (uint64_t{ctx.attempt} << 8) |
         uint64_t{ctx.hop};
}

inline obs::TraceCtx UnpackTraceWord(uint64_t word) {
  obs::TraceCtx ctx;
  ctx.opid = word >> 16;
  ctx.attempt = static_cast<uint8_t>((word >> 8) & 0xff);
  ctx.hop = static_cast<uint8_t>(word & 0xff);
  return ctx;
}

// Owner keys for the RevocationTable partitioning: one global monotonic
// counter shared by every channel flavor, so keys never collide across
// channels — or channel types — in one binary (a collision would let one
// channel's RevokeAllForOwner sweep another's grants).
inline uint64_t NextOwnerKey() {
  static uint64_t next = 1;  // 0 is RevocationTable::kNoOwner
  return next++;
}

// Clears `reg` only when it still holds `cap` (same counter), so a thread
// interleaving several channels doesn't lose another channel's live
// capability from its register file.
inline void ClearRegIfHolds(os::Thread& t, uint32_t reg, const codoms::Capability& cap) {
  const auto& held = t.cap_ctx().regs.reg(reg);
  if (held.has_value() && held->type == codoms::CapType::kAsync &&
      held->revocation_id == cap.revocation_id) {
    t.cap_ctx().regs.Clear(reg);
  }
}

}  // namespace dipc::chan::internal

#endif  // DIPC_CHAN_DESC_H_
