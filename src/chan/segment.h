// Shared-memory segments for the channel subsystem.
//
// A segment is a page-rounded anonymous mapping in the global VAS, tagged
// with a CODOMs domain of the creator's choosing. Because dIPC-enabled
// processes share one page table (§6.1.3), a segment mapped through either
// endpoint process is visible to both; *access* is controlled purely by the
// tag's APL grants and by capabilities, never by mapping visibility.
#ifndef DIPC_CHAN_SEGMENT_H_
#define DIPC_CHAN_SEGMENT_H_

#include <cstdint>

#include "base/result.h"
#include "hw/types.h"
#include "os/kernel.h"

namespace dipc::chan {

struct Segment {
  hw::VirtAddr base = 0;
  uint64_t bytes = 0;  // page-rounded
  hw::DomainTag tag = hw::kInvalidDomainTag;
};

// Maps `bytes` (page-rounded) of fresh shared memory into `proc`'s address
// space, tagged `tag`. `cap_storage` marks the pages as capability-storage
// (§4.2) so channel descriptors can carry capabilities through memory.
inline base::Result<Segment> MapSegment(os::Kernel& kernel, os::Process& proc, uint64_t bytes,
                                        hw::DomainTag tag, bool cap_storage = false) {
  if (bytes == 0) {
    return base::ErrorCode::kInvalidArgument;
  }
  auto va = kernel.MapAnonymous(proc, bytes,
                                hw::PageFlags{.writable = true, .cap_storage = cap_storage}, tag);
  if (!va.ok()) {
    return va.code();
  }
  return Segment{va.value(), hw::PageRoundUp(bytes), tag};
}

}  // namespace dipc::chan

#endif  // DIPC_CHAN_SEGMENT_H_
