#include "chan/ring.h"

#include <algorithm>
#include <string>
#include <vector>

#include "chan/futex.h"

namespace dipc::chan {

using os::TimeCat;

Ring::Ring(os::Kernel& kernel, os::Process& proc, uint64_t capacity, hw::DomainTag tag)
    : kernel_(kernel), capacity_(capacity) {
  DIPC_CHECK(capacity > 0);
  auto seg = MapSegment(kernel, proc, capacity, tag);
  DIPC_CHECK(seg.ok());
  seg_ = seg.value();
  obs_id_ = obs::NewObjectId();
  const std::string prefix = "ring/" + std::to_string(obs_id_);
  obs::Registry& reg = obs::Registry::Default();
  m_bytes_written_ = reg.GetCounter(prefix + "/bytes_written");
  m_bytes_read_ = reg.GetCounter(prefix + "/bytes_read");
  m_blocked_writes_ = reg.GetCounter(prefix + "/blocked_writes");
  m_blocked_reads_ = reg.GetCounter(prefix + "/blocked_reads");
  m_timeouts_ = reg.GetCounter(prefix + "/timeouts");
  m_park_ns_ = reg.GetHistogram(prefix + "/park_ns");
}

sim::Task<base::Status> Ring::CopyIn(os::Env env, hw::VirtAddr src, uint64_t len) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  uint64_t off = wpos_ % capacity_;
  sim::Duration cost;
  std::vector<std::byte> tmp(len);
  base::Status rs = k.UserRead(self, src, tmp);
  if (!rs.ok()) {
    co_return rs;
  }
  auto src_cost = k.UserAccessCost(self, src, len, hw::AccessType::kRead);
  if (!src_cost.ok()) {
    co_return src_cost.status();
  }
  cost += src_cost.value();
  uint64_t first = std::min(len, capacity_ - off);
  for (auto [dst, span_off, span_len] :
       {std::tuple{seg_.base + off, uint64_t{0}, first},
        std::tuple{seg_.base, first, len - first}}) {
    if (span_len == 0) {
      continue;
    }
    auto dst_cost = k.UserAccessCost(self, dst, span_len, hw::AccessType::kWrite);
    if (!dst_cost.ok()) {
      co_return dst_cost.status();
    }
    cost += dst_cost.value();
    base::Status ws = k.UserWrite(
        self, dst, std::span<const std::byte>(tmp.data() + span_off, span_len));
    DIPC_CHECK(ws.ok());
  }
  co_await k.Spend(self, cost, TimeCat::kUser);
  wpos_ += len;
  fill_ += len;
  co_return base::Status::Ok();
}

sim::Task<base::Status> Ring::CopyOut(os::Env env, hw::VirtAddr dst, uint64_t len) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  uint64_t off = rpos_ % capacity_;
  sim::Duration cost;
  std::vector<std::byte> tmp(len);
  uint64_t first = std::min(len, capacity_ - off);
  for (auto [src, span_off, span_len] :
       {std::tuple{seg_.base + off, uint64_t{0}, first},
        std::tuple{seg_.base, first, len - first}}) {
    if (span_len == 0) {
      continue;
    }
    auto src_cost = k.UserAccessCost(self, src, span_len, hw::AccessType::kRead);
    if (!src_cost.ok()) {
      co_return src_cost.status();
    }
    cost += src_cost.value();
    base::Status rs =
        k.UserRead(self, src, std::span<std::byte>(tmp.data() + span_off, span_len));
    DIPC_CHECK(rs.ok());
  }
  auto dst_cost = k.UserAccessCost(self, dst, len, hw::AccessType::kWrite);
  if (!dst_cost.ok()) {
    co_return dst_cost.status();
  }
  cost += dst_cost.value();
  base::Status ws = k.UserWrite(self, dst, tmp);
  if (!ws.ok()) {
    co_return ws;
  }
  co_await k.Spend(self, cost, TimeCat::kUser);
  rpos_ += len;
  fill_ -= len;
  co_return base::Status::Ok();
}

sim::Task<base::Result<uint64_t>> Ring::Write(os::Env env, hw::VirtAddr src, uint64_t len,
                                              os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, k.costs().chan_fast_path, TimeCat::kUser);
  uint64_t done = 0;
  while (done < len) {
    // The full-ring predicate must be read-close-aware: a writer parked on
    // a full ring whose reader died would otherwise never wake — nobody is
    // left to drain the ring (the EPIPE analogue).
    if (fill_ == capacity_ && !read_closed_) {
      m_blocked_writes_->Add();
      const sim::Time park_start = k.now();
      while (fill_ == capacity_ && !read_closed_) {
        const bool expired = co_await FutexBlockUntil(
            env, writers_, deadline, [&] { return fill_ == capacity_ && !read_closed_; });
        if (expired && fill_ == capacity_ && !read_closed_) {
          // Deadline hit with the ring still full: fail (possibly after a
          // partial transfer, like kBrokenChannel) without a park_ns sample
          // — the histogram tracks waits that made progress.
          m_timeouts_->Add();
          co_return base::ErrorCode::kTimedOut;
        }
      }
      const sim::Duration parked = k.now() - park_start;
      m_park_ns_->Record(parked.nanos());
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexPark, obs_id_, 0, k.now(),
                          parked);
    }
    if (read_closed_) {
      co_return base::ErrorCode::kBrokenChannel;
    }
    uint64_t chunk = std::min(len - done, capacity_ - fill_);
    auto s = co_await CopyIn(env, src + done, chunk);
    if (!s.ok()) {
      co_return s.code();
    }
    done += chunk;
    m_bytes_written_->Add(chunk);
    co_await FutexWakeOne(env, readers_);
  }
  co_return done;
}

sim::Task<base::Result<uint64_t>> Ring::Read(os::Env env, hw::VirtAddr dst, uint64_t len,
                                             os::Deadline deadline) {
  os::Kernel& k = *env.kernel;
  if (len == 0) {
    // A 0-byte read would be indistinguishable from the EOF return.
    co_return base::ErrorCode::kInvalidArgument;
  }
  co_await k.Spend(*env.self, k.costs().chan_fast_path, TimeCat::kUser);
  if (read_closed_) {
    co_return base::ErrorCode::kBrokenChannel;  // reading from a closed read end
  }
  sim::Time park_start;
  bool parked = false;
  while (fill_ == 0) {
    if (write_closed_) {
      co_return uint64_t{0};  // EOF
    }
    if (read_closed_) {
      co_return base::ErrorCode::kBrokenChannel;  // closed while parked
    }
    if (!parked) {
      parked = true;
      m_blocked_reads_->Add();
      park_start = k.now();
    }
    const bool expired = co_await FutexBlockUntil(
        env, readers_, deadline,
        [&] { return fill_ == 0 && !write_closed_ && !read_closed_; });
    if (expired && fill_ == 0 && !write_closed_ && !read_closed_) {
      // Like the EOF/broken-channel returns above, timeouts leave no
      // park_ns sample; the histogram tracks waits that produced data.
      m_timeouts_->Add();
      co_return base::ErrorCode::kTimedOut;
    }
  }
  if (parked) {
    // Parks ending in EOF/broken-channel return above without a sample; the
    // histogram tracks waits that produced data.
    const sim::Duration park_dur = k.now() - park_start;
    m_park_ns_->Record(park_dur.nanos());
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexPark, obs_id_, 1, k.now(),
                        park_dur);
  }
  uint64_t chunk = std::min(len, fill_);
  auto s = co_await CopyOut(env, dst, chunk);
  if (!s.ok()) {
    co_return s.code();
  }
  m_bytes_read_->Add(chunk);
  co_await FutexWakeOne(env, writers_);
  co_return chunk;
}

void Ring::CloseWriteEnd() {
  write_closed_ = true;
  // Blocked readers must observe EOF; there is no Env at close time, so the
  // wakeups go through the scheduler with no waker-side cost (cf. Pipe).
  while (os::Thread* r = readers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*r, std::nullopt);
  }
}

void Ring::CloseReadEnd() {
  read_closed_ = true;
  // Blocked writers must observe the broken pipe (mirror of CloseWriteEnd),
  // and readers still parked on an empty ring must fail too — no writer
  // will ever refill it for them once writes start failing.
  while (os::Thread* w = writers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*w, std::nullopt);
  }
  while (os::Thread* r = readers_.WakeOneThread()) {
    (void)kernel_.MakeRunnable(*r, std::nullopt);
  }
}

void Ring::BindDeathHooks(core::Dipc& dipc, const std::shared_ptr<Ring>& ring,
                          os::Process& writer, os::Process& reader) {
  std::weak_ptr<Ring> weak = ring;
  os::Process* w = &writer;
  os::Process* r = &reader;
  dipc.AddDeathHook([weak, w, r](os::Process& dead) {
    auto live = weak.lock();
    if (live == nullptr) {
      return false;  // ring gone: unregister the hook
    }
    if (&dead == r) {
      live->CloseReadEnd();
    }
    if (&dead == w) {
      live->CloseWriteEnd();
    }
    return true;
  });
}

}  // namespace dipc::chan
