// Fixed-capacity per-CPU binary trace ring with Chrome trace_event export.
//
// Records typed, timestamped events (batch ops, futex park/wake, credit
// grant/stall, capability mint/rebind/revoke, death-hook sweeps, proxy
// entry/exit) into preallocated per-CPU rings. Timestamps are *simulated*
// time, so an exported trace lines up with the costs the model charged, not
// with host wall-clock jitter.
//
// Observer effect is modeled, not hidden: call sites that sit on costed
// paths charge `event_cost()` simulated time per recorded event (a couple
// of stores plus an index bump on a real machine). When tracing is disabled
// — the default — `event_cost()` is zero and `Record()` is one relaxed-load
// branch, so benches without --trace measure exactly what they did before.
// Under DIPC_OBS_OFF the whole class collapses to no-ops.
//
// Concurrency contract: per simulated CPU there is at most one writer at a
// time (the sim is single-real-threaded; host-side tests that write from
// real threads must use distinct cpu ids). Wraparound overwrites oldest
// events; the export keeps the newest `capacity` per CPU.
#ifndef DIPC_OBS_TRACE_H_
#define DIPC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dipc::obs {

enum class EventType : uint8_t {
  kAcquireBatch,  // arg = slots acquired
  kSendBatch,     // arg = messages sent
  kRecvBatch,     // arg = messages received
  kReleaseBatch,  // arg = slots released
  kFutexPark,     // dur = park time; arg = queue generation/seq
  kFutexWake,     // arg = waiters woken
  kCreditGrant,   // arg = credits returned
  kCreditStall,   // dur = stall time; arg = receiver index (== receiver count: group gate)
  kCapMint,       // arg = slot index (cold mint through the APL)
  kCapRebind,     // arg = slot index (warm epoch rebind)
  kCapRevoke,     // arg = caps revoked (teardown sweeps; hot paths count only)
  kDeathSweep,    // arg = death hooks run; obj = pid
  kProxyEnter,     // arg = argument bytes
  kProxyExit,      // dur = full proxy call; arg = argument bytes
  kFaultInjected,  // arg = fault action (fault::Action); obj = point hash
  kTimeout,        // arg = slots still owed when the deadline fired
  kFabricDispatch,  // dur = request round trip; arg = opid; obj = fabric id
  // Request-hop spans: every hop of one fabric Call carries the same opid
  // (TraceEvent::opid), so the assembler can stitch a per-request flame.
  // arg packs (aux << 16) | (hop << 8) | attempt; see chan/desc.h.
  kReqAcquire,          // dur = client request-slot acquire
  kReqSend,             // dur = request-plane send (client -> worker shard)
  kWorkerRecv,          // dur = worker recv incl. idle wait for the request
  kHandler,             // dur = handler body on the worker
  kRespSend,            // dur = response-plane send (worker -> client)
  kCompletionDispatch,  // dur = completion recv+post on the client dispatcher
  // Scheduler observability: why a wedged worker stalled.
  kSchedMigrate,  // instant; obj = tid, arg = (from_cpu << 32) | to_cpu
  kRunqDepth,     // instant; arg = run-queue depth after the change
  kFutexQDepth,   // instant; obj = wait-queue obs id, arg = queue length
};

constexpr int kEventTypeCount = static_cast<int>(EventType::kFutexQDepth) + 1;

// Human-readable name for Chrome trace export and debugging.
const char* EventTypeName(EventType t);

struct TraceEvent {
  int64_t ts_ps = 0;   // sim time at event start
  int64_t dur_ps = 0;  // >0 for span ("X") events, 0 for instants
  uint64_t arg = 0;    // type-specific payload (batch size, waiters, ...)
  uint64_t opid = 0;   // request correlation id, 0 = not request-scoped
  uint32_t obj = 0;    // object id (channel/fanout/queue/...), 0 = none
  uint32_t cpu = 0;    // simulated CPU the event happened on
  EventType type = EventType::kAcquireBatch;
};

// Request-scoped trace context threaded through fabric Call/Serve and the
// channel descriptor side-band (chan/desc.h packs it into one header word).
// `hop` increments at every traced hop; `attempt` distinguishes fabric
// retries of the same opid so the assembler can lay them out as sibling
// tracks.
struct TraceCtx {
  uint64_t opid = 0;   // 48 usable bits on the wire
  uint8_t hop = 0;
  uint8_t attempt = 0;
};

class TraceRing {
 public:
  static constexpr uint32_t kMaxCpus = 64;
  static constexpr uint32_t kDefaultCapacityPerCpu = 1u << 14;

  // Simulated cost charged per recorded event on costed paths: a handful of
  // stores into a resident ring line. Zero while disabled.
  static constexpr sim::Duration kEventCost = sim::Duration::Nanos(2.0);

  // The process-wide ring all instrumentation records into.
  static TraceRing& Global();

  // (Re)allocates per-CPU rings and starts recording. Re-enabling with the
  // same capacity keeps existing buffers but clears them.
  void Enable(uint32_t capacity_per_cpu = kDefaultCapacityPerCpu);
  void Disable();
  bool enabled() const {
    // relaxed: hot-path on/off poll; a stale read at the toggle edge only
    // gains or loses one event, it publishes no data.
    return enabled_.load(std::memory_order_relaxed);
  }

  sim::Duration event_cost() const {
    return enabled() ? kEventCost : sim::Duration::Zero();
  }

  void Record(uint32_t cpu, EventType type, uint32_t obj, uint64_t arg, sim::Time ts,
              sim::Duration dur = sim::Duration::Zero(), uint64_t opid = 0) {
#ifndef DIPC_OBS_OFF
    if (!enabled()) {
      return;
    }
    RecordSlow(cpu, type, obj, arg, ts, dur, opid);
#else
    (void)cpu;
    (void)type;
    (void)obj;
    (void)arg;
    (void)ts;
    (void)dur;
    (void)opid;
#endif
  }

  // Drops all recorded events but keeps recording state.
  void Clear();

  // Events recorded (before wraparound loss) / currently held, per CPU.
  uint64_t recorded(uint32_t cpu) const;
  uint64_t held(uint32_t cpu) const;

  // Events lost to wraparound (recorded - capacity when positive), per CPU
  // and summed. Nonzero drops mean the export is missing the oldest events —
  // size the ring up (Enable(capacity)) or trace a shorter window.
  uint64_t dropped(uint32_t cpu) const;
  uint64_t total_dropped() const;

  // All held events across CPUs, sorted by timestamp. Caller must ensure no
  // concurrent writers (quiesce the sim first).
  std::vector<TraceEvent> Snapshot() const;

  // Chrome trace_event JSON ({"traceEvents": [...]}): span events map to
  // ph:"X" with dur, instants to ph:"i"; tid = simulated cpu. Loadable in
  // chrome://tracing or https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;

  // Writes ChromeTraceJson() to `path`; returns false on I/O failure.
  bool ExportChromeTrace(const std::string& path) const;

 private:
  struct CpuRing {
    std::vector<TraceEvent> slots;
    std::atomic<uint64_t> next{0};
  };

  void RecordSlow(uint32_t cpu, EventType type, uint32_t obj, uint64_t arg, sim::Time ts,
                  sim::Duration dur, uint64_t opid);

  std::atomic<bool> enabled_{false};
  uint32_t capacity_ = 0;
  CpuRing rings_[kMaxCpus];
};

// Shorthand for the global ring.
inline TraceRing& Trace() { return TraceRing::Global(); }

// Process-unique id for a traced/metered object (channel, fan-out group,
// queue, proxy). The same id is embedded in the object's metric names
// ("chan/<id>/..."), so metrics and trace events cross-reference.
uint32_t NewObjectId();

}  // namespace dipc::obs

#endif  // DIPC_OBS_TRACE_H_
