#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace dipc::obs {

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kAcquireBatch:
      return "acquire_batch";
    case EventType::kSendBatch:
      return "send_batch";
    case EventType::kRecvBatch:
      return "recv_batch";
    case EventType::kReleaseBatch:
      return "release_batch";
    case EventType::kFutexPark:
      return "futex_park";
    case EventType::kFutexWake:
      return "futex_wake";
    case EventType::kCreditGrant:
      return "credit_grant";
    case EventType::kCreditStall:
      return "credit_stall";
    case EventType::kCapMint:
      return "cap_mint";
    case EventType::kCapRebind:
      return "cap_rebind";
    case EventType::kCapRevoke:
      return "cap_revoke";
    case EventType::kDeathSweep:
      return "death_sweep";
    case EventType::kProxyEnter:
      return "proxy_enter";
    case EventType::kProxyExit:
      return "proxy_exit";
    case EventType::kFaultInjected:
      return "fault_injected";
    case EventType::kTimeout:
      return "timeout";
    case EventType::kFabricDispatch:
      return "fabric_dispatch";
    case EventType::kReqAcquire:
      return "req_acquire";
    case EventType::kReqSend:
      return "req_send";
    case EventType::kWorkerRecv:
      return "worker_recv";
    case EventType::kHandler:
      return "handler";
    case EventType::kRespSend:
      return "resp_send";
    case EventType::kCompletionDispatch:
      return "completion_dispatch";
    case EventType::kSchedMigrate:
      return "sched_migrate";
    case EventType::kRunqDepth:
      return "runq_depth";
    case EventType::kFutexQDepth:
      return "futexq_depth";
  }
  return "unknown";
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

uint32_t NewObjectId() {
  static std::atomic<uint32_t> next{1};
  // relaxed: unique-id allocation needs atomicity only; ids carry no
  // happens-before obligation to any other memory.
  return next.fetch_add(1, std::memory_order_relaxed);
}

#ifndef DIPC_OBS_OFF

void TraceRing::Enable(uint32_t capacity_per_cpu) {
  if (capacity_per_cpu == 0) {
    capacity_per_cpu = 1;
  }
  if (capacity_per_cpu != capacity_) {
    capacity_ = capacity_per_cpu;
    for (auto& r : rings_) {
      r.slots.assign(capacity_, TraceEvent{});
      // relaxed: setup-time reset; no recorder runs concurrently with
      // Enable (callers toggle tracing between, not during, workloads).
      r.next.store(0, std::memory_order_relaxed);
    }
  } else {
    Clear();
  }
  // relaxed: recorders poll this flag; a stale read costs or saves one
  // event at the toggle edge, it cannot tear or reorder recorded data.
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRing::Disable() {
  // relaxed: same flag-poll contract as Enable.
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRing::RecordSlow(uint32_t cpu, EventType type, uint32_t obj, uint64_t arg,
                           sim::Time ts, sim::Duration dur, uint64_t opid) {
  CpuRing& r = rings_[cpu % kMaxCpus];
  // relaxed: per-CPU slot claim; the ring is single-writer per CPU in the
  // simulation and readers (Snapshot) tolerate torn-in-flight tail slots.
  uint64_t i = r.next.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& e = r.slots[i % capacity_];
  e.ts_ps = ts.picos();
  e.dur_ps = dur.picos();
  e.arg = arg;
  e.opid = opid;
  e.obj = obj;
  e.cpu = cpu;
  e.type = type;
}

void TraceRing::Clear() {
  for (auto& r : rings_) {
    // relaxed: reset between measurement windows, not during recording.
    r.next.store(0, std::memory_order_relaxed);
  }
}

uint64_t TraceRing::recorded(uint32_t cpu) const {
  // relaxed: statistics read; a count one event stale is still a valid
  // answer and no payload is read through it.
  return rings_[cpu % kMaxCpus].next.load(std::memory_order_relaxed);
}

uint64_t TraceRing::held(uint32_t cpu) const {
  return std::min<uint64_t>(recorded(cpu), capacity_);
}

uint64_t TraceRing::dropped(uint32_t cpu) const {
  uint64_t n = recorded(cpu);
  return n > capacity_ ? n - capacity_ : 0;
}

uint64_t TraceRing::total_dropped() const {
  uint64_t total = 0;
  for (uint32_t cpu = 0; cpu < kMaxCpus; ++cpu) {
    total += dropped(cpu);
  }
  return total;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  if (capacity_ == 0) {
    return out;
  }
  for (const auto& r : rings_) {
    // relaxed: snapshots run quiesced (after Disable or between windows);
    // during recording the tail slot may be mid-write either way.
    uint64_t n = r.next.load(std::memory_order_relaxed);
    uint64_t held = std::min<uint64_t>(n, capacity_);
    // Oldest surviving event sits at index n - held in the logical stream.
    for (uint64_t k = n - held; k < n; ++k) {
      out.push_back(r.slots[k % capacity_]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ps < b.ts_ps; });
  return out;
}

#else  // DIPC_OBS_OFF

void TraceRing::Enable(uint32_t) {}
void TraceRing::Disable() {}
void TraceRing::RecordSlow(uint32_t, EventType, uint32_t, uint64_t, sim::Time, sim::Duration,
                           uint64_t) {}
void TraceRing::Clear() {}
uint64_t TraceRing::recorded(uint32_t) const { return 0; }
uint64_t TraceRing::held(uint32_t) const { return 0; }
uint64_t TraceRing::dropped(uint32_t) const { return 0; }
uint64_t TraceRing::total_dropped() const { return 0; }
std::vector<TraceEvent> TraceRing::Snapshot() const { return {}; }

#endif  // DIPC_OBS_OFF

std::string TraceRing::ChromeTraceJson() const {
  // ts/dur are microseconds in the trace_event format; emit picosecond
  // precision as fractional microseconds. pid 0 is the whole simulation,
  // tid = simulated cpu.
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"dipc-sim\"}}";
  std::vector<TraceEvent> events = Snapshot();
  char buf[320];
  for (const TraceEvent& e : events) {
    double ts_us = static_cast<double>(e.ts_ps) / 1e6;
    if (e.dur_ps > 0) {
      double dur_us = static_cast<double>(e.dur_ps) / 1e6;
      // Span events render with their *start* time in chrome://tracing;
      // events are recorded at completion, so shift back by dur.
      snprintf(buf, sizeof(buf),
               ",\n{\"ph\": \"X\", \"pid\": 0, \"tid\": %u, \"name\": \"%s\", "
               "\"ts\": %.6f, \"dur\": %.6f, "
               "\"args\": {\"obj\": %u, \"arg\": %llu, \"opid\": %llu}}",
               e.cpu, EventTypeName(e.type), ts_us - dur_us, dur_us, e.obj,
               static_cast<unsigned long long>(e.arg),
               static_cast<unsigned long long>(e.opid));
    } else {
      snprintf(buf, sizeof(buf),
               ",\n{\"ph\": \"i\", \"pid\": 0, \"tid\": %u, \"name\": \"%s\", "
               "\"ts\": %.6f, \"s\": \"t\", "
               "\"args\": {\"obj\": %u, \"arg\": %llu, \"opid\": %llu}}",
               e.cpu, EventTypeName(e.type), ts_us, e.obj,
               static_cast<unsigned long long>(e.arg),
               static_cast<unsigned long long>(e.opid));
    }
    out += buf;
  }
  char tail[96];
  snprintf(tail, sizeof(tail), "\n], \"displayTimeUnit\": \"ns\", \"droppedEvents\": %llu}\n",
           static_cast<unsigned long long>(total_dropped()));
  out += tail;
  return out;
}

bool TraceRing::ExportChromeTrace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << ChromeTraceJson();
  return static_cast<bool>(f);
}

}  // namespace dipc::obs
