#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "base/thread_annotations.h"
#include "obs/metric_schema.h"

namespace dipc::obs {

#ifndef DIPC_OBS_OFF

double Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // Rank of the target sample, 1-based; walk buckets until the cumulative
  // count crosses it, then interpolate across the crossing bucket's range.
  double rank = p / 100.0 * static_cast<double>(total - 1) + 1.0;
  uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t n = bucket(b);
    if (n == 0) {
      continue;
    }
    if (static_cast<double>(cum + n) >= rank) {
      double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      double hi = b == 0 ? 1.0 : lo * 2.0;
      double frac = (rank - static_cast<double>(cum)) / static_cast<double>(n);
      double v = lo + (hi - lo) * frac;
      // Clamp to the observed range so tiny histograms don't report values
      // outside [min, max].
      v = std::max(v, static_cast<double>(min_ns()));
      v = std::min(v, static_cast<double>(max_ns()));
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max_ns());
}

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

struct Entry {
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  std::string s = os.str();
  if (s == "inf" || s == "-inf" || s == "nan") {
    return "0";
  }
  return s;
}

}  // namespace

struct Registry::Impl {
  mutable base::Mutex mu;
  // std::map keeps names sorted so SnapshotJson() is deterministic; Entry
  // values hold unique_ptrs, so handle pointers survive rehash/rebalance.
  std::map<std::string, Entry, std::less<>> entries DIPC_GUARDED_BY(mu);
  uint64_t kind_collisions DIPC_GUARDED_BY(mu) = 0;
  // First registrations whose name no manifest pattern covers ("<kind>
  // <name>"); drained by Registry::TakeSchemaViolations.
  std::vector<std::string> schema_violations DIPC_GUARDED_BY(mu);

  Entry& GetOrCreate(std::string_view name, Kind kind) DIPC_REQUIRES(mu) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      static constexpr MetricKind kSchemaKind[] = {
          MetricKind::kCounter, MetricKind::kGauge, MetricKind::kHistogram};
      MetricKind schema_kind = kSchemaKind[static_cast<int>(kind)];
      if (!NameMatchesSchema(name, schema_kind)) {
        schema_violations.push_back(std::string(MetricKindName(schema_kind)) + " " +
                                    std::string(name));
      }
      Entry e;
      e.kind = kind;
      switch (kind) {
        case Kind::kCounter:
          e.counter = std::make_unique<Counter>();
          break;
        case Kind::kGauge:
          e.gauge = std::make_unique<Gauge>();
          break;
        case Kind::kHistogram:
          e.histogram = std::make_unique<Histogram>();
          break;
      }
      it = entries.emplace(std::string(name), std::move(e)).first;
    }
    return it->second;
  }
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Registry& Registry::Default() {
  static Registry* r = new Registry();
  return *r;
}

Counter* Registry::GetCounter(std::string_view name) {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  Entry& e = im.GetOrCreate(name, Kind::kCounter);
  if (e.kind != Kind::kCounter) {
    // Name already taken by a different kind: hand back a detached dummy so
    // the caller still gets a valid handle, and record the misuse.
    ++im.kind_collisions;
    static Counter* dummy = new Counter();
    return dummy;
  }
  return e.counter.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  Entry& e = im.GetOrCreate(name, Kind::kGauge);
  if (e.kind != Kind::kGauge) {
    ++im.kind_collisions;
    static Gauge* dummy = new Gauge();
    return dummy;
  }
  return e.gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  Entry& e = im.GetOrCreate(name, Kind::kHistogram);
  if (e.kind != Kind::kHistogram) {
    ++im.kind_collisions;
    static Histogram* dummy = new Histogram();
    return dummy;
  }
  return e.histogram.get();
}

std::string Registry::SnapshotJson() const {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  std::string out = "{";
  auto section = [&](const char* title, Kind kind, auto&& emit) {
    AppendJsonString(out, title);
    out += ": {";
    bool first = true;
    for (const auto& [name, e] : im.entries) {
      if (e.kind != kind) {
        continue;
      }
      if (!first) {
        out += ", ";
      }
      first = false;
      AppendJsonString(out, name);
      out += ": ";
      emit(e);
    }
    out += "}";
  };
  section("counters", Kind::kCounter,
          [&](const Entry& e) { out += std::to_string(e.counter->value()); });
  out += ", ";
  section("gauges", Kind::kGauge,
          [&](const Entry& e) { out += std::to_string(e.gauge->value()); });
  out += ", ";
  section("histograms", Kind::kHistogram, [&](const Entry& e) {
    const Histogram& h = *e.histogram;
    out += "{\"count\": " + std::to_string(h.count());
    out += ", \"sum_ns\": " + std::to_string(h.sum_ns());
    out += ", \"min_ns\": " + std::to_string(h.min_ns());
    out += ", \"max_ns\": " + std::to_string(h.max_ns());
    out += ", \"p50\": " + FormatDouble(h.Percentile(50));
    out += ", \"p95\": " + FormatDouble(h.Percentile(95));
    out += ", \"p99\": " + FormatDouble(h.Percentile(99));
    out += "}";
  });
  if (im.kind_collisions > 0) {
    out += ", \"kind_collisions\": " + std::to_string(im.kind_collisions);
  }
  out += "}";
  return out;
}

void Registry::Reset() {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  for (auto& [name, e] : im.entries) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

size_t Registry::size() const {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  return im.entries.size();
}

std::vector<std::string> Registry::TakeSchemaViolations() {
  Impl& im = impl();
  base::MutexLock lock(&im.mu);
  std::vector<std::string> out;
  out.swap(im.schema_violations);
  return out;
}

#else  // DIPC_OBS_OFF

Registry& Registry::Default() {
  static Registry* r = new Registry();
  return *r;
}

struct Registry::Impl {};
Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter* Registry::GetCounter(std::string_view) {
  static Counter* dummy = new Counter();
  return dummy;
}

Gauge* Registry::GetGauge(std::string_view) {
  static Gauge* dummy = new Gauge();
  return dummy;
}

Histogram* Registry::GetHistogram(std::string_view) {
  static Histogram* dummy = new Histogram();
  return dummy;
}

std::string Registry::SnapshotJson() const { return "{}"; }
void Registry::Reset() {}
size_t Registry::size() const { return 0; }
std::vector<std::string> Registry::TakeSchemaViolations() { return {}; }

#endif  // DIPC_OBS_OFF

const char* DomainTimeKindName(DomainTimeKind kind) {
  switch (kind) {
    case DomainTimeKind::kUser:
      return "user";
    case DomainTimeKind::kKernel:
      return "kernel";
    case DomainTimeKind::kCopy:
      return "copy";
    case DomainTimeKind::kFutexWait:
      return "futex_wait";
    case DomainTimeKind::kProxy:
      return "proxy";
    case DomainTimeKind::kCount:
      break;
  }
  return "unknown";
}

#ifndef DIPC_OBS_OFF

void ChargeDomainTime(uint32_t domain_tag, DomainTimeKind kind, int64_t ps) {
  if (ps <= 0 || kind >= DomainTimeKind::kCount) {
    return;
  }
  // Cached (tag, kind) -> {counter handle, sub-ns remainder}. The remainder
  // survives Registry::Reset on purpose: it is residue below the counter's
  // unit, not a value a series window could meaningfully claim.
  struct Slot {
    Counter* counter = nullptr;
    int64_t remainder_ps = 0;
  };
  static std::mutex* mu = new std::mutex();
  static std::map<uint64_t, Slot>* slots = new std::map<uint64_t, Slot>();
  const uint64_t key =
      (static_cast<uint64_t>(domain_tag) << 8) | static_cast<uint64_t>(kind);
  std::lock_guard<std::mutex> lock(*mu);
  Slot& s = (*slots)[key];
  if (s.counter == nullptr) {
    s.counter = Registry::Default().GetCounter("domain/" + std::to_string(domain_tag) +
                                               "/time_ns/" + DomainTimeKindName(kind));
  }
  const int64_t total_ps = s.remainder_ps + ps;
  const int64_t ns = total_ps / 1000;
  s.remainder_ps = total_ps % 1000;
  if (ns > 0) {
    s.counter->Add(static_cast<uint64_t>(ns));
  }
}

#endif  // DIPC_OBS_OFF

}  // namespace dipc::obs
