// The metric name schema, expanded from the X-macro manifest
// src/obs/metric_schema.def (see that file for the pattern grammar).
//
// Two consumers keep registration honest:
//   - Registry::Get{Counter,Gauge,Histogram} validate every first
//     registration against the schema and record misses; the obs tests
//     drain Registry::TakeSchemaViolations() after exercising each
//     subsystem and assert nothing drifted.
//   - tools/dipclint's METRIC-SCHEMA rule checks the literal fragments of
//     registration call sites at lint time, before anything runs.
//
// This header is deliberately independent of DIPC_OBS_OFF: the schema is a
// compile-time table, so name checks stay testable even when the metrics
// layer itself is compiled out.
#ifndef DIPC_OBS_METRIC_SCHEMA_H_
#define DIPC_OBS_METRIC_SCHEMA_H_

#include <cstdint>
#include <string_view>

namespace dipc::obs {

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

struct MetricSchemaEntry {
  MetricKind kind;
  std::string_view pattern;
};

inline constexpr MetricSchemaEntry kMetricSchema[] = {
#define DIPC_METRIC(kind, pattern) {MetricKind::k##kind, pattern},
#include "obs/metric_schema.def"
#undef DIPC_METRIC
};

// Component-wise match of `name` against one manifest pattern: '*' matches
// exactly one component, a component ending in '*' matches by prefix
// ("cpu*" vs "cpu3"), and a final "**" matches one or more remaining
// components. Exposed separately so the matcher itself is unit-testable.
bool MetricPatternMatches(std::string_view pattern, std::string_view name);

// True iff some schema entry of this kind matches `name`.
bool NameMatchesSchema(std::string_view name, MetricKind kind);

}  // namespace dipc::obs

#endif  // DIPC_OBS_METRIC_SCHEMA_H_
