#include "obs/metric_schema.h"

namespace dipc::obs {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

// Pops the leading '/'-separated component off `s`.
std::string_view NextComponent(std::string_view& s) {
  size_t slash = s.find('/');
  std::string_view head = s.substr(0, slash);
  s = slash == std::string_view::npos ? std::string_view() : s.substr(slash + 1);
  return head;
}

}  // namespace

bool MetricPatternMatches(std::string_view pattern, std::string_view name) {
  while (!pattern.empty()) {
    std::string_view pc = NextComponent(pattern);
    if (pc == "**") {
      // Must be the final pattern component; eats one or more remaining name
      // components.
      return pattern.empty() && !name.empty();
    }
    if (name.empty()) {
      return false;  // pattern has components left, name does not
    }
    std::string_view nc = NextComponent(name);
    if (pc == "*") {
      continue;  // any single component
    }
    if (!pc.empty() && pc.back() == '*') {
      std::string_view prefix = pc.substr(0, pc.size() - 1);
      if (nc.substr(0, prefix.size()) != prefix) {
        return false;
      }
      continue;
    }
    if (pc != nc) {
      return false;
    }
  }
  return name.empty();
}

bool NameMatchesSchema(std::string_view name, MetricKind kind) {
  for (const MetricSchemaEntry& e : kMetricSchema) {
    if (e.kind == kind && MetricPatternMatches(e.pattern, name)) {
      return true;
    }
  }
  return false;
}

}  // namespace dipc::obs
