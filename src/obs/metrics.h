// Runtime metrics registry: counters, gauges and log-bucketed latency
// histograms registered under hierarchical slash-separated names
// ("chan/3/sends", "domain/17/caps_minted", "fanout/2/rx/1/credit_stall_ns").
//
// The paper's whole argument rests on *attributed* measurement (Fig. 2's
// per-category cycle breakdowns); this registry extends that attribution to
// the runtime layers above os::Accounting — channels, capability churn,
// credit stalls, futex traffic — so a multi-tenant run can answer "which
// tenant is stalling whom" instead of exposing one-off getters.
//
// Hot-path contract:
//   - Registration (name lookup) takes a mutex and builds strings: do it
//     once at object creation and keep the returned handle pointer.
//   - The handles themselves are single relaxed atomic ops (Counter::Add is
//     one fetch_add), cheap enough to leave on the steady-state send path.
//     Handle pointers are stable for the life of the process (deque-backed
//     storage; the registry never removes entries).
//   - Recording charges no simulated time: a relaxed increment is modeled
//     as disappearing into the superscalar margin. Trace events are the
//     costed observability primitive (see obs/trace.h).
//   - Compiling with -DDIPC_OBS_OFF=1 stubs every handle to a no-op and the
//     registry to a shared dummy, so instrumented call sites compile away.
//
// The simulation itself is single-threaded (coroutines on one event queue),
// but the handles are thread-safe so host-level tooling/tests can hammer
// them from real threads (the TSan gate does).
#ifndef DIPC_OBS_METRICS_H_
#define DIPC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dipc::obs {

#ifndef DIPC_OBS_OFF

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time level (queue depth, credits outstanding).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log2-bucketed latency histogram over nanosecond values: bucket b counts
// samples with bit_width(ns) == b, i.e. [2^(b-1), 2^b). 64 buckets cover
// the whole int64 nanosecond range; percentile queries interpolate inside
// the crossing bucket, which is the usual HdrHistogram-style trade of
// <= ~50% relative error per sample for O(1) lock-free recording.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(double ns) {
    uint64_t v = ns <= 0 ? 0 : static_cast<uint64_t>(ns);
    int b = v == 0 ? 0 : std::bit_width(v);
    if (b >= kBuckets) {
      b = kBuckets - 1;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(v, std::memory_order_relaxed);
    AtomicMin(min_ns_, v);
    AtomicMax(max_ns_, v);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t min_ns() const {
    uint64_t m = min_ns_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const { return buckets_[b].load(std::memory_order_relaxed); }

  // Approximate p-th percentile (p in [0, 100]) in ns: finds the bucket the
  // rank falls into and interpolates linearly across its value range.
  double Percentile(double p) const;

  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  static void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> min_ns_{UINT64_MAX};
  std::atomic<uint64_t> max_ns_{0};
};

#else  // DIPC_OBS_OFF: every handle is a stateless no-op.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void Sub(int64_t) {}
  int64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;
  void Record(double) {}
  uint64_t count() const { return 0; }
  uint64_t sum_ns() const { return 0; }
  uint64_t min_ns() const { return 0; }
  uint64_t max_ns() const { return 0; }
  uint64_t bucket(int) const { return 0; }
  double Percentile(double) const { return 0; }
  void Reset() {}
};

#endif  // DIPC_OBS_OFF

// Name -> handle registry. Handles are created on first Get* and live for
// the process; the same name always returns the same pointer (a name names
// one metric, whoever asks). A name must stick to one kind — asking for a
// counter named like an existing histogram returns a fresh dummy handle and
// flags the collision in the snapshot rather than aborting the run.
class Registry {
 public:
  // The process-wide default registry every subsystem registers into.
  static Registry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // One JSON object over every registered metric:
  //   {"counters": {name: value, ...},
  //    "gauges": {name: value, ...},
  //    "histograms": {name: {"count": c, "sum_ns": s, "min_ns": m,
  //                          "max_ns": M, "p50": .., "p95": .., "p99": ..}}}
  // Names are emitted sorted, so snapshots diff cleanly.
  std::string SnapshotJson() const;

  // Zeroes every metric without invalidating handles (bench measurement
  // windows reset between series).
  void Reset();

  size_t size() const;

  // Every first registration is validated against the manifest schema
  // (src/obs/metric_schema.def); names no pattern covers accumulate here as
  // "<kind> <name>" strings. Draining returns what accrued since the last
  // drain — tests drain before exercising a subsystem, then assert the
  // second drain is empty (name drift is a test failure, not silent
  // dashboard rot). Always empty under DIPC_OBS_OFF.
  std::vector<std::string> TakeSchemaViolations();

 private:
  struct Impl;
  Impl& impl() const;
};

// Per-domain simulated-time attribution, charged by os::Kernel whenever a
// thread spends modeled time. Kinds mirror the paper's Fig. 2 question —
// where does a cross-domain call's time go — collapsed to what a profiler
// would bill a tenant for: its own user code, kernel work done on its
// behalf, data-plane copies, time parked on futexes, and proxy trampolines.
enum class DomainTimeKind : uint8_t {
  kUser,
  kKernel,
  kCopy,
  kFutexWait,
  kProxy,
  kCount,
};

// Metric-name component for one kind ("user", "kernel", ...).
const char* DomainTimeKindName(DomainTimeKind kind);

#ifndef DIPC_OBS_OFF
// Adds `ps` picoseconds of `kind` time to the default-registry counter
// "domain/<tag>/time_ns/<kind>". Counters hold nanoseconds; sub-ns residue
// carries over per (tag, kind) so long runs don't systematically truncate
// (the acceptance bound joins these sums against wall sim-time at 5%).
void ChargeDomainTime(uint32_t domain_tag, DomainTimeKind kind, int64_t ps);
#else
inline void ChargeDomainTime(uint32_t, DomainTimeKind, int64_t) {}
#endif

}  // namespace dipc::obs

#endif  // DIPC_OBS_METRICS_H_
