// Clang thread-safety analysis annotations (-Wthread-safety), expanding to
// nothing on compilers without the attribute (GCC builds them away). The
// simulation core is single-threaded coroutines, but three structures are
// touched by real host threads — the metrics registry (TSan-gated tests
// hammer handles from std::threads), the RevocationTable and the fabric
// completion map — and their mutexes carry these annotations so the
// DIPC_THREAD_SAFETY clang build proves lock discipline statically.
//
// Vocabulary follows the clang docs / abseil naming, prefixed DIPC_ to keep
// the macro namespace ours.
#ifndef DIPC_BASE_THREAD_ANNOTATIONS_H_
#define DIPC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DIPC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DIPC_THREAD_ANNOTATION
#define DIPC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Data members: which lock protects this field.
#define DIPC_GUARDED_BY(x) DIPC_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: the pointed-to data (not the pointer) is protected.
#define DIPC_PT_GUARDED_BY(x) DIPC_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions: caller must hold / must not hold the lock.
#define DIPC_REQUIRES(...) DIPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DIPC_EXCLUDES(...) DIPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions that take or drop the lock themselves.
#define DIPC_ACQUIRE(...) DIPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DIPC_RELEASE(...) DIPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Types usable as capabilities (mutex wrappers) and scoped lockers.
#define DIPC_CAPABILITY(x) DIPC_THREAD_ANNOTATION(capability(x))
#define DIPC_SCOPED_CAPABILITY DIPC_THREAD_ANNOTATION(scoped_lockable)
// Return-a-reference-to-guarded-data escape hatch.
#define DIPC_RETURN_CAPABILITY(x) DIPC_THREAD_ANNOTATION(lock_returned(x))
// Opt-out for functions the analysis cannot follow (test-only backdoors).
#define DIPC_NO_THREAD_SAFETY_ANALYSIS \
  DIPC_THREAD_ANNOTATION(no_thread_safety_analysis)

#include <mutex>

namespace dipc::base {

// std::mutex carries no capability attributes on libstdc++, so the analysis
// cannot see through std::lock_guard. This annotated wrapper (the abseil
// pattern) is what DIPC_GUARDED_BY members name; at runtime it is exactly a
// std::mutex.
class DIPC_CAPABILITY("mutex") Mutex {
 public:
  void lock() DIPC_ACQUIRE() { mu_.lock(); }
  void unlock() DIPC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Scoped locker for Mutex, visible to the analysis as acquiring/releasing
// the capability for its lifetime.
class DIPC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DIPC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() DIPC_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace dipc::base

#endif  // DIPC_BASE_THREAD_ANNOTATIONS_H_
