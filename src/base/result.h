// Lightweight status / result types used across the library.
//
// The simulated kernel and the dIPC runtime report failures the way a kernel
// does: with error codes, not exceptions. Result<T> is a minimal expected-like
// wrapper (std::expected is C++23; we target C++20).
#ifndef DIPC_BASE_RESULT_H_
#define DIPC_BASE_RESULT_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace dipc::base {

// Error codes roughly follow kernel errno semantics plus dIPC-specific ones.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,     // EINVAL
  kPermissionDenied,    // EPERM / EACCES
  kNotFound,            // ENOENT
  kAlreadyExists,       // EEXIST
  kBadHandle,           // EBADF
  kWouldBlock,          // EAGAIN
  kInterrupted,         // EINTR
  kTimedOut,            // ETIMEDOUT
  kResourceExhausted,   // ENOMEM / EMFILE
  kBrokenChannel,       // EPIPE / ECONNRESET
  kFault,               // protection fault (CODOMs check failed, revoked cap...)
  kSignatureMismatch,   // dIPC P4: entry point signatures disagree
  kCalleeFailed,        // dIPC P3: callee crashed / was killed; KCS unwound here
  kNotSupported,        // operation valid but not available in this configuration
};

constexpr std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kPermissionDenied: return "kPermissionDenied";
    case ErrorCode::kNotFound: return "kNotFound";
    case ErrorCode::kAlreadyExists: return "kAlreadyExists";
    case ErrorCode::kBadHandle: return "kBadHandle";
    case ErrorCode::kWouldBlock: return "kWouldBlock";
    case ErrorCode::kInterrupted: return "kInterrupted";
    case ErrorCode::kTimedOut: return "kTimedOut";
    case ErrorCode::kResourceExhausted: return "kResourceExhausted";
    case ErrorCode::kBrokenChannel: return "kBrokenChannel";
    case ErrorCode::kFault: return "kFault";
    case ErrorCode::kSignatureMismatch: return "kSignatureMismatch";
    case ErrorCode::kCalleeFailed: return "kCalleeFailed";
    case ErrorCode::kNotSupported: return "kNotSupported";
  }
  return "kUnknown";
}

// Status: success or an error code.
class [[nodiscard]] Status {
 public:
  constexpr Status() : code_(ErrorCode::kOk) {}
  constexpr Status(ErrorCode code) : code_(code) {}  // NOLINT: implicit by design

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == ErrorCode::kOk; }
  constexpr ErrorCode code() const { return code_; }
  constexpr std::string_view name() const { return ErrorCodeName(code_); }

  constexpr bool operator==(const Status& other) const = default;

 private:
  ErrorCode code_;
};

// Result<T>: a value or an error code. T must be movable.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), code_(ErrorCode::kOk) {}  // NOLINT
  Result(ErrorCode code) : code_(code) {}                               // NOLINT
  Result(Status status) : code_(status.code()) {}                       // NOLINT

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  Status status() const { return Status(code_); }

  // Precondition: ok(). (Checked in debug builds via the optional.)
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  ErrorCode code_;
};

}  // namespace dipc::base

// Propagates an error from an expression returning Status/Result.
#define DIPC_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    auto dipc_status_ = (expr);                     \
    if (!dipc_status_.ok()) return dipc_status_.code(); \
  } while (0)

#endif  // DIPC_BASE_RESULT_H_
