// Assertion helpers. DIPC_CHECK is always on (simulator correctness beats the
// last few percent of speed); DIPC_DCHECK compiles out in NDEBUG builds.
#ifndef DIPC_BASE_CHECK_H_
#define DIPC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dipc::base {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "DIPC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dipc::base

#define DIPC_CHECK(cond)                                     \
  do {                                                       \
    if (!(cond)) {                                           \
      ::dipc::base::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                        \
  } while (0)

#ifdef NDEBUG
#define DIPC_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DIPC_DCHECK(cond) DIPC_CHECK(cond)
#endif

#endif  // DIPC_BASE_CHECK_H_
