// Set-associative cache hierarchy model.
//
// Latency-oriented: tracks tags and coherence ownership so copies and
// cross-CPU transfers show the knees the paper's Figure 6 annotates (L1$/L2$
// sizes) and the ≠CPU penalty of moving producer-written lines to a consumer.
// It is not a full MESI simulator: we track, per line, which CPU last wrote
// it, and charge a remote-transfer latency when another CPU touches it.
#ifndef DIPC_HW_CACHE_MODEL_H_
#define DIPC_HW_CACHE_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/cost_model.h"
#include "hw/types.h"
#include "sim/time.h"

namespace dipc::hw {

// One set-associative tag array with LRU replacement.
class TagArray {
 public:
  TagArray(uint64_t size_bytes, uint32_t ways, uint64_t line_size = kCacheLineSize);

  // Returns true on hit. On miss, inserts the line (evicting LRU).
  bool Touch(uint64_t line_addr);
  // True if present, without updating LRU or inserting.
  bool Contains(uint64_t line_addr) const;
  void Invalidate(uint64_t line_addr);
  void InvalidateAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Way {
    uint64_t tag = UINT64_MAX;
    uint64_t lru = 0;
  };

  uint64_t sets_;
  uint32_t ways_;
  std::vector<Way> slots_;  // sets_ * ways_
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

struct CacheStats {
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t mem_accesses = 0;
  uint64_t remote_transfers = 0;
};

// The machine's cache hierarchy: private L1/L2 per CPU, shared L3.
class CacheModel {
 public:
  CacheModel(uint32_t num_cpus, const CostModel& costs);

  // Charges the latency of accessing [addr, addr+size) from `cpu`.
  // Writes mark the lines as owned-dirty by `cpu`.
  sim::Duration Access(CpuId cpu, uint64_t addr, uint64_t size, bool is_write);

  // Models cache pollution: invalidates everything in a CPU's private levels.
  void FlushPrivate(CpuId cpu);

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct PrivateLevels {
    TagArray l1;
    TagArray l2;
  };

  const CostModel& costs_;
  std::vector<PrivateLevels> per_cpu_;
  TagArray l3_;
  // line -> CPU that last wrote it (+1; 0 = clean/none).
  std::unordered_map<uint64_t, uint32_t> dirty_owner_;
  CacheStats stats_;
};

}  // namespace dipc::hw

#endif  // DIPC_HW_CACHE_MODEL_H_
