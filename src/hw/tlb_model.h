// Two-level TLB model (per CPU).
//
// Used to charge page-walk latency on first touch and to make page-table
// switches (CR3 writes) cost more for large-footprint processes — one of the
// second-order overheads §2.2 attributes to process switching.
#ifndef DIPC_HW_TLB_MODEL_H_
#define DIPC_HW_TLB_MODEL_H_

#include <cstdint>

#include "hw/cache_model.h"
#include "hw/cost_model.h"
#include "hw/types.h"

namespace dipc::hw {

class TlbModel {
 public:
  explicit TlbModel(const CostModel& costs)
      : costs_(costs), l1_(64 * kPageSize, 4, kPageSize), l2_(1536 * kPageSize, 6, kPageSize) {}

  // Charges translation cost for the page containing `va` in address space
  // `asid`. Translations are tagged by asid, so a page-table switch does not
  // have to flush (matching PCID-less Linux would flush; we model the flush
  // explicitly in Flush()).
  sim::Duration Translate(VirtAddr va, uint64_t asid) {
    uint64_t key = (PageNumber(va) << 16) ^ asid;
    if (l1_.Touch(key)) {
      return sim::Duration::Zero();
    }
    if (l2_.Touch(key)) {
      return costs_.Cycles(7);
    }
    ++walks_;
    return costs_.tlb_walk;
  }

  // Full flush (non-PCID CR3 write).
  void Flush() {
    l1_.InvalidateAll();
    l2_.InvalidateAll();
  }

  uint64_t walks() const { return walks_; }

 private:
  const CostModel& costs_;
  TagArray l1_;
  TagArray l2_;
  uint64_t walks_ = 0;
};

}  // namespace dipc::hw

#endif  // DIPC_HW_TLB_MODEL_H_
