// Architectural base types shared by the machine model and the CODOMs layer.
#ifndef DIPC_HW_TYPES_H_
#define DIPC_HW_TYPES_H_

#include <cstdint>

namespace dipc::hw {

using VirtAddr = uint64_t;
using PhysAddr = uint64_t;
using CpuId = uint32_t;

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kCacheLineSize = 64;

constexpr uint64_t PageNumber(VirtAddr va) { return va >> kPageShift; }
constexpr uint64_t PageOffset(VirtAddr va) { return va & (kPageSize - 1); }
constexpr VirtAddr PageBase(VirtAddr va) { return va & ~(kPageSize - 1); }
constexpr VirtAddr PageRoundUp(VirtAddr va) { return (va + kPageSize - 1) & ~(kPageSize - 1); }

// CODOMs per-page domain tag. Tag 0 is reserved/invalid; the page table keeps
// one tag per page (§4.1 of the paper).
using DomainTag = uint32_t;
inline constexpr DomainTag kInvalidDomainTag = 0;

enum class AccessType : uint8_t {
  kRead,
  kWrite,
  kExecute,
};

}  // namespace dipc::hw

#endif  // DIPC_HW_TYPES_H_
