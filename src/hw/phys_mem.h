// Sparse physical memory backing store.
#ifndef DIPC_HW_PHYS_MEM_H_
#define DIPC_HW_PHYS_MEM_H_

#include <array>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "base/check.h"
#include "hw/types.h"

namespace dipc::hw {

// Frame-granular sparse memory. Frames are allocated on demand and
// zero-filled; frame numbers are handed out by a bump allocator so tests are
// deterministic.
class PhysMem {
 public:
  PhysMem() = default;
  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  // Allocates a fresh zeroed frame and returns its frame number.
  uint64_t AllocFrame() { return next_frame_++; }

  void Read(PhysAddr pa, std::span<std::byte> out) const;
  void Write(PhysAddr pa, std::span<const std::byte> data);

  // Copies `size` bytes between physical ranges (may cross frames).
  void Copy(PhysAddr dst, PhysAddr src, uint64_t size);

  uint64_t frames_allocated() const { return next_frame_ - 1; }
  uint64_t frames_touched() const { return frames_.size(); }

 private:
  using Frame = std::array<std::byte, kPageSize>;

  Frame& FrameFor(PhysAddr pa) const {
    uint64_t fn = pa >> kPageShift;
    auto it = frames_.find(fn);
    if (it == frames_.end()) {
      auto frame = std::make_unique<Frame>();
      frame->fill(std::byte{0});
      it = frames_.emplace(fn, std::move(frame)).first;
    }
    return *it->second;
  }

  // Frames materialize lazily even on reads (zero-fill), hence mutable.
  mutable std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_;
  uint64_t next_frame_ = 1;  // frame 0 reserved
};

inline void PhysMem::Read(PhysAddr pa, std::span<std::byte> out) const {
  size_t done = 0;
  while (done < out.size()) {
    const Frame& f = FrameFor(pa + done);
    uint64_t off = PageOffset(pa + done);
    size_t chunk = std::min<size_t>(out.size() - done, kPageSize - off);
    std::memcpy(out.data() + done, f.data() + off, chunk);
    done += chunk;
  }
}

inline void PhysMem::Write(PhysAddr pa, std::span<const std::byte> data) {
  size_t done = 0;
  while (done < data.size()) {
    Frame& f = FrameFor(pa + done);
    uint64_t off = PageOffset(pa + done);
    size_t chunk = std::min<size_t>(data.size() - done, kPageSize - off);
    std::memcpy(f.data() + off, data.data() + done, chunk);
    done += chunk;
  }
}

inline void PhysMem::Copy(PhysAddr dst, PhysAddr src, uint64_t size) {
  std::array<std::byte, 512> buf;
  uint64_t done = 0;
  while (done < size) {
    uint64_t chunk = std::min<uint64_t>(size - done, buf.size());
    Read(src + done, std::span(buf.data(), chunk));
    Write(dst + done, std::span<const std::byte>(buf.data(), chunk));
    done += chunk;
  }
}

}  // namespace dipc::hw

#endif  // DIPC_HW_PHYS_MEM_H_
