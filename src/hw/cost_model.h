// Calibrated cost model for the simulated machine.
//
// The paper evaluates dIPC by *emulating* CODOMs on a Xeon E3-1220 V2
// (4 cores @ 3.10 GHz, Table 3) and reasoning about hardware costs
// analytically (§7.1, §7.5). We take the same approach: every primitive the
// evaluation depends on has an explicit cost here, calibrated against the
// anchors the paper reports:
//
//   - function call                       ≈ 2 ns            (§2.2)
//   - empty Linux syscall                 ≈ 34 ns           (§2.2)
//   - L4 Fiasco.OC same-CPU round trip    ≈ 948 ns (474×)   (§2.2)
//   - Sem (=CPU) ≈ 1513 ns, Pipe (=CPU) ≈ 2032 ns,
//     Local RPC (=CPU) ≈ 6856 ns, RPC (≠CPU) ≈ 7345-8442 ns (Figs. 2 and 5)
//   - dIPC Low ≈ 6 ns, High ≈ 50.8 ns (8.47× policy spread),
//     dIPC+proc Low ≈ 56.8 ns, High ≈ 106.9 ns
//     (64.12× vs RPC, 8.87× vs L4, 14.16×-120.67× range)   (§7.2)
//   - TLS wrfsbase switch dominates +proc: removing it would speed dIPC+proc
//     by 1.54×-3.22×                                        (§7.2, §6.1.2)
//
// All values are Durations (integer picoseconds). Fields are mutable so
// ablation benches (§7.5) can scale individual costs.
#ifndef DIPC_HW_COST_MODEL_H_
#define DIPC_HW_COST_MODEL_H_

#include "sim/time.h"

namespace dipc::hw {

using sim::Duration;

struct CostModel {
  // ---- Core pipeline ----
  double cpu_ghz = 3.1;
  // One cycle at 3.1 GHz is ~322.6 ps.
  Duration Cycles(double n) const { return Duration::Nanos(n / cpu_ghz); }

  // Direct call+return within a domain (the paper's 2 ns baseline).
  Duration function_call = Duration::Nanos(2.0);

  // ---- User/kernel crossings (Fig. 2 block 2) ----
  // syscall instruction + swapgs on entry.
  Duration syscall_trap = Duration::Nanos(12.0);
  // swapgs + sysret on exit. trap+sysret = the 34 ns empty-syscall anchor,
  // minus ~2 ns of user-side call overhead.
  Duration sysret = Duration::Nanos(10.0);
  // Syscall dispatch trampoline: entry assembly, table lookup, ptrace/seccomp
  // checks (Fig. 2 block 3).
  Duration syscall_dispatch = Duration::Nanos(12.0);
  // Hardware exception entry+return (used by CHERI/MMP-style domain switches
  // and by APL-cache miss handling).
  Duration exception_roundtrip = Duration::Nanos(250.0);
  Duration pipeline_flush = Duration::Nanos(15.0);

  // ---- Context and address-space switching (Fig. 2 blocks 5-6) ----
  // Save or restore of the full integer register state.
  Duration register_save = Duration::Nanos(45.0);
  Duration register_restore = Duration::Nanos(45.0);
  // Scheduler work per switch: pick_next_task, runqueue manipulation,
  // accounting (the bulk of Fig. 2 block 5 besides register state).
  Duration schedule_pick = Duration::Nanos(210.0);
  // Switching the per-CPU `current` descriptor and fd-table pointer.
  Duration current_switch = Duration::Nanos(20.0);
  // CR3 write plus immediate TLB refill pressure (Fig. 2 block 6).
  Duration page_table_switch = Duration::Nanos(80.0);
  // Switching the TLS segment base (wrfsbase; §6.1.2 calls it "costly").
  Duration tls_switch = Duration::Nanos(19.6);

  // ---- Cross-CPU signalling (§2.2: "Going across CPUs is even more
  // expensive ... dominated by the costs of inter-processor interrupts") ----
  Duration ipi_send = Duration::Nanos(450.0);
  Duration ipi_deliver = Duration::Nanos(650.0);
  // Leaving the idle loop (C-state exit + scheduler entry).
  Duration idle_exit = Duration::Nanos(350.0);

  // ---- CODOMs-specific operations (§4, §4.3, §7.1) ----
  // Cross-domain call/jump: "negligible performance impact" per the ISCA'14
  // simulations; we charge zero beyond the regular call cost.
  Duration domain_switch = Duration::Nanos(0.0);
  // APL cache lookup: "less than a L1 cache hit", 1-2 cycles (§4.3).
  Duration apl_cache_lookup = Duration::Nanos(0.5);
  // APL cache miss: exception into the kernel + software refill (§7.5).
  Duration apl_cache_miss = Duration::Nanos(300.0);
  // Creating/deriving a capability in a register (unprivileged instruction).
  Duration cap_setup = Duration::Nanos(0.7);
  // Spilling/loading a 32 B capability to/from the DCS or tagged memory.
  Duration cap_memory_op = Duration::Nanos(1.3);
  // Retrieving the 5-bit hardware tag of a cached domain (§4.3 extension):
  // "less than a L1 cache hit".
  Duration hw_tag_lookup = Duration::Nanos(0.5);

  // ---- Zero-copy channel runtime (src/chan/) ----
  // Bumping an async capability's revocation counter (§4.2: "immediate
  // revocation through revocation counters"): one store to the counter word.
  Duration cap_revoke = Duration::Nanos(1.0);
  // Re-snapshotting a cached async capability against its revocation
  // counter's current value (epoch rebind): one counter load + register
  // write — the steady-state grant path that replaces a full mint.
  Duration cap_epoch_rebind = Duration::Nanos(0.5);
  // Channel descriptor fast path per op: head/tail atomics + slot
  // bookkeeping in the shared control segment.
  Duration chan_fast_path = Duration::Nanos(6.0);

  // ---- dIPC proxy internals (§6.1.2) ----
  // Fast-path per-thread cache-array lookup in track_process_call.
  Duration tracker_fast_lookup = Duration::Nanos(4.0);
  // Warm path: per-thread tree lookup + cache-array insert.
  Duration tracker_warm_lookup = Duration::Nanos(120.0);
  // KCS push or pop (one entry on the kernel control stack).
  Duration kcs_op = Duration::Nanos(1.0);

  // ---- Memory hierarchy (per 64 B line; used by CacheModel) ----
  Duration l1_hit = Duration::Nanos(1.3);      // ~4 cycles
  Duration l2_hit = Duration::Nanos(3.9);      // ~12 cycles
  Duration l3_hit = Duration::Nanos(11.0);     // ~34 cycles
  Duration mem_access = Duration::Nanos(60.0); // DRAM
  // Dirty line transferred from another core's private cache.
  Duration remote_transfer = Duration::Nanos(55.0);
  // TLB miss page walk.
  Duration tlb_walk = Duration::Nanos(30.0);

  // ---- Devices ----
  // 7.2k rpm disk: seek+rotational average (DVDStore on-disk config).
  Duration disk_access = Duration::Micros(110.0);
  // Infiniband-like NIC (MT26428): wire+switch one-way latency and per-byte
  // cost at 10 GigE line rate (0.8 ns/B).
  Duration nic_base_latency = Duration::Micros(1.25);
  Duration nic_per_byte = Duration::Nanos(0.8);
  // PIO doorbell / completion polling on the NIC fast path.
  Duration nic_doorbell = Duration::Nanos(150.0);
};

}  // namespace dipc::hw

#endif  // DIPC_HW_COST_MODEL_H_
