#include "hw/cache_model.h"

#include "base/check.h"

namespace dipc::hw {

TagArray::TagArray(uint64_t size_bytes, uint32_t ways, uint64_t line_size) : ways_(ways) {
  DIPC_CHECK(ways > 0 && size_bytes >= ways * line_size);
  sets_ = size_bytes / line_size / ways;
  DIPC_CHECK(sets_ > 0);
  slots_.resize(sets_ * ways_);
}

bool TagArray::Touch(uint64_t line_addr) {
  uint64_t set = line_addr % sets_;
  Way* base = &slots_[set * ways_];
  ++clock_;
  Way* victim = base;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == line_addr) {
      base[w].lru = clock_;
      ++hits_;
      return true;
    }
    if (base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  victim->tag = line_addr;
  victim->lru = clock_;
  ++misses_;
  return false;
}

bool TagArray::Contains(uint64_t line_addr) const {
  uint64_t set = line_addr % sets_;
  const Way* base = &slots_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == line_addr) {
      return true;
    }
  }
  return false;
}

void TagArray::Invalidate(uint64_t line_addr) {
  uint64_t set = line_addr % sets_;
  Way* base = &slots_[set * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == line_addr) {
      base[w].tag = UINT64_MAX;
      base[w].lru = 0;
    }
  }
}

void TagArray::InvalidateAll() {
  for (Way& w : slots_) {
    w.tag = UINT64_MAX;
    w.lru = 0;
  }
}

namespace {
// E3-1220 V2-like geometry: 32 KB 8-way L1D, 256 KB 8-way L2, 8 MB 16-way L3.
constexpr uint64_t kL1Size = 32 * 1024;
constexpr uint32_t kL1Ways = 8;
constexpr uint64_t kL2Size = 256 * 1024;
constexpr uint32_t kL2Ways = 8;
constexpr uint64_t kL3Size = 8 * 1024 * 1024;
constexpr uint32_t kL3Ways = 16;
}  // namespace

CacheModel::CacheModel(uint32_t num_cpus, const CostModel& costs)
    : costs_(costs), l3_(kL3Size, kL3Ways) {
  per_cpu_.reserve(num_cpus);
  for (uint32_t i = 0; i < num_cpus; ++i) {
    per_cpu_.push_back(PrivateLevels{TagArray(kL1Size, kL1Ways), TagArray(kL2Size, kL2Ways)});
  }
}

sim::Duration CacheModel::Access(CpuId cpu, uint64_t addr, uint64_t size, bool is_write) {
  DIPC_CHECK(cpu < per_cpu_.size());
  if (size == 0) {
    return sim::Duration::Zero();
  }
  sim::Duration total;
  uint64_t first = addr / kCacheLineSize;
  uint64_t last = (addr + size - 1) / kCacheLineSize;
  PrivateLevels& priv = per_cpu_[cpu];
  for (uint64_t line = first; line <= last; ++line) {
    // Cross-CPU transfer: another core wrote this line since we last held it.
    auto owner_it = dirty_owner_.find(line);
    bool remote_dirty =
        owner_it != dirty_owner_.end() && owner_it->second != cpu + 1 && owner_it->second != 0;
    if (remote_dirty) {
      priv.l1.Invalidate(line);
      priv.l2.Invalidate(line);
    }
    if (priv.l1.Touch(line)) {
      total += costs_.l1_hit;
      ++stats_.l1_hits;
    } else if (priv.l2.Touch(line)) {
      total += costs_.l2_hit;
      ++stats_.l2_hits;
      priv.l1.Touch(line);  // fill upward
    } else if (remote_dirty) {
      total += costs_.remote_transfer;
      ++stats_.remote_transfers;
      l3_.Touch(line);
    } else if (l3_.Touch(line)) {
      total += costs_.l3_hit;
      ++stats_.l3_hits;
    } else {
      total += costs_.mem_access;
      ++stats_.mem_accesses;
    }
    if (is_write) {
      dirty_owner_[line] = cpu + 1;
    } else if (remote_dirty) {
      dirty_owner_[line] = 0;  // downgraded to shared/clean
    }
  }
  return total;
}

void CacheModel::FlushPrivate(CpuId cpu) {
  DIPC_CHECK(cpu < per_cpu_.size());
  per_cpu_[cpu].l1.InvalidateAll();
  per_cpu_[cpu].l2.InvalidateAll();
}

}  // namespace dipc::hw
