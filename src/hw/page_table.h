// Page tables with the CODOMs extensions.
//
// CODOMs extends each PTE with (§4):
//   - a per-page domain tag, associating the page with a protection domain;
//   - a privileged-capability bit, marking code pages allowed to execute
//     privileged instructions (eliminating syscall-based privilege switches);
//   - a capability-storage bit, marking pages where capabilities may be
//     stored/loaded with integrity guaranteed by the hardware.
#ifndef DIPC_HW_PAGE_TABLE_H_
#define DIPC_HW_PAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <optional>

#include "base/result.h"
#include "hw/types.h"

namespace dipc::hw {

struct PageFlags {
  bool writable = false;
  bool executable = false;
  bool user = true;
  // CODOMs extensions.
  bool priv_cap = false;     // may execute privileged instructions
  bool cap_storage = false;  // may hold capabilities in memory
};

struct Pte {
  uint64_t frame = 0;
  PageFlags flags;
  DomainTag tag = kInvalidDomainTag;
};

// A (single-level, map-backed) page table. An AddressSpaceId stands in for
// the CR3 value; dIPC-enabled processes share one page table (§6.1.3).
class PageTable {
 public:
  using Id = uint64_t;

  explicit PageTable(Id id) : id_(id) {}
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  Id id() const { return id_; }

  // Maps one page. Fails if already mapped.
  base::Status MapPage(VirtAddr va, uint64_t frame, PageFlags flags, DomainTag tag) {
    auto [it, inserted] = ptes_.emplace(PageNumber(va), Pte{frame, flags, tag});
    (void)it;
    return inserted ? base::Status::Ok() : base::ErrorCode::kAlreadyExists;
  }

  base::Status UnmapPage(VirtAddr va) {
    return ptes_.erase(PageNumber(va)) == 1 ? base::Status::Ok() : base::ErrorCode::kNotFound;
  }

  const Pte* Lookup(VirtAddr va) const {
    auto it = ptes_.find(PageNumber(va));
    return it == ptes_.end() ? nullptr : &it->second;
  }

  Pte* LookupMut(VirtAddr va) {
    auto it = ptes_.find(PageNumber(va));
    return it == ptes_.end() ? nullptr : &it->second;
  }

  // Re-tags one page (dom_remap; §5.2.2 moves pages between domains).
  base::Status SetTag(VirtAddr va, DomainTag tag) {
    Pte* pte = LookupMut(va);
    if (pte == nullptr) {
      return base::ErrorCode::kNotFound;
    }
    pte->tag = tag;
    return base::Status::Ok();
  }

  // Translates a virtual address; nullopt if unmapped.
  std::optional<PhysAddr> Translate(VirtAddr va) const {
    const Pte* pte = Lookup(va);
    if (pte == nullptr) {
      return std::nullopt;
    }
    return (pte->frame << kPageShift) | PageOffset(va);
  }

  uint64_t mapped_pages() const { return ptes_.size(); }

  // Iteration support (used by fork COW marking and dom_remap ranges).
  auto begin() const { return ptes_.begin(); }
  auto end() const { return ptes_.end(); }

 private:
  Id id_;
  std::map<uint64_t, Pte> ptes_;  // page number -> PTE, ordered for iteration
};

}  // namespace dipc::hw

#endif  // DIPC_HW_PAGE_TABLE_H_
