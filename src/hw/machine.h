// The simulated machine: CPUs, memory hierarchy, page tables, virtual time.
#ifndef DIPC_HW_MACHINE_H_
#define DIPC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/check.h"
#include "hw/cache_model.h"
#include "hw/cost_model.h"
#include "hw/page_table.h"
#include "hw/phys_mem.h"
#include "hw/tlb_model.h"
#include "hw/types.h"
#include "sim/event_queue.h"

namespace dipc::hw {

// Per-CPU architectural state that belongs to the machine (not the OS).
class Cpu {
 public:
  Cpu(CpuId id, const CostModel& costs) : id_(id), tlb_(costs) {}

  CpuId id() const { return id_; }
  TlbModel& tlb() { return tlb_; }

  PageTable::Id active_page_table() const { return active_pt_; }
  void set_active_page_table(PageTable::Id id) { active_pt_ = id; }

 private:
  CpuId id_;
  TlbModel tlb_;
  PageTable::Id active_pt_ = 0;
};

class Machine {
 public:
  explicit Machine(uint32_t num_cpus, CostModel costs = CostModel{})
      : costs_(costs), caches_(num_cpus, costs_), next_pt_id_(1) {
    DIPC_CHECK(num_cpus > 0);
    cpus_.reserve(num_cpus);
    for (uint32_t i = 0; i < num_cpus; ++i) {
      cpus_.push_back(std::make_unique<Cpu>(i, costs_));
    }
  }
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  uint32_t num_cpus() const { return static_cast<uint32_t>(cpus_.size()); }
  Cpu& cpu(CpuId id) {
    DIPC_CHECK(id < cpus_.size());
    return *cpus_[id];
  }

  sim::EventQueue& events() { return events_; }
  sim::Time now() const { return events_.now(); }
  CostModel& costs() { return costs_; }
  const CostModel& costs() const { return costs_; }
  CacheModel& caches() { return caches_; }
  PhysMem& mem() { return mem_; }

  PageTable& CreatePageTable() {
    auto pt = std::make_unique<PageTable>(next_pt_id_++);
    PageTable& ref = *pt;
    page_tables_.emplace(ref.id(), std::move(pt));
    return ref;
  }

  PageTable& page_table(PageTable::Id id) {
    auto it = page_tables_.find(id);
    DIPC_CHECK(it != page_tables_.end());
    return *it->second;
  }

  void DestroyPageTable(PageTable::Id id) { page_tables_.erase(id); }

 private:
  CostModel costs_;
  sim::EventQueue events_;
  CacheModel caches_;
  PhysMem mem_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::unordered_map<PageTable::Id, std::unique_ptr<PageTable>> page_tables_;
  PageTable::Id next_pt_id_;
};

}  // namespace dipc::hw

#endif  // DIPC_HW_MACHINE_H_
