#include "dipc/proxy.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <string>

#include "dipc/dipc.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace dipc::core {

// --- ProxyTemplateLibrary ---

ProxyTemplate ProxyTemplateLibrary::Select(EntrySignature sig, IsolationPolicy policy,
                                           bool cross_process) {
  uint32_t in_b = std::min(sig.in_regs, kInRegsBuckets - 1);
  uint32_t out_b = std::min(sig.out_regs, kOutRegsBuckets - 1);
  uint32_t stack_b = StackBucket(sig.stack_bytes);
  uint32_t policy_b = policy.bits & (kPolicySets - 1);
  uint32_t cross_b = cross_process ? 1 : 0;
  ProxyTemplate t;
  t.id = (((in_b * kOutRegsBuckets + out_b) * kStackBuckets + stack_b) * kPolicySets + policy_b) *
             kCrossProcess +
         cross_b;
  // Templates average ~600 B (§6.1.1); more properties -> more thunk code.
  t.code_bytes = 240 + 40 * static_cast<uint32_t>(std::popcount(policy.bits)) +
                 (cross_process ? 160 : 0) + 8 * sig.in_regs;
  // Relocations: control-flow addresses, domain tags, per-entry immediates.
  t.relocation_count = 6 + 2 * static_cast<uint32_t>(std::popcount(policy.bits));
  return t;
}

sim::Duration ProxyTemplateLibrary::InstantiationCost(const hw::CostModel& cm,
                                                      const ProxyTemplate& t) {
  // Copy the template body and patch each relocation (§6.1.1), then the
  // usual cost of making fresh code visible (icache lines).
  return cm.Cycles(t.code_bytes / 8.0) + cm.Cycles(12.0 * t.relocation_count) +
         cm.Cycles(t.code_bytes / 64.0 * 4.0);
}

// --- Proxy ---

Proxy::Proxy(Dipc& dipc, hw::VirtAddr code_va, hw::DomainTag proxy_domain, EntryDesc target,
             hw::DomainTag target_domain, os::Process* callee_process,
             os::Process* caller_process, IsolationPolicy effective_policy, ProxyTemplate tmpl)
    : dipc_(dipc),
      code_va_(code_va),
      proxy_domain_(proxy_domain),
      target_(std::move(target)),
      target_domain_(target_domain),
      callee_process_(callee_process),
      caller_process_(caller_process),
      policy_(effective_policy),
      tmpl_(tmpl),
      cross_process_(callee_process != caller_process) {
  policy_costs_ = ComputePolicyCosts(dipc.kernel().costs(), policy_, target_.signature);
  obs_id_ = obs::NewObjectId();
  const std::string prefix = "proxy/" + std::to_string(obs_id_);
  obs::Registry& reg = obs::Registry::Default();
  m_calls_ = reg.GetCounter(prefix + "/calls");
  m_crashes_ = reg.GetCounter(prefix + "/crashes");
  m_call_ns_ = reg.GetHistogram(prefix + "/call_ns");
}

sim::Task<uint64_t> Proxy::Invoke(os::Env env, CallArgs args) {
  ++invocations_;
  m_calls_->Add();
  os::Kernel& k = dipc_.kernel();
  os::Thread& t = *env.self;
  const hw::CostModel& cm = k.costs();
  codoms::Codoms& cd = k.codoms();
  codoms::ThreadCapContext& ctx = t.cap_ctx();
  hw::CpuId cpu = t.last_cpu();
  hw::PageTable& pt = t.process().page_table();
  ThreadDipcState& ts = dipc_.thread_state(t);

  const hw::DomainTag caller_domain = ctx.current_domain;
  os::Process* caller_proc = &t.process();

  sim::Duration fault_delay;
  {
    // Probed before the control transfer: a kill rule here murders the
    // callee mid-invoke, so this very call runs into the death machinery.
    fault::Decision d = DIPC_FAULT_POINT(kProxyInvoke, cpu);
    if (d.fail()) {
      t.FlagError(base::ErrorCode::kFault);
      co_return 0;
    }
    if (d.action == fault::Action::kDelay) {
      fault_delay = d.delay;
    }
  }

  // (1) The caller's `call proxy` instruction: CODOMs checks the Call
  // permission and the 64 B entry alignment (P2), switching into the proxy
  // domain implicitly.
  auto ct_in = cd.ControlTransfer(cpu, pt, ctx, code_va_);
  if (!ct_in.ok()) {
    t.FlagError(base::ErrorCode::kFault);
    co_return 0;
  }
  sim::Duration call_cost = ct_in.value() + fault_delay;
  // P2: the proxy validates the thread's stack pointer.
  call_cost += cm.Cycles(2);

  const sim::Time proxy_start = k.now();
  const uint64_t arg_bytes =
      8ull * target_.signature.in_regs + target_.signature.stack_bytes;
  obs::Trace().Record(cpu, obs::EventType::kProxyEnter, obs_id_, arg_bytes, proxy_start);
  call_cost += obs::Trace().event_cost();

  // Make sure the proxy can later return into the caller's domain. This APL
  // entry is installed once per (proxy domain, caller domain) pair.
  codoms::AplTable& apl = cd.apl_table();
  if (!codoms::AtLeast(apl.For(proxy_domain_).PermFor(caller_domain), codoms::Perm::kRead)) {
    apl.Grant(proxy_domain_, caller_domain, codoms::Perm::kWrite);
  }

  // (2) prepare_ret (P3): save caller state on the KCS and craft the return
  // capability so the callee can only return into proxy_ret.
  KcsEntry entry;
  entry.caller_process = caller_proc;
  entry.proxy = this;
  entry.caller_domain = caller_domain;
  entry.return_address = dipc_.domain_code_va(caller_domain);
  call_cost += cm.kcs_op;
  if (policy_.Has(kDcsIntegrity)) {
    entry.saved_dcs_base = ctx.dcs.SetBase(ctx.dcs.top());
  }
  sim::Duration cap_cost;
  auto ret_cap = cd.CapFromApl(cpu, pt, ctx, ret_va(), codoms::kEntryAlign, codoms::Perm::kCall,
                               codoms::CapType::kSync, &cap_cost);
  DIPC_CHECK(ret_cap.ok());
  ctx.regs.Set(codoms::kNumCapRegisters - 1, ret_cap.value());
  call_cost += cap_cost;
  call_cost += policy_costs_.proxy_call;

  // (3) track_process_call (§6.1.2): cross-process proxies switch `current`
  // and the TLS segment; the lookup goes through the hardware-domain-tag
  // indexed cache array, then the per-thread tree, then the upcall.
  if (cross_process_) {
    sim::Duration tag_cost;
    auto hw_tag = cd.ReadHwTag(cpu, target_domain_, &tag_cost);
    call_cost += tag_cost;
    if (!hw_tag.ok()) {
      auto ref = cd.EnsureCached(cpu, target_domain_);
      call_cost += ref.cost;
      hw_tag = cd.ReadHwTag(cpu, target_domain_, &tag_cost);
      DIPC_CHECK(hw_tag.ok());
    }
    const TrackerEntry* te = ts.tracker.FastLookup(hw_tag.value(), target_domain_);
    if (te != nullptr) {
      call_cost += cm.tracker_fast_lookup;
    } else {
      te = ts.tracker.WarmLookup(hw_tag.value(), target_domain_);
      if (te != nullptr) {
        call_cost += cm.tracker_warm_lookup;
      } else {
        // Cold path: upcall into the target process's management thread,
        // which creates the per-process structures via a syscall (§6.1.2).
        call_cost += Dipc::kColdUpcallCost;
        te = ts.tracker.ColdInstall(
            hw_tag.value(), target_domain_,
            TrackerEntry{callee_process_, dipc_.TidInProcess(t, *callee_process_)});
      }
    }
    call_cost += cm.Cycles(12);   // stash current on the KCS, install target's
    call_cost += cm.tls_switch;   // wrfsbase (§6.1.2 notes this is costly)
    t.set_process(*callee_process_);  // in-place switch: time-slice donation
  }

  ts.kcs.Push(entry);
  ++ctx.call_depth;

  // (4) Redirect into the target function (the proxy has write access to the
  // callee domain, so an arbitrary jump is permitted).
  auto ct_target = cd.ControlTransfer(cpu, pt, ctx, target_.address);
  DIPC_CHECK(ct_target.ok());
  call_cost += ct_target.value();
  // Callee-side stub work (register zeroing etc. from the effective policy).
  call_cost += policy_costs_.callee_entry;
  co_await k.Spend(t, call_cost, os::TimeCat::kProxy);

  // (5) Execute the callee, in place, on this same thread.
  uint64_t result = 0;
  base::ErrorCode crash_code = base::ErrorCode::kOk;
  try {
    result = co_await target_.fn(env, args);
  } catch (const CalleeCrash& crash) {
    crash_code = crash.code;
  }

  // The thread may have migrated while the callee ran.
  cpu = t.last_cpu();

  if (crash_code != base::ErrorCode::kOk) {
    // Crash/kill: the OS kernel unwinds the KCS (§5.2.1). Restore this
    // frame; if our caller is dead too, keep unwinding in the outer proxy.
    --ctx.call_depth;
    KcsEntry e = ts.kcs.Pop();
    ctx.regs.Clear(codoms::kNumCapRegisters - 1);
    if (policy_.Has(kDcsIntegrity)) {
      ctx.dcs.RestoreBase(e.saved_dcs_base);
    }
    if (cross_process_) {
      t.set_process(*e.caller_process);
    }
    ctx.current_domain = e.caller_domain;
    co_await k.Spend(t, cm.exception_roundtrip + cm.kcs_op, os::TimeCat::kKernel);
    m_crashes_->Add();
    const sim::Duration crash_dur = k.now() - proxy_start;
    m_call_ns_->Record(crash_dur.nanos());
    obs::Trace().Record(t.last_cpu(), obs::EventType::kProxyExit, obs_id_, arg_bytes, k.now(),
                        crash_dur);
    if (!e.caller_process->alive()) {
      throw CalleeCrash{crash_code};  // caller gone: unwind further (P3)
    }
    t.FlagError(crash_code);  // errno-like flag to the resumed caller
    co_return 0;
  }

  // (6) Normal return: the callee returns through the return capability into
  // proxy_ret; deprepare_ret restores the saved state. Nested calls reuse
  // the same capability register, so re-install ours (spilled to the DCS in
  // real CODOMs) before the transfer.
  ctx.regs.Set(codoms::kNumCapRegisters - 1, ret_cap.value());
  sim::Duration ret_cost = policy_costs_.callee_ret;
  auto ct_ret = cd.ControlTransfer(cpu, pt, ctx, ret_va());
  DIPC_CHECK(ct_ret.ok());  // authorized by the capability in register 7
  ret_cost += ct_ret.value();
  ctx.regs.Clear(codoms::kNumCapRegisters - 1);
  --ctx.call_depth;
  KcsEntry e = ts.kcs.Pop();
  ret_cost += cm.kcs_op;
  if (policy_.Has(kDcsIntegrity)) {
    ctx.dcs.RestoreBase(e.saved_dcs_base);
  }
  ret_cost += policy_costs_.proxy_ret;
  if (cross_process_) {
    ret_cost += cm.Cycles(10);   // track_process_ret: restore current from KCS
    ret_cost += cm.tls_switch;   // wrfsbase back
    t.set_process(*e.caller_process);
  }
  if (!e.caller_process->alive()) {
    // The caller died while we were executing: its frame cannot be resumed.
    co_await k.Spend(t, ret_cost + cm.exception_roundtrip, os::TimeCat::kKernel);
    m_crashes_->Add();
    const sim::Duration dead_dur = k.now() - proxy_start;
    m_call_ns_->Record(dead_dur.nanos());
    obs::Trace().Record(t.last_cpu(), obs::EventType::kProxyExit, obs_id_, arg_bytes, k.now(),
                        dead_dur);
    throw CalleeCrash{base::ErrorCode::kCalleeFailed};
  }
  // Jump back to the caller's text (read permission installed above).
  if (e.return_address != 0) {
    auto ct_back = cd.ControlTransfer(cpu, pt, ctx, e.return_address);
    DIPC_CHECK(ct_back.ok());
    ret_cost += ct_back.value();
  } else {
    ctx.current_domain = e.caller_domain;
  }
  ret_cost += obs::Trace().event_cost();
  co_await k.Spend(t, ret_cost, os::TimeCat::kProxy);
  const sim::Duration call_dur = k.now() - proxy_start;
  m_call_ns_->Record(call_dur.nanos());
  obs::Trace().Record(t.last_cpu(), obs::EventType::kProxyExit, obs_id_, arg_bytes, k.now(),
                      call_dur);
  co_return result;
}

// --- ProxyRef ---

sim::Task<uint64_t> ProxyRef::Call(os::Env env, CallArgs args) const {
  DIPC_CHECK(proxy_ != nullptr);
  os::Kernel& k = *env.kernel;
  // Caller stub (isolate_call): user code, inlined and co-optimized with the
  // application in a real deployment (§5.3.1).
  PolicyCosts stub = ComputePolicyCosts(k.costs(), caller_policy_, sig_);
  if (stub.caller_call > sim::Duration::Zero()) {
    co_await k.Spend(*env.self, stub.caller_call, os::TimeCat::kUser);
  }
  uint64_t result = co_await proxy_->Invoke(env, args);
  // deisolate_call.
  if (stub.caller_ret > sim::Duration::Zero()) {
    co_await k.Spend(*env.self, stub.caller_ret, os::TimeCat::kUser);
  }
  co_return result;
}

ProxyRef::Pending ProxyRef::CallAsync(os::Env env, CallArgs args) const {
  DIPC_CHECK(proxy_ != nullptr);
  os::Kernel& k = *env.kernel;
  Pending pending;
  pending.state_ = std::make_shared<Pending::State>();
  auto st = pending.state_;
  if (!proxy_->effective_policy().Has(kStackConfidentiality)) {
    st->done = true;
    st->err = base::ErrorCode::kNotSupported;
    return pending;
  }
  Proxy* proxy = proxy_;
  // The "additional thread" of §5.4: a sibling in the caller's process that
  // performs the synchronous call on the caller's behalf.
  k.Spawn(env.self->process(), env.self->name() + "-async",
          [st, proxy, args](os::Env senv) -> sim::Task<void> {
            senv.self->cap_ctx().current_domain = senv.self->process().default_domain();
            st->result = co_await proxy->Invoke(senv, args);
            st->err = senv.self->TakeError();
            st->done = true;
            while (os::Thread* w = st->waiters.WakeOneThread()) {
              (void)senv.kernel->MakeRunnable(*w, senv.self->last_cpu());
            }
          });
  return pending;
}

sim::Task<uint64_t> ProxyRef::Pending::Await(os::Env env) {
  DIPC_CHECK(state_ != nullptr);
  while (!state_->done) {
    co_await state_->waiters.Wait(env);
  }
  if (state_->err != base::ErrorCode::kOk) {
    env.self->FlagError(state_->err);
  }
  co_return state_->result;
}

sim::Task<uint64_t> ProxyRef::CallWithTimeout(os::Env env, CallArgs args,
                                              sim::Duration timeout) const {
  DIPC_CHECK(proxy_ != nullptr);
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  // §5.4: splitting "will only work if the timed-out caller uses a stack
  // separate from the callee's".
  if (!proxy_->effective_policy().Has(kStackConfidentiality)) {
    self.FlagError(base::ErrorCode::kNotSupported);
    co_return 0;
  }
  struct SplitState {
    bool done = false;
    bool timed_out = false;
    uint64_t result = 0;
    base::ErrorCode err = base::ErrorCode::kOk;
    os::Thread* caller = nullptr;
  };
  auto st = std::make_shared<SplitState>();
  st->caller = &self;
  Proxy* proxy = proxy_;
  // The callee side runs on a thread that can outlive the caller's wait —
  // this is the "split" thread of §5.4. (The design splits lazily on
  // timeout; we pre-split, which preserves the observable semantics.)
  k.Spawn(self.process(), self.name() + "-split",
          [st, proxy, args](os::Env senv) -> sim::Task<void> {
            senv.self->cap_ctx().current_domain = senv.self->process().default_domain();
            uint64_t r = co_await proxy->Invoke(senv, args);
            st->result = r;
            st->err = senv.self->TakeError();
            st->done = true;
            if (!st->timed_out) {
              (void)senv.kernel->MakeRunnable(*st->caller, senv.self->last_cpu());
            }
            // else: the split thread is reaped silently when it returns into
            // the proxy (recorded in the KCS).
          });
  // Arm the timeout: wake the caller with a flagged error if it fires first.
  k.machine().events().ScheduleAfter(timeout, [st, &k] {
    if (!st->done && !st->timed_out) {
      st->timed_out = true;
      (void)k.MakeRunnable(*st->caller, std::nullopt);
    }
  });
  co_await k.Block(env);
  if (st->timed_out && !st->done) {
    self.FlagError(base::ErrorCode::kTimedOut);
    co_return 0;
  }
  if (st->err != base::ErrorCode::kOk) {
    self.FlagError(st->err);
  }
  co_return st->result;
}

}  // namespace dipc::core
