// dIPC isolation properties (§5.2.3).
//
// Each entry point carries an isolation policy: a set of properties chosen
// independently by caller and callee (the effective policy is the union,
// Table 2's entry_request). Properties split into what untrusted user stubs
// implement (register/stack handling the compiler can co-optimize) and what
// the trusted proxy must do (stack switching, DCS bounds — privileged state).
#ifndef DIPC_DIPC_POLICY_H_
#define DIPC_DIPC_POLICY_H_

#include <cstdint>
#include <string>

#include "hw/cost_model.h"
#include "sim/time.h"

namespace dipc::core {

// Property bits (§5.2.3).
enum PolicyBits : uint32_t {
  kRegIntegrity = 1u << 0,         // caller stub: save/restore live registers
  kRegConfidentiality = 1u << 1,   // stubs: zero non-argument/non-result regs
  kStackIntegrity = 1u << 2,       // caller stub: caps over args + unused stack
  kStackConfidentiality = 1u << 3, // proxy: split stacks, copy args by signature
  kDcsIntegrity = 1u << 4,         // proxy: raise DCS base, restore on return
  kDcsConfidentiality = 1u << 5,   // proxy: separate capability stack (callee side)
};

struct IsolationPolicy {
  uint32_t bits = 0;

  constexpr bool Has(uint32_t bit) const { return (bits & bit) != 0; }

  // Effective policy of a call: union of caller- and callee-requested
  // properties (§5.2.3: "activated when any side requests it").
  constexpr IsolationPolicy Union(IsolationPolicy other) const {
    return IsolationPolicy{bits | other.bits};
  }

  constexpr bool operator==(const IsolationPolicy&) const = default;

  // The paper's two reference points (§7.2):
  // Low — minimal non-trivial policy: proxy-mediated entry only.
  static constexpr IsolationPolicy Low() { return IsolationPolicy{0}; }
  // High — equivalent to full mutual process isolation.
  static constexpr IsolationPolicy High() {
    return IsolationPolicy{kRegIntegrity | kRegConfidentiality | kStackIntegrity |
                           kStackConfidentiality | kDcsIntegrity | kDcsConfidentiality};
  }

  std::string ToString() const {
    if (bits == 0) {
      return "low";
    }
    std::string s;
    auto add = [&](uint32_t bit, const char* name) {
      if (Has(bit)) {
        s += s.empty() ? name : std::string("+") + name;
      }
    };
    add(kRegIntegrity, "reg-int");
    add(kRegConfidentiality, "reg-conf");
    add(kStackIntegrity, "stack-int");
    add(kStackConfidentiality, "stack-conf");
    add(kDcsIntegrity, "dcs-int");
    add(kDcsConfidentiality, "dcs-conf");
    return s;
  }
};

// Entry point signature (Table 2: "number of input/output registers and
// stack size"). P4 requires caller and callee to agree on it exactly.
struct EntrySignature {
  uint32_t in_regs = 0;      // argument registers (0..6)
  uint32_t out_regs = 1;     // result registers (0..2)
  uint32_t stack_bytes = 0;  // in-stack argument bytes

  constexpr bool operator==(const EntrySignature&) const = default;
};

// --- Stub/proxy cost model ---
//
// The compiler-generated user stubs are inlined and co-optimized with the
// application (§5.3.1), so their costs depend on the signature; the proxy's
// privileged pieces are fixed thunk code. All constants in cycles @3.1 GHz.

struct PolicyCosts {
  sim::Duration caller_call;  // caller stub before the call (isolate_call)
  sim::Duration caller_ret;   // caller stub after return (deisolate_call)
  sim::Duration callee_entry; // callee stub on entry
  sim::Duration callee_ret;   // callee stub before returning (isolate_ret)
  sim::Duration proxy_call;   // proxy isolate_pcall extras
  sim::Duration proxy_ret;    // proxy deisolate_pcall extras
};

inline PolicyCosts ComputePolicyCosts(const hw::CostModel& cm, IsolationPolicy policy,
                                      EntrySignature sig) {
  PolicyCosts c{};
  if (policy.Has(kRegIntegrity)) {
    // Save/restore callee-saved live registers to the stack (~6 regs worst
    // case without liveness info, §7.4 folds this as "all non-volatile live").
    c.caller_call += cm.Cycles(30);
    c.caller_ret += cm.Cycles(30);
  }
  if (policy.Has(kRegConfidentiality)) {
    // Zero non-argument registers before, non-result after (xor chains).
    c.caller_call += cm.Cycles(8);
    c.callee_ret += cm.Cycles(8);
  }
  if (policy.Has(kStackIntegrity)) {
    // Two capabilities: in-stack arguments + unused stack area (§5.2.3).
    c.caller_call += cm.cap_setup * 2;
    c.caller_ret += cm.cap_setup;  // restore
  }
  if (policy.Has(kStackConfidentiality)) {
    // Proxy switches stack pointers; arguments copied by signature.
    c.proxy_call += cm.Cycles(20) + cm.Cycles(sig.stack_bytes / 8.0);
    c.proxy_ret += cm.Cycles(16);
  }
  if (policy.Has(kDcsIntegrity)) {
    // Privileged DCS base adjust + restore.
    c.proxy_call += cm.Cycles(5);
    c.proxy_ret += cm.Cycles(5);
  }
  if (policy.Has(kDcsConfidentiality)) {
    // Separate capability stack for the callee (switch both ways).
    c.proxy_call += cm.Cycles(12);
    c.proxy_ret += cm.Cycles(12);
  }
  return c;
}

}  // namespace dipc::core

#endif  // DIPC_DIPC_POLICY_H_
