// Annotation-driven application loader and runtime (§5.3, §6.2).
//
// Stands in for the CLang source-to-source pass + program loader: a
// ModuleSpec carries what the paper's annotations express — domains
// (dipc_dom), entry points with signatures and policies (dipc_entry,
// dipc_iso_*), and intra-process grants (dipc_perm). Loading a spec
// configures the process's domains/entries through the Table 2 primitives
// and publishes exported entries; ImportEntries resolves a remote handle
// (named-socket exchange, §6.2.1) and requests proxies for it.
#ifndef DIPC_DIPC_LOADER_H_
#define DIPC_DIPC_LOADER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dipc/dipc.h"
#include "dipc/resolution.h"

namespace dipc::core {

// dipc_dom("name"): a domain of the module.
struct DomSpec {
  std::string name;
};

// dipc_entry(...) + iso_callee(...): an exported entry point.
struct EntrySpec {
  std::string domain;  // which DomSpec it belongs to ("" = default domain)
  std::string name;
  EntrySignature signature;
  IsolationPolicy callee_policy;
  EntryFn fn;
};

// dipc_perm(src, dst, perm): a static intra-process grant.
struct PermSpec {
  std::string src_domain;  // "" = default domain
  std::string dst_domain;
  DomPerm perm;
};

struct ModuleSpec {
  std::string name;
  std::vector<DomSpec> domains;
  std::vector<EntrySpec> entries;
  std::vector<PermSpec> perms;
  // Where to publish the exported entry handle ("" = don't publish).
  std::string publish_path;
};

// The result of loading a ModuleSpec into a process.
class LoadedModule {
 public:
  std::shared_ptr<DomainHandle> domain(const std::string& name) const {
    auto it = domains_.find(name);
    return it == domains_.end() ? nullptr : it->second;
  }
  std::shared_ptr<EntryHandle> exported_entries() const { return entries_; }

 private:
  friend class Loader;
  std::map<std::string, std::shared_ptr<DomainHandle>> domains_;
  std::shared_ptr<EntryHandle> entries_;
};

// An imported remote function, bound to a generated proxy: calling it is the
// auto-generated caller stub (§5.3.1).
struct ImportedEntries {
  RequestedEntries requested;
  // Convenience: proxies by entry name.
  std::map<std::string, ProxyRef> by_name;
};

class Loader {
 public:
  explicit Loader(Dipc& dipc) : dipc_(dipc) {}

  // Configures `proc` from the spec: creates domains, registers entries,
  // applies intra-process grants, optionally publishes the entry handle.
  // Must run on a thread of `proc` (it spawns the publisher service there).
  base::Result<LoadedModule> Load(os::Env env, ModuleSpec spec);

  // Resolves `path`, checks signatures (P4), requests proxies with the
  // caller-side policies, and grants this process's default domain call
  // permission on the proxy domain.
  sim::Task<base::Result<ImportedEntries>> ImportEntries(
      os::Env env, const std::string& path, std::vector<EntryExpectation> expected,
      std::vector<std::string> names);

 private:
  Dipc& dipc_;
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_LOADER_H_
