#include "dipc/loader.h"

namespace dipc::core {

base::Result<LoadedModule> Loader::Load(os::Env env, ModuleSpec spec) {
  os::Process& proc = env.self->process();
  LoadedModule mod;
  // The default domain is always addressable as "".
  mod.domains_[""] = dipc_.DomDefault(proc);
  for (const DomSpec& d : spec.domains) {
    auto dom = dipc_.DomCreate(proc);
    if (!dom.ok()) {
      return dom.code();
    }
    mod.domains_[d.name] = dom.value();
  }
  // Intra-process grants (dipc_perm annotations).
  for (const PermSpec& p : spec.perms) {
    auto src = mod.domains_.find(p.src_domain);
    auto dst = mod.domains_.find(p.dst_domain);
    if (src == mod.domains_.end() || dst == mod.domains_.end()) {
      return base::ErrorCode::kNotFound;
    }
    auto downgraded = dipc_.DomCopy(*dst->second, p.perm);
    if (!downgraded.ok()) {
      return downgraded.code();
    }
    auto grant = dipc_.GrantCreate(*src->second, *downgraded.value());
    if (!grant.ok()) {
      return grant.code();
    }
  }
  // Entry points, grouped under the domain of the *first* entry (dIPC entry
  // handles carry one domain; multi-domain modules register per domain).
  if (!spec.entries.empty()) {
    const std::string& entry_dom = spec.entries.front().domain;
    std::vector<EntryDesc> descs;
    descs.reserve(spec.entries.size());
    for (const EntrySpec& e : spec.entries) {
      if (e.domain != entry_dom) {
        return base::ErrorCode::kInvalidArgument;
      }
      EntryDesc d;
      d.name = e.name;
      d.signature = e.signature;
      d.policy = e.callee_policy;
      d.fn = e.fn;
      descs.push_back(std::move(d));
    }
    auto dom_it = mod.domains_.find(entry_dom);
    if (dom_it == mod.domains_.end()) {
      return base::ErrorCode::kNotFound;
    }
    auto handle = dipc_.EntryRegister(proc, *dom_it->second, std::move(descs));
    if (!handle.ok()) {
      return handle.code();
    }
    mod.entries_ = handle.value();
    if (!spec.publish_path.empty()) {
      base::Status s = EntryResolver::Publish(env, spec.publish_path, mod.entries_);
      if (!s.ok()) {
        return s.code();
      }
    }
  }
  return mod;
}

sim::Task<base::Result<ImportedEntries>> Loader::ImportEntries(
    os::Env env, const std::string& path, std::vector<EntryExpectation> expected,
    std::vector<std::string> names) {
  auto handle = co_await EntryResolver::Resolve(env, path);
  if (!handle.ok()) {
    co_return handle.code();
  }
  os::Process& proc = env.self->process();
  auto requested = dipc_.EntryRequest(proc, *handle.value(), expected);
  if (!requested.ok()) {
    co_return requested.code();
  }
  // Let this process call into the proxy domain: grant_create with our owner
  // handle and the returned call-permission handle.
  auto self_dom = dipc_.DomDefault(proc);
  auto grant = dipc_.GrantCreate(*self_dom, *requested.value().proxy_domain);
  if (!grant.ok()) {
    co_return grant.code();
  }
  ImportedEntries out;
  out.requested = std::move(requested).value();
  for (size_t i = 0; i < out.requested.proxies.size(); ++i) {
    std::string name = i < names.size() ? names[i] : handle.value()->entry(i).name;
    out.by_name[name] = out.requested.proxies[i];
  }
  co_return out;
}

}  // namespace dipc::core
