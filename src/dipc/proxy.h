// Trusted proxies: the runtime-generated thunks that bridge calls across
// domains/processes (§3.1, §5.2.3, §6.1).
//
// A proxy performs an in-place domain switch on the calling thread: it
// pushes a KCS entry, prepares the protected return path (P3), optionally
// switches `current`/TLS/stacks for cross-process calls (§6.1.2), and
// redirects execution into the target function. Crashes unwind the KCS to
// the nearest living caller and surface as an errno-like flag (§5.2.1).
#ifndef DIPC_DIPC_PROXY_H_
#define DIPC_DIPC_PROXY_H_

#include <cstdint>
#include <memory>

#include "dipc/objects.h"
#include "dipc/policy.h"
#include "dipc/proxy_template.h"
#include "obs/metrics.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::core {

class Dipc;

// Thrown by callee code (via Dipc::Crash) or by the return path when a
// caller process died; caught by each proxy on the way out (KCS unwinding).
struct CalleeCrash {
  base::ErrorCode code = base::ErrorCode::kCalleeFailed;
};

class Proxy {
 public:
  Proxy(Dipc& dipc, hw::VirtAddr code_va, hw::DomainTag proxy_domain, EntryDesc target,
        hw::DomainTag target_domain, os::Process* callee_process, os::Process* caller_process,
        IsolationPolicy effective_policy, ProxyTemplate tmpl);

  // The cross-domain call: executes entirely on the calling thread.
  // Returns the entry's result register; errors are flagged on the thread
  // (Thread::TakeError) with a zero result.
  sim::Task<uint64_t> Invoke(os::Env env, CallArgs args);

  hw::VirtAddr code_va() const { return code_va_; }
  hw::VirtAddr ret_va() const { return code_va_ + ProxyTemplateLibrary::kRetOffset; }
  hw::DomainTag proxy_domain() const { return proxy_domain_; }
  bool cross_process() const { return cross_process_; }
  const EntryDesc& target() const { return target_; }
  IsolationPolicy effective_policy() const { return policy_; }
  const ProxyTemplate& tmpl() const { return tmpl_; }

  uint64_t invocations() const { return invocations_; }

  // Id shared by this proxy's metrics ("proxy/<id>/...") and trace events.
  uint32_t obs_id() const { return obs_id_; }

 private:
  friend class Dipc;

  Dipc& dipc_;
  hw::VirtAddr code_va_;
  hw::DomainTag proxy_domain_;
  EntryDesc target_;
  hw::DomainTag target_domain_;
  os::Process* callee_process_;
  os::Process* caller_process_;
  IsolationPolicy policy_;
  PolicyCosts policy_costs_;
  ProxyTemplate tmpl_;
  bool cross_process_;
  uint64_t invocations_ = 0;
  uint32_t obs_id_ = 0;
  obs::Counter* m_calls_ = nullptr;     // proxy/<id>/calls
  obs::Counter* m_crashes_ = nullptr;   // proxy/<id>/crashes (callee crash unwinds)
  obs::Histogram* m_call_ns_ = nullptr; // proxy/<id>/call_ns (full in-proxy time)
};

// What entry_request hands back per entry: the resolved proxy plus the
// caller-stub behavior (compiler-generated in a real deployment, §5.3.1).
class ProxyRef {
 public:
  ProxyRef() = default;
  ProxyRef(Proxy* proxy, IsolationPolicy caller_policy, EntrySignature sig)
      : proxy_(proxy), caller_policy_(caller_policy), sig_(sig) {}

  bool valid() const { return proxy_ != nullptr; }
  Proxy* proxy() const { return proxy_; }

  // Caller stub + proxy + callee: the full synchronous cross-domain call.
  // Check env.self->TakeError() for kCalleeFailed/kTimedOut after it returns.
  sim::Task<uint64_t> Call(os::Env env, CallArgs args) const;

  // §5.4 cross-process call time-outs: like Call, but if the callee does not
  // return within `timeout` the thread is "split": the caller resumes with
  // kTimedOut while the callee side keeps running on a fresh kernel thread
  // and is reaped when it returns into the proxy. Requires stack
  // confidentiality+integrity in the effective policy (caller and callee
  // must not share a stack).
  sim::Task<uint64_t> CallWithTimeout(os::Env env, CallArgs args, sim::Duration timeout) const;

  // §5.4 asynchronous calls: "supported in the same way as other
  // asynchronous calls by creating additional threads". Starts the call on
  // a fresh thread and returns immediately; Await() joins it. Requires
  // stack confidentiality for the same reason as timeouts.
  class Pending {
   public:
    bool done() const { return state_ != nullptr && state_->done; }
    // Blocks the calling thread until the result is available; flags any
    // callee error on the awaiting thread (errno-like, §5.2.1).
    sim::Task<uint64_t> Await(os::Env env);

   private:
    friend class ProxyRef;
    struct State {
      bool done = false;
      uint64_t result = 0;
      base::ErrorCode err = base::ErrorCode::kOk;
      os::WaitQueue waiters;
    };
    std::shared_ptr<State> state_;
  };
  Pending CallAsync(os::Env env, CallArgs args) const;

 private:
  Proxy* proxy_ = nullptr;
  IsolationPolicy caller_policy_{};
  EntrySignature sig_{};
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_PROXY_H_
