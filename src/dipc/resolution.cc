#include "dipc/resolution.h"

namespace dipc::core {

base::Status EntryResolver::Publish(os::Env env, const std::string& path,
                                    std::shared_ptr<EntryHandle> handle) {
  os::Kernel& k = *env.kernel;
  auto listener = std::make_shared<os::UnixListener>(k);
  base::Status s = k.BindPath(path, listener);
  if (!s.ok()) {
    return s;
  }
  // Service thread: one-byte hello + the handle as ancillary data per
  // importer. Lives as long as the process keeps the path published.
  k.Spawn(env.self->process(), "dipc-resolver:" + path,
          [listener, handle](os::Env senv) -> sim::Task<void> {
            auto buf = senv.kernel->MapAnonymous(senv.self->process(), hw::kPageSize,
                                                 hw::PageFlags{.writable = true});
            DIPC_CHECK(buf.ok());
            while (true) {
              auto conn = co_await listener->Accept(senv);
              if (!conn.ok()) {
                co_return;
              }
              std::vector<std::shared_ptr<os::KernelObject>> handles{handle};
              auto sent = co_await conn.value()->Send(senv, buf.value(), 1, std::move(handles));
              if (!sent.ok()) {
                co_return;
              }
            }
          });
  return base::Status::Ok();
}

sim::Task<base::Result<std::shared_ptr<EntryHandle>>> EntryResolver::Resolve(
    os::Env env, const std::string& path) {
  os::Kernel& k = *env.kernel;
  auto conn = co_await os::UnixListener::Connect(env, path);
  if (!conn.ok()) {
    co_return conn.code();
  }
  auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize, hw::PageFlags{.writable = true});
  if (!buf.ok()) {
    co_return buf.code();
  }
  std::vector<std::shared_ptr<os::KernelObject>> handles;
  auto n = co_await conn.value()->Recv(env, buf.value(), 1, &handles);
  if (!n.ok()) {
    co_return n.code();
  }
  for (auto& h : handles) {
    if (auto entry = std::dynamic_pointer_cast<EntryHandle>(h); entry != nullptr) {
      co_return entry;
    }
  }
  co_return base::ErrorCode::kNotFound;
}

}  // namespace dipc::core
