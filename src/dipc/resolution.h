// Default entry-point resolution over UNIX named sockets (§6.2.1).
//
// "The dIPC runtime provides a default implementation that uses UNIX named
// sockets to exchange entry point handles": the exporter binds a path and
// serves the handle to whoever connects; importers connect and receive the
// EntryHandle as a passed kernel object (SCM_RIGHTS-style, §5.2.2).
#ifndef DIPC_DIPC_RESOLUTION_H_
#define DIPC_DIPC_RESOLUTION_H_

#include <memory>
#include <string>

#include "dipc/objects.h"
#include "os/kernel.h"
#include "os/unix_socket.h"
#include "sim/task.h"

namespace dipc::core {

class EntryResolver {
 public:
  // Exporter side: binds `path` and spawns a service thread in the calling
  // process that hands `handle` to every connecting importer.
  static base::Status Publish(os::Env env, const std::string& path,
                              std::shared_ptr<EntryHandle> handle);

  // Importer side: connects to `path` and receives the entry handle.
  static sim::Task<base::Result<std::shared_ptr<EntryHandle>>> Resolve(os::Env env,
                                                                       const std::string& path);
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_RESOLUTION_H_
