// Kernel Control Stack (§5.2.1): per-thread stack tracking the cross-domain
// call chain. Proxies push an entry per call and pop it on return; crash and
// kill handling unwinds it to the oldest living caller (P3).
#ifndef DIPC_DIPC_KCS_H_
#define DIPC_DIPC_KCS_H_

#include <cstdint>
#include <vector>

#include "base/check.h"
#include "os/process.h"

namespace dipc::core {

class Proxy;

struct KcsEntry {
  os::Process* caller_process = nullptr;  // `current` at call time
  const Proxy* proxy = nullptr;           // the proxy that bridged this call
  hw::DomainTag caller_domain = 0;        // effective domain at call time
  uint64_t saved_stack_ptr = 0;           // caller's stack pointer (when switched)
  uint64_t saved_dcs_base = 0;            // caller's DCS base (when adjusted)
  uint64_t return_address = 0;            // caller text; the live RA is replaced
                                          // with proxy_ret (P3)
};

class Kcs {
 public:
  void Push(KcsEntry e) { entries_.push_back(e); }

  KcsEntry Pop() {
    DIPC_CHECK(!entries_.empty());
    KcsEntry e = entries_.back();
    entries_.pop_back();
    return e;
  }

  const KcsEntry& Top() const {
    DIPC_CHECK(!entries_.empty());
    return entries_.back();
  }

  bool empty() const { return entries_.empty(); }
  size_t depth() const { return entries_.size(); }

  // Unwinds to (and pops) the newest entry whose calling process is still
  // alive; returns it, or nullptr if every caller in the chain is dead.
  // Entries above it are discarded — their domains' state is abandoned, as
  // §2.4 argues is correct when faults are merely forwarded.
  const KcsEntry* UnwindToLiveCaller() {
    while (!entries_.empty()) {
      if (entries_.back().caller_process->alive()) {
        unwound_ = entries_.back();
        entries_.pop_back();
        return &unwound_;
      }
      entries_.pop_back();
    }
    return nullptr;
  }

 private:
  std::vector<KcsEntry> entries_;
  KcsEntry unwound_{};
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_KCS_H_
