#include "dipc/dipc.h"

#include <exception>
#include <utility>

#include "fault/fault.h"
#include "obs/trace.h"

namespace dipc::core {

Dipc::Dipc(os::Kernel& kernel) : kernel_(kernel), vas_(kernel.machine()) {
  obs::Registry& reg = obs::Registry::Default();
  m_kill_sweeps_ = reg.GetCounter("dipc/kill_sweeps");
  m_death_hook_runs_ = reg.GetCounter("dipc/death_hook_runs");
}

Dipc::~Dipc() = default;

void Dipc::KillProcess(os::Process& proc) {
  // Hooks may reentrantly kill further processes; defer nested kills to the
  // outermost call so each one is swept with the complete hook list (a hook
  // skipped mid-cascade would never learn its watched process died).
  pending_kills_.push_back(&proc);
  if (in_kill_sweep_) {
    return;
  }
  in_kill_sweep_ = true;
  // Hooks are arbitrary std::functions: one that throws must not skip the
  // remaining hooks, drop queued nested kills, or leave the sweep flag
  // wedged. So nothing unwinds mid-sweep — the first exception is captured,
  // every queued death is still swept through every hook, and the exception
  // resurfaces only once the machinery is back at rest (later throws are
  // subsumed by the first).
  std::exception_ptr first_error;
  for (size_t next_kill = 0; next_kill < pending_kills_.size(); ++next_kill) {
    os::Process* dead = pending_kills_[next_kill];
    if (!dead->alive()) {
      continue;
    }
    dead->MarkDead();
    // Hooks may also reentrantly register hooks; run the sweep on a
    // swapped-out list (AddDeathHook appends to the fresh one) and merge
    // the survivors back before the next queued kill drains.
    std::vector<ProcessDeathHook> hooks;
    hooks.swap(death_hooks_);
    const uint64_t hooks_run = hooks.size();
    m_kill_sweeps_->Add();
    m_death_hook_runs_->Add(hooks_run);
    obs::Trace().Record(0, obs::EventType::kDeathSweep, static_cast<uint32_t>(dead->pid()),
                        hooks_run, kernel_.now());
    // A kill rule here scripts cascading failures ("when anything dies,
    // kill Y too") — the nested kill lands on pending_kills_ and is swept
    // by this same outermost call. Other actions only mark the log.
    (void)DIPC_FAULT_POINT(kDeathSweep);
    size_t kept = 0;
    for (size_t i = 0; i < hooks.size(); ++i) {
      bool keep = true;
      try {
        keep = hooks[i](*dead);
      } catch (...) {
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
        // A throwing hook stays registered.
      }
      if (keep) {
        if (kept != i) {
          hooks[kept] = std::move(hooks[i]);
        }
        ++kept;
      }
    }
    hooks.resize(kept);
    for (ProcessDeathHook& added : death_hooks_) {  // registered mid-sweep
      hooks.push_back(std::move(added));
    }
    death_hooks_ = std::move(hooks);
  }
  pending_kills_.clear();
  in_kill_sweep_ = false;
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

// ---- Processes ----

os::Process& Dipc::CreateDipcProcess(const std::string& name) {
  hw::DomainTag tag = kernel_.codoms().apl_table().AllocateTag();
  os::Process& proc = kernel_.CreateProcessIn(name, vas_.page_table(), tag);
  proc.set_dipc_enabled(true);
  ProcessInfo& pi = process_info_[proc.pid()];
  pi.block_base = vas_.AllocBlock();
  proc.SetVaBase(pi.block_base);
  // The process's "program text": PIC code loaded at a unique address; used
  // as the return-address target for cross-domain calls out of this process.
  auto code = AllocCodeRegion(proc, tag, /*slots=*/64, /*privileged=*/false);
  DIPC_CHECK(code.ok());
  pi.code_va = code.value();
  return proc;
}

os::Process& Dipc::Fork(os::Process& parent) {
  // COW fork: the child gets a private page table holding copies of the
  // parent's mappings (frames shared; our model does not need the write
  // fault). dIPC is temporarily disabled in the child (§6.1.3).
  os::Process& child = kernel_.CreateProcess(parent.name() + "-child");
  child.set_dipc_enabled(false);
  if (parent.dipc_enabled()) {
    const ProcessInfo& pi = process_info_.at(parent.pid());
    hw::VirtAddr lo = pi.block_base;
    hw::VirtAddr hi = pi.block_base + GlobalVas::kBlockSize;
    for (const auto& [page_no, pte] : parent.page_table()) {
      hw::VirtAddr va = page_no << hw::kPageShift;
      if (va >= lo && va < hi) {
        DIPC_CHECK(child.page_table().MapPage(va, pte.frame, pte.flags, pte.tag).ok());
      }
    }
    child.SetVaBase(parent.va_cursor());
  } else {
    for (const auto& [page_no, pte] : parent.page_table()) {
      DIPC_CHECK(child.page_table().MapPage(page_no << hw::kPageShift, pte.frame, pte.flags,
                                            pte.tag)
                     .ok());
    }
  }
  return child;
}

void Dipc::Exec(os::Process& proc, const std::string& new_name) {
  (void)new_name;  // the name is cosmetic; Process names are immutable here
  // PIC executable: re-enable dIPC, load at a unique virtual address in the
  // global VAS with a fresh default domain (§6.1.3).
  hw::DomainTag tag = kernel_.codoms().apl_table().AllocateTag();
  proc.set_page_table(vas_.page_table());
  proc.set_default_domain(tag);
  proc.set_dipc_enabled(true);
  ProcessInfo& pi = process_info_[proc.pid()];
  pi.block_base = vas_.AllocBlock();
  proc.SetVaBase(pi.block_base);
  auto code = AllocCodeRegion(proc, tag, 64, false);
  DIPC_CHECK(code.ok());
  pi.code_va = code.value();
}

// ---- Table 2 ----

std::shared_ptr<DomainHandle> Dipc::DomDefault(os::Process& proc) {
  return std::make_shared<DomainHandle>(proc.default_domain(), DomPerm::kOwner);
}

base::Result<std::shared_ptr<DomainHandle>> Dipc::DomCreate(os::Process& proc) {
  if (!proc.dipc_enabled()) {
    return base::ErrorCode::kNotSupported;
  }
  hw::DomainTag tag = kernel_.codoms().apl_table().AllocateTag();
  return std::make_shared<DomainHandle>(tag, DomPerm::kOwner);
}

base::Result<std::shared_ptr<DomainHandle>> Dipc::DomCopy(const DomainHandle& src, DomPerm perm) {
  // dom_copy: only downgrades (perm <= src.perm).
  if (!DomPermAtLeast(src.perm(), perm)) {
    return base::ErrorCode::kPermissionDenied;
  }
  return std::make_shared<DomainHandle>(src.tag(), perm);
}

base::Result<hw::VirtAddr> Dipc::DomMmap(os::Process& proc, const DomainHandle& dom, uint64_t len,
                                         hw::PageFlags flags) {
  if (dom.perm() != DomPerm::kOwner) {
    return base::ErrorCode::kPermissionDenied;
  }
  return kernel_.MapAnonymous(proc, len, flags, dom.tag());
}

base::Status Dipc::DomRemap(os::Process& proc, const DomainHandle& dst, const DomainHandle& src,
                            hw::VirtAddr addr, uint64_t size) {
  if (dst.perm() != DomPerm::kOwner || src.perm() != DomPerm::kOwner) {
    return base::ErrorCode::kPermissionDenied;
  }
  if (size == 0 || hw::PageOffset(addr) != 0) {
    return base::ErrorCode::kInvalidArgument;
  }
  hw::PageTable& pt = proc.page_table();
  // All pages must currently belong to src.
  for (hw::VirtAddr va = addr; va < addr + size; va += hw::kPageSize) {
    const hw::Pte* pte = pt.Lookup(va);
    if (pte == nullptr || pte->tag != src.tag()) {
      return base::ErrorCode::kInvalidArgument;
    }
  }
  for (hw::VirtAddr va = addr; va < addr + size; va += hw::kPageSize) {
    DIPC_CHECK(pt.SetTag(va, dst.tag()).ok());
  }
  return base::Status::Ok();
}

base::Result<std::shared_ptr<GrantHandle>> Dipc::GrantCreate(const DomainHandle& src,
                                                             const DomainHandle& dst) {
  // grant_create: requires the *owner* permission on src (§5.2.2); grants
  // dst.perm (owner translates to write in CODOMs terms).
  if (src.perm() != DomPerm::kOwner) {
    return base::ErrorCode::kPermissionDenied;
  }
  if (dst.perm() == DomPerm::kNil) {
    return base::ErrorCode::kInvalidArgument;
  }
  codoms::Perm perm = ToCodomsPerm(dst.perm());
  kernel_.codoms().apl_table().Grant(src.tag(), dst.tag(), perm);
  return std::make_shared<GrantHandle>(src.tag(), dst.tag(), perm);
}

base::Status Dipc::GrantRevoke(GrantHandle& grant) {
  if (grant.revoked()) {
    return base::ErrorCode::kInvalidArgument;
  }
  kernel_.codoms().apl_table().Revoke(grant.src(), grant.dst());
  grant.MarkRevoked();
  return base::Status::Ok();
}

base::Result<std::shared_ptr<EntryHandle>> Dipc::EntryRegister(os::Process& proc,
                                                               const DomainHandle& dom,
                                                               std::vector<EntryDesc> entries) {
  if (dom.perm() != DomPerm::kOwner) {
    return base::ErrorCode::kPermissionDenied;
  }
  if (entries.empty()) {
    return base::ErrorCode::kInvalidArgument;
  }
  for (const EntryDesc& e : entries) {
    if (!e.fn) {
      return base::ErrorCode::kInvalidArgument;
    }
  }
  // Entry points are aligned addresses inside the domain's code (§4.1).
  auto region = AllocCodeRegion(proc, dom.tag(), entries.size(), /*privileged=*/false);
  if (!region.ok()) {
    return region.status();
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = region.value() + i * codoms::kEntryAlign;
  }
  return std::make_shared<EntryHandle>(dom.tag(), &proc, std::move(entries));
}

base::Result<RequestedEntries> Dipc::EntryRequest(os::Process& requester,
                                                  const EntryHandle& handle,
                                                  const std::vector<EntryExpectation>& expected) {
  // P4: caller and callee must agree on every signature.
  if (expected.size() != handle.count()) {
    return base::ErrorCode::kSignatureMismatch;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (!(expected[i].signature == handle.entry(i).signature)) {
      return base::ErrorCode::kSignatureMismatch;
    }
  }
  bool cross_process = handle.owner() != &requester;
  // The proxy domain: privileged code pages holding one generated proxy per
  // entry (64 B-aligned slots so Call-permission transfers hit P2).
  codoms::AplTable& apl = kernel_.codoms().apl_table();
  hw::DomainTag proxy_tag = apl.AllocateTag();
  uint64_t bytes = handle.count() * ProxyTemplateLibrary::kSlotBytes;
  uint64_t pages = hw::PageRoundUp(bytes) / hw::kPageSize;
  if (proxy_region_next_ + bytes > proxy_region_end_ || proxy_region_next_ == 0) {
    proxy_region_next_ = vas_.AllocBlock();
    proxy_region_end_ = proxy_region_next_ + GlobalVas::kBlockSize;
  }
  hw::VirtAddr region = proxy_region_next_;
  proxy_region_next_ += pages * hw::kPageSize;
  hw::PageTable& pt = vas_.page_table();
  for (uint64_t i = 0; i < pages; ++i) {
    uint64_t frame = kernel_.machine().mem().AllocFrame();
    DIPC_CHECK(pt.MapPage(region + i * hw::kPageSize, frame,
                          hw::PageFlags{.writable = false,
                                        .executable = true,
                                        .user = true,
                                        .priv_cap = true},
                          proxy_tag)
                   .ok());
  }
  // The proxy can touch both sides; the callers/callee cannot touch each
  // other directly (§3.1).
  apl.Grant(proxy_tag, handle.dom(), codoms::Perm::kWrite);
  apl.Grant(proxy_tag, requester.default_domain(), codoms::Perm::kWrite);
  RequestedEntries out;
  out.proxy_domain = std::make_shared<DomainHandle>(proxy_tag, DomPerm::kCall);
  out.proxies.reserve(handle.count());
  for (size_t i = 0; i < handle.count(); ++i) {
    const EntryDesc& desc = handle.entry(i);
    // Per-entry policy: the union of both sides' requests (Table 2).
    IsolationPolicy effective = desc.policy.Union(expected[i].policy);
    ProxyTemplate tmpl = ProxyTemplateLibrary::Select(desc.signature, effective, cross_process);
    auto proxy = std::make_unique<Proxy>(
        *this, region + i * ProxyTemplateLibrary::kSlotBytes, proxy_tag, desc, handle.dom(),
        handle.owner(), &requester, effective, tmpl);
    out.proxies.emplace_back(proxy.get(), expected[i].policy, desc.signature);
    proxies_.push_back(std::move(proxy));
  }
  return out;
}

// ---- Faults ----

void Dipc::Crash(base::ErrorCode code) { throw CalleeCrash{code}; }

// ---- Internal state ----

ThreadDipcState& Dipc::thread_state(os::Thread& t) {
  auto& slot = thread_state_[t.tid()];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadDipcState>();
  }
  return *slot;
}

hw::VirtAddr Dipc::domain_code_va(hw::DomainTag tag) const {
  auto it = domain_code_.find(tag);
  return it == domain_code_.end() ? 0 : it->second;
}

uint64_t Dipc::TidInProcess(os::Thread& t, os::Process& proc) {
  ProcessInfo& pi = info(proc);
  auto [it, inserted] = pi.tids.emplace(t.tid(), pi.next_tid);
  if (inserted) {
    ++pi.next_tid;
  }
  return it->second;
}

Dipc::ProcessInfo& Dipc::info(os::Process& proc) { return process_info_[proc.pid()]; }

base::Result<hw::VirtAddr> Dipc::AllocCodeRegion(os::Process& proc, hw::DomainTag tag,
                                                 uint64_t slots, bool privileged) {
  uint64_t len = slots * codoms::kEntryAlign;
  auto va = kernel_.MapAnonymous(proc, len,
                                 hw::PageFlags{.writable = false,
                                               .executable = true,
                                               .user = true,
                                               .priv_cap = privileged},
                                 tag);
  if (va.ok()) {
    domain_code_.emplace(tag, va.value());  // first region becomes the text VA
  }
  return va;
}

}  // namespace dipc::core
