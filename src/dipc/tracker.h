// track_process_call fast/warm/cold paths (§6.1.2).
//
// Cross-process proxies must switch Linux's `current` pointer. The hot path
// uses the CODOMs hardware domain tag (§4.3) to index a small per-thread
// cache array (32 entries) holding (process, per-process thread id) pairs.
// On a cache-array miss the warm path consults a per-thread tree; on a tree
// miss the cold path upcalls into a management thread in the target process,
// which creates the OS structures and restarts the lookup.
#ifndef DIPC_DIPC_TRACKER_H_
#define DIPC_DIPC_TRACKER_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>

#include "codoms/apl_cache.h"
#include "hw/types.h"
#include "os/process.h"

namespace dipc::core {

struct TrackerEntry {
  os::Process* process = nullptr;
  uint64_t tid_in_process = 0;  // primary threads get per-process ids (§5.2.1)
};

struct TrackerStats {
  uint64_t fast_hits = 0;
  uint64_t warm_hits = 0;
  uint64_t cold_upcalls = 0;
};

class ProcessTracker {
 public:
  // Fast path: index the cache array by hardware domain tag.
  const TrackerEntry* FastLookup(codoms::HwDomainTag hw_tag, hw::DomainTag tag) {
    const CacheSlot& slot = cache_[hw_tag];
    if (slot.tag == tag && slot.entry.process != nullptr) {
      ++stats_.fast_hits;
      return &slot.entry;
    }
    return nullptr;
  }

  // Warm path: per-thread tree, refills the cache array.
  const TrackerEntry* WarmLookup(codoms::HwDomainTag hw_tag, hw::DomainTag tag) {
    auto it = tree_.find(tag);
    if (it == tree_.end()) {
      return nullptr;
    }
    ++stats_.warm_hits;
    cache_[hw_tag] = CacheSlot{tag, it->second};
    return &cache_[hw_tag].entry;
  }

  // Cold path result: management thread created the structures; install.
  const TrackerEntry* ColdInstall(codoms::HwDomainTag hw_tag, hw::DomainTag tag,
                                  TrackerEntry entry) {
    ++stats_.cold_upcalls;
    tree_[tag] = entry;
    cache_[hw_tag] = CacheSlot{tag, entry};
    return &cache_[hw_tag].entry;
  }

  // Test hook / context-switch behavior: the cache array is per-thread state
  // that can be dropped (it refills from the tree).
  void InvalidateCacheArray() {
    for (CacheSlot& s : cache_) {
      s = CacheSlot{};
    }
  }
  void InvalidateAll() {
    InvalidateCacheArray();
    tree_.clear();
  }

  const TrackerStats& stats() const { return stats_; }

 private:
  struct CacheSlot {
    hw::DomainTag tag = hw::kInvalidDomainTag;
    TrackerEntry entry{};
  };

  std::array<CacheSlot, codoms::kAplCacheEntries> cache_{};
  std::map<hw::DomainTag, TrackerEntry> tree_;
  TrackerStats stats_;
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_TRACKER_H_
