// Run-time optimized proxy generation from pre-built templates (§6.1.1).
//
// dIPC keeps "proxy templates" for every combination of entry-point
// signature and isolation-property set, produced at build time from a single
// parametrized master template (~12K templates averaging 600 B). Creating a
// proxy picks the matching template, copies it, and patches immediates via
// symbol relocation — reminiscent of Synthesis' code specialization.
#ifndef DIPC_DIPC_PROXY_TEMPLATE_H_
#define DIPC_DIPC_PROXY_TEMPLATE_H_

#include <cstdint>

#include "dipc/policy.h"
#include "hw/cost_model.h"

namespace dipc::core {

struct ProxyTemplate {
  uint32_t id = 0;
  uint32_t code_bytes = 0;
  uint32_t relocation_count = 0;
};

class ProxyTemplateLibrary {
 public:
  // Signature buckets the master template is instantiated over:
  // in_regs 0..6, out_regs 0..2, 4 stack-size classes, 2^6 policy sets,
  // and a cross-process bit -> 7 * 3 * 4 * 64 * 2 = 10752 (~12K) templates.
  static constexpr uint32_t kInRegsBuckets = 7;
  static constexpr uint32_t kOutRegsBuckets = 3;
  static constexpr uint32_t kStackBuckets = 4;
  static constexpr uint32_t kPolicySets = 64;
  static constexpr uint32_t kCrossProcess = 2;

  static constexpr uint32_t Count() {
    return kInRegsBuckets * kOutRegsBuckets * kStackBuckets * kPolicySets * kCrossProcess;
  }

  // Deterministic template selection for a concrete entry point.
  static ProxyTemplate Select(EntrySignature sig, IsolationPolicy policy, bool cross_process);

  // One-time cost of instantiating a proxy from its template: copying the
  // code and patching relocations (entry address, domain tags, KCS hooks).
  static sim::Duration InstantiationCost(const hw::CostModel& cm, const ProxyTemplate& t);

  // Slot stride in the proxy domain's code pages; keeps every proxy (and its
  // proxy_ret label at +kRetOffset) entry-aligned for CODOMs call checks.
  static constexpr uint64_t kSlotBytes = 1024;
  static constexpr uint64_t kRetOffset = 512;

 private:
  static uint32_t StackBucket(uint32_t stack_bytes) {
    if (stack_bytes == 0) {
      return 0;
    }
    if (stack_bytes <= 64) {
      return 1;
    }
    if (stack_bytes <= 512) {
      return 2;
    }
    return 3;
  }
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_PROXY_TEMPLATE_H_
