// The three dIPC kernel objects of Table 2: isolation domains, domain
// grants, and entry points. All derive from os::KernelObject so they can be
// delegated between processes as file descriptors (§5.2.2).
#ifndef DIPC_DIPC_OBJECTS_H_
#define DIPC_DIPC_OBJECTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "codoms/perm.h"
#include "dipc/policy.h"
#include "hw/types.h"
#include "os/objects.h"
#include "os/thread.h"
#include "sim/task.h"

namespace dipc::core {

// Domain-handle permission: CODOMs' ordered {call, read, write} plus the
// software-only "owner" that allows managing the domain's APL and memory
// (Table 2: {owner, write, read, call, nil}).
enum class DomPerm : uint8_t {
  kNil = 0,
  kCall = 1,
  kRead = 2,
  kWrite = 3,
  kOwner = 4,
};

constexpr bool DomPermAtLeast(DomPerm have, DomPerm want) {
  return static_cast<uint8_t>(have) >= static_cast<uint8_t>(want);
}

// Owner maps to write in CODOMs terms when granted into an APL (§5.2.2).
constexpr codoms::Perm ToCodomsPerm(DomPerm p) {
  switch (p) {
    case DomPerm::kNil: return codoms::Perm::kNone;
    case DomPerm::kCall: return codoms::Perm::kCall;
    case DomPerm::kRead: return codoms::Perm::kRead;
    case DomPerm::kWrite:
    case DomPerm::kOwner: return codoms::Perm::kWrite;
  }
  return codoms::Perm::kNone;
}

// domain.{tag, perm}
class DomainHandle : public os::KernelObject {
 public:
  DomainHandle(hw::DomainTag tag, DomPerm perm) : tag_(tag), perm_(perm) {}
  std::string_view type_name() const override { return "dipc-domain"; }

  hw::DomainTag tag() const { return tag_; }
  DomPerm perm() const { return perm_; }

 private:
  hw::DomainTag tag_;
  DomPerm perm_;
};

// grant.{src, dst, perm}
class GrantHandle : public os::KernelObject {
 public:
  GrantHandle(hw::DomainTag src, hw::DomainTag dst, codoms::Perm perm)
      : src_(src), dst_(dst), perm_(perm) {}
  std::string_view type_name() const override { return "dipc-grant"; }

  hw::DomainTag src() const { return src_; }
  hw::DomainTag dst() const { return dst_; }
  codoms::Perm perm() const { return perm_; }
  bool revoked() const { return revoked_; }
  void MarkRevoked() { revoked_ = true; }

 private:
  hw::DomainTag src_;
  hw::DomainTag dst_;
  codoms::Perm perm_;
  bool revoked_ = false;
};

// The register-file view of a cross-domain call: up to 6 argument registers
// (pointers into the shared VAS travel here as plain uint64s — that is the
// whole point of dIPC: arguments pass by reference, §7.2).
struct CallArgs {
  std::array<uint64_t, 6> regs{};
};

// The target of an entry point. In a real system this is machine code at an
// aligned address; here it is an aligned address (CODOMs checks it) plus the
// simulated behavior as a coroutine.
using EntryFn = std::function<sim::Task<uint64_t>(os::Env, CallArgs)>;

// entry.entries[i]: address + signature + policy (+ behavior).
struct EntryDesc {
  std::string name;
  EntrySignature signature;
  IsolationPolicy policy;
  EntryFn fn;  // set by the registering (callee) side
  hw::VirtAddr address = 0;  // filled by entry_register
};

class Process;  // os::Process forward-declared via thread.h include

// entry.{dom, count, entries[]}
class EntryHandle : public os::KernelObject {
 public:
  EntryHandle(hw::DomainTag dom, os::Process* owner, std::vector<EntryDesc> entries)
      : dom_(dom), owner_(owner), entries_(std::move(entries)) {}
  std::string_view type_name() const override { return "dipc-entry"; }

  hw::DomainTag dom() const { return dom_; }
  os::Process* owner() const { return owner_; }
  size_t count() const { return entries_.size(); }
  const EntryDesc& entry(size_t i) const { return entries_[i]; }
  const std::vector<EntryDesc>& entries() const { return entries_; }

 private:
  hw::DomainTag dom_;
  os::Process* owner_;
  std::vector<EntryDesc> entries_;
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_OBJECTS_H_
