// Global virtual address space (§6.1.3).
//
// dIPC-enabled processes are loaded into one shared page table. The OS
// allocator has two phases: processes grab 1 GB blocks of virtual space
// globally, then sub-allocate within their blocks (each os::Process keeps
// its bump pointer inside its block).
#ifndef DIPC_DIPC_GLOBAL_VAS_H_
#define DIPC_DIPC_GLOBAL_VAS_H_

#include <cstdint>

#include "base/check.h"
#include "hw/machine.h"
#include "hw/page_table.h"

namespace dipc::core {

class GlobalVas {
 public:
  static constexpr uint64_t kBlockSize = 1ull << 30;  // 1 GB (§6.1.3)
  // Blocks start high so they never collide with private address spaces.
  static constexpr hw::VirtAddr kBase = 0x7F0000000000ull;

  explicit GlobalVas(hw::Machine& machine) : page_table_(machine.CreatePageTable()) {}

  hw::PageTable& page_table() { return page_table_; }

  // Phase 1: global block allocation. (The paper notes contention here and
  // suggests per-CPU pools, §7.4; block allocation is rare enough that we
  // keep the single global cursor.)
  hw::VirtAddr AllocBlock() {
    hw::VirtAddr va = next_block_;
    next_block_ += kBlockSize;
    ++blocks_allocated_;
    return va;
  }

  uint64_t blocks_allocated() const { return blocks_allocated_; }

 private:
  hw::PageTable& page_table_;
  hw::VirtAddr next_block_ = kBase;
  uint64_t blocks_allocated_ = 0;
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_GLOBAL_VAS_H_
