// The dIPC runtime/OS extension (§5, §6): Table 2's objects and operations,
// dIPC-enabled process management in a global virtual address space, proxy
// generation, per-thread KCS + process-tracker state, crash unwinding, and
// fork/exec compatibility.
#ifndef DIPC_DIPC_DIPC_H_
#define DIPC_DIPC_DIPC_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dipc/global_vas.h"
#include "dipc/kcs.h"
#include "dipc/objects.h"
#include "dipc/policy.h"
#include "dipc/proxy.h"
#include "dipc/tracker.h"
#include "obs/metrics.h"
#include "os/kernel.h"

namespace dipc::core {

// Per-thread dIPC state (lazily created on first cross-domain call).
struct ThreadDipcState {
  Kcs kcs;
  ProcessTracker tracker;
};

// entry_request's per-entry expectation: the caller's view of the signature
// (must match, P4) and the isolation properties the caller wants added.
struct EntryExpectation {
  EntrySignature signature;
  IsolationPolicy policy;
};

// entry_request's result: a domain handle for the proxy domain (call
// permission) and one resolved proxy per entry.
struct RequestedEntries {
  std::shared_ptr<DomainHandle> proxy_domain;
  std::vector<ProxyRef> proxies;
};

class Dipc {
 public:
  explicit Dipc(os::Kernel& kernel);
  Dipc(const Dipc&) = delete;
  Dipc& operator=(const Dipc&) = delete;
  ~Dipc();

  os::Kernel& kernel() { return kernel_; }
  GlobalVas& vas() { return vas_; }

  // ---- dIPC-enabled processes (§6.1.3) ----

  // Creates a process inside the global VAS: its own 1 GB block, a fresh
  // default domain, and a code page (the PIC "program text" stand-in used
  // for return addresses).
  os::Process& CreateDipcProcess(const std::string& name);

  // POSIX fork: the child gets a *private* copy of the address space and
  // dIPC is temporarily disabled in it (copy-on-write compatibility).
  os::Process& Fork(os::Process& parent);

  // POSIX exec with a PIC executable: re-enables dIPC; the process is loaded
  // at a unique virtual address (a fresh block) with a fresh default domain.
  void Exec(os::Process& proc, const std::string& new_name);

  // ---- Table 2 operations ----

  std::shared_ptr<DomainHandle> DomDefault(os::Process& proc);
  base::Result<std::shared_ptr<DomainHandle>> DomCreate(os::Process& proc);
  base::Result<std::shared_ptr<DomainHandle>> DomCopy(const DomainHandle& src, DomPerm perm);
  base::Result<hw::VirtAddr> DomMmap(os::Process& proc, const DomainHandle& dom, uint64_t len,
                                     hw::PageFlags flags);
  base::Status DomRemap(os::Process& proc, const DomainHandle& dst, const DomainHandle& src,
                        hw::VirtAddr addr, uint64_t size);

  base::Result<std::shared_ptr<GrantHandle>> GrantCreate(const DomainHandle& src,
                                                         const DomainHandle& dst);
  base::Status GrantRevoke(GrantHandle& grant);

  base::Result<std::shared_ptr<EntryHandle>> EntryRegister(os::Process& proc,
                                                           const DomainHandle& dom,
                                                           std::vector<EntryDesc> entries);
  base::Result<RequestedEntries> EntryRequest(os::Process& requester, const EntryHandle& handle,
                                              const std::vector<EntryExpectation>& expected);

  // ---- Faults ----

  // Called from callee code to simulate a crash of the executing thread
  // while inside its current domain (unwinds the KCS, §5.2.1).
  [[noreturn]] static void Crash(base::ErrorCode code = base::ErrorCode::kCalleeFailed);

  // Kills a process: in-flight calls into it unwind to live callers, and
  // registered teardown hooks fire (e.g. channel endpoints surface
  // dead-peer errors to blocked threads).
  void KillProcess(os::Process& proc);

  // Registers a hook fired whenever KillProcess reaps a process. Used by
  // the chan subsystem for dead-peer channel teardown. A hook returning
  // false is unregistered (so per-object hooks don't accumulate after the
  // object they watch is gone).
  using ProcessDeathHook = std::function<bool(os::Process&)>;
  void AddDeathHook(ProcessDeathHook hook) { death_hooks_.push_back(std::move(hook)); }

  // ---- Internal state (used by Proxy; exposed for tests/benches) ----

  ThreadDipcState& thread_state(os::Thread& t);
  // Code address of a domain's text (return-address targets).
  hw::VirtAddr domain_code_va(hw::DomainTag tag) const;
  // Per-process thread id assignment (§5.2.1: primary threads appear with
  // different identifiers on each process).
  uint64_t TidInProcess(os::Thread& t, os::Process& proc);
  // Simulated cold-path upcall cost into the target process's management
  // thread (§6.1.2).
  static constexpr sim::Duration kColdUpcallCost = sim::Duration::Micros(1.8);

  uint64_t proxies_created() const { return proxies_.size(); }
  const std::vector<std::unique_ptr<Proxy>>& proxies() const { return proxies_; }

 private:
  friend class Proxy;
  friend class ProxyRef;

  struct ProcessInfo {
    hw::VirtAddr block_base = 0;
    hw::VirtAddr code_va = 0;
    std::unordered_map<uint64_t, uint64_t> tids;  // global tid -> per-process tid
    uint64_t next_tid = 1;
  };

  ProcessInfo& info(os::Process& proc);

  // Allocates an executable, 64 B-slotted code region tagged `tag`; returns
  // its base VA and records it as the domain's text address.
  base::Result<hw::VirtAddr> AllocCodeRegion(os::Process& proc, hw::DomainTag tag, uint64_t slots,
                                             bool privileged);

  os::Kernel& kernel_;
  GlobalVas vas_;
  std::unordered_map<os::Pid, ProcessInfo> process_info_;
  std::unordered_map<uint64_t, std::unique_ptr<ThreadDipcState>> thread_state_;  // by tid
  std::unordered_map<hw::DomainTag, hw::VirtAddr> domain_code_;
  std::vector<std::unique_ptr<Proxy>> proxies_;
  std::vector<ProcessDeathHook> death_hooks_;
  // Kill-sweep reentrancy state: nested KillProcess calls queue here and the
  // outermost call drains them (see KillProcess).
  std::vector<os::Process*> pending_kills_;
  bool in_kill_sweep_ = false;
  // Death-sweep churn, registered in the ctor ("dipc/...").
  obs::Counter* m_kill_sweeps_ = nullptr;      // processes actually swept
  obs::Counter* m_death_hook_runs_ = nullptr;  // hook invocations across sweeps
  // Proxy code pages are owned by the runtime, not any process; allocate
  // their VAs from a dedicated block.
  hw::VirtAddr proxy_region_next_ = 0;
  hw::VirtAddr proxy_region_end_ = 0;
};

}  // namespace dipc::core

#endif  // DIPC_DIPC_DIPC_H_
