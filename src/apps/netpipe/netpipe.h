// Device-driver isolation case study (§7.3): a netpipe-style ping-pong over
// an Infiniband-like NIC (rsocket flavor), with the user-level driver either
// inlined into the application or isolated behind different mechanisms.
//
// Per round the application performs two driver operations (post_send and
// poll/complete_recv, zero-copy against registered memory). The isolation
// variants change only how those two operations are invoked:
//
//   kInline      — direct function calls (the unprotected baseline).
//   kDipcDomain  — driver in a separate CODOMs domain of the same process;
//                  asymmetric minimal policy (the paper's "dIPC" line).
//   kDipcProcess — driver in a separate dIPC process ("dIPC +proc").
//   kKernel      — driver in the kernel: one syscall per operation.
//   kSemaphore   — driver service thread in another process, shared-memory
//                  requests, futex signalling (no payload copies).
//   kPipe        — same, but requests and payloads cross a pipe (copies).
//   kChannel     — same, but requests cross a zero-copy *duplex* capability
//                  channel (src/chan/ DuplexChannel: paired forward/reverse
//                  rings, one endpoint per side): ownership grants instead
//                  of copies, completions on the reverse ring,
//                  wake-suppressed futex signalling, and — when `burst` > 1
//                  — batched descriptor publication (SendBatch/RecvBatch)
//                  amortizing the per-request software toll.
#ifndef DIPC_APPS_NETPIPE_NETPIPE_H_
#define DIPC_APPS_NETPIPE_NETPIPE_H_

#include <cstdint>
#include <string_view>

namespace dipc::apps {

enum class DriverIsolation {
  kInline,
  kDipcDomain,
  kDipcProcess,
  kKernel,
  kSemaphore,
  kPipe,
  kChannel,
};

constexpr std::string_view DriverIsolationName(DriverIsolation d) {
  switch (d) {
    case DriverIsolation::kInline: return "inline (no isolation)";
    case DriverIsolation::kDipcDomain: return "dIPC";
    case DriverIsolation::kDipcProcess: return "dIPC +proc";
    case DriverIsolation::kKernel: return "Kernel";
    case DriverIsolation::kSemaphore: return "Semaphore (=CPU)";
    case DriverIsolation::kPipe: return "Pipe (=CPU)";
    case DriverIsolation::kChannel: return "Chan (=CPU)";
  }
  return "?";
}

struct NetpipeConfig {
  DriverIsolation isolation = DriverIsolation::kInline;
  uint64_t transfer_bytes = 64;
  int rounds = 128;
  // kChannel only: driver requests posted per batched publish. 1 keeps the
  // NPtcp ping-pong semantics; >1 models the streaming mode, where post_send
  // requests are batched toward the driver (doorbell batching).
  int burst = 1;
};

struct NetpipeResult {
  double latency_us = 0;        // NPtcp-style: round trip / 2
  double bandwidth_mbps = 0;    // transfer_bytes / one-way time
  double round_trip_us = 0;
};

NetpipeResult RunNetpipe(const NetpipeConfig& config);

}  // namespace dipc::apps

#endif  // DIPC_APPS_NETPIPE_NETPIPE_H_
