#include "apps/netpipe/netpipe.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "chan/channel.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/pipe.h"
#include "os/semaphore.h"

namespace dipc::apps {
namespace {

using os::TimeCat;
using sim::Duration;

// Driver operation codes (the rsocket-ish verbs we interpose, §7.3).
enum : uint64_t {
  kOpPostSend = 1,
  kOpCompleteRecv = 2,
};

// The driver itself: identical work in every isolation variant.
// post_send: build the WQE and ring the doorbell. complete_recv: spin on the
// completion queue until the echoed message lands, then process the CQE.
sim::Task<uint64_t> DriverWork(os::Env env, uint64_t opcode, uint64_t bytes, TimeCat cat) {
  os::Kernel& k = *env.kernel;
  const hw::CostModel& cm = k.costs();
  if (opcode == kOpPostSend) {
    co_await k.Spend(*env.self, cm.nic_doorbell, cat);
  } else {
    // The wire round trip: out + echo back, paid while polling the CQ.
    Duration rtt = (cm.nic_base_latency + cm.nic_per_byte * bytes) * 2;
    co_await k.Spend(*env.self, rtt, cat);
    co_await k.Spend(*env.self, cm.nic_doorbell, cat);  // CQE processing
  }
  co_return 0;
}

using DriverOp = std::function<sim::Task<uint64_t>(os::Env, uint64_t opcode, uint64_t bytes)>;

// Request/response header crossing the zero-copy channels: opcode + size.
constexpr uint64_t kChanHdrBytes = 16;

// One synchronous verb over a duplex endpoint: the request is written into
// an owned buffer whose ownership moves to the driver on the forward ring
// (no copies), the completion comes back on the paired reverse ring.
sim::Task<base::Status> ChanVerbCall(os::Env env, chan::DuplexEndpoint& ep, uint64_t opcode,
                                     uint64_t bytes) {
  os::Kernel& k = *env.kernel;
  auto buf = co_await ep.AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  uint64_t hdr[2] = {opcode, bytes};
  DIPC_CHECK(k.UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(hdr))).ok());
  auto sent = co_await ep.Send(env, buf.value(), kChanHdrBytes);
  if (!sent.ok()) {
    co_return sent;
  }
  auto ack = co_await ep.Recv(env);
  if (!ack.ok()) {
    co_return ack.code();
  }
  co_return co_await ep.Release(env, ack.value());
}

// Streaming round for the kChannel variant: `burst` post_send requests are
// published with one batched descriptor push (one queue op, one wake) and
// acknowledged with one batched completion on the reverse ring — the
// doorbell-batching cure for per-request software overhead.
sim::Task<base::Status> ChanBurstRound(os::Env env, chan::DuplexEndpoint& ep, int burst,
                                       uint64_t bytes) {
  os::Kernel& k = *env.kernel;
  auto bufs = co_await ep.AcquireBufBatch(env, static_cast<uint32_t>(burst));
  if (!bufs.ok()) {
    co_return bufs.code();
  }
  std::vector<chan::SendItem> items;
  items.reserve(bufs.value().size());
  for (const chan::SendBuf& b : bufs.value()) {
    ep.BindSendCap(*env.self, b);
    uint64_t hdr[2] = {kOpPostSend, bytes};
    DIPC_CHECK(k.UserWrite(*env.self, b.va, std::as_bytes(std::span(hdr))).ok());
    items.push_back(chan::SendItem{b, kChanHdrBytes});
  }
  auto sent = co_await ep.SendBatch(env, items);
  if (!sent.ok()) {
    co_return sent;
  }
  size_t acked = 0;
  while (acked < items.size()) {
    auto acks = co_await ep.RecvBatch(env, static_cast<uint32_t>(items.size() - acked));
    if (!acks.ok()) {
      co_return acks.code();
    }
    acked += acks.value().size();
    auto released = co_await ep.ReleaseBatch(env, acks.value());
    if (!released.ok()) {
      co_return released;
    }
  }
  co_return base::Status::Ok();
}

// Runs the ping-pong rounds and returns the per-round virtual time.
sim::Task<void> PingPong(os::Env env, DriverOp op, int rounds, uint64_t bytes, double* out_us) {
  // Warmup round (cold caches, tracker cold paths, lazy grants).
  (void)co_await op(env, kOpPostSend, bytes);
  (void)co_await op(env, kOpCompleteRecv, bytes);
  sim::Time t0 = env.kernel->now();
  for (int i = 0; i < rounds; ++i) {
    (void)co_await op(env, kOpPostSend, bytes);
    (void)co_await op(env, kOpCompleteRecv, bytes);
  }
  *out_us = (env.kernel->now() - t0).micros() / rounds;
}

}  // namespace

NetpipeResult RunNetpipe(const NetpipeConfig& config) {
  hw::Machine machine(2);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  double round_us = 0;
  const uint64_t bytes = config.transfer_bytes;

  switch (config.isolation) {
    case DriverIsolation::kInline: {
      os::Process& app = kernel.CreateProcess("app");
      DriverOp op = [&](os::Env env, uint64_t opcode, uint64_t n) -> sim::Task<uint64_t> {
        co_await kernel.Spend(*env.self, kernel.costs().function_call, TimeCat::kUser);
        co_return co_await DriverWork(env, opcode, n, TimeCat::kUser);
      };
      kernel.Spawn(app, "netpipe", [&, op](os::Env env) -> sim::Task<void> {
        co_await PingPong(env, op, config.rounds, bytes, &round_us);
      });
      break;
    }

    case DriverIsolation::kDipcDomain:
    case DriverIsolation::kDipcProcess: {
      // Asymmetric minimal policy between application and driver (§7.3).
      os::Process& app = dipc.CreateDipcProcess("app");
      bool cross = config.isolation == DriverIsolation::kDipcProcess;
      os::Process& drv_proc = cross ? dipc.CreateDipcProcess("ibdriver") : app;
      auto drv_dom = cross ? dipc.DomDefault(drv_proc) : dipc.DomCreate(app).value();
      core::EntryDesc entry;
      entry.name = "verb";
      entry.signature = core::EntrySignature{.in_regs = 2, .out_regs = 1, .stack_bytes = 0};
      entry.policy = core::IsolationPolicy::Low();
      entry.fn = [](os::Env env, core::CallArgs args) -> sim::Task<uint64_t> {
        co_return co_await DriverWork(env, args.regs[0], args.regs[1], TimeCat::kUser);
      };
      auto handle = dipc.EntryRegister(drv_proc, *drv_dom, {entry});
      DIPC_CHECK(handle.ok());
      auto req = dipc.EntryRequest(app, *handle.value(),
                                   {{entry.signature, core::IsolationPolicy::Low()}});
      DIPC_CHECK(req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(app), *req.value().proxy_domain).ok());
      core::ProxyRef proxy = req.value().proxies[0];
      DriverOp op = [proxy](os::Env env, uint64_t opcode, uint64_t n) -> sim::Task<uint64_t> {
        core::CallArgs args;
        args.regs[0] = opcode;
        args.regs[1] = n;
        co_return co_await proxy.Call(env, args);
      };
      kernel.Spawn(app, "netpipe", [&, op](os::Env env) -> sim::Task<void> {
        co_await PingPong(env, op, config.rounds, bytes, &round_us);
      });
      break;
    }

    case DriverIsolation::kKernel: {
      // In-kernel driver: each verb is a system call through the kernel's
      // verbs stack (fd lookup, locking, request validation) on top of the
      // raw trap cost.
      constexpr Duration kKernelVerbsPath = Duration::Nanos(155.0);
      os::Process& app = kernel.CreateProcess("app");
      DriverOp op = [&](os::Env env, uint64_t opcode, uint64_t n) -> sim::Task<uint64_t> {
        co_await kernel.SyscallEnter(env);
        co_await kernel.Spend(*env.self, kKernelVerbsPath, TimeCat::kKernel);
        uint64_t r = co_await DriverWork(env, opcode, n, TimeCat::kKernel);
        co_await kernel.SyscallExit(env);
        co_return r;
      };
      kernel.Spawn(app, "netpipe", [&, op](os::Env env) -> sim::Task<void> {
        co_await PingPong(env, op, config.rounds, bytes, &round_us);
      });
      break;
    }

    case DriverIsolation::kSemaphore: {
      // Driver process with a shared request page; futex-style signalling.
      // No payload copies (registered memory stays shared).
      os::Process& app = kernel.CreateProcess("app");
      os::Process& drv = kernel.CreateProcess("ibdriver");
      auto req_sem = std::make_shared<os::Semaphore>(0);
      auto resp_sem = std::make_shared<os::Semaphore>(0);
      auto shared = std::make_shared<std::array<uint64_t, 2>>();
      kernel.Spawn(
          drv, "drv-svc",
          [&, req_sem, resp_sem, shared](os::Env env) -> sim::Task<void> {
            while (true) {
              co_await req_sem->Wait(env);
              (void)co_await DriverWork(env, (*shared)[0], (*shared)[1], TimeCat::kUser);
              co_await resp_sem->Post(env);
            }
          },
          /*pin_cpu=*/0);
      DriverOp op = [req_sem, resp_sem, shared](os::Env env, uint64_t opcode,
                                                uint64_t n) -> sim::Task<uint64_t> {
        (*shared)[0] = opcode;
        (*shared)[1] = n;
        co_await req_sem->Post(env);
        co_await resp_sem->Wait(env);
        co_return 0;
      };
      kernel.Spawn(
          app, "netpipe",
          [&, op](os::Env env) -> sim::Task<void> {
            co_await PingPong(env, op, config.rounds, bytes, &round_us);
          },
          /*pin_cpu=*/0);
      break;
    }

    case DriverIsolation::kChannel: {
      // Driver service thread behind a *duplex* zero-copy channel: requests
      // move by capability grant on the forward ring (no copies, registered
      // payload memory stays shared), completions stream back on the paired
      // reverse ring, signalling is wake-suppressed futex, and bursts >1 use
      // the batched descriptor publication.
      os::Process& app = dipc.CreateDipcProcess("app");
      os::Process& drv = dipc.CreateDipcProcess("ibdriver");
      const int burst = std::max(1, config.burst);
      chan::ChannelConfig cc{.slots = std::max(4u, static_cast<uint32_t>(2 * burst)),
                             .buf_bytes = 64};
      auto dx = chan::DuplexChannel::Create(dipc, app, drv, cc);
      DIPC_CHECK(dx.ok());
      std::shared_ptr<chan::DuplexEndpoint> app_end = dx.value()->a_end();
      std::shared_ptr<chan::DuplexEndpoint> drv_end = dx.value()->b_end();
      // Driver: drain request batches, run the verbs, acknowledge with one
      // batched completion publish per drained batch.
      kernel.Spawn(
          drv, "drv-svc",
          [&, drv_end](os::Env env) -> sim::Task<void> {
            os::Kernel& k = *env.kernel;
            while (true) {
              auto msgs = co_await drv_end->RecvBatch(env, drv_end->in().config().slots);
              if (!msgs.ok()) {
                co_return;
              }
              for (const chan::Msg& m : msgs.value()) {
                drv_end->BindRecvCap(*env.self, m);
                uint64_t hdr[2] = {0, 0};
                DIPC_CHECK(
                    k.UserRead(*env.self, m.va, std::as_writable_bytes(std::span(hdr))).ok());
                (void)co_await DriverWork(env, hdr[0], hdr[1], TimeCat::kUser);
              }
              if (!(co_await drv_end->ReleaseBatch(env, msgs.value())).ok()) {
                co_return;
              }
              auto acks = co_await drv_end->AcquireBufBatch(
                  env, static_cast<uint32_t>(msgs.value().size()));
              if (!acks.ok()) {
                co_return;
              }
              std::vector<chan::SendItem> items;
              items.reserve(acks.value().size());
              for (const chan::SendBuf& b : acks.value()) {
                drv_end->BindSendCap(*env.self, b);
                uint64_t hdr[2] = {0, 0};  // completion record
                DIPC_CHECK(k.UserWrite(*env.self, b.va, std::as_bytes(std::span(hdr))).ok());
                items.push_back(chan::SendItem{b, kChanHdrBytes});
              }
              if (!(co_await drv_end->SendBatch(env, items)).ok()) {
                co_return;
              }
            }
          },
          /*pin_cpu=*/0);
      kernel.Spawn(
          app, "netpipe",
          [&, app_end, burst](os::Env env) -> sim::Task<void> {
            if (burst == 1) {
              DriverOp op = [app_end](os::Env e, uint64_t opcode,
                                      uint64_t n) -> sim::Task<uint64_t> {
                DIPC_CHECK((co_await ChanVerbCall(e, *app_end, opcode, n)).ok());
                co_return 0;
              };
              co_await PingPong(env, op, config.rounds, bytes, &round_us);
              app_end->Close();
              co_return;
            }
            // Streaming: measure per-burst rounds and report the per-request
            // equivalent so burst sweeps stay comparable to burst == 1.
            (void)co_await ChanBurstRound(env, *app_end, burst, bytes);  // warmup
            sim::Time t0 = env.kernel->now();
            for (int i = 0; i < config.rounds; ++i) {
              DIPC_CHECK((co_await ChanBurstRound(env, *app_end, burst, bytes)).ok());
            }
            round_us = (env.kernel->now() - t0).micros() / config.rounds / burst;
            app_end->Close();
          },
          /*pin_cpu=*/0);
      break;
    }

    case DriverIsolation::kPipe: {
      // Driver process behind a pipe pair; the payload crosses the pipe both
      // ways (the unnecessary-copy design point of §7.3).
      os::Process& app = kernel.CreateProcess("app");
      os::Process& drv = kernel.CreateProcess("ibdriver");
      auto to_drv = std::make_shared<os::Pipe>(kernel);
      auto from_drv = std::make_shared<os::Pipe>(kernel);
      kernel.Spawn(
          drv, "drv-svc",
          [&, to_drv, from_drv](os::Env env) -> sim::Task<void> {
            os::Kernel& k = *env.kernel;
            auto buf = k.MapAnonymous(env.self->process(), 2 * 1024 * 1024,
                                      hw::PageFlags{.writable = true});
            DIPC_CHECK(buf.ok());
            while (true) {
              // Request header: opcode + size (16 B), then payload for sends.
              auto n = co_await to_drv->Read(env, buf.value(), 16);
              if (!n.ok() || n.value() == 0) {
                co_return;
              }
              uint64_t hdr[2];
              DIPC_CHECK(k.UserRead(*env.self, buf.value(),
                                    std::as_writable_bytes(std::span(hdr)))
                             .ok());
              uint64_t opcode = hdr[0];
              uint64_t len = hdr[1];
              if (opcode == kOpPostSend && len > 0) {
                uint64_t got = 0;
                while (got < len) {
                  auto r = co_await to_drv->Read(env, buf.value() + got, len - got);
                  DIPC_CHECK(r.ok() && r.value() > 0);
                  got += r.value();
                }
              }
              (void)co_await DriverWork(env, opcode, len, TimeCat::kUser);
              if (opcode == kOpCompleteRecv && len > 0) {
                (void)co_await from_drv->Write(env, buf.value(), len);  // payload back
              } else {
                (void)co_await from_drv->Write(env, buf.value(), 16);  // ack
              }
            }
          },
          /*pin_cpu=*/0);
      auto appbuf = kernel.MapAnonymous(app, 2 * 1024 * 1024, hw::PageFlags{.writable = true});
      DIPC_CHECK(appbuf.ok());
      DriverOp op = [to_drv, from_drv, appbuf](os::Env env, uint64_t opcode,
                                               uint64_t n) -> sim::Task<uint64_t> {
        os::Kernel& k = *env.kernel;
        uint64_t hdr[2] = {opcode, n};
        DIPC_CHECK(k.UserWrite(*env.self, appbuf.value(), std::as_bytes(std::span(hdr))).ok());
        (void)co_await to_drv->Write(env, appbuf.value(), 16);
        if (opcode == kOpPostSend && n > 0) {
          (void)co_await to_drv->Write(env, appbuf.value(), n);  // payload to driver
        }
        uint64_t expect = (opcode == kOpCompleteRecv && n > 0) ? n : 16;
        uint64_t got = 0;
        while (got < expect) {
          auto r = co_await from_drv->Read(env, appbuf.value() + got, expect - got);
          DIPC_CHECK(r.ok() && r.value() > 0);
          got += r.value();
        }
        co_return 0;
      };
      kernel.Spawn(
          app, "netpipe",
          [&, op](os::Env env) -> sim::Task<void> {
            co_await PingPong(env, op, config.rounds, bytes, &round_us);
          },
          /*pin_cpu=*/0);
      break;
    }
  }

  kernel.Run();

  NetpipeResult result;
  result.round_trip_us = round_us;
  result.latency_us = round_us / 2.0;
  double one_way_s = round_us / 2.0 / 1e6;
  result.bandwidth_mbps =
      one_way_s > 0 ? static_cast<double>(bytes) / one_way_s / 1e6 : 0;
  return result;
}

}  // namespace dipc::apps
