// The multi-tier OLTP web stack of §2 and §7.4: an Apache-like Web frontend,
// a PHP-like interpreter, and a MariaDB-like database running a
// DVDStore-like transaction mix, wired in one of three ways:
//
//   kLinuxIpc — each tier a separate process; tiers talk over UNIX sockets
//               (FastCGI-style web<->php, client/server protocol php<->db)
//               with per-tier service-thread pools (§2.3's false concurrency).
//   kChan     — the tiers talk over zero-copy capability channels
//               (src/chan/) composed into an N x M service fabric
//               (src/fabric/): `tenants` web-tier client domains shard
//               requests across `chan_workers` PHP worker domains through
//               per-tenant fan-out request planes (per-receiver grants +
//               credit-based flow control) and get completions back over
//               per-tenant fan-in response planes; each PHP worker reaches
//               its DB peer over a duplex channel. Requests and responses
//               move by ownership grant instead of per-byte socket copies
//               with no marshalling glue, and the worker tiers need
//               chan_workers service threads per tenant instead of one per
//               web worker (§2.3's false concurrency).
//   kDipc     — tiers are dIPC processes; calls cross tiers in place through
//               generated proxies, arguments by reference, no service threads.
//   kIdeal    — all tiers in one process, plain function calls (the unsafe
//               upper bound of Figure 1).
//
// Per operation the stack makes 1 web->php request and kDbInteractions
// php<->db interactions, matching the paper's measured ~211 cross-domain
// calls per operation (§7.5).
#ifndef DIPC_APPS_OLTP_OLTP_H_
#define DIPC_APPS_OLTP_OLTP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "os/accounting.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dipc::apps {

enum class OltpMode {
  kLinuxIpc,
  kChan,
  kDipc,
  kIdeal,
};

enum class DbStorage {
  kDisk,    // regular hard disk
  kMemory,  // tmpfs
};

constexpr std::string_view OltpModeName(OltpMode m) {
  switch (m) {
    case OltpMode::kLinuxIpc: return "Linux";
    case OltpMode::kChan: return "Chan (zero-copy)";
    case OltpMode::kDipc: return "dIPC";
    case OltpMode::kIdeal: return "Ideal (unsafe)";
  }
  return "?";
}

struct OltpConfig {
  OltpMode mode = OltpMode::kLinuxIpc;
  DbStorage storage = DbStorage::kMemory;
  // Threads per component (the paper sweeps 4..512). dIPC/Ideal need no
  // service threads: this is the number of primary (web) threads.
  int threads = 64;
  // kChan only: number of PHP/DB worker *domains* (processes) the web tier
  // shards requests across through the fan-out channel. Each worker owns a
  // duplex channel to its DB peer and a completion channel back to the web
  // tier (contrast kLinuxIpc, which needs one service thread per web worker
  // — §2.3's false concurrency).
  int chan_workers = 4;
  // kChan only: number of client (web-tier) *domains* sharing the worker
  // tier. threads are spread round-robin across them; each tenant gets its
  // own request/response plane pair inside the service fabric.
  int tenants = 1;
  // kChan only: one shared domain-tag trio per fabric plane direction
  // (APL-cache friendly) vs a private trio per tenant channel — the
  // many-tenant cache-thrash design point when false.
  bool shared_trios = true;
  sim::Duration warmup = sim::Duration::Millis(40);
  sim::Duration measure = sim::Duration::Millis(400);
  uint64_t seed = 42;
  // kChan robustness knobs (the supervised self-healing fabric). With
  // `supervise` on, a supervisor thread heartbeat-scans the PHP worker
  // domains, kills wedged ones and respawns dead ones (rebinding their
  // fan-out receiver slot), web clients bound every blocking step with
  // `request_deadline` and retry on kTimedOut/kCalleeFailed with capped
  // exponential backoff — each operation completes exactly once (one
  // completion consumed per opid; late duplicates are counted and dropped).
  bool supervise = false;
  sim::Duration heartbeat = sim::Duration::Millis(2);
  sim::Duration request_deadline = sim::Duration::Millis(5);
  int max_retries = 10;
  // Fault plan text (fault::Plan::Parse format) armed for the whole run;
  // empty = no injection. The kill handler resolves victim names against
  // this run's processes.
  std::string fault_plan;
  // Proxy-cost multiplier and extra per-cross-domain-access capability loads
  // for the §7.5 ablations.
  double proxy_cost_scale = 1.0;
  bool worst_case_cap_loads = false;

  // Workload shape (see DESIGN.md calibration).
  static constexpr int kDbInteractions = 105;  // 2*(1+105) = 212 crossings/op
  static constexpr double kDiskProbability = 0.030;  // ~3.2 disk reads/op
};

struct OltpResult {
  double ops_per_min = 0;
  double avg_latency_ms = 0;
  uint64_t operations = 0;
  os::TimeBreakdown breakdown;  // summed over CPUs, measurement window only
  double wall_seconds = 0;
  uint64_t cross_domain_calls = 0;  // dIPC/Ideal instrumentation (§7.5)
  // Robustness instrumentation (kChan with supervise/fault_plan).
  uint64_t requests_retried = 0;       // client attempts beyond the first
  uint64_t requests_failed = 0;        // ops given up after max_retries
  uint64_t workers_respawned = 0;      // supervisor kill+respawn cycles
  uint64_t duplicate_completions = 0;  // late completions dropped at dispatch
  uint64_t faults_injected = 0;        // fault::Injector fire count

  double UserFrac() const { return Frac(os::TimeCat::kUser); }
  double KernelFrac() const {
    return Frac(os::TimeCat::kKernel) + Frac(os::TimeCat::kSyscallCrossing) +
           Frac(os::TimeCat::kSyscallDispatch) + Frac(os::TimeCat::kSchedule) +
           Frac(os::TimeCat::kPageTableSwitch) + Frac(os::TimeCat::kProxy);
  }
  double IdleFrac() const { return Frac(os::TimeCat::kIdle); }

 private:
  double Frac(os::TimeCat cat) const {
    double total = breakdown.Total().nanos();
    return total > 0 ? breakdown[cat].nanos() / total : 0;
  }
};

// Runs one configuration on a fresh 4-CPU machine and reports steady-state
// throughput and the time breakdown of the measurement window.
OltpResult RunOltp(const OltpConfig& config);

}  // namespace dipc::apps

#endif  // DIPC_APPS_OLTP_OLTP_H_
