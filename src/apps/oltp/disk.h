// A single-spindle disk: FIFO queue, fixed service time. Used by the
// on-disk DVDStore configuration (§7.4); the in-memory (tmpfs) configuration
// bypasses it.
#ifndef DIPC_APPS_OLTP_DISK_H_
#define DIPC_APPS_OLTP_DISK_H_

#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::apps {

class Disk {
 public:
  explicit Disk(os::Kernel& kernel) : kernel_(kernel) {}

  // One random access: queue behind earlier requests, then seek+rotate+read.
  sim::Task<void> Access(os::Env env) {
    ++total_accesses_;
    while (busy_) {
      waiters_.Enqueue(env.self);
      co_await env.kernel->Block(env);
    }
    busy_ = true;
    co_await kernel_.Sleep(env, kernel_.costs().disk_access);
    busy_ = false;
    if (os::Thread* next = waiters_.WakeOneThread(); next != nullptr) {
      (void)kernel_.MakeRunnable(*next, std::nullopt);
    }
  }

  uint64_t total_accesses() const { return total_accesses_; }

 private:
  os::Kernel& kernel_;
  bool busy_ = false;
  os::WaitQueue waiters_;
  uint64_t total_accesses_ = 0;
};

}  // namespace dipc::apps

#endif  // DIPC_APPS_OLTP_DISK_H_
