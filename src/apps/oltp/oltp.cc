#include "apps/oltp/oltp.h"

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/oltp/disk.h"
#include "chan/channel.h"
#include "chan/fanout.h"
#include "fabric/fabric.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "os/semaphore.h"
#include "os/unix_socket.h"
#include "sim/random.h"

namespace dipc::apps {
namespace {

using os::TimeCat;
using sim::Duration;

// ---- Component compute budgets (calibrated to Figure 1's splits) ----

// Apache: request parsing and response assembly.
constexpr Duration kWebParse = Duration::Micros(40);
constexpr Duration kWebRespond = Duration::Micros(30);
// Client-facing network I/O (kernel time in every mode).
constexpr Duration kWebClientIoKernel = Duration::Micros(9);
// PHP: script setup/teardown plus interpretation between DB interactions.
constexpr Duration kPhpSetup = Duration::Micros(28);
constexpr Duration kPhpPerInteraction = Duration::Micros(2.0);
constexpr Duration kPhpTeardown = Duration::Micros(22);
// MariaDB: per-interaction execution and the tmpfs/disk read syscall.
constexpr Duration kDbPerInteractionUser = Duration::Micros(3.0);
constexpr Duration kDbReadKernel = Duration::Micros(0.95);
// Per-message protocol glue in the Linux configuration: FastCGI record
// handling on the web<->php hop, client/server protocol on php<->db
// ((de)marshalling + demultiplexing, §2.2).
constexpr Duration kGlueUser = Duration::Nanos(460);

// Message sizes on the Linux sockets.
constexpr uint64_t kPhpReqBytes = 500;
constexpr uint64_t kPhpRespBytes = 2000;
constexpr uint64_t kDbReqBytes = 150;
constexpr uint64_t kDbRespBytes = 400;

// §7.5 worst-case capability modeling: every cross-domain memory access
// loads one 32 B capability; ~2% of the accesses behind one DB interaction
// are cross-domain.
constexpr int kWorstCaseCapLoadsPerInteraction = 560;

// A cross-tier request path; the three modes provide different transports.
using Edge = std::function<sim::Task<uint64_t>(os::Env, uint64_t)>;

struct Ctx {
  const OltpConfig* config = nullptr;
  os::Kernel* kernel = nullptr;
  Disk* disk = nullptr;  // null for in-memory storage
  bool stopped = false;

  uint64_t ops = 0;
  double latency_sum_ms = 0;
  uint64_t cross_domain_calls = 0;

  // kChan robustness bookkeeping (see OltpConfig::supervise). Retry/failure/
  // duplicate accounting lives in the ServiceFabric now; the supervisor's
  // respawn count is the one piece still owned here.
  uint64_t workers_respawned = 0;

  std::unordered_map<uint64_t, sim::Rng> rngs;
  sim::Rng& RngFor(os::Thread& t) {
    auto it = rngs.find(t.tid());
    if (it == rngs.end()) {
      it = rngs.emplace(t.tid(), sim::Rng(config->seed ^ (t.tid() * 0x9E37ULL))).first;
    }
    return it->second;
  }

  void ResetCounters() {
    ops = 0;
    latency_sum_ms = 0;
    cross_domain_calls = 0;
  }
};

// ---- Component logic (shared by all modes) ----

// One MariaDB interaction: execute + storage read (maybe hitting the disk).
sim::Task<uint64_t> DbInteraction(os::Env env, Ctx& ctx, uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kDbPerInteractionUser, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kDbReadKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  if (ctx.disk != nullptr && ctx.RngFor(*env.self).Chance(OltpConfig::kDiskProbability)) {
    co_await ctx.disk->Access(env);
  }
  co_return arg + 1;
}

// One PHP request: interpret the script, issuing DB interactions over `db`.
sim::Task<uint64_t> PhpRequest(os::Env env, [[maybe_unused]] Ctx& ctx, const Edge& db,
                               uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kPhpSetup, TimeCat::kUser);
  uint64_t acc = arg;
  for (int i = 0; i < OltpConfig::kDbInteractions; ++i) {
    co_await k.Spend(*env.self, kPhpPerInteraction, TimeCat::kUser);
    acc = co_await db(env, acc);
  }
  co_await k.Spend(*env.self, kPhpTeardown, TimeCat::kUser);
  co_return acc;
}

// One web operation: parse, call PHP, respond to the client.
sim::Task<void> WebOp(os::Env env, [[maybe_unused]] Ctx& ctx, const Edge& php, uint64_t opid) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kWebParse, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kWebClientIoKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  (void)co_await php(env, opid);
  co_await k.Spend(*env.self, kWebRespond, TimeCat::kUser);
}

// Closed-loop web worker: back-to-back operations (DVDStore driver with
// zero think time).
sim::Task<void> WebWorker(os::Env env, Ctx& ctx, Edge php) {
  uint64_t opid = 0;
  while (!ctx.stopped) {
    sim::Time t0 = env.kernel->now();
    co_await WebOp(env, ctx, php, opid++);
    ++ctx.ops;
    ctx.latency_sum_ms += (env.kernel->now() - t0).nanos() / 1e6;
  }
}

// ---- Linux-IPC mode plumbing ----

// Fixed-size request/response over a socket end (FastCGI / DB protocol).
sim::Task<base::Status> SockCall(os::Env env, os::UnixStreamEnd& sock, hw::VirtAddr buf,
                                 uint64_t req_bytes, uint64_t resp_bytes) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal request
  auto sent = co_await sock.Send(env, buf, req_bytes);
  if (!sent.ok()) {
    co_return sent.status();
  }
  auto got = co_await sock.RecvExact(env, buf, resp_bytes);
  if (!got.ok()) {
    co_return got;
  }
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demarshal response
  co_return base::Status::Ok();
}

// ---- Channel-mode plumbing ----

// Fixed-size request/response over a duplex channel. The request is
// produced directly into the owned buffer and consumed in place on the
// other side — zero copies and zero (de)marshalling glue, unlike SockCall:
// the protocol overhead left is purely the channel fast path plus the
// thread switches.
sim::Task<base::Status> DuplexCall(os::Env env, chan::DuplexEndpoint& ep, uint64_t req_bytes,
                                   uint64_t resp_bytes) {
  (void)resp_bytes;  // the reply length rides in its descriptor
  os::Kernel& k = *env.kernel;
  auto buf = co_await ep.AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  auto produced = co_await k.TouchUser(env, buf.value().va, req_bytes, hw::AccessType::kWrite);
  if (!produced.ok()) {
    // The fill failed (caller being torn down): hand the slot back instead
    // of leaking it — a leaked slot eventually wedges every producer.
    (void)co_await ep.Abandon(env, buf.value());
    co_return produced;
  }
  auto sent = co_await ep.Send(env, buf.value(), req_bytes);
  if (!sent.ok()) {
    co_return sent;
  }
  auto reply = co_await ep.Recv(env);
  if (!reply.ok()) {
    co_return reply.code();
  }
  auto consumed =
      co_await k.TouchUser(env, reply.value().va, reply.value().len, hw::AccessType::kRead);
  (void)consumed;  // a dead peer surfaces through Release below
  co_return co_await ep.Release(env, reply.value());
}

// Duplex service loop: receive requests on the inbound ring, run `handler`,
// respond on the outbound one — the zero-copy analogue of ServiceLoop (no
// glue charges: nothing is marshalled, demultiplexing is the descriptor pop
// itself).
sim::Task<void> DuplexServiceLoop(os::Env env, Ctx& ctx, std::shared_ptr<chan::DuplexEndpoint> ep,
                                  uint64_t resp_bytes,
                                  std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  while (!ctx.stopped) {
    auto msg = co_await ep->Recv(env);
    if (!msg.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, msg.value().va, msg.value().len, hw::AccessType::kRead);
    (void)co_await handler(env);
    if (!(co_await ep->Release(env, msg.value())).ok()) {
      co_return;
    }
    auto buf = co_await ep->AcquireBuf(env);
    if (!buf.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, buf.value().va, resp_bytes, hw::AccessType::kWrite);
    if (!(co_await ep->Send(env, buf.value(), resp_bytes)).ok()) {
      co_return;
    }
  }
}

// Service loop: receive fixed-size requests, run `handler`, send responses.
sim::Task<void> ServiceLoop(os::Env env, Ctx& ctx, std::shared_ptr<os::UnixStreamEnd> sock,
                            uint64_t req_bytes, uint64_t resp_bytes,
                            std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize, hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  while (!ctx.stopped) {
    auto got = co_await sock->RecvExact(env, buf.value(), req_bytes);
    if (!got.ok()) {
      co_return;
    }
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demux + demarshal
    (void)co_await handler(env);
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal response
    auto sent = co_await sock->Send(env, buf.value(), resp_bytes);
    if (!sent.ok()) {
      co_return;
    }
  }
}

}  // namespace

OltpResult RunOltp(const OltpConfig& config) {
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  Ctx ctx;
  ctx.config = &config;
  ctx.kernel = &kernel;
  if (config.mode == OltpMode::kLinuxIpc || config.mode == OltpMode::kChan) {
    // Wakeup-to-dispatch latency of a loaded Linux box (runqueue delay,
    // imperfect wake balancing; §7.4). dIPC/Ideal make no IPC wakeups;
    // channel mode keeps the service threads and therefore the wakeups.
    kernel.set_wake_latency(Duration::Micros(1.0));
  }
  std::unique_ptr<Disk> disk;
  if (config.storage == DbStorage::kDisk) {
    disk = std::make_unique<Disk>(kernel);
    ctx.disk = disk.get();
  }

  // Extra per-proxy-call cost for the §7.5 call-overhead ablation.
  const Duration ablation_extra =
      Duration::Nanos(107.0) * (config.proxy_cost_scale - 1.0);
  const Duration cap_load_extra =
      machine.costs().cap_memory_op * kWorstCaseCapLoadsPerInteraction;

  // kChan hooks: snapshot the fabric's robustness counters when the
  // measurement window opens and fold the window's deltas into the result.
  std::function<void()> on_measure_start;
  std::function<void(OltpResult&)> collect_robustness;

  switch (config.mode) {
    case OltpMode::kIdeal: {
      // One unsafe process; direct function calls between tiers.
      os::Process& app = kernel.CreateProcess("app");
      const hw::CostModel& cm = machine.costs();
      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(app, "worker", [&ctx, &cm](os::Env env) -> sim::Task<void> {
          Edge db = [&ctx, &cm](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;  // §7.5 instrumentation: call+return
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await DbInteraction(e, ctx, a);
          };
          Edge php = [&ctx, &cm, db](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await PhpRequest(e, ctx, db, a);
          };
          co_await WebWorker(env, ctx, php);
        });
      }
      break;
    }

    case OltpMode::kDipc: {
      // Three dIPC processes; asymmetric policies: only PHP trusts the other
      // components (§7.4), and stubs are folded into proxies assuming the
      // worst case, so both hops run High-like unions.
      os::Process& web = dipc.CreateDipcProcess("web");
      os::Process& php = dipc.CreateDipcProcess("php");
      os::Process& db = dipc.CreateDipcProcess("db");

      core::EntryDesc db_entry;
      db_entry.name = "interact";
      db_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      db_entry.policy = core::IsolationPolicy::High();  // DB enforces isolation
      db_entry.fn = [&ctx, ablation_extra, cap_load_extra,
                     &config](os::Env e, core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        if (config.worst_case_cap_loads) {
          co_await e.kernel->Spend(*e.self, cap_load_extra, TimeCat::kUser);
        }
        co_return co_await DbInteraction(e, ctx, a.regs[0]);
      };
      auto db_handle = dipc.EntryRegister(db, *dipc.DomDefault(db), {db_entry});
      DIPC_CHECK(db_handle.ok());
      // PHP imports the DB entry (PHP trusts DB: Low on the caller side).
      auto db_req = dipc.EntryRequest(php, *db_handle.value(),
                                      {{db_entry.signature, core::IsolationPolicy::Low()}});
      DIPC_CHECK(db_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(php), *db_req.value().proxy_domain).ok());
      core::ProxyRef db_proxy = db_req.value().proxies[0];

      core::EntryDesc php_entry;
      php_entry.name = "request";
      php_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      php_entry.policy = core::IsolationPolicy::Low();  // PHP trusts callers
      php_entry.fn = [&ctx, db_proxy, ablation_extra](os::Env e,
                                                      core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        Edge db_edge = [&ctx, db_proxy](os::Env e2, uint64_t v) -> sim::Task<uint64_t> {
          ctx.cross_domain_calls += 2;
          core::CallArgs args;
          args.regs[0] = v;
          co_return co_await db_proxy.Call(e2, args);
        };
        co_return co_await PhpRequest(e, ctx, db_edge, a.regs[0]);
      };
      auto php_handle = dipc.EntryRegister(php, *dipc.DomDefault(php), {php_entry});
      DIPC_CHECK(php_handle.ok());
      // Web is isolated from the interpreter: High on the caller side.
      auto php_req = dipc.EntryRequest(web, *php_handle.value(),
                                       {{php_entry.signature, core::IsolationPolicy::High()}});
      DIPC_CHECK(php_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(web), *php_req.value().proxy_domain).ok());
      core::ProxyRef php_proxy = php_req.value().proxies[0];

      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(web, "worker", [&ctx, php_proxy](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, php_proxy](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            core::CallArgs args;
            args.regs[0] = v;
            co_return co_await php_proxy.Call(e, args);
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }

    case OltpMode::kChan: {
      // Zero-copy channels composed into the N x M service fabric
      // (src/fabric/): `tenants` web-tier client domains shard requests
      // across `chan_workers` PHP worker *domains* through per-tenant
      // fan-out request planes (per-receiver read grants, credit-based
      // backpressure) and get completions back over per-tenant fan-in
      // response planes, matched to the blocked web worker by operation id
      // inside fabric::Call. Each PHP worker drives its own DB peer thread
      // over a duplex channel. Versus kLinuxIpc this removes both the
      // copies+glue AND most of the false concurrency: the worker tier runs
      // chan_workers serve threads per tenant instead of one per web worker.
      const int W = std::max(1, config.chan_workers);
      const int T = std::max(1, config.tenants);
      // Shared (not stack-local) so the supervisor and the fault-plan kill
      // handler can keep resolving processes after this block exits.
      auto webs = std::make_shared<std::vector<os::Process*>>();
      for (int t = 0; t < T; ++t) {
        webs->push_back(&dipc.CreateDipcProcess("apache"));
      }
      os::Process& db = dipc.CreateDipcProcess("mariadb");
      auto workers = std::make_shared<std::vector<os::Process*>>();
      for (int r = 0; r < W; ++r) {
        workers->push_back(&dipc.CreateDipcProcess("php-worker"));
      }
      codoms::AplTable& apl = codoms.apl_table();
      // Shared domain-tag trio on the php<->db hop (identical trust
      // relationship across workers), so the per-CPU APL cache stays warm.
      // The web<->php planes get theirs from the fabric (shared_trios).
      struct Trio {
        hw::DomainTag ctrl, data, rt;
      };
      auto make_trio = [&apl] {
        return Trio{apl.AllocateTag(), apl.AllocateTag(), apl.AllocateTag()};
      };
      const Trio php_db_t = make_trio();

      // Per-tenant request-plane credits size to that tenant's closed-loop
      // population so admission never throttles below the worker tier's own
      // capacity.
      const auto per_tenant =
          static_cast<uint32_t>((config.threads + T - 1) / T);
      fabric::FabricConfig fcfg;
      fcfg.req_slots = std::max<uint32_t>(8, per_tenant);
      fcfg.req_bytes = kPhpReqBytes;
      fcfg.resp_slots = std::max<uint32_t>(8, 2 * static_cast<uint32_t>(W));
      fcfg.resp_bytes = kPhpRespBytes;
      fcfg.shared_trio = config.shared_trios;
      fcfg.call_deadline =
          config.supervise ? config.request_deadline : Duration::Zero();
      fcfg.max_call_retries = config.max_retries;
      auto fab_r = fabric::ServiceFabric::Create(dipc, *webs, *workers, fcfg);
      DIPC_CHECK(fab_r.ok());
      std::shared_ptr<fabric::ServiceFabric> fab = fab_r.value();
      fab->StartAllDispatchers();

      // Wires one PHP worker slot: its duplex to a fresh DB service thread
      // and one fabric serve loop per tenant plane. Shared so the supervisor
      // can re-run it against a respawned process after RebindWorker — the
      // dead incarnation's duplex failed with it, so every piece is created
      // anew (the fabric planes themselves survive via epoch rebind).
      auto start_worker = std::make_shared<std::function<void(uint32_t, os::Process&)>>();
      *start_worker = [&ctx, &dipc, &kernel, fab, php_db_t, T, &db](uint32_t r,
                                                                    os::Process& php) {
        // PHP worker <-> its DB peer: a duplex channel (requests forward,
        // replies on the paired reverse ring).
        auto dx = chan::DuplexChannel::Create(dipc, php, db,
                                              {.slots = 4,
                                               .buf_bytes = kDbReqBytes,
                                               .ctrl_tag = php_db_t.ctrl,
                                               .data_tag = php_db_t.data,
                                               .rt_tag = php_db_t.rt},
                                              chan::ChannelConfig{.slots = 4,
                                                                  .buf_bytes = kDbRespBytes});
        DIPC_CHECK(dx.ok());
        std::shared_ptr<chan::DuplexEndpoint> php_db_end = dx.value()->a_end();
        std::shared_ptr<chan::DuplexEndpoint> db_end = dx.value()->b_end();

        kernel.Spawn(db, "db-svc", [&ctx, db_end](os::Env env) -> sim::Task<void> {
          co_await DuplexServiceLoop(env, ctx, db_end, kDbRespBytes,
                                     [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                       co_return co_await DbInteraction(e, ctx, 0);
                                     });
        });
        Edge db_edge = [&ctx, php_db_end](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
          auto s = co_await DuplexCall(e, *php_db_end, kDbReqBytes, kDbRespBytes);
          (void)s;
          co_return v + 1;
        };
        fabric::ServiceFabric::Handler handler =
            [&ctx, db_edge](os::Env e, const chan::Msg&) -> sim::Task<void> {
          (void)co_await PhpRequest(e, ctx, db_edge, 0);
        };
        // One serve loop per tenant plane: drain that tenant's shard of this
        // worker, interpret, respond with the matching opid.
        for (int c = 0; c < T; ++c) {
          kernel.Spawn(php, "php-worker",
                       [fab, c, r, handler](os::Env env) -> sim::Task<void> {
                         co_await fab->Serve(env, static_cast<uint32_t>(c), r, handler);
                       });
        }
      };
      for (int r = 0; r < W; ++r) {
        (*start_worker)(static_cast<uint32_t>(r), *(*workers)[r]);
      }

      // Fault-plan kill rules resolve victims by process name against this
      // run's topology (first *alive* match, so repeated kill rules murder
      // successive incarnations, not the same corpse).
      fault::Injector::Global().SetKillHandler(
          [&dipc, workers, webs, &db](const std::string& victim) {
            if (victim == db.name()) {
              dipc.KillProcess(db);
              return;
            }
            for (os::Process* p : *workers) {
              if (p->alive() && p->name() == victim) {
                dipc.KillProcess(*p);
                return;
              }
            }
            for (os::Process* p : *webs) {
              if (p->alive() && p->name() == victim) {
                dipc.KillProcess(*p);
                return;
              }
            }
          });

      if (config.supervise) {
        // Supervisor: heartbeat scan over the worker slots. A slot whose
        // process died (fault kill or our own verdict) is respawned into a
        // fresh process via the fabric's epoch-rebind machinery (every
        // tenant plane at once); a slot holding undelivered work with no
        // progress across two consecutive heartbeats is convicted as wedged
        // and killed (the next scan respawns it). Clients ride out the gap
        // on deadlines + retry.
        kernel.Spawn(*(*webs)[0], "supervisor",
                     [&ctx, &dipc, &config, fab, workers,
                      start_worker](os::Env env) -> sim::Task<void> {
                       os::Kernel& k = *env.kernel;
                       const uint32_t n = fab->worker_count();
                       std::vector<uint64_t> last_progress(n, 0);
                       std::vector<int> stagnant(n, 0);
                       while (!ctx.stopped) {
                         co_await k.Sleep(env, config.heartbeat);
                         bool any_live_client = false;
                         for (uint32_t c = 0; c < fab->client_count(); ++c) {
                           any_live_client = any_live_client || !fab->client_broken(c);
                         }
                         if (ctx.stopped || !any_live_client) {
                           co_return;
                         }
                         for (uint32_t r = 0; r < n; ++r) {
                           if (!fab->worker_alive(r)) {
                             os::Process& fresh = dipc.CreateDipcProcess("php-worker");
                             if (!fab->RebindWorker(r, fresh).ok()) {
                               continue;
                             }
                             (*workers)[r] = &fresh;
                             (*start_worker)(r, fresh);
                             ++ctx.workers_respawned;
                             last_progress[r] = fab->WorkerProgress(r);
                             stagnant[r] = 0;
                             continue;
                           }
                           if (fab->WorkerOutstanding(r) &&
                               fab->WorkerProgress(r) == last_progress[r]) {
                             if (++stagnant[r] >= 2) {
                               // Deliveries parked at a worker completing
                               // nothing: wedged (e.g. a lost wake). Kill it;
                               // the sweep recycles its slots and grants.
                               dipc.KillProcess(*(*workers)[r]);
                               stagnant[r] = 0;
                             }
                           } else {
                             stagnant[r] = 0;
                           }
                           last_progress[r] = fab->WorkerProgress(r);
                         }
                       }
                     });
      }
      // Closed-loop web workers, spread round-robin across the tenant
      // domains: each operation is one fabric::Call — opid stamping, shard
      // selection, deadline + capped-backoff retry and exactly-once
      // completion matching all live behind that one call now.
      for (int i = 0; i < config.threads; ++i) {
        const auto c = static_cast<uint32_t>(i % T);
        kernel.Spawn(*(*webs)[c], "worker", [&ctx, fab, c](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, fab, c](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            (void)co_await fab->Call(e, c, kPhpReqBytes);
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      // Robustness accounting lives in the fabric now; snapshot it when the
      // measurement window opens so the result covers that window only.
      auto snap = std::make_shared<std::array<uint64_t, 3>>();
      on_measure_start = [fab, snap] {
        (*snap) = {fab->retries(), fab->failures(), fab->duplicate_completions()};
      };
      collect_robustness = [fab, snap](OltpResult& r) {
        r.requests_retried = fab->retries() - (*snap)[0];
        r.requests_failed = fab->failures() - (*snap)[1];
        r.duplicate_completions = fab->duplicate_completions() - (*snap)[2];
      };
      break;
    }

    case OltpMode::kLinuxIpc: {
      // Three isolated processes; per-worker persistent connections
      // (FastCGI-style) with dedicated service threads in PHP and the DB.
      os::Process& web = kernel.CreateProcess("apache");
      os::Process& php = kernel.CreateProcess("php-fcgi");
      os::Process& db = kernel.CreateProcess("mariadb");
      for (int i = 0; i < config.threads; ++i) {
        auto [web_end, php_end] = os::UnixStreamCore::CreatePair(kernel);
        auto [php_db_end, db_end] = os::UnixStreamCore::CreatePair(kernel);
        // DB service thread: one interaction per request message.
        kernel.Spawn(db, "db-svc", [&ctx, sock = db_end](os::Env env) -> sim::Task<void> {
          co_await ServiceLoop(env, ctx, sock, kDbReqBytes, kDbRespBytes,
                               [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                 co_return co_await DbInteraction(e, ctx, 0);
                               });
        });
        // PHP service thread: interprets the script, calling the DB over its
        // own connection for every interaction.
        kernel.Spawn(php, "php-svc",
                     [&ctx, sock = php_end, dbsock = php_db_end](os::Env env) -> sim::Task<void> {
                       os::Kernel& k = *env.kernel;
                       auto dbbuf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                                   hw::PageFlags{.writable = true});
                       DIPC_CHECK(dbbuf.ok());
                       Edge db_edge = [&ctx, dbsock, dbbuf](os::Env e,
                                                            uint64_t v) -> sim::Task<uint64_t> {
                         auto s = co_await SockCall(e, *dbsock, dbbuf.value(), kDbReqBytes,
                                                    kDbRespBytes);
                         (void)s;
                         co_return v + 1;
                       };
                       co_await ServiceLoop(env, ctx, sock, kPhpReqBytes, kPhpRespBytes,
                                            [&ctx, &db_edge](os::Env e) -> sim::Task<uint64_t> {
                                              co_return co_await PhpRequest(e, ctx, db_edge, 0);
                                            });
                     });
        // Web worker with its persistent FastCGI connection.
        kernel.Spawn(web, "worker", [&ctx, sock = web_end](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                    hw::PageFlags{.writable = true});
          DIPC_CHECK(buf.ok());
          Edge php_edge = [&ctx, sock, buf](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            auto s = co_await SockCall(e, *sock, buf.value(), kPhpReqBytes, kPhpRespBytes);
            (void)s;
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }
  }

  // Arm the fault plan for the whole run (warmup included — the supervisor
  // must already be healing before the measurement window opens).
  bool armed = false;
  if (!config.fault_plan.empty()) {
    std::string perr;
    auto plan = fault::Plan::Parse(config.fault_plan, &perr);
    DIPC_CHECK(plan.ok());
    fault::Injector::Global().Arm(*plan, &machine.events());
    armed = true;
  }

  kernel.RunFor(config.warmup);
  kernel.FlushIdleAccounting();
  kernel.accounting().Reset();
  ctx.ResetCounters();
  if (on_measure_start) {
    on_measure_start();
  }
  kernel.RunFor(config.measure);
  kernel.FlushIdleAccounting();
  ctx.stopped = true;

  OltpResult result;
  result.operations = ctx.ops;
  result.wall_seconds = config.measure.seconds();
  result.ops_per_min = static_cast<double>(ctx.ops) * 60.0 / config.measure.seconds();
  result.avg_latency_ms = ctx.ops > 0 ? ctx.latency_sum_ms / static_cast<double>(ctx.ops) : 0;
  result.breakdown = kernel.accounting().Summed();
  result.cross_domain_calls = ctx.cross_domain_calls;
  result.workers_respawned = ctx.workers_respawned;
  if (collect_robustness) {
    collect_robustness(result);
  }
  if (armed) {
    result.faults_injected = fault::Injector::Global().fire_count();
  }
  // The kill handler (and an armed plan's clock) capture this stack frame;
  // always clear them before it unwinds.
  fault::Injector::Global().Disarm();
  return result;
}

}  // namespace dipc::apps
