#include "apps/oltp/oltp.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "apps/oltp/disk.h"
#include "chan/channel.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/unix_socket.h"
#include "sim/random.h"

namespace dipc::apps {
namespace {

using os::TimeCat;
using sim::Duration;

// ---- Component compute budgets (calibrated to Figure 1's splits) ----

// Apache: request parsing and response assembly.
constexpr Duration kWebParse = Duration::Micros(40);
constexpr Duration kWebRespond = Duration::Micros(30);
// Client-facing network I/O (kernel time in every mode).
constexpr Duration kWebClientIoKernel = Duration::Micros(9);
// PHP: script setup/teardown plus interpretation between DB interactions.
constexpr Duration kPhpSetup = Duration::Micros(28);
constexpr Duration kPhpPerInteraction = Duration::Micros(2.0);
constexpr Duration kPhpTeardown = Duration::Micros(22);
// MariaDB: per-interaction execution and the tmpfs/disk read syscall.
constexpr Duration kDbPerInteractionUser = Duration::Micros(3.0);
constexpr Duration kDbReadKernel = Duration::Micros(0.95);
// Per-message protocol glue in the Linux configuration: FastCGI record
// handling on the web<->php hop, client/server protocol on php<->db
// ((de)marshalling + demultiplexing, §2.2).
constexpr Duration kGlueUser = Duration::Nanos(460);

// Message sizes on the Linux sockets.
constexpr uint64_t kPhpReqBytes = 500;
constexpr uint64_t kPhpRespBytes = 2000;
constexpr uint64_t kDbReqBytes = 150;
constexpr uint64_t kDbRespBytes = 400;

// §7.5 worst-case capability modeling: every cross-domain memory access
// loads one 32 B capability; ~2% of the accesses behind one DB interaction
// are cross-domain.
constexpr int kWorstCaseCapLoadsPerInteraction = 560;

// A cross-tier request path; the three modes provide different transports.
using Edge = std::function<sim::Task<uint64_t>(os::Env, uint64_t)>;

struct Ctx {
  const OltpConfig* config = nullptr;
  os::Kernel* kernel = nullptr;
  Disk* disk = nullptr;  // null for in-memory storage
  bool stopped = false;

  uint64_t ops = 0;
  double latency_sum_ms = 0;
  uint64_t cross_domain_calls = 0;

  std::unordered_map<uint64_t, sim::Rng> rngs;
  sim::Rng& RngFor(os::Thread& t) {
    auto it = rngs.find(t.tid());
    if (it == rngs.end()) {
      it = rngs.emplace(t.tid(), sim::Rng(config->seed ^ (t.tid() * 0x9E37ULL))).first;
    }
    return it->second;
  }

  void ResetCounters() {
    ops = 0;
    latency_sum_ms = 0;
    cross_domain_calls = 0;
  }
};

// ---- Component logic (shared by all modes) ----

// One MariaDB interaction: execute + storage read (maybe hitting the disk).
sim::Task<uint64_t> DbInteraction(os::Env env, Ctx& ctx, uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kDbPerInteractionUser, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kDbReadKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  if (ctx.disk != nullptr && ctx.RngFor(*env.self).Chance(OltpConfig::kDiskProbability)) {
    co_await ctx.disk->Access(env);
  }
  co_return arg + 1;
}

// One PHP request: interpret the script, issuing DB interactions over `db`.
sim::Task<uint64_t> PhpRequest(os::Env env, Ctx& ctx, const Edge& db, uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kPhpSetup, TimeCat::kUser);
  uint64_t acc = arg;
  for (int i = 0; i < OltpConfig::kDbInteractions; ++i) {
    co_await k.Spend(*env.self, kPhpPerInteraction, TimeCat::kUser);
    acc = co_await db(env, acc);
  }
  co_await k.Spend(*env.self, kPhpTeardown, TimeCat::kUser);
  co_return acc;
}

// One web operation: parse, call PHP, respond to the client.
sim::Task<void> WebOp(os::Env env, Ctx& ctx, const Edge& php, uint64_t opid) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kWebParse, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kWebClientIoKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  (void)co_await php(env, opid);
  co_await k.Spend(*env.self, kWebRespond, TimeCat::kUser);
}

// Closed-loop web worker: back-to-back operations (DVDStore driver with
// zero think time).
sim::Task<void> WebWorker(os::Env env, Ctx& ctx, Edge php) {
  uint64_t opid = 0;
  while (!ctx.stopped) {
    sim::Time t0 = env.kernel->now();
    co_await WebOp(env, ctx, php, opid++);
    ++ctx.ops;
    ctx.latency_sum_ms += (env.kernel->now() - t0).nanos() / 1e6;
  }
}

// ---- Linux-IPC mode plumbing ----

// Fixed-size request/response over a socket end (FastCGI / DB protocol).
sim::Task<base::Status> SockCall(os::Env env, os::UnixStreamEnd& sock, hw::VirtAddr buf,
                                 uint64_t req_bytes, uint64_t resp_bytes) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal request
  auto sent = co_await sock.Send(env, buf, req_bytes);
  if (!sent.ok()) {
    co_return sent.status();
  }
  auto got = co_await sock.RecvExact(env, buf, resp_bytes);
  if (!got.ok()) {
    co_return got;
  }
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demarshal response
  co_return base::Status::Ok();
}

// ---- Channel-mode plumbing ----

// A per-worker connection between two tiers: a request channel and a
// response channel (channels are unidirectional).
struct ChanConn {
  std::shared_ptr<chan::Channel> req;
  std::shared_ptr<chan::Channel> resp;
};

// Fixed-size request/response over a channel pair. The request is produced
// directly into the owned buffer and consumed in place on the other side —
// zero copies and zero (de)marshalling glue, unlike SockCall: the protocol
// overhead left is purely the channel fast path plus the thread switches.
sim::Task<base::Status> ChanCall(os::Env env, const ChanConn& conn, uint64_t req_bytes,
                                 uint64_t resp_bytes) {
  os::Kernel& k = *env.kernel;
  auto buf = co_await conn.req->AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  auto produced = co_await k.TouchUser(env, buf.value().va, req_bytes, hw::AccessType::kWrite);
  if (!produced.ok()) {
    co_return produced;
  }
  auto sent = co_await conn.req->Send(env, buf.value(), req_bytes);
  if (!sent.ok()) {
    co_return sent;
  }
  auto reply = co_await conn.resp->Recv(env);
  if (!reply.ok()) {
    co_return reply.code();
  }
  auto consumed =
      co_await k.TouchUser(env, reply.value().va, reply.value().len, hw::AccessType::kRead);
  (void)consumed;  // a dead peer surfaces through Release below
  co_return co_await conn.resp->Release(env, reply.value());
}

// Channel-mode service loop: receive requests, run `handler`, respond —
// the zero-copy analogue of ServiceLoop (no glue charges: nothing is
// marshalled, demultiplexing is the descriptor pop itself).
sim::Task<void> ChanServiceLoop(os::Env env, Ctx& ctx, ChanConn conn, uint64_t resp_bytes,
                                std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  while (!ctx.stopped) {
    auto msg = co_await conn.req->Recv(env);
    if (!msg.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, msg.value().va, msg.value().len, hw::AccessType::kRead);
    (void)co_await handler(env);
    if (!(co_await conn.req->Release(env, msg.value())).ok()) {
      co_return;
    }
    auto buf = co_await conn.resp->AcquireBuf(env);
    if (!buf.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, buf.value().va, resp_bytes, hw::AccessType::kWrite);
    if (!(co_await conn.resp->Send(env, buf.value(), resp_bytes)).ok()) {
      co_return;
    }
  }
}

// Service loop: receive fixed-size requests, run `handler`, send responses.
sim::Task<void> ServiceLoop(os::Env env, Ctx& ctx, std::shared_ptr<os::UnixStreamEnd> sock,
                            uint64_t req_bytes, uint64_t resp_bytes,
                            std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize, hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  while (!ctx.stopped) {
    auto got = co_await sock->RecvExact(env, buf.value(), req_bytes);
    if (!got.ok()) {
      co_return;
    }
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demux + demarshal
    (void)co_await handler(env);
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal response
    auto sent = co_await sock->Send(env, buf.value(), resp_bytes);
    if (!sent.ok()) {
      co_return;
    }
  }
}

}  // namespace

OltpResult RunOltp(const OltpConfig& config) {
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  Ctx ctx;
  ctx.config = &config;
  ctx.kernel = &kernel;
  if (config.mode == OltpMode::kLinuxIpc || config.mode == OltpMode::kChan) {
    // Wakeup-to-dispatch latency of a loaded Linux box (runqueue delay,
    // imperfect wake balancing; §7.4). dIPC/Ideal make no IPC wakeups;
    // channel mode keeps the service threads and therefore the wakeups.
    kernel.set_wake_latency(Duration::Micros(1.0));
  }
  std::unique_ptr<Disk> disk;
  if (config.storage == DbStorage::kDisk) {
    disk = std::make_unique<Disk>(kernel);
    ctx.disk = disk.get();
  }

  // Extra per-proxy-call cost for the §7.5 call-overhead ablation.
  const Duration ablation_extra =
      Duration::Nanos(107.0) * (config.proxy_cost_scale - 1.0);
  const Duration cap_load_extra =
      machine.costs().cap_memory_op * kWorstCaseCapLoadsPerInteraction;

  switch (config.mode) {
    case OltpMode::kIdeal: {
      // One unsafe process; direct function calls between tiers.
      os::Process& app = kernel.CreateProcess("app");
      const hw::CostModel& cm = machine.costs();
      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(app, "worker", [&ctx, &cm](os::Env env) -> sim::Task<void> {
          Edge db = [&ctx, &cm](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;  // §7.5 instrumentation: call+return
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await DbInteraction(e, ctx, a);
          };
          Edge php = [&ctx, &cm, db](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await PhpRequest(e, ctx, db, a);
          };
          co_await WebWorker(env, ctx, php);
        });
      }
      break;
    }

    case OltpMode::kDipc: {
      // Three dIPC processes; asymmetric policies: only PHP trusts the other
      // components (§7.4), and stubs are folded into proxies assuming the
      // worst case, so both hops run High-like unions.
      os::Process& web = dipc.CreateDipcProcess("web");
      os::Process& php = dipc.CreateDipcProcess("php");
      os::Process& db = dipc.CreateDipcProcess("db");

      core::EntryDesc db_entry;
      db_entry.name = "interact";
      db_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      db_entry.policy = core::IsolationPolicy::High();  // DB enforces isolation
      db_entry.fn = [&ctx, ablation_extra, cap_load_extra,
                     &config](os::Env e, core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        if (config.worst_case_cap_loads) {
          co_await e.kernel->Spend(*e.self, cap_load_extra, TimeCat::kUser);
        }
        co_return co_await DbInteraction(e, ctx, a.regs[0]);
      };
      auto db_handle = dipc.EntryRegister(db, *dipc.DomDefault(db), {db_entry});
      DIPC_CHECK(db_handle.ok());
      // PHP imports the DB entry (PHP trusts DB: Low on the caller side).
      auto db_req = dipc.EntryRequest(php, *db_handle.value(),
                                      {{db_entry.signature, core::IsolationPolicy::Low()}});
      DIPC_CHECK(db_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(php), *db_req.value().proxy_domain).ok());
      core::ProxyRef db_proxy = db_req.value().proxies[0];

      core::EntryDesc php_entry;
      php_entry.name = "request";
      php_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      php_entry.policy = core::IsolationPolicy::Low();  // PHP trusts callers
      php_entry.fn = [&ctx, db_proxy, ablation_extra](os::Env e,
                                                      core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        Edge db_edge = [&ctx, db_proxy](os::Env e2, uint64_t v) -> sim::Task<uint64_t> {
          ctx.cross_domain_calls += 2;
          core::CallArgs args;
          args.regs[0] = v;
          co_return co_await db_proxy.Call(e2, args);
        };
        co_return co_await PhpRequest(e, ctx, db_edge, a.regs[0]);
      };
      auto php_handle = dipc.EntryRegister(php, *dipc.DomDefault(php), {php_entry});
      DIPC_CHECK(php_handle.ok());
      // Web is isolated from the interpreter: High on the caller side.
      auto php_req = dipc.EntryRequest(web, *php_handle.value(),
                                       {{php_entry.signature, core::IsolationPolicy::High()}});
      DIPC_CHECK(php_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(web), *php_req.value().proxy_domain).ok());
      core::ProxyRef php_proxy = php_req.value().proxies[0];

      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(web, "worker", [&ctx, php_proxy](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, php_proxy](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            core::CallArgs args;
            args.regs[0] = v;
            co_return co_await php_proxy.Call(e, args);
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }

    case OltpMode::kChan: {
      // Same process and service-thread structure as kLinuxIpc, but every
      // hop is a zero-copy capability channel: requests and responses move
      // by ownership grant, with no socket copies and no marshalling glue.
      // What remains of the Linux overhead is the false concurrency itself
      // (thread switches + wakeup latency), which isolates the copy+glue
      // share when compared against the kLinuxIpc line.
      os::Process& web = dipc.CreateDipcProcess("apache");
      os::Process& php = dipc.CreateDipcProcess("php-fcgi");
      os::Process& db = dipc.CreateDipcProcess("mariadb");
      codoms::AplTable& apl = codoms.apl_table();
      // One domain-tag trio per tier direction, shared by all workers'
      // channels, so the per-CPU APL cache (32 entries) stays warm at high
      // thread counts. The trust relationship per direction is identical
      // across workers, so sharing loses no isolation.
      struct Trio {
        hw::DomainTag ctrl, data, rt;
      };
      auto make_trio = [&apl] {
        return Trio{apl.AllocateTag(), apl.AllocateTag(), apl.AllocateTag()};
      };
      const Trio web_php_t = make_trio(), php_web_t = make_trio(), php_db_t = make_trio(),
                 db_php_t = make_trio();
      auto make_chan = [&dipc](os::Process& s, os::Process& r, uint64_t bytes, const Trio& t) {
        auto ch = chan::Channel::Create(dipc, s, r,
                                        {.slots = 4,
                                         .buf_bytes = bytes,
                                         .ctrl_tag = t.ctrl,
                                         .data_tag = t.data,
                                         .rt_tag = t.rt});
        DIPC_CHECK(ch.ok());
        return ch.value();
      };
      for (int i = 0; i < config.threads; ++i) {
        ChanConn web_php{make_chan(web, php, kPhpReqBytes, web_php_t),
                         make_chan(php, web, kPhpRespBytes, php_web_t)};
        ChanConn php_db{make_chan(php, db, kDbReqBytes, php_db_t),
                        make_chan(db, php, kDbRespBytes, db_php_t)};
        kernel.Spawn(db, "db-svc", [&ctx, php_db](os::Env env) -> sim::Task<void> {
          co_await ChanServiceLoop(env, ctx, php_db, kDbRespBytes,
                                   [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                     co_return co_await DbInteraction(e, ctx, 0);
                                   });
        });
        kernel.Spawn(php, "php-svc",
                     [&ctx, web_php, php_db](os::Env env) -> sim::Task<void> {
                       Edge db_edge = [&ctx, php_db](os::Env e,
                                                     uint64_t v) -> sim::Task<uint64_t> {
                         auto s = co_await ChanCall(e, php_db, kDbReqBytes, kDbRespBytes);
                         (void)s;
                         co_return v + 1;
                       };
                       co_await ChanServiceLoop(
                           env, ctx, web_php, kPhpRespBytes,
                           [&ctx, &db_edge](os::Env e) -> sim::Task<uint64_t> {
                             co_return co_await PhpRequest(e, ctx, db_edge, 0);
                           });
                     });
        kernel.Spawn(web, "worker", [&ctx, web_php](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, web_php](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            auto s = co_await ChanCall(e, web_php, kPhpReqBytes, kPhpRespBytes);
            (void)s;
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }

    case OltpMode::kLinuxIpc: {
      // Three isolated processes; per-worker persistent connections
      // (FastCGI-style) with dedicated service threads in PHP and the DB.
      os::Process& web = kernel.CreateProcess("apache");
      os::Process& php = kernel.CreateProcess("php-fcgi");
      os::Process& db = kernel.CreateProcess("mariadb");
      for (int i = 0; i < config.threads; ++i) {
        auto [web_end, php_end] = os::UnixStreamCore::CreatePair(kernel);
        auto [php_db_end, db_end] = os::UnixStreamCore::CreatePair(kernel);
        // DB service thread: one interaction per request message.
        kernel.Spawn(db, "db-svc", [&ctx, sock = db_end](os::Env env) -> sim::Task<void> {
          co_await ServiceLoop(env, ctx, sock, kDbReqBytes, kDbRespBytes,
                               [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                 co_return co_await DbInteraction(e, ctx, 0);
                               });
        });
        // PHP service thread: interprets the script, calling the DB over its
        // own connection for every interaction.
        kernel.Spawn(php, "php-svc",
                     [&ctx, sock = php_end, dbsock = php_db_end](os::Env env) -> sim::Task<void> {
                       os::Kernel& k = *env.kernel;
                       auto dbbuf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                                   hw::PageFlags{.writable = true});
                       DIPC_CHECK(dbbuf.ok());
                       Edge db_edge = [&ctx, dbsock, dbbuf](os::Env e,
                                                            uint64_t v) -> sim::Task<uint64_t> {
                         auto s = co_await SockCall(e, *dbsock, dbbuf.value(), kDbReqBytes,
                                                    kDbRespBytes);
                         (void)s;
                         co_return v + 1;
                       };
                       co_await ServiceLoop(env, ctx, sock, kPhpReqBytes, kPhpRespBytes,
                                            [&ctx, &db_edge](os::Env e) -> sim::Task<uint64_t> {
                                              co_return co_await PhpRequest(e, ctx, db_edge, 0);
                                            });
                     });
        // Web worker with its persistent FastCGI connection.
        kernel.Spawn(web, "worker", [&ctx, sock = web_end](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                    hw::PageFlags{.writable = true});
          DIPC_CHECK(buf.ok());
          Edge php_edge = [&ctx, sock, buf](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            auto s = co_await SockCall(e, *sock, buf.value(), kPhpReqBytes, kPhpRespBytes);
            (void)s;
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }
  }

  kernel.RunFor(config.warmup);
  kernel.FlushIdleAccounting();
  kernel.accounting().Reset();
  ctx.ResetCounters();
  kernel.RunFor(config.measure);
  kernel.FlushIdleAccounting();
  ctx.stopped = true;

  OltpResult result;
  result.operations = ctx.ops;
  result.wall_seconds = config.measure.seconds();
  result.ops_per_min = static_cast<double>(ctx.ops) * 60.0 / config.measure.seconds();
  result.avg_latency_ms = ctx.ops > 0 ? ctx.latency_sum_ms / static_cast<double>(ctx.ops) : 0;
  result.breakdown = kernel.accounting().Summed();
  result.cross_domain_calls = ctx.cross_domain_calls;
  return result;
}

}  // namespace dipc::apps
