#include "apps/oltp/oltp.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/oltp/disk.h"
#include "chan/channel.h"
#include "chan/fanout.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "fault/fault.h"
#include "hw/machine.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "os/semaphore.h"
#include "os/unix_socket.h"
#include "sim/random.h"

namespace dipc::apps {
namespace {

using os::TimeCat;
using sim::Duration;

// ---- Component compute budgets (calibrated to Figure 1's splits) ----

// Apache: request parsing and response assembly.
constexpr Duration kWebParse = Duration::Micros(40);
constexpr Duration kWebRespond = Duration::Micros(30);
// Client-facing network I/O (kernel time in every mode).
constexpr Duration kWebClientIoKernel = Duration::Micros(9);
// PHP: script setup/teardown plus interpretation between DB interactions.
constexpr Duration kPhpSetup = Duration::Micros(28);
constexpr Duration kPhpPerInteraction = Duration::Micros(2.0);
constexpr Duration kPhpTeardown = Duration::Micros(22);
// MariaDB: per-interaction execution and the tmpfs/disk read syscall.
constexpr Duration kDbPerInteractionUser = Duration::Micros(3.0);
constexpr Duration kDbReadKernel = Duration::Micros(0.95);
// Per-message protocol glue in the Linux configuration: FastCGI record
// handling on the web<->php hop, client/server protocol on php<->db
// ((de)marshalling + demultiplexing, §2.2).
constexpr Duration kGlueUser = Duration::Nanos(460);

// Message sizes on the Linux sockets.
constexpr uint64_t kPhpReqBytes = 500;
constexpr uint64_t kPhpRespBytes = 2000;
constexpr uint64_t kDbReqBytes = 150;
constexpr uint64_t kDbRespBytes = 400;

// §7.5 worst-case capability modeling: every cross-domain memory access
// loads one 32 B capability; ~2% of the accesses behind one DB interaction
// are cross-domain.
constexpr int kWorstCaseCapLoadsPerInteraction = 560;

// A cross-tier request path; the three modes provide different transports.
using Edge = std::function<sim::Task<uint64_t>(os::Env, uint64_t)>;

struct Ctx {
  const OltpConfig* config = nullptr;
  os::Kernel* kernel = nullptr;
  Disk* disk = nullptr;  // null for in-memory storage
  bool stopped = false;

  uint64_t ops = 0;
  double latency_sum_ms = 0;
  uint64_t cross_domain_calls = 0;

  // kChan completion matching: in-flight operation id -> the web worker's
  // wakeup. Dispatchers post it when the response crosses back.
  uint64_t next_opid = 0;
  std::unordered_map<uint64_t, std::shared_ptr<os::Semaphore>> completions;

  // kChan robustness bookkeeping (see OltpConfig::supervise).
  uint64_t requests_retried = 0;
  uint64_t requests_failed = 0;
  uint64_t workers_respawned = 0;
  uint64_t duplicate_completions = 0;
  // Requests each PHP worker slot completed, ever (respawns keep the slot's
  // counter): the supervisor's wedge heuristic watches this for stalls.
  std::vector<uint64_t> worker_progress;

  std::unordered_map<uint64_t, sim::Rng> rngs;
  sim::Rng& RngFor(os::Thread& t) {
    auto it = rngs.find(t.tid());
    if (it == rngs.end()) {
      it = rngs.emplace(t.tid(), sim::Rng(config->seed ^ (t.tid() * 0x9E37ULL))).first;
    }
    return it->second;
  }

  void ResetCounters() {
    ops = 0;
    latency_sum_ms = 0;
    cross_domain_calls = 0;
    requests_retried = 0;
    requests_failed = 0;
    duplicate_completions = 0;
    // worker_progress stays: the supervisor diffs it between heartbeats and
    // a mid-run reset would only look like (harmless) fresh progress.
  }
};

// ---- Component logic (shared by all modes) ----

// One MariaDB interaction: execute + storage read (maybe hitting the disk).
sim::Task<uint64_t> DbInteraction(os::Env env, Ctx& ctx, uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kDbPerInteractionUser, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kDbReadKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  if (ctx.disk != nullptr && ctx.RngFor(*env.self).Chance(OltpConfig::kDiskProbability)) {
    co_await ctx.disk->Access(env);
  }
  co_return arg + 1;
}

// One PHP request: interpret the script, issuing DB interactions over `db`.
sim::Task<uint64_t> PhpRequest(os::Env env, Ctx& ctx, const Edge& db, uint64_t arg) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kPhpSetup, TimeCat::kUser);
  uint64_t acc = arg;
  for (int i = 0; i < OltpConfig::kDbInteractions; ++i) {
    co_await k.Spend(*env.self, kPhpPerInteraction, TimeCat::kUser);
    acc = co_await db(env, acc);
  }
  co_await k.Spend(*env.self, kPhpTeardown, TimeCat::kUser);
  co_return acc;
}

// One web operation: parse, call PHP, respond to the client.
sim::Task<void> WebOp(os::Env env, Ctx& ctx, const Edge& php, uint64_t opid) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kWebParse, TimeCat::kUser);
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kWebClientIoKernel, TimeCat::kKernel);
  co_await k.SyscallExit(env);
  (void)co_await php(env, opid);
  co_await k.Spend(*env.self, kWebRespond, TimeCat::kUser);
}

// Closed-loop web worker: back-to-back operations (DVDStore driver with
// zero think time).
sim::Task<void> WebWorker(os::Env env, Ctx& ctx, Edge php) {
  uint64_t opid = 0;
  while (!ctx.stopped) {
    sim::Time t0 = env.kernel->now();
    co_await WebOp(env, ctx, php, opid++);
    ++ctx.ops;
    ctx.latency_sum_ms += (env.kernel->now() - t0).nanos() / 1e6;
  }
}

// ---- Linux-IPC mode plumbing ----

// Fixed-size request/response over a socket end (FastCGI / DB protocol).
sim::Task<base::Status> SockCall(os::Env env, os::UnixStreamEnd& sock, hw::VirtAddr buf,
                                 uint64_t req_bytes, uint64_t resp_bytes) {
  os::Kernel& k = *env.kernel;
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal request
  auto sent = co_await sock.Send(env, buf, req_bytes);
  if (!sent.ok()) {
    co_return sent.status();
  }
  auto got = co_await sock.RecvExact(env, buf, resp_bytes);
  if (!got.ok()) {
    co_return got;
  }
  co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demarshal response
  co_return base::Status::Ok();
}

// ---- Channel-mode plumbing ----

// Fixed-size request/response over a duplex channel. The request is
// produced directly into the owned buffer and consumed in place on the
// other side — zero copies and zero (de)marshalling glue, unlike SockCall:
// the protocol overhead left is purely the channel fast path plus the
// thread switches.
sim::Task<base::Status> DuplexCall(os::Env env, chan::DuplexEndpoint& ep, uint64_t req_bytes,
                                   uint64_t resp_bytes) {
  (void)resp_bytes;  // the reply length rides in its descriptor
  os::Kernel& k = *env.kernel;
  auto buf = co_await ep.AcquireBuf(env);
  if (!buf.ok()) {
    co_return buf.code();
  }
  auto produced = co_await k.TouchUser(env, buf.value().va, req_bytes, hw::AccessType::kWrite);
  if (!produced.ok()) {
    co_return produced;
  }
  auto sent = co_await ep.Send(env, buf.value(), req_bytes);
  if (!sent.ok()) {
    co_return sent;
  }
  auto reply = co_await ep.Recv(env);
  if (!reply.ok()) {
    co_return reply.code();
  }
  auto consumed =
      co_await k.TouchUser(env, reply.value().va, reply.value().len, hw::AccessType::kRead);
  (void)consumed;  // a dead peer surfaces through Release below
  co_return co_await ep.Release(env, reply.value());
}

// Duplex service loop: receive requests on the inbound ring, run `handler`,
// respond on the outbound one — the zero-copy analogue of ServiceLoop (no
// glue charges: nothing is marshalled, demultiplexing is the descriptor pop
// itself).
sim::Task<void> DuplexServiceLoop(os::Env env, Ctx& ctx, std::shared_ptr<chan::DuplexEndpoint> ep,
                                  uint64_t resp_bytes,
                                  std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  while (!ctx.stopped) {
    auto msg = co_await ep->Recv(env);
    if (!msg.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, msg.value().va, msg.value().len, hw::AccessType::kRead);
    (void)co_await handler(env);
    if (!(co_await ep->Release(env, msg.value())).ok()) {
      co_return;
    }
    auto buf = co_await ep->AcquireBuf(env);
    if (!buf.ok()) {
      co_return;
    }
    (void)co_await k.TouchUser(env, buf.value().va, resp_bytes, hw::AccessType::kWrite);
    if (!(co_await ep->Send(env, buf.value(), resp_bytes)).ok()) {
      co_return;
    }
  }
}

// Service loop: receive fixed-size requests, run `handler`, send responses.
sim::Task<void> ServiceLoop(os::Env env, Ctx& ctx, std::shared_ptr<os::UnixStreamEnd> sock,
                            uint64_t req_bytes, uint64_t resp_bytes,
                            std::function<sim::Task<uint64_t>(os::Env)> handler) {
  os::Kernel& k = *env.kernel;
  auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize, hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  while (!ctx.stopped) {
    auto got = co_await sock->RecvExact(env, buf.value(), req_bytes);
    if (!got.ok()) {
      co_return;
    }
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // demux + demarshal
    (void)co_await handler(env);
    co_await k.Spend(*env.self, kGlueUser, TimeCat::kUser);  // marshal response
    auto sent = co_await sock->Send(env, buf.value(), resp_bytes);
    if (!sent.ok()) {
      co_return;
    }
  }
}

}  // namespace

OltpResult RunOltp(const OltpConfig& config) {
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  Ctx ctx;
  ctx.config = &config;
  ctx.kernel = &kernel;
  if (config.mode == OltpMode::kLinuxIpc || config.mode == OltpMode::kChan) {
    // Wakeup-to-dispatch latency of a loaded Linux box (runqueue delay,
    // imperfect wake balancing; §7.4). dIPC/Ideal make no IPC wakeups;
    // channel mode keeps the service threads and therefore the wakeups.
    kernel.set_wake_latency(Duration::Micros(1.0));
  }
  std::unique_ptr<Disk> disk;
  if (config.storage == DbStorage::kDisk) {
    disk = std::make_unique<Disk>(kernel);
    ctx.disk = disk.get();
  }

  // Extra per-proxy-call cost for the §7.5 call-overhead ablation.
  const Duration ablation_extra =
      Duration::Nanos(107.0) * (config.proxy_cost_scale - 1.0);
  const Duration cap_load_extra =
      machine.costs().cap_memory_op * kWorstCaseCapLoadsPerInteraction;

  switch (config.mode) {
    case OltpMode::kIdeal: {
      // One unsafe process; direct function calls between tiers.
      os::Process& app = kernel.CreateProcess("app");
      const hw::CostModel& cm = machine.costs();
      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(app, "worker", [&ctx, &cm](os::Env env) -> sim::Task<void> {
          Edge db = [&ctx, &cm](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;  // §7.5 instrumentation: call+return
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await DbInteraction(e, ctx, a);
          };
          Edge php = [&ctx, &cm, db](os::Env e, uint64_t a) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            co_await e.kernel->Spend(*e.self, cm.function_call, TimeCat::kUser);
            co_return co_await PhpRequest(e, ctx, db, a);
          };
          co_await WebWorker(env, ctx, php);
        });
      }
      break;
    }

    case OltpMode::kDipc: {
      // Three dIPC processes; asymmetric policies: only PHP trusts the other
      // components (§7.4), and stubs are folded into proxies assuming the
      // worst case, so both hops run High-like unions.
      os::Process& web = dipc.CreateDipcProcess("web");
      os::Process& php = dipc.CreateDipcProcess("php");
      os::Process& db = dipc.CreateDipcProcess("db");

      core::EntryDesc db_entry;
      db_entry.name = "interact";
      db_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      db_entry.policy = core::IsolationPolicy::High();  // DB enforces isolation
      db_entry.fn = [&ctx, ablation_extra, cap_load_extra,
                     &config](os::Env e, core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        if (config.worst_case_cap_loads) {
          co_await e.kernel->Spend(*e.self, cap_load_extra, TimeCat::kUser);
        }
        co_return co_await DbInteraction(e, ctx, a.regs[0]);
      };
      auto db_handle = dipc.EntryRegister(db, *dipc.DomDefault(db), {db_entry});
      DIPC_CHECK(db_handle.ok());
      // PHP imports the DB entry (PHP trusts DB: Low on the caller side).
      auto db_req = dipc.EntryRequest(php, *db_handle.value(),
                                      {{db_entry.signature, core::IsolationPolicy::Low()}});
      DIPC_CHECK(db_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(php), *db_req.value().proxy_domain).ok());
      core::ProxyRef db_proxy = db_req.value().proxies[0];

      core::EntryDesc php_entry;
      php_entry.name = "request";
      php_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
      php_entry.policy = core::IsolationPolicy::Low();  // PHP trusts callers
      php_entry.fn = [&ctx, db_proxy, ablation_extra](os::Env e,
                                                      core::CallArgs a) -> sim::Task<uint64_t> {
        if (ablation_extra > Duration::Zero()) {
          co_await e.kernel->Spend(*e.self, ablation_extra, TimeCat::kProxy);
        }
        Edge db_edge = [&ctx, db_proxy](os::Env e2, uint64_t v) -> sim::Task<uint64_t> {
          ctx.cross_domain_calls += 2;
          core::CallArgs args;
          args.regs[0] = v;
          co_return co_await db_proxy.Call(e2, args);
        };
        co_return co_await PhpRequest(e, ctx, db_edge, a.regs[0]);
      };
      auto php_handle = dipc.EntryRegister(php, *dipc.DomDefault(php), {php_entry});
      DIPC_CHECK(php_handle.ok());
      // Web is isolated from the interpreter: High on the caller side.
      auto php_req = dipc.EntryRequest(web, *php_handle.value(),
                                       {{php_entry.signature, core::IsolationPolicy::High()}});
      DIPC_CHECK(php_req.ok());
      DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(web), *php_req.value().proxy_domain).ok());
      core::ProxyRef php_proxy = php_req.value().proxies[0];

      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(web, "worker", [&ctx, php_proxy](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, php_proxy](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            ctx.cross_domain_calls += 2;
            core::CallArgs args;
            args.regs[0] = v;
            co_return co_await php_proxy.Call(e, args);
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }

    case OltpMode::kChan: {
      // Zero-copy channels with the fan-out topology: the web tier shards
      // requests across `chan_workers` PHP worker *domains* through ONE
      // fan-out channel (per-receiver read grants, credit-based
      // backpressure), each PHP worker drives its own DB peer thread over a
      // duplex channel, and completions ride per-worker channels back to
      // web-side dispatchers that match them to the blocked web worker by
      // operation id. Versus kLinuxIpc this removes both the copies+glue
      // AND most of the false concurrency: the worker tiers run
      // chan_workers service threads total instead of one per web worker.
      const int W = std::max(1, config.chan_workers);
      os::Process& web = dipc.CreateDipcProcess("apache");
      os::Process& db = dipc.CreateDipcProcess("mariadb");
      // Shared (not stack-local) so the supervisor and the fault-plan kill
      // handler can keep resolving worker slots after this block exits.
      auto workers = std::make_shared<std::vector<os::Process*>>();
      for (int r = 0; r < W; ++r) {
        workers->push_back(&dipc.CreateDipcProcess("php-worker"));
      }
      ctx.worker_progress.assign(static_cast<size_t>(W), 0);
      codoms::AplTable& apl = codoms.apl_table();
      // Shared domain-tag trios per tier direction (identical trust
      // relationship across workers), so the per-CPU APL cache stays warm.
      struct Trio {
        hw::DomainTag ctrl, data, rt;
      };
      auto make_trio = [&apl] {
        return Trio{apl.AllocateTag(), apl.AllocateTag(), apl.AllocateTag()};
      };
      const Trio php_web_t = make_trio(), php_db_t = make_trio();

      // Web -> PHP tier: one fan-out channel, sharded round-robin. Credits
      // size to the closed-loop population so admission never throttles
      // below the worker tier's own capacity.
      chan::FanOutConfig fan_cfg{
          .slots = std::max<uint32_t>(8, static_cast<uint32_t>(config.threads)),
          .buf_bytes = kPhpReqBytes};
      auto fan_r = chan::FanOutChannel::Create(dipc, web, *workers, fan_cfg);
      DIPC_CHECK(fan_r.ok());
      std::shared_ptr<chan::FanOutChannel> fan = fan_r.value();

      // Wires one PHP worker slot: its completion channel back to the web
      // tier (plus a web-side dispatcher), its duplex to a fresh DB service
      // thread, and the worker loop itself. Shared so the supervisor can
      // re-run it against a respawned process after RebindReceiver — the
      // dead incarnation's channels failed with it, so every piece is
      // created anew.
      auto start_worker = std::make_shared<std::function<void(uint32_t, os::Process&)>>();
      *start_worker = [&ctx, &dipc, &kernel, fan, php_web_t, php_db_t, &web,
                       &db](uint32_t r, os::Process& php) {
        // Completion path: php worker -> web dispatcher.
        auto resp_r = chan::Channel::Create(dipc, php, web,
                                            {.slots = 8,
                                             .buf_bytes = kPhpRespBytes,
                                             .ctrl_tag = php_web_t.ctrl,
                                             .data_tag = php_web_t.data,
                                             .rt_tag = php_web_t.rt});
        DIPC_CHECK(resp_r.ok());
        std::shared_ptr<chan::Channel> resp = resp_r.value();
        // PHP worker <-> its DB peer: a duplex channel (requests forward,
        // replies on the paired reverse ring).
        auto dx = chan::DuplexChannel::Create(dipc, php, db,
                                              {.slots = 4,
                                               .buf_bytes = kDbReqBytes,
                                               .ctrl_tag = php_db_t.ctrl,
                                               .data_tag = php_db_t.data,
                                               .rt_tag = php_db_t.rt},
                                              chan::ChannelConfig{.slots = 4,
                                                                  .buf_bytes = kDbRespBytes});
        DIPC_CHECK(dx.ok());
        std::shared_ptr<chan::DuplexEndpoint> php_db_end = dx.value()->a_end();
        std::shared_ptr<chan::DuplexEndpoint> db_end = dx.value()->b_end();

        kernel.Spawn(db, "db-svc", [&ctx, db_end](os::Env env) -> sim::Task<void> {
          co_await DuplexServiceLoop(env, ctx, db_end, kDbRespBytes,
                                     [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                       co_return co_await DbInteraction(e, ctx, 0);
                                     });
        });
        // PHP worker: drain its shard of the fan-out, interpret, respond.
        kernel.Spawn(
            php, "php-worker",
            [&ctx, fan, resp, php_db_end, r](os::Env env) -> sim::Task<void> {
              os::Kernel& k = *env.kernel;
              Edge db_edge = [&ctx, php_db_end](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
                auto s = co_await DuplexCall(e, *php_db_end, kDbReqBytes, kDbRespBytes);
                (void)s;
                co_return v + 1;
              };
              while (!ctx.stopped) {
                auto msg = co_await fan->Recv(env, r);
                if (!msg.ok()) {
                  co_return;
                }
                uint64_t opid = 0;
                DIPC_CHECK(k.UserRead(*env.self, msg.value().va,
                                      std::as_writable_bytes(std::span(&opid, 1)))
                               .ok());
                (void)co_await k.TouchUser(env, msg.value().va, msg.value().len,
                                           hw::AccessType::kRead);
                (void)co_await PhpRequest(env, ctx, db_edge, 0);
                if (!(co_await fan->Release(env, r, msg.value())).ok()) {
                  co_return;
                }
                auto buf = co_await resp->AcquireBuf(env);
                if (!buf.ok()) {
                  co_return;
                }
                DIPC_CHECK(k.UserWrite(*env.self, buf.value().va,
                                       std::as_bytes(std::span(&opid, 1)))
                               .ok());
                (void)co_await k.TouchUser(env, buf.value().va, kPhpRespBytes,
                                           hw::AccessType::kWrite);
                if (!(co_await resp->Send(env, buf.value(), kPhpRespBytes)).ok()) {
                  co_return;
                }
                ++ctx.worker_progress[r];  // the supervisor's liveness signal
              }
            });
        // Web-side completion dispatcher for this worker's responses.
        kernel.Spawn(web, "compl-disp", [&ctx, resp](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          while (true) {
            auto msg = co_await resp->Recv(env);
            if (!msg.ok()) {
              co_return;
            }
            uint64_t opid = 0;
            DIPC_CHECK(k.UserRead(*env.self, msg.value().va,
                                  std::as_writable_bytes(std::span(&opid, 1)))
                           .ok());
            (void)co_await k.TouchUser(env, msg.value().va, msg.value().len,
                                       hw::AccessType::kRead);
            if (!(co_await resp->Release(env, msg.value())).ok()) {
              co_return;
            }
            auto it = ctx.completions.find(opid);
            if (it != ctx.completions.end()) {
              co_await it->second->Post(env);
            } else {
              // The client already retried and its retry won the race: this
              // late completion of the earlier attempt is dropped, keeping
              // completion delivery exactly-once per operation.
              ++ctx.duplicate_completions;
            }
          }
        });
      };
      for (int r = 0; r < W; ++r) {
        (*start_worker)(static_cast<uint32_t>(r), *(*workers)[r]);
      }

      // Fault-plan kill rules resolve victims by process name against this
      // run's topology (first *alive* php-worker match, so repeated kill
      // rules murder successive incarnations, not the same corpse).
      fault::Injector::Global().SetKillHandler(
          [&dipc, workers, &web, &db](const std::string& victim) {
            if (victim == web.name()) {
              dipc.KillProcess(web);
              return;
            }
            if (victim == db.name()) {
              dipc.KillProcess(db);
              return;
            }
            for (os::Process* p : *workers) {
              if (p->alive() && p->name() == victim) {
                dipc.KillProcess(*p);
                return;
              }
            }
          });

      if (config.supervise) {
        // Supervisor: heartbeat scan over the worker slots. A slot whose
        // process died (fault kill or our own verdict) is respawned into a
        // fresh process via the fan-out's epoch-rebind machinery; a slot
        // holding undelivered work with no progress across two consecutive
        // heartbeats is convicted as wedged and killed (the next scan
        // respawns it). Clients ride out the gap on deadlines + retry.
        kernel.Spawn(web, "supervisor",
                     [&ctx, &dipc, &config, fan, workers,
                      start_worker](os::Env env) -> sim::Task<void> {
                       os::Kernel& k = *env.kernel;
                       const uint32_t n = fan->receiver_count();
                       std::vector<uint64_t> last_progress(n, 0);
                       std::vector<int> stagnant(n, 0);
                       while (!ctx.stopped) {
                         co_await k.Sleep(env, config.heartbeat);
                         if (ctx.stopped || fan->broken() != base::ErrorCode::kOk) {
                           co_return;
                         }
                         for (uint32_t r = 0; r < n; ++r) {
                           if (!fan->receiver_alive(r)) {
                             os::Process& fresh = dipc.CreateDipcProcess("php-worker");
                             if (!fan->RebindReceiver(r, fresh).ok()) {
                               continue;
                             }
                             (*workers)[r] = &fresh;
                             (*start_worker)(r, fresh);
                             ++ctx.workers_respawned;
                             last_progress[r] = ctx.worker_progress[r];
                             stagnant[r] = 0;
                             continue;
                           }
                           const bool outstanding = fan->credits(r) < fan->credit_line();
                           if (outstanding && ctx.worker_progress[r] == last_progress[r]) {
                             if (++stagnant[r] >= 2) {
                               // Deliveries parked at a worker completing
                               // nothing: wedged (e.g. a lost wake). Kill it;
                               // the sweep recycles its slots and grants.
                               dipc.KillProcess(*(*workers)[r]);
                               stagnant[r] = 0;
                             }
                           } else {
                             stagnant[r] = 0;
                           }
                           last_progress[r] = ctx.worker_progress[r];
                         }
                       }
                     });
      }
      // Closed-loop web workers: produce into the fan-out, block on the
      // per-op completion. With supervision on, every blocking step carries
      // the request deadline and a kTimedOut/kCalleeFailed/kFault attempt is
      // retried under the SAME opid with capped exponential backoff — the
      // one completions-map entry makes delivery exactly-once no matter how
      // many attempts race.
      for (int i = 0; i < config.threads; ++i) {
        kernel.Spawn(web, "worker", [&ctx, fan, &config](os::Env env) -> sim::Task<void> {
          Edge php_edge = [&ctx, fan, &config](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            os::Kernel& k = *e.kernel;
            const uint64_t opid = ++ctx.next_opid;
            auto sem = std::make_shared<os::Semaphore>(0);
            ctx.completions[opid] = sem;
            Duration backoff = Duration::Micros(20);
            const Duration backoff_cap = Duration::Micros(640);
            bool done = false;
            for (int attempt = 0; !done && !ctx.stopped; ++attempt) {
              if (attempt > 0) {
                if (attempt > config.max_retries) {
                  ++ctx.requests_failed;
                  break;
                }
                ++ctx.requests_retried;
                co_await k.Sleep(e, backoff);
                backoff = backoff * 2;
                if (backoff > backoff_cap) {
                  backoff = backoff_cap;
                }
              }
              const os::Deadline dl =
                  config.supervise ? os::Deadline::After(k.now(), config.request_deadline)
                                   : os::Deadline::Never();
              auto buf = co_await fan->AcquireBuf(e, dl);
              if (!buf.ok()) {
                if (fan->broken() != base::ErrorCode::kOk ||
                    buf.code() == base::ErrorCode::kBrokenChannel) {
                  break;  // the channel itself is gone; retrying is hopeless
                }
                continue;  // kTimedOut / kCalleeFailed / kFault: back off
              }
              DIPC_CHECK(
                  k.UserWrite(*e.self, buf.value().va, std::as_bytes(std::span(&opid, 1)))
                      .ok());
              (void)co_await k.TouchUser(e, buf.value().va, kPhpReqBytes,
                                         hw::AccessType::kWrite);
              // Shard round-robin; a shard that died under the send is
              // retried on the next live worker (the buffer stays owned
              // until a send succeeds). Give the buffer back when no live
              // worker remains or the attempt's deadline fired.
              bool sent = false;
              while (fan->broken() == base::ErrorCode::kOk) {
                uint32_t shard = fan->NextShard();
                if (shard >= fan->receiver_count()) {
                  break;
                }
                auto s = co_await fan->SendTo(e, buf.value(), kPhpReqBytes, shard, dl);
                if (s.ok()) {
                  sent = true;
                  break;
                }
                if (s.code() != base::ErrorCode::kCalleeFailed) {
                  break;  // timeout, close or a caller bug — resharding won't help
                }
              }
              if (!sent) {
                (void)co_await fan->AbandonBuf(e, buf.value());
                if (fan->broken() != base::ErrorCode::kOk) {
                  break;
                }
                continue;
              }
              auto w = co_await sem->WaitUntil(e, dl);
              if (w.ok()) {
                done = true;
              }
              // kTimedOut: the worker wedged or died mid-request. Back off
              // and resend the same opid — the supervisor restores capacity
              // and the dispatcher drops any late duplicate completion.
            }
            if (sem->count() > 0) {
              // A retry raced with a late completion of an earlier attempt
              // and both landed: the extra tokens are duplicates.
              ctx.duplicate_completions += static_cast<uint64_t>(sem->count());
            }
            ctx.completions.erase(opid);
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }

    case OltpMode::kLinuxIpc: {
      // Three isolated processes; per-worker persistent connections
      // (FastCGI-style) with dedicated service threads in PHP and the DB.
      os::Process& web = kernel.CreateProcess("apache");
      os::Process& php = kernel.CreateProcess("php-fcgi");
      os::Process& db = kernel.CreateProcess("mariadb");
      for (int i = 0; i < config.threads; ++i) {
        auto [web_end, php_end] = os::UnixStreamCore::CreatePair(kernel);
        auto [php_db_end, db_end] = os::UnixStreamCore::CreatePair(kernel);
        // DB service thread: one interaction per request message.
        kernel.Spawn(db, "db-svc", [&ctx, sock = db_end](os::Env env) -> sim::Task<void> {
          co_await ServiceLoop(env, ctx, sock, kDbReqBytes, kDbRespBytes,
                               [&ctx](os::Env e) -> sim::Task<uint64_t> {
                                 co_return co_await DbInteraction(e, ctx, 0);
                               });
        });
        // PHP service thread: interprets the script, calling the DB over its
        // own connection for every interaction.
        kernel.Spawn(php, "php-svc",
                     [&ctx, sock = php_end, dbsock = php_db_end](os::Env env) -> sim::Task<void> {
                       os::Kernel& k = *env.kernel;
                       auto dbbuf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                                   hw::PageFlags{.writable = true});
                       DIPC_CHECK(dbbuf.ok());
                       Edge db_edge = [&ctx, dbsock, dbbuf](os::Env e,
                                                            uint64_t v) -> sim::Task<uint64_t> {
                         auto s = co_await SockCall(e, *dbsock, dbbuf.value(), kDbReqBytes,
                                                    kDbRespBytes);
                         (void)s;
                         co_return v + 1;
                       };
                       co_await ServiceLoop(env, ctx, sock, kPhpReqBytes, kPhpRespBytes,
                                            [&ctx, &db_edge](os::Env e) -> sim::Task<uint64_t> {
                                              co_return co_await PhpRequest(e, ctx, db_edge, 0);
                                            });
                     });
        // Web worker with its persistent FastCGI connection.
        kernel.Spawn(web, "worker", [&ctx, sock = web_end](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          auto buf = k.MapAnonymous(env.self->process(), hw::kPageSize,
                                    hw::PageFlags{.writable = true});
          DIPC_CHECK(buf.ok());
          Edge php_edge = [&ctx, sock, buf](os::Env e, uint64_t v) -> sim::Task<uint64_t> {
            auto s = co_await SockCall(e, *sock, buf.value(), kPhpReqBytes, kPhpRespBytes);
            (void)s;
            co_return v;
          };
          co_await WebWorker(env, ctx, php_edge);
        });
      }
      break;
    }
  }

  // Arm the fault plan for the whole run (warmup included — the supervisor
  // must already be healing before the measurement window opens).
  bool armed = false;
  if (!config.fault_plan.empty()) {
    std::string perr;
    auto plan = fault::Plan::Parse(config.fault_plan, &perr);
    DIPC_CHECK(plan.ok());
    fault::Injector::Global().Arm(*plan, &machine.events());
    armed = true;
  }

  kernel.RunFor(config.warmup);
  kernel.FlushIdleAccounting();
  kernel.accounting().Reset();
  ctx.ResetCounters();
  kernel.RunFor(config.measure);
  kernel.FlushIdleAccounting();
  ctx.stopped = true;

  OltpResult result;
  result.operations = ctx.ops;
  result.wall_seconds = config.measure.seconds();
  result.ops_per_min = static_cast<double>(ctx.ops) * 60.0 / config.measure.seconds();
  result.avg_latency_ms = ctx.ops > 0 ? ctx.latency_sum_ms / static_cast<double>(ctx.ops) : 0;
  result.breakdown = kernel.accounting().Summed();
  result.cross_domain_calls = ctx.cross_domain_calls;
  result.requests_retried = ctx.requests_retried;
  result.requests_failed = ctx.requests_failed;
  result.workers_respawned = ctx.workers_respawned;
  result.duplicate_completions = ctx.duplicate_completions;
  if (armed) {
    result.faults_injected = fault::Injector::Global().fire_count();
  }
  // The kill handler (and an armed plan's clock) capture this stack frame;
  // always clear them before it unwinds.
  fault::Injector::Global().Disarm();
  return result;
}

}  // namespace dipc::apps
