#include "fault/fault.h"

#include <charconv>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace dipc::fault {

const char* ActionName(Action a) {
  switch (a) {
    case Action::kNone:
      return "none";
    case Action::kFail:
      return "fail";
    case Action::kDelay:
      return "delay";
    case Action::kDropWake:
      return "drop_wake";
    case Action::kKill:
      return "kill";
  }
  return "unknown";
}

namespace {

base::ErrorCode ParseError(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "fault plan line " + std::to_string(line) + ": " + what;
  }
  return base::ErrorCode::kInvalidArgument;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool ParseProb(std::string_view s, double* out) {
  // std::from_chars<double> is spotty across stdlibs; strtod on a bounded
  // copy is deterministic enough for a config parser.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && *out >= 0.0 && *out <= 1.0;
}

bool ParseAction(std::string_view s, Action* out) {
  if (s == "fail") {
    *out = Action::kFail;
  } else if (s == "delay") {
    *out = Action::kDelay;
  } else if (s == "drop_wake" || s == "drop") {
    *out = Action::kDropWake;
  } else if (s == "kill") {
    *out = Action::kKill;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      toks.push_back(line.substr(start, i - start));
    }
  }
  return toks;
}

}  // namespace

base::Result<Plan> Plan::Parse(std::string_view text, std::string* error) {
  Plan plan;
  int lineno = 0;
  while (!text.empty()) {
    ++lineno;
    size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view() : text.substr(nl + 1);
    if (size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string_view> toks = Tokenize(line);
    if (toks.empty()) {
      continue;
    }
    if (toks[0] == "seed") {
      if (toks.size() != 2 || !ParseU64(toks[1], &plan.seed)) {
        return ParseError(error, lineno, "expected 'seed <n>'");
      }
      continue;
    }
    if (toks[0] != "rule") {
      return ParseError(error, lineno, "unknown directive '" + std::string(toks[0]) + "'");
    }
    if (toks.size() < 3) {
      return ParseError(error, lineno, "expected 'rule <point> <action> [k=v...]'");
    }
    Rule rule;
    rule.point = std::string(toks[1]);
    if (!IsKnownPoint(rule.point)) {
      return ParseError(error, lineno,
                        "unknown probe point '" + rule.point +
                            "' (not in src/fault/probes.def; a typo'd point "
                            "would arm a rule no probe ever consults)");
    }
    if (!ParseAction(toks[2], &rule.action)) {
      return ParseError(error, lineno, "unknown action '" + std::string(toks[2]) + "'");
    }
    for (size_t t = 3; t < toks.size(); ++t) {
      std::string_view kv = toks[t];
      size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        return ParseError(error, lineno, "expected key=value, got '" + std::string(kv) + "'");
      }
      std::string_view key = kv.substr(0, eq);
      std::string_view val = kv.substr(eq + 1);
      bool ok = true;
      if (key == "p") {
        ok = ParseProb(val, &rule.probability);
      } else if (key == "at") {
        ok = ParseU64(val, &rule.at);
      } else if (key == "every") {
        ok = ParseU64(val, &rule.every) && rule.every > 0;
      } else if (key == "max") {
        ok = ParseU64(val, &rule.max_fires);
      } else if (key == "delay_ns") {
        uint64_t ns = 0;
        ok = ParseU64(val, &ns);
        rule.delay = sim::Duration::Nanos(static_cast<double>(ns));
      } else if (key == "victim") {
        rule.victim = std::string(val);
      } else {
        return ParseError(error, lineno, "unknown key '" + std::string(key) + "'");
      }
      if (!ok) {
        return ParseError(error, lineno, "bad value for '" + std::string(key) + "'");
      }
    }
    if (rule.action == Action::kDelay && rule.delay <= sim::Duration::Zero()) {
      return ParseError(error, lineno, "delay rule needs delay_ns=<n>");
    }
    if (rule.action == Action::kKill && rule.victim.empty()) {
      return ParseError(error, lineno, "kill rule needs victim=<name>");
    }
    if (rule.probability == 0.0 && rule.at == 0 && rule.every == 0) {
      return ParseError(error, lineno, "rule needs a trigger (p=, at= or every=)");
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

#ifndef DIPC_FAULT_OFF

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

void Injector::Arm(Plan plan, const sim::EventQueue* clock) {
  plan_ = std::move(plan);
  clock_ = clock;
  rng_ = sim::Rng(plan_.seed);
  rule_state_.assign(plan_.rules.size(), RuleState{});
  point_probes_.clear();
  probe_count_ = 0;
  log_.clear();
  armed_ = true;
}

void Injector::Disarm() {
  armed_ = false;
  kill_handler_ = nullptr;
}

void Injector::SetKillHandler(std::function<void(const std::string&)> handler) {
  kill_handler_ = std::move(handler);
}

Decision Injector::Probe(std::string_view point, uint32_t cpu) {
  if (!armed_) {
    return {};
  }
  ++probe_count_;
  uint64_t* seen = nullptr;
  for (auto& [name, count] : point_probes_) {
    if (name == point) {
      seen = &count;
      break;
    }
  }
  if (seen == nullptr) {
    point_probes_.emplace_back(std::string(point), 0);
    seen = &point_probes_.back().second;
  }
  ++*seen;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const Rule& rule = plan_.rules[i];
    if (rule.point != point) {
      continue;
    }
    if (rule.max_fires != 0 && rule_state_[i].fires >= rule.max_fires) {
      continue;
    }
    bool fire = (rule.at != 0 && *seen == rule.at) ||
                (rule.every != 0 && *seen % rule.every == 0);
    if (!fire && rule.probability > 0.0) {
      fire = rng_.Chance(rule.probability);
    }
    if (!fire) {
      continue;
    }
    ++rule_state_[i].fires;
    return Fire(i, point, cpu);
  }
  return {};
}

Decision Injector::Fire(size_t rule_index, std::string_view point, uint32_t cpu) {
  const Rule& rule = plan_.rules[rule_index];
  const sim::Time now = clock_ != nullptr ? clock_->now() : sim::Time::Zero();
  FiredRecord rec;
  rec.seq = log_.size();
  rec.time_ps = static_cast<uint64_t>(now.picos());
  rec.point_hash = HashPoint(point);
  rec.action = static_cast<uint32_t>(rule.action);
  rec.rule = static_cast<uint32_t>(rule_index);
  rec.payload =
      rule.action == Action::kDelay ? static_cast<uint64_t>(rule.delay.picos()) : 0;
  log_.push_back(rec);

  obs::Registry::Default().GetCounter("fault/injected")->Add();
  obs::Registry::Default().GetCounter("fault/point/" + std::string(point))->Add();
  obs::Trace().Record(cpu, obs::EventType::kFaultInjected,
                      static_cast<uint32_t>(rec.point_hash), rec.action, now);

  if (rule.action == Action::kKill) {
    if (kill_handler_) {
      kill_handler_(rule.victim);
    }
    // The kill already happened; the probed operation itself proceeds and
    // discovers the wreckage through the usual broken_/death machinery.
    return {};
  }
  return Decision{rule.action,
                  rule.action == Action::kDelay ? rule.delay : sim::Duration::Zero()};
}

#endif  // DIPC_FAULT_OFF

}  // namespace dipc::fault
