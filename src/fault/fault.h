// Deterministic, seeded fault injection for the simulated runtime.
//
// A process-wide `Injector` exposes named probe points threaded through the
// hot layers (capability mint/rebind/store, MPMC slot claim, futex
// park/wake, fan-out credit grant, channel/fan-out send, proxy invoke,
// death sweeps). A `Plan` — parsed from a small text format or built in
// code — arms the injector with probabilistic rates and scripted triggers
// ("kill domain D at the Nth send"). Everything is driven by sim time plus
// one SplitMix64 stream, so a given (seed, plan) replays the exact same
// fault sequence; the injector keeps a padding-free decision log that tests
// memcmp across runs to prove it.
//
// Disarmed, a probe is one branch on a plain bool. Compiled with
// -DDIPC_FAULT_OFF the whole class collapses to a constexpr-false stub and
// every probe block is dead-code-eliminated — call sites carry no #ifdefs.
//
// Plan text format (one directive per line, '#' comments):
//   seed <n>
//   rule <point> <action> [p=<prob>] [at=<n>] [every=<n>] [max=<n>]
//                         [delay_ns=<ns>] [victim=<process-name>]
// Actions: fail | delay | drop_wake | kill. Triggers compose as OR: a rule
// fires at its `at`-th probe of the point, every `every`-th probe, or with
// probability `p` per probe; `max` caps total fires. `kill` invokes the
// registered kill handler with `victim` (a process name) and otherwise lets
// the probed operation proceed — the kill itself is the perturbation.
#ifndef DIPC_FAULT_FAULT_H_
#define DIPC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dipc::sim {
class EventQueue;
}  // namespace dipc::sim

namespace dipc::fault {

// Canonical probe-point names, expanded from the X-macro manifest
// src/fault/probes.def — the same file tools/dipclint reads, so a probe
// site, a plan and the linter can never disagree about what exists.
namespace points {
#define DIPC_FAULT_PROBE(ident, name) inline constexpr std::string_view ident = name;
#include "fault/probes.def"
#undef DIPC_FAULT_PROBE
}  // namespace points

// Every manifest point, for validation and iteration.
inline constexpr std::string_view kAllPoints[] = {
#define DIPC_FAULT_PROBE(ident, name) points::ident,
#include "fault/probes.def"
#undef DIPC_FAULT_PROBE
};

// True iff `point` is a manifest probe point. Plan::Parse rejects rules
// targeting unknown points: a typo'd point would arm a rule that no probe
// site ever consults, i.e. a fault plan that silently tests nothing.
constexpr bool IsKnownPoint(std::string_view point) {
  for (std::string_view p : kAllPoints) {
    if (p == point) {
      return true;
    }
  }
  return false;
}

enum class Action : uint32_t {
  kNone = 0,
  kFail = 1,      // the probed operation returns ErrorCode::kFault
  kDelay = 2,     // the probed operation spends `delay` extra sim time
  kDropWake = 3,  // the probed wake is silently dropped (recovered by deadlines)
  kKill = 4,      // the registered kill handler murders `victim`
};

const char* ActionName(Action a);

struct Rule {
  std::string point;
  Action action = Action::kNone;
  double probability = 0.0;               // per-probe chance; 0 = scripted only
  uint64_t at = 0;                        // fire at the Nth probe (1-based); 0 = off
  uint64_t every = 0;                     // fire every Nth probe; 0 = off
  uint64_t max_fires = 0;                 // total fire cap; 0 = unlimited
  sim::Duration delay = sim::Duration::Zero();  // payload for kDelay
  std::string victim;                     // payload for kKill (process name)
};

struct Plan {
  uint64_t seed = 1;
  std::vector<Rule> rules;

  // Parses the text format documented above. Returns kInvalidArgument on
  // malformed input; `error` (optional) receives a line-numbered message.
  static base::Result<Plan> Parse(std::string_view text, std::string* error = nullptr);
};

// What a probe told the call site to do.
struct Decision {
  Action action = Action::kNone;
  sim::Duration delay = sim::Duration::Zero();

  bool fail() const { return action == Action::kFail; }
  bool drop_wake() const { return action == Action::kDropWake; }
};

// One fired fault, in a fixed 40-byte padding-free layout so the whole log
// is memcmp-comparable across runs (the replay-determinism contract).
struct FiredRecord {
  uint64_t seq = 0;         // 0-based fire ordinal
  uint64_t time_ps = 0;     // sim time of the probe
  uint64_t point_hash = 0;  // FNV-1a of the point name
  uint32_t action = 0;      // Action
  uint32_t rule = 0;        // index into Plan::rules
  uint64_t payload = 0;     // delay ps for kDelay, else 0
};
static_assert(sizeof(FiredRecord) == 40, "decision log must be padding-free");

// FNV-1a, the hash FiredRecord::point_hash uses.
constexpr uint64_t HashPoint(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  }
  return h;
}

#ifndef DIPC_FAULT_OFF

class Injector {
 public:
  // The process-wide injector every probe site consults.
  static Injector& Global();

  // Arms with a plan; `clock` (may be null) timestamps the decision log.
  // Re-arming resets all counters, the RNG stream and the log.
  void Arm(Plan plan, const sim::EventQueue* clock);
  void Disarm();
  bool armed() const { return armed_; }

  // Handler invoked synchronously inside Probe for kKill rules; receives
  // Rule::victim. The harness resolves names to processes and calls
  // Dipc::KillProcess (reentrancy-safe; see dipc.cc).
  void SetKillHandler(std::function<void(const std::string&)> handler);

  // Consults the plan at a named point. Disarmed: one branch. Armed: bumps
  // the per-point probe count, evaluates rules in plan order and returns
  // the first firing rule's decision (kKill runs the handler and returns
  // kNone — the kill is the side effect). `cpu` tags the trace event.
  Decision Probe(std::string_view point, uint32_t cpu = 0);

  uint64_t probe_count() const { return probe_count_; }
  uint64_t fire_count() const { return log_.size(); }
  const std::vector<FiredRecord>& log() const { return log_; }

 private:
  struct RuleState {
    uint64_t fires = 0;
  };

  Decision Fire(size_t rule_index, std::string_view point, uint32_t cpu);

  bool armed_ = false;
  Plan plan_;
  const sim::EventQueue* clock_ = nullptr;
  sim::Rng rng_{1};
  std::function<void(const std::string&)> kill_handler_;
  std::vector<RuleState> rule_state_;
  // point name -> probes seen. Small (a handful of points), linear scan.
  std::vector<std::pair<std::string, uint64_t>> point_probes_;
  uint64_t probe_count_ = 0;
  std::vector<FiredRecord> log_;
};

#else  // DIPC_FAULT_OFF: constexpr-false stub; probe blocks compile away.

class Injector {
 public:
  static Injector& Global() {
    static Injector stub;
    return stub;
  }
  void Arm(Plan, const sim::EventQueue*) {}
  void Disarm() {}
  static constexpr bool armed() { return false; }
  void SetKillHandler(std::function<void(const std::string&)>) {}
  Decision Probe(std::string_view, uint32_t = 0) { return {}; }
  uint64_t probe_count() const { return 0; }
  uint64_t fire_count() const { return 0; }
  const std::vector<FiredRecord>& log() const {
    static const std::vector<FiredRecord> empty;
    return empty;
  }
};

#endif  // DIPC_FAULT_OFF

// Shorthand for the global injector.
inline Injector& Global() { return Injector::Global(); }

}  // namespace dipc::fault

// The one sanctioned probe-site spelling: consults the global injector at a
// manifest point (a bare `points::` ident from probes.def), paying a single
// branch when disarmed and vanishing entirely under -DDIPC_FAULT_OFF
// (armed() is constexpr false, so the whole ternary folds to `Decision{}`).
// Optional trailing argument: the probing CPU, for trace attribution.
// tools/dipclint's PROBE-MANIFEST rule checks every use of this macro
// against probes.def; raw Injector::Probe calls in src/ are lint findings.
#define DIPC_FAULT_POINT(point, ...)                                        \
  (::dipc::fault::Injector::Global().armed()                                \
       ? ::dipc::fault::Injector::Global().Probe(                           \
             ::dipc::fault::points::point __VA_OPT__(, ) __VA_ARGS__)       \
       : ::dipc::fault::Decision{})

#endif  // DIPC_FAULT_FAULT_H_
