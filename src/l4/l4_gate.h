// L4-style synchronous IPC (Fiasco.OC flavor, §2.2's "L4" baseline).
//
// Rendezvous semantics: Call blocks until a server is receiving, transfers
// the message in (virtual) registers — no kernel buffering, no memory
// copies — and switches directly to the callee with time-slice donation.
// This is the classic minimal-kernel-path design point: much faster than
// POSIX IPC, still ~474x slower than a function call (§2.2).
#ifndef DIPC_L4_L4_GATE_H_
#define DIPC_L4_L4_GATE_H_

#include <array>
#include <cstdint>
#include <deque>

#include "base/result.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::l4 {

// Message registers: 8x64-bit payload words, like L4's MRs (data "inlined in
// registers", §2.2).
struct Message {
  std::array<uint64_t, 8> mr{};
};

class L4Gate : public os::KernelObject {
 public:
  explicit L4Gate(os::Kernel& kernel) : kernel_(kernel) {}

  std::string_view type_name() const override { return "l4-gate"; }

  // Kernel IPC path per crossing: capability lookup, rights check, message
  // register transfer, scheduling decision. Calibrated so a same-CPU
  // round trip lands at ~948 ns = 474 x 2 ns (§2.2).
  static constexpr sim::Duration kIpcPath = sim::Duration::Nanos(274.0);

  // Client: synchronous call (send + closed wait for the reply).
  sim::Task<base::Result<Message>> Call(os::Env env, const Message& msg);

  // Server: blocks for the first request (open wait).
  sim::Task<Message> Recv(os::Env env);

  // Server: atomically replies to the last received request and waits for
  // the next one (L4's reply_and_wait; donates the time slice back to the
  // caller when it sits on the same CPU).
  sim::Task<Message> ReplyWait(os::Env env, const Message& reply);

 private:
  struct PendingCall {
    os::Thread* caller;
    Message request;
    Message reply;
    bool replied = false;
  };

  // Pops the next request (queue must be non-empty) into in_service_.
  Message PopRequest();

  os::Kernel& kernel_;
  std::deque<PendingCall*> queue_;  // callers waiting for a server
  PendingCall* in_service_ = nullptr;
  os::WaitQueue server_wait_;
};

}  // namespace dipc::l4

#endif  // DIPC_L4_L4_GATE_H_
