#include "l4/l4_gate.h"

namespace dipc::l4 {

namespace {
// User-side stub around the IPC syscall (loading MRs, checking tags).
constexpr sim::Duration kUserStub = sim::Duration::Nanos(4.0);
}  // namespace

Message L4Gate::PopRequest() {
  DIPC_CHECK(!queue_.empty());
  PendingCall* pc = queue_.front();
  queue_.pop_front();
  in_service_ = pc;
  return pc->request;
}

sim::Task<base::Result<Message>> L4Gate::Call(os::Env env, const Message& msg) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  const hw::CostModel& cm = k.costs();
  co_await k.SpendMany(self, os::Kernel::CatCost{os::TimeCat::kUser, kUserStub},
                       os::Kernel::CatCost{os::TimeCat::kSyscallCrossing, cm.syscall_trap},
                       os::Kernel::CatCost{os::TimeCat::kKernel, kIpcPath});
  PendingCall pc{&self, msg, Message{}, false};
  queue_.push_back(&pc);
  os::Thread* server = server_wait_.WakeOneThread();
  if (server != nullptr && server->last_cpu() == self.last_cpu()) {
    // Rendezvous hit on this CPU: donate the time slice to the server — a
    // direct switch, no scheduler pass (the L4 fast path).
    co_await k.HandoffTo(env, *server, cm.register_save + cm.register_restore);
  } else {
    if (server != nullptr) {
      sim::Duration ipi = k.MakeRunnable(*server, self.last_cpu());
      co_await k.Spend(self, ipi, os::TimeCat::kKernel);
    }
    co_await k.Block(env);
  }
  // Resumed by ReplyWait.
  DIPC_CHECK(pc.replied);
  co_await k.SpendMany(self, os::Kernel::CatCost{os::TimeCat::kSyscallCrossing, cm.sysret},
                       os::Kernel::CatCost{os::TimeCat::kUser, kUserStub});
  co_return pc.reply;
}

sim::Task<Message> L4Gate::Recv(os::Env env) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  const hw::CostModel& cm = k.costs();
  co_await k.SpendMany(self, os::Kernel::CatCost{os::TimeCat::kUser, kUserStub},
                       os::Kernel::CatCost{os::TimeCat::kSyscallCrossing, cm.syscall_trap},
                       os::Kernel::CatCost{os::TimeCat::kKernel, kIpcPath});
  while (queue_.empty()) {
    co_await server_wait_.Wait(env);
  }
  Message req = PopRequest();
  co_await k.Spend(self, cm.sysret, os::TimeCat::kSyscallCrossing);
  co_return req;
}

sim::Task<Message> L4Gate::ReplyWait(os::Env env, const Message& reply) {
  os::Kernel& k = *env.kernel;
  os::Thread& self = *env.self;
  const hw::CostModel& cm = k.costs();
  DIPC_CHECK(in_service_ != nullptr);
  PendingCall* pc = in_service_;
  in_service_ = nullptr;
  co_await k.SpendMany(self, os::Kernel::CatCost{os::TimeCat::kUser, kUserStub},
                       os::Kernel::CatCost{os::TimeCat::kSyscallCrossing, cm.syscall_trap},
                       os::Kernel::CatCost{os::TimeCat::kKernel, kIpcPath});
  pc->reply = reply;
  pc->replied = true;
  os::Thread* caller = pc->caller;
  if (queue_.empty()) {
    // Nothing else pending: park for the next request, waking the caller on
    // the way out (with a donated direct switch when it shares our CPU).
    if (caller->last_cpu() == self.last_cpu()) {
      server_wait_.Enqueue(&self);
      co_await k.HandoffTo(env, *caller, cm.register_save + cm.register_restore);
    } else {
      sim::Duration ipi = k.MakeRunnable(*caller, self.last_cpu());
      server_wait_.Enqueue(&self);
      if (ipi > sim::Duration::Zero()) {
        co_await k.Spend(self, ipi, os::TimeCat::kKernel);
      }
      co_await k.Block(env);
    }
  } else {
    // More callers already queued: make the replied-to caller runnable and
    // keep serving without blocking (their earlier wakeups were consumed
    // while we were busy).
    sim::Duration ipi = k.MakeRunnable(*caller, self.last_cpu());
    if (ipi > sim::Duration::Zero()) {
      co_await k.Spend(self, ipi, os::TimeCat::kKernel);
    }
  }
  while (queue_.empty()) {
    co_await server_wait_.Wait(env);
  }
  Message req = PopRequest();
  co_await k.Spend(self, cm.sysret, os::TimeCat::kSyscallCrossing);
  co_return req;
}

}  // namespace dipc::l4
