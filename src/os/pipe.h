// POSIX pipe: a kernel ring buffer with copy-in/copy-out semantics — the
// "argument immutability by copying" IPC design point of §2.2.
#ifndef DIPC_OS_PIPE_H_
#define DIPC_OS_PIPE_H_

#include <cstdint>
#include <memory>

#include "base/result.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::os {

class Pipe {
 public:
  static constexpr uint64_t kCapacity = 64 * 1024;
  // Kernel pipe path per op: locking, vfs dispatch, buffer management.
  static constexpr sim::Duration kKernelPath = sim::Duration::Nanos(260.0);

  explicit Pipe(Kernel& kernel) : kernel_(kernel), buf_pa_(kernel.AllocKernelBuffer(kCapacity)) {}

  // Blocking write of the full `len` bytes (POSIX semantics for <= PIPE_BUF
  // generalized: we loop until everything is in the ring).
  sim::Task<base::Result<uint64_t>> Write(Env env, hw::VirtAddr va, uint64_t len);

  // Blocking read of up to `len` bytes; returns 0 at EOF (writer closed).
  sim::Task<base::Result<uint64_t>> Read(Env env, hw::VirtAddr va, uint64_t len);

  void CloseWriteEnd();

  uint64_t fill() const { return fill_; }

 private:
  // Copies between user memory and the ring, splitting at the wrap point.
  sim::Task<base::Status> RingIn(Env env, hw::VirtAddr va, uint64_t len);
  sim::Task<base::Status> RingOut(Env env, hw::VirtAddr va, uint64_t len);

  Kernel& kernel_;
  hw::PhysAddr buf_pa_;
  uint64_t rpos_ = 0;
  uint64_t wpos_ = 0;
  uint64_t fill_ = 0;
  bool write_closed_ = false;
  WaitQueue readers_;
  WaitQueue writers_;
};

// fd-table wrappers.
class PipeReadEnd : public KernelObject {
 public:
  explicit PipeReadEnd(std::shared_ptr<Pipe> p) : pipe_(std::move(p)) {}
  std::string_view type_name() const override { return "pipe[read]"; }
  Pipe& pipe() { return *pipe_; }

 private:
  std::shared_ptr<Pipe> pipe_;
};

class PipeWriteEnd : public KernelObject {
 public:
  explicit PipeWriteEnd(std::shared_ptr<Pipe> p) : pipe_(std::move(p)) {}
  std::string_view type_name() const override { return "pipe[write]"; }
  Pipe& pipe() { return *pipe_; }

 private:
  std::shared_ptr<Pipe> pipe_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_PIPE_H_
