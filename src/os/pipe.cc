#include "os/pipe.h"

#include <algorithm>

namespace dipc::os {

sim::Task<base::Status> Pipe::RingIn(Env env, hw::VirtAddr va, uint64_t len) {
  uint64_t off = wpos_ % kCapacity;
  uint64_t first = std::min(len, kCapacity - off);
  auto s = co_await env.kernel->CopyFromUser(env, buf_pa_ + off, va, first);
  if (!s.ok()) {
    co_return s;
  }
  if (first < len) {
    s = co_await env.kernel->CopyFromUser(env, buf_pa_, va + first, len - first);
    if (!s.ok()) {
      co_return s;
    }
  }
  wpos_ += len;
  fill_ += len;
  co_return base::Status::Ok();
}

sim::Task<base::Status> Pipe::RingOut(Env env, hw::VirtAddr va, uint64_t len) {
  uint64_t off = rpos_ % kCapacity;
  uint64_t first = std::min(len, kCapacity - off);
  auto s = co_await env.kernel->CopyToUser(env, va, buf_pa_ + off, first);
  if (!s.ok()) {
    co_return s;
  }
  if (first < len) {
    s = co_await env.kernel->CopyToUser(env, va + first, buf_pa_, len - first);
    if (!s.ok()) {
      co_return s;
    }
  }
  rpos_ += len;
  fill_ -= len;
  co_return base::Status::Ok();
}

sim::Task<base::Result<uint64_t>> Pipe::Write(Env env, hw::VirtAddr va, uint64_t len) {
  Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kKernelPath, TimeCat::kKernel);
  uint64_t done = 0;
  while (done < len) {
    while (fill_ == kCapacity) {
      co_await writers_.Wait(env);
    }
    uint64_t chunk = std::min(len - done, kCapacity - fill_);
    auto s = co_await RingIn(env, va + done, chunk);
    if (!s.ok()) {
      co_await k.SyscallExit(env);
      co_return s.code();
    }
    done += chunk;
    if (Thread* r = readers_.WakeOneThread(); r != nullptr) {
      sim::Duration ipi = k.MakeRunnable(*r, env.self->last_cpu());
      co_await k.Spend(*env.self, ipi + k.costs().Cycles(60), TimeCat::kKernel);
    }
  }
  co_await k.SyscallExit(env);
  co_return done;
}

sim::Task<base::Result<uint64_t>> Pipe::Read(Env env, hw::VirtAddr va, uint64_t len) {
  Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, kKernelPath, TimeCat::kKernel);
  while (fill_ == 0) {
    if (write_closed_) {
      co_await k.SyscallExit(env);
      co_return uint64_t{0};  // EOF
    }
    co_await readers_.Wait(env);
  }
  uint64_t chunk = std::min(len, fill_);
  auto s = co_await RingOut(env, va, chunk);
  if (!s.ok()) {
    co_await k.SyscallExit(env);
    co_return s.code();
  }
  if (Thread* w = writers_.WakeOneThread(); w != nullptr) {
    sim::Duration ipi = k.MakeRunnable(*w, env.self->last_cpu());
    co_await k.Spend(*env.self, ipi + k.costs().Cycles(60), TimeCat::kKernel);
  }
  co_await k.SyscallExit(env);
  co_return chunk;
}

void Pipe::CloseWriteEnd() {
  write_closed_ = true;
  // Readers blocked on an empty pipe must see EOF. There is no Env here;
  // treat the close as a kernel-side wake with no waker CPU.
  while (Thread* r = readers_.WakeOneThread()) {
    // Kernel reference reachable through the ring allocation.
    (void)kernel_.MakeRunnable(*r, std::nullopt);
  }
}

}  // namespace dipc::os
