// UNIX-domain stream sockets, including SCM_RIGHTS-style kernel-object
// passing and a named-socket registry.
//
// This is the substrate under glibc-rpcgen local RPC (§2.2, §7.2), under the
// OLTP baseline's FastCGI/DB connections (§7.4), and under dIPC's default
// entry-point resolution (§6.2.1). dIPC also relies on fd passing to
// delegate domain handles between processes (§5.2.2).
#ifndef DIPC_OS_UNIX_SOCKET_H_
#define DIPC_OS_UNIX_SOCKET_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::os {

class UnixStreamEnd;

// Shared state of a connected socket pair: one ring + waiters per direction.
class UnixStreamCore {
 public:
  static constexpr uint64_t kBufSize = 64 * 1024;
  // af_unix kernel path per op: socket locks, skb management, queue work.
  static constexpr sim::Duration kKernelPath = sim::Duration::Nanos(450.0);

  explicit UnixStreamCore(Kernel& kernel);

  // Creates the two connected endpoints.
  static std::pair<std::shared_ptr<UnixStreamEnd>, std::shared_ptr<UnixStreamEnd>> CreatePair(
      Kernel& kernel);

 private:
  friend class UnixStreamEnd;

  struct Direction {
    hw::PhysAddr buf_pa = 0;
    uint64_t rpos = 0;
    uint64_t wpos = 0;
    uint64_t fill = 0;
    bool closed = false;
    WaitQueue readers;
    WaitQueue writers;
    std::deque<std::shared_ptr<KernelObject>> passed_objects;
  };

  Kernel& kernel_;
  Direction dirs_[2];  // dirs_[i]: data flowing *from* endpoint i
};

class UnixStreamEnd : public KernelObject {
 public:
  UnixStreamEnd(std::shared_ptr<UnixStreamCore> core, int side)
      : core_(std::move(core)), side_(side) {}

  std::string_view type_name() const override { return "unix-stream"; }

  // Blocking send of all `len` bytes. `handles`, if any, are delivered to
  // the peer as ancillary data (SCM_RIGHTS).
  sim::Task<base::Result<uint64_t>> Send(Env env, hw::VirtAddr va, uint64_t len,
                                         std::vector<std::shared_ptr<KernelObject>> handles = {});

  // Blocking receive of up to `len` bytes; drains any pending ancillary
  // handles into `handles_out` when non-null. Returns 0 at EOF.
  sim::Task<base::Result<uint64_t>> Recv(Env env, hw::VirtAddr va, uint64_t len,
                                         std::vector<std::shared_ptr<KernelObject>>* handles_out =
                                             nullptr);

  // Receives exactly `len` bytes (loops; kBrokenChannel on premature EOF).
  sim::Task<base::Status> RecvExact(Env env, hw::VirtAddr va, uint64_t len,
                                    std::vector<std::shared_ptr<KernelObject>>* handles_out =
                                        nullptr);

  void Close();

  uint64_t rx_fill() const { return core_->dirs_[1 - side_].fill; }

 private:
  UnixStreamCore::Direction& tx() { return core_->dirs_[side_]; }
  UnixStreamCore::Direction& rx() { return core_->dirs_[1 - side_]; }

  std::shared_ptr<UnixStreamCore> core_;
  int side_;
};

// A named listening socket (bound via Kernel::BindPath).
class UnixListener : public KernelObject {
 public:
  explicit UnixListener(Kernel& kernel) : kernel_(kernel) {}

  std::string_view type_name() const override { return "unix-listener"; }

  // Client side: connect to `path`; returns the client endpoint.
  static sim::Task<base::Result<std::shared_ptr<UnixStreamEnd>>> Connect(Env env,
                                                                         const std::string& path);

  // Server side: blocks until a connection arrives.
  sim::Task<base::Result<std::shared_ptr<UnixStreamEnd>>> Accept(Env env);

 private:
  Kernel& kernel_;
  std::deque<std::shared_ptr<UnixStreamEnd>> pending_;
  WaitQueue acceptors_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_UNIX_SOCKET_H_
