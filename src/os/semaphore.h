// POSIX-style semaphore built on a futex (§2.2's "Sem." primitive).
//
// Uncontended operations stay in user space (one atomic); contended ones
// take the full syscall + futex path, and wakeups pay IPI costs when the
// waiter sits on another CPU.
#ifndef DIPC_OS_SEMAPHORE_H_
#define DIPC_OS_SEMAPHORE_H_

#include <cstdint>

#include "base/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::os {

class Semaphore : public KernelObject {
 public:
  explicit Semaphore(int64_t initial = 0) : count_(initial), obs_id_(obs::NewObjectId()) {
    // Semaphores are created in bulk, so the metrics are process-wide
    // aggregates; per-object attribution comes from the trace (obj = obs_id).
    obs::Registry& reg = obs::Registry::Default();
    m_futex_waits_ = reg.GetCounter("os/sem/futex_waits");
    m_futex_wakes_ = reg.GetCounter("os/sem/futex_wakes");
    m_park_ns_ = reg.GetHistogram("os/sem/park_ns");
  }

  std::string_view type_name() const override { return "semaphore"; }

  // Calibration (documented in hw/cost_model.h's header comment): glibc
  // sem_wait/sem_post user fast path, and the kernel futex wait/wake work.
  static constexpr sim::Duration kUserFastPath = sim::Duration::Nanos(9.0);
  static constexpr sim::Duration kFutexWaitKernel = sim::Duration::Nanos(140.0);
  static constexpr sim::Duration kFutexWakeKernel = sim::Duration::Nanos(130.0);

  // Timed, failure-aware wait. Returns kOk with a token consumed, kTimedOut
  // when a finite `deadline` expires first (no token consumed), or the
  // Fail() code when the semaphore's owner died. The failed_ re-check after
  // the kernel entry closes the historical hang: a Fail() landing between
  // the user-space predicate check and the park issued its wakes while this
  // thread was still entering the kernel, so parking anyway would sleep on
  // an object nobody will ever post again.
  sim::Task<base::Status> WaitUntil(Env env, Deadline deadline = {}) {
    Kernel& k = *env.kernel;
    co_await k.Spend(*env.self, kUserFastPath, TimeCat::kUser);
    if (failed_) {
      co_return code_;
    }
    if (count_ > 0) {
      --count_;  // uncontended: futex not entered
      co_return base::Status::Ok();
    }
    co_await k.SyscallEnter(env);
    co_await k.Spend(*env.self, kFutexWaitKernel, TimeCat::kKernel);
    base::Status result = base::Status::Ok();
    if (failed_) {
      result = code_;  // owner died while we were entering the kernel
    } else if (count_ > 0) {
      --count_;  // raced with a post while entering the kernel
    } else if (deadline.ExpiredAt(k.now())) {
      result = base::ErrorCode::kTimedOut;  // ETIMEDOUT without parking
    } else {
      m_futex_waits_->Add();
      obs::Gauge* waiters_gauge = obs::Registry::Default().GetGauge("os/sched/futex_waiters");
      waiters_gauge->Add(1);
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexQDepth, obs_id_,
                          static_cast<uint64_t>(waiters_.size() + 1), k.now());
      const sim::Time park_start = k.now();
      // Deadline timer, same shape as chan::FutexBlockUntil: it only acts
      // while the thread is still parked (a same-instant Post wins by FIFO
      // event order and Remove then returns false).
      bool timer_fired = false;
      sim::EventId timer = sim::kInvalidEventId;
      if (!deadline.never()) {
        Thread* self = env.self;
        timer = k.machine().events().ScheduleAt(deadline.at(),
                                                [&k, this, self, &timer_fired] {
                                                  if (waiters_.Remove(self)) {
                                                    timer_fired = true;
                                                    (void)k.MakeRunnable(*self, std::nullopt);
                                                  }
                                                });
      }
      co_await waiters_.Wait(env);
      const sim::Duration parked = k.now() - park_start;
      waiters_gauge->Sub(1);
      obs::ChargeDomainTime(static_cast<uint32_t>(env.self->cap_ctx().current_domain),
                            obs::DomainTimeKind::kFutexWait, parked.picos());
      m_park_ns_->Record(parked.nanos());
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexPark, obs_id_, 0, k.now(),
                          parked);
      if (timer_fired) {
        result = base::ErrorCode::kTimedOut;
      } else {
        if (timer != sim::kInvalidEventId) {
          (void)k.machine().events().Cancel(timer);
        }
        if (failed_) {
          result = code_;  // woken by Fail, not by a Post: no token was handed
        }
        // Otherwise woken by Post: the token was handed to us directly.
      }
    }
    co_await k.SyscallExit(env);
    co_return result;
  }

  // Untimed legacy flavor. After Fail() it returns (with the error dropped)
  // instead of hanging; callers that need the code use WaitUntil.
  // NOLINT-DIPC(DEADLINE-THREAD): deliberate never-deadline convenience
  // wrapper over WaitUntil; deadline-aware callers use WaitUntil directly.
  sim::Task<void> Wait(Env env) { (void)co_await WaitUntil(env, Deadline::Never()); }

  sim::Task<void> Post(Env env) {
    Kernel& k = *env.kernel;
    co_await k.Spend(*env.self, kUserFastPath, TimeCat::kUser);
    Thread* waiter = waiters_.WakeOneThread();
    if (waiter == nullptr) {
      ++count_;  // nobody waiting: user-space only
      co_return;
    }
    co_await k.SyscallEnter(env);
    co_await k.Spend(*env.self, kFutexWakeKernel, TimeCat::kKernel);
    m_futex_wakes_->Add();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexWake, obs_id_, 1, k.now());
    sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
    if (ipi > sim::Duration::Zero()) {
      co_await k.Spend(*env.self, ipi, TimeCat::kKernel);
    }
    co_await k.SyscallExit(env);
  }

  // Owner-death teardown: latches `code`, wakes every parked waiter with it
  // and makes every future Wait fail immediately. Irreversible, like a
  // futex word unmapped with its owner. `kernel` drives the wakeups (Fail
  // runs from death hooks that carry no thread Env).
  void Fail(Kernel& kernel, base::ErrorCode code) {
    failed_ = true;
    code_ = code;
    while (Thread* t = waiters_.WakeOneThread()) {
      (void)kernel.MakeRunnable(*t, std::nullopt);
    }
  }

  int64_t count() const { return count_; }
  size_t waiter_count() const { return waiters_.size(); }
  bool failed() const { return failed_; }

 private:
  int64_t count_;
  bool failed_ = false;
  base::ErrorCode code_ = base::ErrorCode::kCalleeFailed;
  uint32_t obs_id_;
  WaitQueue waiters_;
  obs::Counter* m_futex_waits_;
  obs::Counter* m_futex_wakes_;
  obs::Histogram* m_park_ns_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_SEMAPHORE_H_
