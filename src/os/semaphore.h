// POSIX-style semaphore built on a futex (§2.2's "Sem." primitive).
//
// Uncontended operations stay in user space (one atomic); contended ones
// take the full syscall + futex path, and wakeups pay IPI costs when the
// waiter sits on another CPU.
#ifndef DIPC_OS_SEMAPHORE_H_
#define DIPC_OS_SEMAPHORE_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/kernel.h"
#include "sim/task.h"

namespace dipc::os {

class Semaphore : public KernelObject {
 public:
  explicit Semaphore(int64_t initial = 0) : count_(initial), obs_id_(obs::NewObjectId()) {
    // Semaphores are created in bulk, so the metrics are process-wide
    // aggregates; per-object attribution comes from the trace (obj = obs_id).
    obs::Registry& reg = obs::Registry::Default();
    m_futex_waits_ = reg.GetCounter("os/sem/futex_waits");
    m_futex_wakes_ = reg.GetCounter("os/sem/futex_wakes");
    m_park_ns_ = reg.GetHistogram("os/sem/park_ns");
  }

  std::string_view type_name() const override { return "semaphore"; }

  // Calibration (documented in hw/cost_model.h's header comment): glibc
  // sem_wait/sem_post user fast path, and the kernel futex wait/wake work.
  static constexpr sim::Duration kUserFastPath = sim::Duration::Nanos(9.0);
  static constexpr sim::Duration kFutexWaitKernel = sim::Duration::Nanos(140.0);
  static constexpr sim::Duration kFutexWakeKernel = sim::Duration::Nanos(130.0);

  sim::Task<void> Wait(Env env) {
    Kernel& k = *env.kernel;
    co_await k.Spend(*env.self, kUserFastPath, TimeCat::kUser);
    if (count_ > 0) {
      --count_;  // uncontended: futex not entered
      co_return;
    }
    co_await k.SyscallEnter(env);
    co_await k.Spend(*env.self, kFutexWaitKernel, TimeCat::kKernel);
    if (count_ > 0) {
      --count_;  // raced with a post while entering the kernel
    } else {
      m_futex_waits_->Add();
      const sim::Time park_start = k.now();
      co_await waiters_.Wait(env);
      // Woken by Post: the token was handed to us directly.
      const sim::Duration parked = k.now() - park_start;
      m_park_ns_->Record(parked.nanos());
      obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexPark, obs_id_, 0, k.now(),
                          parked);
    }
    co_await k.SyscallExit(env);
  }

  sim::Task<void> Post(Env env) {
    Kernel& k = *env.kernel;
    co_await k.Spend(*env.self, kUserFastPath, TimeCat::kUser);
    Thread* waiter = waiters_.WakeOneThread();
    if (waiter == nullptr) {
      ++count_;  // nobody waiting: user-space only
      co_return;
    }
    co_await k.SyscallEnter(env);
    co_await k.Spend(*env.self, kFutexWakeKernel, TimeCat::kKernel);
    m_futex_wakes_->Add();
    obs::Trace().Record(env.self->last_cpu(), obs::EventType::kFutexWake, obs_id_, 1, k.now());
    sim::Duration ipi = k.MakeRunnable(*waiter, env.self->last_cpu());
    if (ipi > sim::Duration::Zero()) {
      co_await k.Spend(*env.self, ipi, TimeCat::kKernel);
    }
    co_await k.SyscallExit(env);
  }

  int64_t count() const { return count_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  int64_t count_;
  uint32_t obs_id_;
  WaitQueue waiters_;
  obs::Counter* m_futex_waits_;
  obs::Counter* m_futex_wakes_;
  obs::Histogram* m_park_ns_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_SEMAPHORE_H_
