#include "os/unix_socket.h"

#include <algorithm>
#include <utility>

namespace dipc::os {

UnixStreamCore::UnixStreamCore(Kernel& kernel) : kernel_(kernel) {
  dirs_[0].buf_pa = kernel.AllocKernelBuffer(kBufSize);
  dirs_[1].buf_pa = kernel.AllocKernelBuffer(kBufSize);
}

std::pair<std::shared_ptr<UnixStreamEnd>, std::shared_ptr<UnixStreamEnd>>
UnixStreamCore::CreatePair(Kernel& kernel) {
  auto core = std::make_shared<UnixStreamCore>(kernel);
  return {std::make_shared<UnixStreamEnd>(core, 0), std::make_shared<UnixStreamEnd>(core, 1)};
}

sim::Task<base::Result<uint64_t>> UnixStreamEnd::Send(
    Env env, hw::VirtAddr va, uint64_t len, std::vector<std::shared_ptr<KernelObject>> handles) {
  Kernel& k = *env.kernel;
  UnixStreamCore::Direction& d = tx();
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, UnixStreamCore::kKernelPath, TimeCat::kKernel);
  for (auto& h : handles) {
    d.passed_objects.push_back(std::move(h));  // ancillary data rides along
  }
  uint64_t done = 0;
  while (done < len) {
    if (d.closed) {
      co_await k.SyscallExit(env);
      co_return base::ErrorCode::kBrokenChannel;
    }
    while (d.fill == UnixStreamCore::kBufSize) {
      co_await d.writers.Wait(env);
    }
    uint64_t chunk = std::min(len - done, UnixStreamCore::kBufSize - d.fill);
    uint64_t off = d.wpos % UnixStreamCore::kBufSize;
    uint64_t first = std::min(chunk, UnixStreamCore::kBufSize - off);
    auto s = co_await k.CopyFromUser(env, d.buf_pa + off, va + done, first);
    if (s.ok() && first < chunk) {
      s = co_await k.CopyFromUser(env, d.buf_pa, va + done + first, chunk - first);
    }
    if (!s.ok()) {
      co_await k.SyscallExit(env);
      co_return s.code();
    }
    d.wpos += chunk;
    d.fill += chunk;
    done += chunk;
    if (Thread* r = d.readers.WakeOneThread(); r != nullptr) {
      sim::Duration ipi = k.MakeRunnable(*r, env.self->last_cpu());
      co_await k.Spend(*env.self, ipi + k.costs().Cycles(60), TimeCat::kKernel);
    }
  }
  co_await k.SyscallExit(env);
  co_return done;
}

sim::Task<base::Result<uint64_t>> UnixStreamEnd::Recv(
    Env env, hw::VirtAddr va, uint64_t len,
    std::vector<std::shared_ptr<KernelObject>>* handles_out) {
  Kernel& k = *env.kernel;
  UnixStreamCore::Direction& d = rx();
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, UnixStreamCore::kKernelPath, TimeCat::kKernel);
  while (d.fill == 0) {
    if (!d.passed_objects.empty()) {
      break;  // ancillary-only message
    }
    if (d.closed) {
      co_await k.SyscallExit(env);
      co_return uint64_t{0};  // EOF
    }
    co_await d.readers.Wait(env);
  }
  if (handles_out != nullptr) {
    while (!d.passed_objects.empty()) {
      handles_out->push_back(std::move(d.passed_objects.front()));
      d.passed_objects.pop_front();
    }
  }
  uint64_t chunk = std::min(len, d.fill);
  if (chunk > 0) {
    uint64_t off = d.rpos % UnixStreamCore::kBufSize;
    uint64_t first = std::min(chunk, UnixStreamCore::kBufSize - off);
    auto s = co_await k.CopyToUser(env, va, d.buf_pa + off, first);
    if (s.ok() && first < chunk) {
      s = co_await k.CopyToUser(env, va + first, d.buf_pa, chunk - first);
    }
    if (!s.ok()) {
      co_await k.SyscallExit(env);
      co_return s.code();
    }
    d.rpos += chunk;
    d.fill -= chunk;
    if (Thread* w = d.writers.WakeOneThread(); w != nullptr) {
      sim::Duration ipi = k.MakeRunnable(*w, env.self->last_cpu());
      co_await k.Spend(*env.self, ipi + k.costs().Cycles(60), TimeCat::kKernel);
    }
  }
  co_await k.SyscallExit(env);
  co_return chunk;
}

sim::Task<base::Status> UnixStreamEnd::RecvExact(
    Env env, hw::VirtAddr va, uint64_t len,
    std::vector<std::shared_ptr<KernelObject>>* handles_out) {
  uint64_t done = 0;
  while (done < len) {
    auto r = co_await Recv(env, va + done, len - done, handles_out);
    if (!r.ok()) {
      co_return r.status();
    }
    if (r.value() == 0) {
      co_return base::ErrorCode::kBrokenChannel;
    }
    done += r.value();
  }
  co_return base::Status::Ok();
}

void UnixStreamEnd::Close() {
  // Both directions see the hangup.
  for (auto& d : core_->dirs_) {
    d.closed = true;
    while (Thread* t = d.readers.WakeOneThread()) {
      (void)core_->kernel_.MakeRunnable(*t, std::nullopt);
    }
    while (Thread* t = d.writers.WakeOneThread()) {
      (void)core_->kernel_.MakeRunnable(*t, std::nullopt);
    }
  }
}

sim::Task<base::Result<std::shared_ptr<UnixStreamEnd>>> UnixListener::Connect(
    Env env, const std::string& path) {
  Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, UnixStreamCore::kKernelPath, TimeCat::kKernel);
  auto obj = k.LookupPath(path);
  auto listener = std::dynamic_pointer_cast<UnixListener>(obj);
  if (listener == nullptr) {
    co_await k.SyscallExit(env);
    co_return base::ErrorCode::kNotFound;
  }
  auto [client, server] = UnixStreamCore::CreatePair(k);
  listener->pending_.push_back(std::move(server));
  if (Thread* a = listener->acceptors_.WakeOneThread(); a != nullptr) {
    sim::Duration ipi = k.MakeRunnable(*a, env.self->last_cpu());
    co_await k.Spend(*env.self, ipi, TimeCat::kKernel);
  }
  co_await k.SyscallExit(env);
  co_return client;
}

sim::Task<base::Result<std::shared_ptr<UnixStreamEnd>>> UnixListener::Accept(Env env) {
  Kernel& k = *env.kernel;
  co_await k.SyscallEnter(env);
  co_await k.Spend(*env.self, UnixStreamCore::kKernelPath, TimeCat::kKernel);
  while (pending_.empty()) {
    co_await acceptors_.Wait(env);
  }
  auto end = std::move(pending_.front());
  pending_.pop_front();
  co_await k.SyscallExit(env);
  co_return end;
}

}  // namespace dipc::os
