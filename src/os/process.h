// Processes: the OS unit of isolation.
//
// A regular process owns a private page table; dIPC-enabled processes share
// the global-VAS page table and are distinguished by their CODOMs domain
// tags instead (§6.1.3).
#ifndef DIPC_OS_PROCESS_H_
#define DIPC_OS_PROCESS_H_

#include <cstdint>
#include <string>

#include "hw/page_table.h"
#include "hw/types.h"
#include "os/objects.h"
#include "sim/time.h"

namespace dipc::os {

using Pid = uint32_t;

class Process {
 public:
  Process(Pid pid, std::string name, hw::PageTable& pt, hw::DomainTag default_domain)
      : pid_(pid), name_(std::move(name)), page_table_(&pt), default_domain_(default_domain) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }

  hw::PageTable& page_table() { return *page_table_; }
  const hw::PageTable& page_table() const { return *page_table_; }
  void set_page_table(hw::PageTable& pt) { page_table_ = &pt; }

  // Every process has a default CODOMs domain; regular mmap/brk pages land
  // there (§5.2.2).
  hw::DomainTag default_domain() const { return default_domain_; }
  void set_default_domain(hw::DomainTag tag) { default_domain_ = tag; }

  FdTable& fds() { return fds_; }

  bool dipc_enabled() const { return dipc_enabled_; }
  void set_dipc_enabled(bool on) { dipc_enabled_ = on; }

  bool alive() const { return alive_; }
  void MarkDead() { alive_ = false; }

  // Simple per-process bump allocator for private address spaces. dIPC
  // processes sub-allocate inside their 1 GB global-VAS block: the dIPC
  // runtime rebases this allocator to the block (§6.1.3 phase 2).
  hw::VirtAddr AllocVa(uint64_t size) {
    hw::VirtAddr va = next_va_;
    next_va_ = hw::PageRoundUp(next_va_ + size);
    return va;
  }
  void SetVaBase(hw::VirtAddr base) { next_va_ = base; }
  hw::VirtAddr va_cursor() const { return next_va_; }

  // Resource accounting (dIPC charges CPU time to the process a thread is
  // currently executing in; §5.2.1).
  void ChargeCpu(sim::Duration d) { cpu_time_ += d; }
  sim::Duration cpu_time() const { return cpu_time_; }

 private:
  Pid pid_;
  std::string name_;
  hw::PageTable* page_table_;
  hw::DomainTag default_domain_;
  FdTable fds_;
  bool dipc_enabled_ = false;
  bool alive_ = true;
  hw::VirtAddr next_va_ = 0x10000;
  sim::Duration cpu_time_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_PROCESS_H_
