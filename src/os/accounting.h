// Per-CPU time accounting in the categories of the paper's Figure 2.
//
// Every virtual nanosecond a CPU spends is attributed to one category, which
// lets benches print the same breakdowns as Figures 1 and 2:
//   (1) user code, (2) syscall+2*swapgs+sysret, (3) syscall dispatch
//   trampoline, (4) kernel/privileged code, (5) schedule/context switch,
//   (6) page table switch, (7) idle / IO wait — plus a dIPC-proxy category
//   for the trusted thunk code dIPC adds.
#ifndef DIPC_OS_ACCOUNTING_H_
#define DIPC_OS_ACCOUNTING_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "base/check.h"
#include "hw/types.h"
#include "sim/time.h"

namespace dipc::os {

enum class TimeCat : uint8_t {
  kUser = 0,          // (1)
  kSyscallCrossing,   // (2)
  kSyscallDispatch,   // (3)
  kKernel,            // (4)
  kSchedule,          // (5)
  kPageTableSwitch,   // (6)
  kIdle,              // (7)
  kProxy,             // dIPC trusted proxy thunks
  kCount,
};

inline constexpr size_t kNumTimeCats = static_cast<size_t>(TimeCat::kCount);

constexpr std::string_view TimeCatName(TimeCat cat) {
  switch (cat) {
    case TimeCat::kUser: return "user";
    case TimeCat::kSyscallCrossing: return "syscall+swapgs+sysret";
    case TimeCat::kSyscallDispatch: return "syscall dispatch";
    case TimeCat::kKernel: return "kernel";
    case TimeCat::kSchedule: return "schedule/ctxt-switch";
    case TimeCat::kPageTableSwitch: return "page-table switch";
    case TimeCat::kIdle: return "idle/IO-wait";
    case TimeCat::kProxy: return "dIPC proxy";
    case TimeCat::kCount: break;
  }
  return "?";
}

// A snapshot of per-category time, either for one CPU or summed.
struct TimeBreakdown {
  std::array<sim::Duration, kNumTimeCats> by_cat{};

  sim::Duration operator[](TimeCat cat) const { return by_cat[static_cast<size_t>(cat)]; }
  sim::Duration& operator[](TimeCat cat) { return by_cat[static_cast<size_t>(cat)]; }

  sim::Duration Total() const {
    sim::Duration t;
    for (const auto& d : by_cat) {
      t += d;
    }
    return t;
  }

  TimeBreakdown operator-(const TimeBreakdown& other) const {
    TimeBreakdown r;
    for (size_t i = 0; i < kNumTimeCats; ++i) {
      r.by_cat[i] = by_cat[i] - other.by_cat[i];
    }
    return r;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    for (size_t i = 0; i < kNumTimeCats; ++i) {
      by_cat[i] += other.by_cat[i];
    }
    return *this;
  }
};

class TimeAccounting {
 public:
  explicit TimeAccounting(uint32_t num_cpus) : per_cpu_(num_cpus) {}

  void Charge(hw::CpuId cpu, TimeCat cat, sim::Duration d) {
    DIPC_CHECK(cpu < per_cpu_.size());
    per_cpu_[cpu][cat] += d;
  }

  const TimeBreakdown& cpu(hw::CpuId id) const { return per_cpu_[id]; }

  TimeBreakdown Summed() const {
    TimeBreakdown total;
    for (const auto& b : per_cpu_) {
      total += b;
    }
    return total;
  }

  void Reset() {
    for (auto& b : per_cpu_) {
      b = TimeBreakdown{};
    }
  }

 private:
  std::vector<TimeBreakdown> per_cpu_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_ACCOUNTING_H_
