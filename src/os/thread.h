// Kernel threads. A thread's body is a C++20 coroutine driven by the
// discrete-event engine; blocking kernel operations are co_await points.
#ifndef DIPC_OS_THREAD_H_
#define DIPC_OS_THREAD_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "base/result.h"
#include "codoms/cap_context.h"
#include "hw/types.h"
#include "os/process.h"
#include "sim/task.h"

namespace dipc::os {

class Kernel;
class Thread;

using Tid = uint64_t;

// The handle a thread body receives: its kernel and its own thread object.
struct Env {
  Kernel* kernel = nullptr;
  Thread* self = nullptr;
};

using ThreadBody = std::function<sim::Task<void>(Env)>;

enum class ThreadState : uint8_t {
  kCreated,
  kRunnable,  // on a run queue or pending dispatch
  kRunning,
  kBlocked,
  kDead,
};

class Thread {
 public:
  Thread(Tid tid, std::string name, Process& process, ThreadBody body, int pin_cpu)
      : tid_(tid),
        name_(std::move(name)),
        process_(&process),
        body_fn_(std::move(body)),
        pin_cpu_(pin_cpu),
        cap_ctx_(tid) {}
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  Tid tid() const { return tid_; }
  const std::string& name() const { return name_; }

  Process& process() { return *process_; }
  const Process& process() const { return *process_; }
  // dIPC in-place switches: the thread temporarily executes *in* another
  // process (time-slice donation, §6.1.2).
  void set_process(Process& p) { process_ = &p; }

  ThreadState state() const { return state_; }
  void set_state(ThreadState s) { state_ = s; }

  int pin_cpu() const { return pin_cpu_; }
  hw::CpuId last_cpu() const { return last_cpu_; }
  void set_last_cpu(hw::CpuId c) { last_cpu_ = c; }

  codoms::ThreadCapContext& cap_ctx() { return cap_ctx_; }

  // Errno-like flag raised by dIPC KCS unwinding when a callee fails
  // (§5.2.1); consumed by the caller's stub after the proxy returns.
  base::ErrorCode TakeError() {
    base::ErrorCode e = error_;
    error_ = base::ErrorCode::kOk;
    return e;
  }
  void FlagError(base::ErrorCode e) { error_ = e; }

  // Internal: suspension point bookkeeping (kernel/scheduler use only).
  void set_resume_point(std::coroutine_handle<> h) { resume_point_ = h; }
  std::coroutine_handle<> take_resume_point() {
    auto h = resume_point_;
    resume_point_ = nullptr;
    return h;
  }
  bool has_resume_point() const { return resume_point_ != nullptr; }

  // Internal: kernel starts the body task and keeps it alive here.
  ThreadBody& body_fn() { return body_fn_; }
  sim::Task<void>& task() { return task_; }
  void set_task(sim::Task<void> t) { task_ = std::move(t); }

  std::deque<Thread*>& joiners() { return joiners_; }

 private:
  Tid tid_;
  std::string name_;
  Process* process_;
  ThreadBody body_fn_;  // kept alive: the coroutine frame references it
  sim::Task<void> task_;
  std::coroutine_handle<> resume_point_;
  ThreadState state_ = ThreadState::kCreated;
  int pin_cpu_;
  hw::CpuId last_cpu_ = 0;
  base::ErrorCode error_ = base::ErrorCode::kOk;
  codoms::ThreadCapContext cap_ctx_;
  std::deque<Thread*> joiners_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_THREAD_H_
