#ifndef DIPC_OS_DEADLINE_H_
#define DIPC_OS_DEADLINE_H_

#include "sim/time.h"

namespace dipc::os {

// An absolute sim-time deadline for blocking operations. The default
// ("never") preserves the historical block-forever behaviour, so every
// existing call site compiles unchanged; passing `Deadline::At(t)` (or
// `After` relative to a kernel's now()) bounds the park and surfaces
// `ErrorCode::kTimedOut` from the blocking primitive when it expires.
class Deadline {
 public:
  constexpr Deadline() = default;

  static constexpr Deadline Never() { return Deadline(); }
  static constexpr Deadline At(sim::Time t) { return Deadline(t); }
  static constexpr Deadline After(sim::Time now, sim::Duration d) {
    return Deadline(now + d);
  }

  constexpr bool never() const { return at_ == sim::Time::Max(); }
  constexpr sim::Time at() const { return at_; }
  constexpr bool ExpiredAt(sim::Time now) const { return !never() && now >= at_; }

 private:
  explicit constexpr Deadline(sim::Time t) : at_(t) {}
  sim::Time at_ = sim::Time::Max();
};

}  // namespace dipc::os

#endif  // DIPC_OS_DEADLINE_H_
