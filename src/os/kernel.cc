#include "os/kernel.h"

#include <algorithm>
#include <vector>

namespace dipc::os {

Kernel::Kernel(hw::Machine& machine, codoms::Codoms& codoms)
    : machine_(machine), codoms_(codoms), accounting_(machine.num_cpus()) {
  cpus_.resize(machine.num_cpus());
  for (auto& cs : cpus_) {
    cs.idle_since = now();
  }
  // Scheduler observability. Names are machine-scoped (not per Kernel
  // instance), so sequential sims in one binary share handles — the
  // registry resets between bench series anyway.
  obs::Registry& reg = obs::Registry::Default();
  m_migrations_ = reg.GetCounter("os/sched/migrations");
  m_runq_depth_.resize(cpus_.size());
  for (hw::CpuId c = 0; c < cpus_.size(); ++c) {
    m_runq_depth_[c] = reg.GetGauge("os/sched/cpu" + std::to_string(c) + "/runq_depth");
  }
}

Kernel::~Kernel() = default;

// ---- Processes and threads ----

Process& Kernel::CreateProcess(std::string name) {
  hw::PageTable& pt = machine_.CreatePageTable();
  hw::DomainTag tag = codoms_.apl_table().AllocateTag();
  auto proc = std::make_unique<Process>(next_pid_++, std::move(name), pt, tag);
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  return ref;
}

Process& Kernel::CreateProcessIn(std::string name, hw::PageTable& pt, hw::DomainTag default_domain) {
  auto proc = std::make_unique<Process>(next_pid_++, std::move(name), pt, default_domain);
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  return ref;
}

Thread& Kernel::Spawn(Process& proc, std::string name, ThreadBody body, int pin_cpu) {
  auto thread = std::make_unique<Thread>(next_tid_++, std::move(name), proc, std::move(body),
                                         pin_cpu);
  Thread& t = *thread;
  threads_.push_back(std::move(thread));
  t.cap_ctx().current_domain = proc.default_domain();
  if (pin_cpu >= 0) {
    t.set_last_cpu(static_cast<hw::CpuId>(pin_cpu));
  }
  Env env{this, &t};
  t.set_task(t.body_fn()(env));
  (void)MakeRunnable(t, std::nullopt);
  return t;
}

sim::Task<void> Kernel::Join(Env env, Thread& target) {
  if (target.state() == ThreadState::kDead) {
    co_return;
  }
  target.joiners().push_back(env.self);
  co_await Block(env);
}

void Kernel::KillThread(Thread& t) {
  if (t.state() == ThreadState::kDead) {
    return;
  }
  DIPC_CHECK(t.state() != ThreadState::kRunning);  // running threads exit by returning
  t.set_state(ThreadState::kDead);
  for (Thread* j : t.joiners()) {
    (void)MakeRunnable(*j, std::nullopt);
  }
  t.joiners().clear();
}

// ---- Awaitables ----

void Kernel::SpendAwaiter::await_suspend(std::coroutine_handle<> h) {
  // The CPU stays assigned to the thread; we just advance virtual time.
  kernel->machine_.events().ScheduleAfter(d, [h] { h.resume(); });
}

void Kernel::BlockAwaiter::await_suspend(std::coroutine_handle<> h) {
  thread->set_resume_point(h);
  thread->set_state(ThreadState::kBlocked);
  kernel->CpuReleased(thread->last_cpu());
}

void Kernel::SleepAwaiter::await_suspend(std::coroutine_handle<> h) {
  Thread* t = thread;
  Kernel* k = kernel;
  t->set_resume_point(h);
  t->set_state(ThreadState::kBlocked);
  k->machine_.events().ScheduleAfter(d, [k, t] { (void)k->MakeRunnable(*t, std::nullopt); });
  k->CpuReleased(t->last_cpu());
}

void Kernel::HandoffAwaiter::await_suspend(std::coroutine_handle<> h) {
  from->set_resume_point(h);
  from->set_state(ThreadState::kBlocked);
  hw::CpuId cpu = from->last_cpu();
  Kernel::CpuState& cs = kernel->cpus_[cpu];
  DIPC_CHECK(cs.running == from);
  cs.running = nullptr;
  DIPC_CHECK(target->state() == ThreadState::kBlocked);
  target->set_state(ThreadState::kRunnable);
  kernel->Dispatch(cpu, *target, switch_cost, /*standard_path=*/false);
}

void WaitQueue::WaitAwaiter::await_suspend(std::coroutine_handle<> h) {
  queue->waiters_.push_back(thread);
  thread->set_resume_point(h);
  thread->set_state(ThreadState::kBlocked);
  kernel->CpuReleased(thread->last_cpu());
}

// ---- Scheduling ----

hw::CpuId Kernel::PickCpu(const Thread& t) const {
  if (t.pin_cpu() >= 0) {
    return static_cast<hw::CpuId>(t.pin_cpu());
  }
  hw::CpuId last = t.last_cpu();
  const CpuState& last_cs = cpus_[last];
  if (last_cs.running == nullptr && !last_cs.dispatch_pending) {
    return last;  // cache-warm home CPU is free
  }
  // Wake balancing: prefer an idle CPU over queueing.
  for (hw::CpuId c = 0; c < cpus_.size(); ++c) {
    const CpuState& cs = cpus_[c];
    if (cs.running == nullptr && !cs.dispatch_pending && cs.runq.empty()) {
      return c;
    }
  }
  return last;
}

sim::Duration Kernel::MakeRunnable(Thread& t, std::optional<hw::CpuId> waker_cpu,
                                   sim::Duration extra_delay) {
  if (t.state() == ThreadState::kDead) {
    return sim::Duration::Zero();
  }
  DIPC_CHECK(t.state() == ThreadState::kBlocked || t.state() == ThreadState::kCreated);
  t.set_state(ThreadState::kRunnable);
  hw::CpuId target = PickCpu(t);
  CpuState& cs = cpus_[target];
  sim::Duration waker_cost;
  if (cs.running == nullptr && !cs.dispatch_pending) {
    sim::Duration lat = extra_delay;
    if (t.pin_cpu() < 0) {
      lat += wake_latency_;
    }
    if (waker_cpu.has_value() && *waker_cpu != target) {
      // Cross-CPU wakeup: the waker sends an IPI; delivery + C-state exit
      // delay the dispatch (§2.2's "going across CPUs is even more
      // expensive"). The target's time in between stays accounted as idle.
      waker_cost += costs().ipi_send;
      lat += costs().ipi_deliver + costs().idle_exit;
    }
    cs.dispatch_pending = true;
    Thread* tp = &t;
    machine_.events().ScheduleAfter(lat, [this, target, tp] {
      cpus_[target].dispatch_pending = false;
      Dispatch(target, *tp, sim::Duration::Zero(), /*standard_path=*/true);
    });
  } else {
    cs.runq.push_back(&t);
    NoteRunqDepth(target);
  }
  return waker_cost;
}

void Kernel::NoteRunqDepth(hw::CpuId cpu) {
  const auto depth = static_cast<uint64_t>(cpus_[cpu].runq.size());
  m_runq_depth_[cpu]->Set(static_cast<int64_t>(depth));
  obs::Trace().Record(cpu, obs::EventType::kRunqDepth, /*obj=*/0, depth, now());
}

void Kernel::CpuReleased(hw::CpuId cpu) {
  CpuState& cs = cpus_[cpu];
  cs.running = nullptr;
  Thread* next = nullptr;
  const size_t depth_before = cs.runq.size();
  while (!cs.runq.empty()) {
    Thread* cand = cs.runq.front();
    cs.runq.pop_front();
    if (cand->state() != ThreadState::kDead) {
      next = cand;
      break;
    }
  }
  if (depth_before != cs.runq.size()) {
    NoteRunqDepth(cpu);
  }
  if (next == nullptr) {
    // Idle balancing: steal a queued, unpinned thread from the busiest CPU.
    CpuState* victim = nullptr;
    for (auto& other : cpus_) {
      if (&other == &cs || other.runq.empty()) {
        continue;
      }
      if (victim == nullptr || other.runq.size() > victim->runq.size()) {
        victim = &other;
      }
    }
    if (victim != nullptr) {
      for (auto it = victim->runq.begin(); it != victim->runq.end(); ++it) {
        if ((*it)->pin_cpu() < 0 && (*it)->state() != ThreadState::kDead) {
          next = *it;
          victim->runq.erase(it);
          NoteRunqDepth(static_cast<hw::CpuId>(victim - cpus_.data()));
          break;
        }
      }
    }
  }
  if (next != nullptr) {
    cs.dispatch_pending = true;
    Thread* tp = next;
    // Unpinned threads pay the configured wakeup/runqueue latency here too:
    // on a loaded Linux the next task is not on the CPU the same nanosecond.
    // Deep run queues amortize it (the next task is already waiting), which
    // is how oversubscription "fills the system" in §7.4.
    sim::Duration lat = next->pin_cpu() < 0 ? wake_latency_ : sim::Duration::Zero();
    lat = sim::Duration::Picos(lat.picos() / (1 + 2 * static_cast<int64_t>(cs.runq.size())));
    if (lat > sim::Duration::Zero()) {
      cs.idle = true;  // the gap is architecturally idle time
      cs.idle_since = now();
    }
    machine_.events().ScheduleAfter(lat, [this, cpu, tp] {
      cpus_[cpu].dispatch_pending = false;
      Dispatch(cpu, *tp, sim::Duration::Zero(), /*standard_path=*/true);
    });
  } else {
    cs.idle = true;
    cs.idle_since = now();
  }
}

void Kernel::Dispatch(hw::CpuId cpu, Thread& t, sim::Duration extra, bool standard_path) {
  CpuState& cs = cpus_[cpu];
  if (t.state() == ThreadState::kDead) {
    CpuReleased(cpu);
    return;
  }
  DIPC_CHECK(cs.running == nullptr);
  DIPC_CHECK(t.state() == ThreadState::kRunnable);
  if (cs.idle) {
    accounting_.Charge(cpu, TimeCat::kIdle, now() - cs.idle_since);
    cs.idle = false;
  }
  cs.running = &t;
  t.set_state(ThreadState::kRunning);
  const hw::CpuId prev_cpu = t.last_cpu();
  // A thread with a resume point has run before, so landing on a different
  // CPU is a migration (cold caches, §2.2). First dispatches don't count.
  if (t.has_resume_point() && prev_cpu != cpu) {
    m_migrations_->Add();
    obs::Trace().Record(cpu, obs::EventType::kSchedMigrate, static_cast<uint32_t>(t.tid()),
                        (static_cast<uint64_t>(prev_cpu) << 32) | cpu, now());
  }
  t.set_last_cpu(cpu);
  // Scheduler charges bill to the incoming thread's domain as kernel work
  // (after set_last_cpu so the attribution lands on this CPU's breakdown).
  const uint32_t dom = static_cast<uint32_t>(t.cap_ctx().current_domain);
  const hw::CostModel& cm = costs();
  sim::Duration cost = extra;
  if (standard_path) {
    sim::Duration sched = cm.schedule_pick + cm.register_save + cm.register_restore;
    accounting_.Charge(cpu, TimeCat::kSchedule, sched);
    obs::ChargeDomainTime(dom, obs::DomainTimeKind::kKernel, sched.picos());
    cost += sched;
  } else if (extra > sim::Duration::Zero()) {
    accounting_.Charge(cpu, TimeCat::kSchedule, extra);
    obs::ChargeDomainTime(dom, obs::DomainTimeKind::kKernel, extra.picos());
  }
  if (cs.last_process != &t.process()) {
    if (standard_path) {
      accounting_.Charge(cpu, TimeCat::kSchedule, cm.current_switch);
      obs::ChargeDomainTime(dom, obs::DomainTimeKind::kKernel, cm.current_switch.picos());
      cost += cm.current_switch;
    }
    if (cs.last_process != nullptr &&
        cs.last_process->page_table().id() != t.process().page_table().id()) {
      // CR3 write. dIPC-enabled processes share a page table and skip this.
      accounting_.Charge(cpu, TimeCat::kPageTableSwitch, cm.page_table_switch);
      obs::ChargeDomainTime(dom, obs::DomainTimeKind::kKernel, cm.page_table_switch.picos());
      cost += cm.page_table_switch;
    }
    machine_.cpu(cpu).set_active_page_table(t.process().page_table().id());
  }
  cs.last_process = &t.process();
  ++context_switches_;
  Thread* tp = &t;
  machine_.events().ScheduleAfter(cost, [this, tp] { ResumeThread(*tp); });
}

void Kernel::ResumeThread(Thread& t) {
  if (t.state() == ThreadState::kDead) {
    CpuReleased(t.last_cpu());
    return;
  }
  DIPC_CHECK(t.state() == ThreadState::kRunning);
  if (t.has_resume_point()) {
    t.take_resume_point().resume();
    return;
  }
  // First dispatch: start the body coroutine.
  Thread* tp = &t;
  t.task().Start([this, tp] { OnThreadExit(*tp); });
}

void Kernel::OnThreadExit(Thread& t) {
  t.set_state(ThreadState::kDead);
  hw::CpuId cpu = t.last_cpu();
  for (Thread* j : t.joiners()) {
    (void)MakeRunnable(*j, cpu);
  }
  t.joiners().clear();
  CpuReleased(cpu);
}

// ---- User memory ----

base::Result<sim::Duration> Kernel::UserAccessCost(Thread& t, hw::VirtAddr va, uint64_t len,
                                                   hw::AccessType type) {
  if (len == 0) {
    return sim::Duration::Zero();
  }
  hw::PageTable& pt = t.process().page_table();
  hw::CpuId cpu = t.last_cpu();
  auto check = codoms_.CheckDataAccess(cpu, pt, t.cap_ctx(), va, len, type);
  if (!check.ok()) {
    return check.code();
  }
  sim::Duration d = check.value();
  bool is_write = type == hw::AccessType::kWrite;
  hw::VirtAddr end = va + len;
  hw::VirtAddr pos = va;
  while (pos < end) {
    uint64_t chunk = std::min<uint64_t>(end - pos, hw::kPageSize - hw::PageOffset(pos));
    d += machine_.cpu(cpu).tlb().Translate(pos, pt.id());
    auto pa = pt.Translate(pos);
    DIPC_CHECK(pa.has_value());  // CheckDataAccess verified presence
    d += machine_.caches().Access(cpu, *pa, chunk, is_write);
    if (is_write) {
      codoms_.NotifyPlainWrite(*pa, chunk);
    }
    pos += chunk;
  }
  return d;
}

sim::Task<base::Status> Kernel::TouchUser(Env env, hw::VirtAddr va, uint64_t len,
                                          hw::AccessType type, TimeCat cat) {
  auto cost = UserAccessCost(*env.self, va, len, type);
  if (!cost.ok()) {
    co_return cost.status();
  }
  co_await Spend(*env.self, cost.value(), cat);
  co_return base::Status::Ok();
}

sim::Task<base::Status> Kernel::CopyFromUser(Env env, hw::PhysAddr kernel_pa,
                                             hw::VirtAddr user_va, uint64_t len) {
  Thread& t = *env.self;
  auto user_cost = UserAccessCost(t, user_va, len, hw::AccessType::kRead);
  if (!user_cost.ok()) {
    co_return user_cost.status();
  }
  sim::Duration d = user_cost.value();
  d += machine_.caches().Access(t.last_cpu(), kernel_pa, len, /*is_write=*/true);
  // Move the actual bytes.
  std::vector<std::byte> buf(len);
  base::Status rs = UserRead(t, user_va, buf);
  DIPC_CHECK(rs.ok());
  machine_.mem().Write(kernel_pa, buf);
  // Accounting category stays kKernel (the paper's Fig. 2 buckets), but the
  // per-domain attribution calls it what it is: data-plane copy time.
  co_await Spend(t, d, TimeCat::kKernel, obs::DomainTimeKind::kCopy);
  co_return base::Status::Ok();
}

sim::Task<base::Status> Kernel::CopyToUser(Env env, hw::VirtAddr user_va, hw::PhysAddr kernel_pa,
                                           uint64_t len) {
  Thread& t = *env.self;
  auto user_cost = UserAccessCost(t, user_va, len, hw::AccessType::kWrite);
  if (!user_cost.ok()) {
    co_return user_cost.status();
  }
  sim::Duration d = user_cost.value();
  d += machine_.caches().Access(t.last_cpu(), kernel_pa, len, /*is_write=*/false);
  std::vector<std::byte> buf(len);
  machine_.mem().Read(kernel_pa, buf);
  base::Status ws = UserWrite(t, user_va, buf);
  DIPC_CHECK(ws.ok());
  co_await Spend(t, d, TimeCat::kKernel, obs::DomainTimeKind::kCopy);
  co_return base::Status::Ok();
}

base::Status Kernel::UserWrite(Thread& t, hw::VirtAddr va, std::span<const std::byte> data) {
  hw::PageTable& pt = t.process().page_table();
  auto check =
      codoms_.CheckDataAccess(t.last_cpu(), pt, t.cap_ctx(), va, data.size(), hw::AccessType::kWrite);
  if (!check.ok()) {
    return check.status();
  }
  uint64_t done = 0;
  while (done < data.size()) {
    uint64_t chunk = std::min<uint64_t>(data.size() - done, hw::kPageSize - hw::PageOffset(va + done));
    auto pa = pt.Translate(va + done);
    DIPC_CHECK(pa.has_value());
    machine_.mem().Write(*pa, data.subspan(done, chunk));
    codoms_.NotifyPlainWrite(*pa, chunk);
    done += chunk;
  }
  return base::Status::Ok();
}

base::Status Kernel::UserRead(Thread& t, hw::VirtAddr va, std::span<std::byte> out) {
  hw::PageTable& pt = t.process().page_table();
  auto check =
      codoms_.CheckDataAccess(t.last_cpu(), pt, t.cap_ctx(), va, out.size(), hw::AccessType::kRead);
  if (!check.ok()) {
    return check.status();
  }
  uint64_t done = 0;
  while (done < out.size()) {
    uint64_t chunk = std::min<uint64_t>(out.size() - done, hw::kPageSize - hw::PageOffset(va + done));
    auto pa = pt.Translate(va + done);
    DIPC_CHECK(pa.has_value());
    machine_.mem().Read(*pa, out.subspan(done, chunk));
    done += chunk;
  }
  return base::Status::Ok();
}

// ---- Virtual memory ----

base::Result<hw::VirtAddr> Kernel::MapAnonymous(Process& proc, uint64_t len, hw::PageFlags flags,
                                                hw::DomainTag tag,
                                                std::optional<hw::VirtAddr> fixed_va) {
  if (len == 0) {
    return base::ErrorCode::kInvalidArgument;
  }
  if (tag == hw::kInvalidDomainTag) {
    tag = proc.default_domain();
  }
  uint64_t pages = hw::PageRoundUp(len) / hw::kPageSize;
  hw::VirtAddr base = fixed_va.value_or(proc.AllocVa(pages * hw::kPageSize));
  DIPC_CHECK(hw::PageOffset(base) == 0);
  hw::PageTable& pt = proc.page_table();
  for (uint64_t i = 0; i < pages; ++i) {
    uint64_t frame = machine_.mem().AllocFrame();
    base::Status s = pt.MapPage(base + i * hw::kPageSize, frame, flags, tag);
    if (!s.ok()) {
      return s.code();
    }
  }
  return base;
}

hw::PhysAddr Kernel::AllocKernelBuffer(uint64_t len) {
  uint64_t pages = hw::PageRoundUp(len) / hw::kPageSize;
  DIPC_CHECK(pages > 0);
  uint64_t first = machine_.mem().AllocFrame();
  for (uint64_t i = 1; i < pages; ++i) {
    uint64_t next = machine_.mem().AllocFrame();
    DIPC_CHECK(next == first + i);  // bump allocator keeps them contiguous
  }
  return first << hw::kPageShift;
}

// ---- Name registry ----

base::Status Kernel::BindPath(const std::string& path, std::shared_ptr<KernelObject> obj) {
  auto [it, inserted] = name_registry_.emplace(path, std::move(obj));
  (void)it;
  return inserted ? base::Status::Ok() : base::ErrorCode::kAlreadyExists;
}

std::shared_ptr<KernelObject> Kernel::LookupPath(const std::string& path) const {
  auto it = name_registry_.find(path);
  return it == name_registry_.end() ? nullptr : it->second;
}

void Kernel::UnbindPath(const std::string& path) { name_registry_.erase(path); }

}  // namespace dipc::os
