// The simulated OS kernel: scheduling, syscall costs, user-memory access
// (through the CODOMs checks), and process/thread lifecycle.
//
// Models a Linux-3.9-era kernel at the fidelity the paper's evaluation
// needs: per-CPU run queues, context/page-table switch costs, IPIs and the
// idle loop, the syscall entry/dispatch path, and per-category time
// accounting (Figs. 1 and 2). Threads are coroutines; every blocking
// operation is a co_await.
#ifndef DIPC_OS_KERNEL_H_
#define DIPC_OS_KERNEL_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/check.h"
#include "base/result.h"
#include "codoms/codoms.h"
#include "hw/machine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/accounting.h"
#include "os/process.h"
#include "os/thread.h"
#include "sim/task.h"

namespace dipc::os {

class WaitQueue;

// Which per-domain time bucket a TimeCat charge bills to (obs domain-time
// attribution). User code is the domain's own work; every kernel-side
// category — crossings, dispatch, kernel work, scheduling, page-table
// switches — is kernel work done on the domain's behalf; proxies bill
// separately (they are the cost dIPC removes). Idle is nobody's time.
constexpr obs::DomainTimeKind DomainKindFor(TimeCat cat) {
  switch (cat) {
    case TimeCat::kUser:
      return obs::DomainTimeKind::kUser;
    case TimeCat::kProxy:
      return obs::DomainTimeKind::kProxy;
    case TimeCat::kIdle:
      return obs::DomainTimeKind::kCount;  // unattributed
    default:
      return obs::DomainTimeKind::kKernel;
  }
}

class Kernel {
 public:
  Kernel(hw::Machine& machine, codoms::Codoms& codoms);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  hw::Machine& machine() { return machine_; }
  codoms::Codoms& codoms() { return codoms_; }
  TimeAccounting& accounting() { return accounting_; }
  const hw::CostModel& costs() const { return machine_.costs(); }
  sim::Time now() const { return machine_.events().now(); }

  // ---- Processes and threads ----

  // Creates a process with a private page table and a fresh default domain.
  Process& CreateProcess(std::string name);
  // Creates a process inside an existing (shared) page table; dIPC uses this
  // for global-VAS processes (§6.1.3).
  Process& CreateProcessIn(std::string name, hw::PageTable& pt, hw::DomainTag default_domain);

  // Spawns a thread; it becomes runnable immediately. `pin_cpu` >= 0 pins it.
  Thread& Spawn(Process& proc, std::string name, ThreadBody body, int pin_cpu = -1);

  // Waits until `target` exits.
  sim::Task<void> Join(Env env, Thread& target);

  // Kills a blocked/runnable thread (it never runs again). Running threads
  // can only kill themselves by returning from their body.
  void KillThread(Thread& t);

  Thread* running_on(hw::CpuId cpu) const { return cpus_[cpu].running; }
  uint64_t context_switches() const { return context_switches_; }

  // ---- Time ----

  // Charges `d` to `cat` (and to the thread's current process) and advances
  // virtual time by suspending until now+d. Zero durations don't suspend.
  struct SpendAwaiter {
    Kernel* kernel;
    Thread* thread;
    sim::Duration d;
    bool await_ready() const { return d <= sim::Duration::Zero(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}
  };
  SpendAwaiter Spend(Thread& t, sim::Duration d, TimeCat cat) {
    ChargeOnly(t, d, cat);
    return SpendAwaiter{this, &t, d};
  }
  // As Spend, but bills the domain-time attribution to an explicit bucket
  // instead of DomainKindFor(cat) — copy_{from,to}_user charges kKernel
  // accounting time but attributes it as data-plane copy work.
  SpendAwaiter Spend(Thread& t, sim::Duration d, TimeCat cat, obs::DomainTimeKind kind) {
    ChargeOnly(t, d, cat, kind);
    return SpendAwaiter{this, &t, d};
  }
  // Accounting without time advancement; use only when combining several
  // categories into one SpendAwaiter (see SpendTagged).
  void ChargeOnly(Thread& t, sim::Duration d, TimeCat cat) {
    ChargeOnly(t, d, cat, DomainKindFor(cat));
  }
  void ChargeOnly(Thread& t, sim::Duration d, TimeCat cat, obs::DomainTimeKind kind) {
    accounting_.Charge(t.last_cpu(), cat, d);
    t.process().ChargeCpu(d);
    if (kind != obs::DomainTimeKind::kCount) {
      obs::ChargeDomainTime(static_cast<uint32_t>(t.cap_ctx().current_domain), kind, d.picos());
    }
  }
  // Charges each (cat, d) pair, suspending once for the summed duration.
  // Variadic rather than initializer_list: init-list temporaries in co_await
  // expressions trip a GCC 12 coroutine bug ("array used as initializer").
  struct CatCost {
    TimeCat cat;
    sim::Duration d;
  };
  template <typename... Cs>
  SpendAwaiter SpendMany(Thread& t, Cs... items) {
    sim::Duration total;
    (
        [&] {
          ChargeOnly(t, items.d, items.cat);
          total += items.d;
        }(),
        ...);
    return SpendAwaiter{this, &t, total};
  }

  // Syscall entry: trap into the kernel + dispatch trampoline (Fig. 2
  // blocks 2-3). Exit: swapgs+sysret (block 2).
  SpendAwaiter SyscallEnter(Env env) {
    return SpendMany(*env.self,
                     CatCost{TimeCat::kSyscallCrossing, costs().syscall_trap},
                     CatCost{TimeCat::kSyscallDispatch, costs().syscall_dispatch});
  }
  SpendAwaiter SyscallExit(Env env) {
    return Spend(*env.self, costs().sysret, TimeCat::kSyscallCrossing);
  }

  // Blocks the calling thread for `d` of virtual time (releases its CPU).
  struct SleepAwaiter {
    Kernel* kernel;
    Thread* thread;
    sim::Duration d;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}
  };
  SleepAwaiter Sleep(Env env, sim::Duration d) { return SleepAwaiter{this, env.self, d}; }

  // ---- Scheduling ----

  // Parks the calling thread. The caller must already have registered the
  // thread with whatever will wake it (wait queue, timer...).
  struct BlockAwaiter {
    Kernel* kernel;
    Thread* thread;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}
  };
  BlockAwaiter Block(Env env) { return BlockAwaiter{this, env.self}; }

  // Makes `t` runnable. `waker_cpu` is where the waking code runs (for IPI
  // accounting); `extra_delay` postpones dispatch (device latency etc.).
  // Returns the cost the *waker* must still spend (e.g. sending the IPI).
  [[nodiscard]] sim::Duration MakeRunnable(Thread& t, std::optional<hw::CpuId> waker_cpu,
                                           sim::Duration extra_delay = sim::Duration::Zero());

  // Scheduler-realism knob: extra wakeup-to-dispatch latency for unpinned
  // threads (runqueue delay + wake_affine imperfection a loaded Linux shows,
  // §7.4's "the scheduler temporarily imbalances the CPUs, at which point
  // synchronous IPC must wait"). Zero by default so microbenchmarks see the
  // bare-metal path; the OLTP macro model sets ~1 us for the Linux-IPC
  // configuration.
  void set_wake_latency(sim::Duration d) { wake_latency_ = d; }
  sim::Duration wake_latency() const { return wake_latency_; }

  // L4-style direct handoff: the caller blocks (it must already be parked on
  // a wait structure) and `target` is dispatched immediately on this CPU,
  // charging only `switch_cost` (plus a page-table switch if the processes
  // differ) instead of the full scheduler path.
  struct HandoffAwaiter {
    Kernel* kernel;
    Thread* from;
    Thread* target;
    sim::Duration switch_cost;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}
  };
  HandoffAwaiter HandoffTo(Env env, Thread& target, sim::Duration switch_cost) {
    return HandoffAwaiter{this, env.self, &target, switch_cost};
  }

  // ---- User memory (checked by CODOMs, charged through TLB + caches) ----

  // Pure protection+translation+cache cost of an access, or kFault.
  base::Result<sim::Duration> UserAccessCost(Thread& t, hw::VirtAddr va, uint64_t len,
                                             hw::AccessType type);

  // Charges the cost of touching user memory (no data movement); used by
  // workload models. Faults become the returned status.
  sim::Task<base::Status> TouchUser(Env env, hw::VirtAddr va, uint64_t len, hw::AccessType type,
                                    TimeCat cat = TimeCat::kUser);

  // Kernel copy_{from,to}_user: moves real bytes between user VA and a
  // kernel physical buffer, charging both sides' cache costs to kKernel.
  sim::Task<base::Status> CopyFromUser(Env env, hw::PhysAddr kernel_pa, hw::VirtAddr user_va,
                                       uint64_t len);
  sim::Task<base::Status> CopyToUser(Env env, hw::VirtAddr user_va, hw::PhysAddr kernel_pa,
                                     uint64_t len);

  // Untimed data access (tests, loaders). Protection-checked.
  base::Status UserWrite(Thread& t, hw::VirtAddr va, std::span<const std::byte> data);
  base::Status UserRead(Thread& t, hw::VirtAddr va, std::span<std::byte> out);

  // ---- Virtual memory ----

  // Maps `len` bytes of fresh anonymous memory into the process, tagged with
  // `tag` (or the process default). Returns the base VA.
  base::Result<hw::VirtAddr> MapAnonymous(Process& proc, uint64_t len, hw::PageFlags flags,
                                          hw::DomainTag tag = hw::kInvalidDomainTag,
                                          std::optional<hw::VirtAddr> fixed_va = std::nullopt);

  // Contiguous physical buffer for kernel-internal use (pipe/socket rings).
  hw::PhysAddr AllocKernelBuffer(uint64_t len);

  // ---- Name registry (UNIX named sockets; used by RPC and dIPC entry
  // resolution, §6.2.1) ----
  base::Status BindPath(const std::string& path, std::shared_ptr<KernelObject> obj);
  std::shared_ptr<KernelObject> LookupPath(const std::string& path) const;
  void UnbindPath(const std::string& path);

  // ---- Simulation driving ----
  void Run() { machine_.events().RunUntilIdle(); }
  void RunFor(sim::Duration d) { machine_.events().RunUntil(now() + d); }

  // Closes all open idle intervals so accounting snapshots are exact
  // (normally idle is charged when the next dispatch ends the interval).
  // Call before Reset()/reading the accounting around measurement windows.
  void FlushIdleAccounting() {
    for (hw::CpuId c = 0; c < cpus_.size(); ++c) {
      CpuState& cs = cpus_[c];
      if (cs.idle) {
        accounting_.Charge(c, TimeCat::kIdle, now() - cs.idle_since);
        cs.idle_since = now();
      }
    }
  }

 private:
  friend class WaitQueue;

  struct CpuState {
    Thread* running = nullptr;
    std::deque<Thread*> runq;
    bool dispatch_pending = false;
    bool idle = true;
    sim::Time idle_since;
    Process* last_process = nullptr;  // for page-table/current switch costs
  };

  hw::CpuId PickCpu(const Thread& t) const;
  // Publishes `cpu`'s run-queue depth (gauge + trace instant) after a
  // queue change — the chaos-forensics signal for "where work piled up".
  void NoteRunqDepth(hw::CpuId cpu);
  // Called when the running thread on `cpu` stops running (block/exit).
  void CpuReleased(hw::CpuId cpu);
  // Dispatches `t` on `cpu` after `extra` cost; standard_path charges the
  // full scheduler cost, otherwise only `extra` (direct handoff).
  void Dispatch(hw::CpuId cpu, Thread& t, sim::Duration extra, bool standard_path);
  void ResumeThread(Thread& t);
  void OnThreadExit(Thread& t);

  hw::Machine& machine_;
  codoms::Codoms& codoms_;
  TimeAccounting accounting_;
  std::vector<CpuState> cpus_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::unordered_map<std::string, std::shared_ptr<KernelObject>> name_registry_;
  Pid next_pid_ = 1;
  Tid next_tid_ = 1;
  uint64_t context_switches_ = 0;
  sim::Duration wake_latency_;
  // Scheduler observability handles (registered in the ctor): cross-CPU
  // dispatches of already-running threads, and per-CPU run-queue depth.
  obs::Counter* m_migrations_ = nullptr;
  std::vector<obs::Gauge*> m_runq_depth_;
};

// A FIFO wait queue of threads; the building block of every blocking
// primitive. Waking returns the thread so the caller can MakeRunnable it
// (and account wake costs at the call site).
class WaitQueue {
 public:
  // co_await wq.Wait(env): parks the calling thread on this queue.
  struct WaitAwaiter {
    WaitQueue* queue;
    Kernel* kernel;
    Thread* thread;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {}
  };
  WaitAwaiter Wait(Env env) { return WaitAwaiter{this, env.kernel, env.self}; }

  // Raw enqueue without parking; pair with Kernel::Block or HandoffTo when
  // the caller must do something between queueing and suspending (e.g. L4's
  // reply-and-wait donates its time slice to the caller *after* queueing).
  void Enqueue(Thread* t) { waiters_.push_back(t); }

  Thread* WakeOneThread() {
    while (!waiters_.empty()) {
      Thread* t = waiters_.front();
      waiters_.pop_front();
      if (t->state() != ThreadState::kDead) {
        return t;
      }
    }
    return nullptr;
  }

  bool Remove(Thread* t) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == t) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

 private:
  std::deque<Thread*> waiters_;
};

}  // namespace dipc::os

#endif  // DIPC_OS_KERNEL_H_
