// Kernel object base and per-process descriptor tables.
//
// Anything a file descriptor can refer to (pipe ends, socket ends, dIPC
// domain/entry handles...) derives from KernelObject, so objects can be
// passed between processes through UNIX sockets (SCM_RIGHTS-style) — the
// mechanism dIPC uses to delegate domain handles (§5.2.2).
#ifndef DIPC_OS_OBJECTS_H_
#define DIPC_OS_OBJECTS_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "base/result.h"

namespace dipc::os {

using Fd = int32_t;
inline constexpr Fd kInvalidFd = -1;

class KernelObject {
 public:
  virtual ~KernelObject() = default;
  virtual std::string_view type_name() const = 0;
};

class FdTable {
 public:
  Fd Insert(std::shared_ptr<KernelObject> obj) {
    Fd fd = next_fd_++;
    table_.emplace(fd, std::move(obj));
    return fd;
  }

  std::shared_ptr<KernelObject> Get(Fd fd) const {
    auto it = table_.find(fd);
    return it == table_.end() ? nullptr : it->second;
  }

  template <typename T>
  std::shared_ptr<T> GetAs(Fd fd) const {
    return std::dynamic_pointer_cast<T>(Get(fd));
  }

  base::Status Close(Fd fd) {
    return table_.erase(fd) == 1 ? base::Status::Ok() : base::ErrorCode::kBadHandle;
  }

  size_t open_count() const { return table_.size(); }

 private:
  std::unordered_map<Fd, std::shared_ptr<KernelObject>> table_;
  Fd next_fd_ = 3;  // 0..2 notionally reserved for stdio
};

}  // namespace dipc::os

#endif  // DIPC_OS_OBJECTS_H_
