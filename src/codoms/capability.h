// Transient data-sharing capabilities (§4.2).
//
// Capabilities grant access to arbitrary byte ranges, are created and
// destroyed by *unprivileged* code, cannot be forged, live in 8 per-thread
// capability registers (separate from regular registers), occupy 32 B in
// memory, and come in two flavours:
//   - synchronous: tied to the creating thread's call frame; implicitly
//     revoked when that frame returns; cannot be passed across threads.
//   - asynchronous: may be passed across threads; support immediate
//     revocation through revocation counters.
#ifndef DIPC_CODOMS_CAPABILITY_H_
#define DIPC_CODOMS_CAPABILITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/check.h"
#include "base/thread_annotations.h"
#include "codoms/perm.h"
#include "hw/types.h"

namespace dipc::codoms {

enum class CapType : uint8_t {
  kSync,
  kAsync,
};

// Architectural size of a capability stored in memory (§4.2).
inline constexpr uint64_t kCapMemBytes = 32;

// Revocation counters for asynchronous capabilities (§4.2: "immediate
// revocation through revocation counters"). A capability snapshots the
// counter value at creation; bumping the counter invalidates every
// capability derived from it.
//
// Each counter remembers the domain that created it. The counter is that
// domain's private state: only the creator may *re-snapshot* a cached
// capability against the counter's current value (epoch rebind — see
// Codoms::CapRebind), which is what lets a trusted runtime rotate buffer
// ownership without re-minting, while revocation stays authoritative for
// every other holder of the capability.
//
// Grant bookkeeping: a counter is *live* while the epoch it was last granted
// at (mint or rebind) is still its current value — i.e. an unrevoked
// capability over that counter is outstanding somewhere. Counters can be
// tagged with an opaque owner key (fan-out channels use one key per
// receiver), so a dead receiver's whole grant set is revocable in one bulk
// call and tests can assert per-receiver that nothing survived.
// The table is shared mutable state between the simulated domains and
// host-level tooling (tests poke it from real threads to model concurrent
// revocation), so one mutex guards every field; the annotations let the
// DIPC_THREAD_SAFETY clang build prove no path reads an epoch without it.
class RevocationTable {
 public:
  static constexpr uint64_t kNoOwner = 0;

  uint64_t Allocate(hw::DomainTag creator = hw::kInvalidDomainTag) {
    base::MutexLock lock(&mu_);
    counters_.push_back(0);
    creators_.push_back(creator);
    granted_epoch_.push_back(0);  // minted live at epoch 0
    owners_.push_back(kNoOwner);
    ++live_;
    return counters_.size() - 1;
  }

  uint64_t Epoch(uint64_t id) const {
    base::MutexLock lock(&mu_);
    DIPC_CHECK(id < counters_.size());
    return counters_[id];
  }

  hw::DomainTag Creator(uint64_t id) const {
    base::MutexLock lock(&mu_);
    DIPC_CHECK(id < creators_.size());
    return creators_[id];
  }

  void Revoke(uint64_t id) {
    base::MutexLock lock(&mu_);
    RevokeLocked(id);
  }

  // An unrevoked grant over this counter is outstanding (the last mint or
  // rebind snapshotted the current epoch).
  bool Live(uint64_t id) const {
    base::MutexLock lock(&mu_);
    return LiveLocked(id);
  }

  // Epoch rebind re-granted the counter at its current value (only
  // Codoms::CapRebind calls this, after the creator-domain check).
  void ReGrant(uint64_t id) {
    base::MutexLock lock(&mu_);
    DIPC_CHECK(id < counters_.size());
    if (!LiveLocked(id)) {
      ++live_;
      if (owners_[id] != kNoOwner) {
        ++owner_live_[owners_[id]];
      }
    }
    granted_epoch_[id] = counters_[id];
  }

  // Tags `id` with an owner key (once, at mint time). Owner keys partition
  // the grant space per trust principal — e.g. one key per fan-out receiver.
  void SetOwner(uint64_t id, uint64_t owner) {
    base::MutexLock lock(&mu_);
    DIPC_CHECK(id < owners_.size());
    DIPC_CHECK(owner != kNoOwner);
    DIPC_CHECK(owners_[id] == kNoOwner || owners_[id] == owner);
    if (owners_[id] == owner) {
      return;
    }
    owners_[id] = owner;
    owner_ids_[owner].push_back(id);
    if (LiveLocked(id)) {
      ++owner_live_[owner];
    }
  }

  // Bulk revocation of every counter tagged `owner` — the one-call teardown
  // of a dead receiver's entire grant set (templates included), leaving
  // every other owner's grants untouched.
  void RevokeAllForOwner(uint64_t owner) {
    base::MutexLock lock(&mu_);
    auto it = owner_ids_.find(owner);
    if (it == owner_ids_.end()) {
      return;
    }
    for (uint64_t id : it->second) {
      if (LiveLocked(id)) {
        RevokeLocked(id);
      }
    }
  }

  // Number of ids handed out; lets tests assert "every async grant was
  // revoked" (an epoch still at 0 is a leaked capability).
  uint64_t size() const {
    base::MutexLock lock(&mu_);
    return counters_.size();
  }
  // Counters with an outstanding unrevoked grant; 0 after a clean teardown
  // means no capability anywhere still authorizes an access.
  uint64_t live_count() const {
    base::MutexLock lock(&mu_);
    return live_;
  }
  uint64_t LiveCountForOwner(uint64_t owner) const {
    base::MutexLock lock(&mu_);
    auto it = owner_live_.find(owner);
    return it == owner_live_.end() ? 0 : it->second;
  }

 private:
  bool LiveLocked(uint64_t id) const DIPC_REQUIRES(mu_) {
    DIPC_CHECK(id < counters_.size());
    return granted_epoch_[id] == counters_[id];
  }

  void RevokeLocked(uint64_t id) DIPC_REQUIRES(mu_) {
    DIPC_CHECK(id < counters_.size());
    if (LiveLocked(id)) {
      --live_;
      if (owners_[id] != kNoOwner) {
        --owner_live_[owners_[id]];
      }
    }
    ++counters_[id];
  }

  mutable base::Mutex mu_;
  std::vector<uint64_t> counters_ DIPC_GUARDED_BY(mu_);
  std::vector<hw::DomainTag> creators_ DIPC_GUARDED_BY(mu_);
  // Epoch at which the counter was last granted (mint/rebind); live iff it
  // equals the current counter value.
  std::vector<uint64_t> granted_epoch_ DIPC_GUARDED_BY(mu_);
  std::vector<uint64_t> owners_ DIPC_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::vector<uint64_t>> owner_ids_ DIPC_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, uint64_t> owner_live_ DIPC_GUARDED_BY(mu_);
  uint64_t live_ DIPC_GUARDED_BY(mu_) = 0;
};

struct Capability {
  hw::VirtAddr base = 0;
  uint64_t size = 0;
  Perm rights = Perm::kNone;
  CapType type = CapType::kSync;

  // Sync: owning thread (opaque id) and the call depth at creation; the
  // capability dies when that frame returns (enforced via DCS truncation and
  // the depth check below).
  uint64_t owner_thread = 0;
  uint32_t create_depth = 0;

  // Async: revocation counter id + epoch snapshot.
  uint64_t revocation_id = 0;
  uint64_t revocation_epoch = 0;

  bool Covers(hw::VirtAddr addr, uint64_t len, Perm want) const {
    return AtLeast(rights, want) && addr >= base && len <= size && addr - base <= size - len;
  }

  bool ValidFor(uint64_t thread_id, uint32_t current_depth, const RevocationTable& rev) const {
    if (type == CapType::kSync) {
      return owner_thread == thread_id && create_depth <= current_depth;
    }
    return rev.Epoch(revocation_id) == revocation_epoch;
  }

  // Derivation (§4.2): a new capability is always derived from an existing
  // one (or the APL); it can only narrow the range and weaken the rights.
  bool CanDerive(const Capability& child) const {
    return child.base >= base && child.size <= size && child.base - base <= size - child.size &&
           AtLeast(rights, child.rights);
  }
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_CAPABILITY_H_
