// Transient data-sharing capabilities (§4.2).
//
// Capabilities grant access to arbitrary byte ranges, are created and
// destroyed by *unprivileged* code, cannot be forged, live in 8 per-thread
// capability registers (separate from regular registers), occupy 32 B in
// memory, and come in two flavours:
//   - synchronous: tied to the creating thread's call frame; implicitly
//     revoked when that frame returns; cannot be passed across threads.
//   - asynchronous: may be passed across threads; support immediate
//     revocation through revocation counters.
#ifndef DIPC_CODOMS_CAPABILITY_H_
#define DIPC_CODOMS_CAPABILITY_H_

#include <cstdint>
#include <vector>

#include "base/check.h"
#include "codoms/perm.h"
#include "hw/types.h"

namespace dipc::codoms {

enum class CapType : uint8_t {
  kSync,
  kAsync,
};

// Architectural size of a capability stored in memory (§4.2).
inline constexpr uint64_t kCapMemBytes = 32;

// Revocation counters for asynchronous capabilities (§4.2: "immediate
// revocation through revocation counters"). A capability snapshots the
// counter value at creation; bumping the counter invalidates every
// capability derived from it.
//
// Each counter remembers the domain that created it. The counter is that
// domain's private state: only the creator may *re-snapshot* a cached
// capability against the counter's current value (epoch rebind — see
// Codoms::CapRebind), which is what lets a trusted runtime rotate buffer
// ownership without re-minting, while revocation stays authoritative for
// every other holder of the capability.
class RevocationTable {
 public:
  uint64_t Allocate(hw::DomainTag creator = hw::kInvalidDomainTag) {
    counters_.push_back(0);
    creators_.push_back(creator);
    return counters_.size() - 1;
  }

  uint64_t Epoch(uint64_t id) const {
    DIPC_CHECK(id < counters_.size());
    return counters_[id];
  }

  hw::DomainTag Creator(uint64_t id) const {
    DIPC_CHECK(id < creators_.size());
    return creators_[id];
  }

  void Revoke(uint64_t id) {
    DIPC_CHECK(id < counters_.size());
    ++counters_[id];
  }

  // Number of ids handed out; lets tests assert "every async grant was
  // revoked" (an epoch still at 0 is a leaked capability).
  uint64_t size() const { return counters_.size(); }

 private:
  std::vector<uint64_t> counters_;
  std::vector<hw::DomainTag> creators_;
};

struct Capability {
  hw::VirtAddr base = 0;
  uint64_t size = 0;
  Perm rights = Perm::kNone;
  CapType type = CapType::kSync;

  // Sync: owning thread (opaque id) and the call depth at creation; the
  // capability dies when that frame returns (enforced via DCS truncation and
  // the depth check below).
  uint64_t owner_thread = 0;
  uint32_t create_depth = 0;

  // Async: revocation counter id + epoch snapshot.
  uint64_t revocation_id = 0;
  uint64_t revocation_epoch = 0;

  bool Covers(hw::VirtAddr addr, uint64_t len, Perm want) const {
    return AtLeast(rights, want) && addr >= base && len <= size && addr - base <= size - len;
  }

  bool ValidFor(uint64_t thread_id, uint32_t current_depth, const RevocationTable& rev) const {
    if (type == CapType::kSync) {
      return owner_thread == thread_id && create_depth <= current_depth;
    }
    return rev.Epoch(revocation_id) == revocation_epoch;
  }

  // Derivation (§4.2): a new capability is always derived from an existing
  // one (or the APL); it can only narrow the range and weaken the rights.
  bool CanDerive(const Capability& child) const {
    return child.base >= base && child.size <= size && child.base - base <= size - child.size &&
           AtLeast(rights, child.rights);
  }
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_CAPABILITY_H_
