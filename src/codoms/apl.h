// Access Protection Lists (§4.1).
//
// Every domain tag T has an APL: the list of tags in the same address space
// that code pages tagged T can access, with a permission each. The APL table
// is privileged software-managed state; the per-hardware-thread APL cache
// (apl_cache.h) makes lookups fast.
#ifndef DIPC_CODOMS_APL_H_
#define DIPC_CODOMS_APL_H_

#include <cstdint>
#include <unordered_map>

#include "codoms/perm.h"
#include "hw/types.h"

namespace dipc::codoms {

using hw::DomainTag;

// One domain's access list. A domain always has implicit Write access to its
// own tag (its private code/data), subject to per-page protection bits.
class Apl {
 public:
  Perm PermFor(DomainTag target) const {
    auto it = grants_.find(target);
    return it == grants_.end() ? Perm::kNone : it->second;
  }

  void Set(DomainTag target, Perm perm) {
    if (perm == Perm::kNone) {
      grants_.erase(target);
    } else {
      grants_[target] = perm;
    }
  }

  size_t size() const { return grants_.size(); }
  uint64_t version() const { return version_; }
  void BumpVersion() { ++version_; }

  auto begin() const { return grants_.begin(); }
  auto end() const { return grants_.end(); }

 private:
  std::unordered_map<DomainTag, Perm> grants_;
  uint64_t version_ = 0;  // incremented on every change; invalidates caches
};

// All domains' APLs plus tag allocation. This stands in for the privileged
// in-memory protection structures the OS kernel maintains.
class AplTable {
 public:
  DomainTag AllocateTag() { return next_tag_++; }

  Apl& For(DomainTag tag) { return apls_[tag]; }

  const Apl* Find(DomainTag tag) const {
    auto it = apls_.find(tag);
    return it == apls_.end() ? nullptr : &it->second;
  }

  // Sets src's permission over dst and bumps src's APL version so stale APL
  // cache entries get refreshed.
  void Grant(DomainTag src, DomainTag dst, Perm perm) {
    Apl& apl = apls_[src];
    apl.Set(dst, perm);
    apl.BumpVersion();
  }

  void Revoke(DomainTag src, DomainTag dst) { Grant(src, dst, Perm::kNone); }

  void Free(DomainTag tag) { apls_.erase(tag); }

  size_t domain_count() const { return apls_.size(); }

 private:
  std::unordered_map<DomainTag, Apl> apls_;
  DomainTag next_tag_ = 1;  // tag 0 is kInvalidDomainTag
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_APL_H_
