// Per-thread CODOMs state: capability registers and the domain capability
// stack (DCS) (§4.2, §5.2.1).
//
// This is thread context — the scheduler saves/restores it on context
// switches, and dIPC proxies manipulate the privileged DCS bounds when
// enforcing DCS integrity/confidentiality (§5.2.3).
#ifndef DIPC_CODOMS_CAP_CONTEXT_H_
#define DIPC_CODOMS_CAP_CONTEXT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "base/result.h"
#include "codoms/capability.h"

namespace dipc::codoms {

inline constexpr uint32_t kNumCapRegisters = 8;

// The 8 per-thread capability registers. Memory accesses are checked against
// all of them in parallel (no per-access cost; §4.2).
class CapRegisters {
 public:
  const std::optional<Capability>& reg(uint32_t i) const { return regs_[i]; }

  void Set(uint32_t i, Capability cap) { regs_[i] = cap; }
  void Clear(uint32_t i) { regs_[i].reset(); }
  void ClearAll() { regs_.fill(std::nullopt); }

  // First capability register covering the access, if any.
  const Capability* FindCovering(hw::VirtAddr addr, uint64_t len, Perm want, uint64_t thread_id,
                                 uint32_t depth, const RevocationTable& rev) const {
    for (const auto& c : regs_) {
      if (c.has_value() && c->Covers(addr, len, want) && c->ValidFor(thread_id, depth, rev)) {
        return &*c;
      }
    }
    return nullptr;
  }

 private:
  std::array<std::optional<Capability>, kNumCapRegisters> regs_{};
};

// Domain capability stack: where threads spill capabilities. Bounded by two
// registers; unprivileged code moves the top via push/pop only, while the
// *base* is privileged — dIPC proxies raise it to hide the caller's entries
// (DCS integrity) and restore it on return (§5.2.3).
class Dcs {
 public:
  explicit Dcs(uint32_t capacity = 1024) : slots_(capacity) {}

  base::Status Push(const Capability& cap) {
    if (top_ >= slots_.size()) {
      return base::ErrorCode::kResourceExhausted;
    }
    slots_[top_++] = cap;
    return base::Status::Ok();
  }

  base::Result<Capability> Pop() {
    if (top_ <= base_) {
      return base::ErrorCode::kPermissionDenied;  // cannot pop below the base
    }
    return slots_[--top_];
  }

  // Privileged: raise the base to `new_base` (<= top), hiding older entries.
  // Returns the previous base so the proxy can restore it.
  uint64_t SetBase(uint64_t new_base) {
    DIPC_CHECK(new_base <= top_);
    uint64_t old = base_;
    base_ = new_base;
    return old;
  }
  // Privileged: restore a saved base (used by deisolate_pcall).
  void RestoreBase(uint64_t saved) { base_ = saved; }

  uint64_t base() const { return base_; }
  uint64_t top() const { return top_; }
  uint64_t visible_entries() const { return top_ - base_; }

  // Truncates to `depth` (used when a frame returns: its sync caps die).
  void TruncateTo(uint64_t depth) {
    DIPC_CHECK(depth <= top_);
    top_ = depth;
    if (base_ > top_) {
      base_ = top_;
    }
  }

 private:
  std::vector<Capability> slots_;
  uint64_t base_ = 0;
  uint64_t top_ = 0;
};

// Everything CODOMs keeps per thread.
struct ThreadCapContext {
  explicit ThreadCapContext(uint64_t thread_id) : thread_id(thread_id) {}

  uint64_t thread_id;
  hw::DomainTag current_domain = hw::kInvalidDomainTag;
  uint32_t call_depth = 0;  // cross-domain call nesting; scopes sync caps
  CapRegisters regs;
  Dcs dcs;
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_CAP_CONTEXT_H_
