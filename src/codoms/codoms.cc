#include "codoms/codoms.h"

#include <string>

#include "base/check.h"
#include "fault/fault.h"

namespace dipc::codoms {

Codoms::Codoms(hw::Machine& machine) : machine_(machine) {
  apl_caches_.reserve(machine.num_cpus());
  for (uint32_t i = 0; i < machine.num_cpus(); ++i) {
    apl_caches_.push_back(std::make_unique<AplCache>());
  }
  obs::Registry& reg = obs::Registry::Default();
  m_mints_ = reg.GetCounter("codoms/mints");
  m_rebinds_ = reg.GetCounter("codoms/rebinds");
  m_revokes_ = reg.GetCounter("codoms/revokes");
}

Codoms::CacheRef Codoms::EnsureCached(hw::CpuId cpu, DomainTag tag) {
  AplCache& cache = *apl_caches_[cpu];
  const hw::CostModel& costs = machine_.costs();
  if (auto hw_tag = cache.Lookup(tag); hw_tag.has_value() && !cache.IsStale(*hw_tag, apl_table_)) {
    cache.TouchLru(*hw_tag);
    cache.CountHit();
    return CacheRef{*hw_tag, costs.apl_cache_lookup, /*missed=*/false};
  }
  // Miss: exception into the kernel, software refill (§7.5).
  cache.CountMiss();
  HwDomainTag hw_tag = cache.Fill(tag, apl_table_);
  return CacheRef{hw_tag, costs.apl_cache_miss, /*missed=*/true};
}

base::Result<HwDomainTag> Codoms::ReadHwTag(hw::CpuId cpu, DomainTag tag, sim::Duration* cost) {
  *cost = machine_.costs().hw_tag_lookup;
  auto hw_tag = apl_caches_[cpu]->HwTagOf(tag);
  if (!hw_tag.has_value()) {
    return base::ErrorCode::kNotFound;
  }
  return *hw_tag;
}

Perm Codoms::EffectivePerm(hw::CpuId cpu, DomainTag current, DomainTag page_tag,
                           sim::Duration* cost) {
  if (page_tag == current) {
    // A domain implicitly has write access to its own pages (§4.1); the
    // check is against the page tag, in parallel with the TLB lookup.
    return Perm::kWrite;
  }
  CacheRef ref = EnsureCached(cpu, current);
  *cost += ref.cost;
  return apl_caches_[cpu]->entry(ref.hw_tag).apl.PermFor(page_tag);
}

base::Result<sim::Duration> Codoms::CheckDataAccess(hw::CpuId cpu, const hw::PageTable& pt,
                                                    ThreadCapContext& ctx, hw::VirtAddr va,
                                                    uint64_t len, hw::AccessType type) {
  DIPC_CHECK(type != hw::AccessType::kExecute);
  if (len == 0) {
    return sim::Duration::Zero();
  }
  Perm want = type == hw::AccessType::kWrite ? Perm::kWrite : Perm::kRead;
  sim::Duration cost;
  hw::VirtAddr end = va + len - 1;
  for (hw::VirtAddr page = hw::PageBase(va); page <= end; page += hw::kPageSize) {
    const hw::Pte* pte = pt.Lookup(page);
    if (pte == nullptr) {
      return base::ErrorCode::kFault;
    }
    // Per-page protection bits are honored regardless of domain grants.
    if (type == hw::AccessType::kWrite && !pte->flags.writable) {
      return base::ErrorCode::kFault;
    }
    if (AtLeast(EffectivePerm(cpu, ctx.current_domain, pte->tag, &cost), want)) {
      continue;
    }
    // Fall back to the 8 capability registers (checked in parallel on real
    // hardware; no extra architectural cost).
    hw::VirtAddr chunk_start = page > va ? page : va;
    hw::VirtAddr chunk_end = std::min<hw::VirtAddr>(page + hw::kPageSize - 1, end);
    const Capability* cap = ctx.regs.FindCovering(chunk_start, chunk_end - chunk_start + 1, want,
                                                  ctx.thread_id, ctx.call_depth, revocations_);
    if (cap == nullptr) {
      return base::ErrorCode::kFault;
    }
  }
  return cost;
}

base::Result<sim::Duration> Codoms::ControlTransfer(hw::CpuId cpu, const hw::PageTable& pt,
                                                    ThreadCapContext& ctx, hw::VirtAddr target) {
  const hw::Pte* pte = pt.Lookup(target);
  if (pte == nullptr || !pte->flags.executable) {
    return base::ErrorCode::kFault;
  }
  sim::Duration cost = machine_.costs().domain_switch;
  DomainTag dest = pte->tag;
  if (dest == ctx.current_domain) {
    return cost;  // intra-domain jump: plain call
  }
  Perm perm = EffectivePerm(cpu, ctx.current_domain, dest, &cost);
  bool allowed = false;
  if (AtLeast(perm, Perm::kRead)) {
    allowed = true;  // read grants arbitrary call/jump (§4.1)
  } else if (perm == Perm::kCall && IsEntryAligned(target)) {
    allowed = true;  // call grants entry-point-aligned targets only
  } else {
    // Capabilities can authorize control transfers too (the proxy return
    // path relies on this, §5.2.3 P3).
    const Capability* cap = ctx.regs.FindCovering(target, 1, Perm::kCall, ctx.thread_id,
                                                  ctx.call_depth, revocations_);
    if (cap != nullptr &&
        (AtLeast(cap->rights, Perm::kRead) || IsEntryAligned(target))) {
      allowed = true;
    }
  }
  if (!allowed) {
    return base::ErrorCode::kFault;
  }
  // Implicit domain switch: the instruction pointer now originates from
  // `dest`, so subsequent checks use dest's APL. Make sure its APL is cached
  // (cost accounts for a possible miss on first entry).
  CacheRef ref = EnsureCached(cpu, dest);
  cost += ref.cost;
  ctx.current_domain = dest;
  return cost;
}

bool Codoms::CanExecutePrivileged(const hw::PageTable& pt, hw::VirtAddr ip) const {
  const hw::Pte* pte = pt.Lookup(ip);
  return pte != nullptr && pte->flags.executable && pte->flags.priv_cap;
}

base::Result<Capability> Codoms::CapFromApl(hw::CpuId cpu, const hw::PageTable& pt,
                                            ThreadCapContext& ctx, hw::VirtAddr base,
                                            uint64_t size, Perm rights, CapType type,
                                            sim::Duration* cost) {
  *cost = machine_.costs().cap_setup;
  {
    // Models an exhausted revocation table / failed privileged mint; callers
    // already carry an undo path for a denied grant, so kFault exercises it.
    fault::Decision d = DIPC_FAULT_POINT(kCapMint, cpu);
    if (d.fail()) {
      return base::ErrorCode::kFault;
    }
    *cost += d.delay;
  }
  if (size == 0 || rights == Perm::kNone) {
    return base::ErrorCode::kInvalidArgument;
  }
  // The creating domain must itself hold `rights` over the whole range.
  hw::VirtAddr end = base + size - 1;
  for (hw::VirtAddr page = hw::PageBase(base); page <= end; page += hw::kPageSize) {
    const hw::Pte* pte = pt.Lookup(page);
    if (pte == nullptr) {
      return base::ErrorCode::kFault;
    }
    if (rights == Perm::kWrite && !pte->flags.writable) {
      return base::ErrorCode::kPermissionDenied;
    }
    if (!AtLeast(EffectivePerm(cpu, ctx.current_domain, pte->tag, cost), rights)) {
      return base::ErrorCode::kPermissionDenied;
    }
  }
  Capability cap;
  cap.base = base;
  cap.size = size;
  cap.rights = rights;
  cap.type = type;
  if (type == CapType::kSync) {
    cap.owner_thread = ctx.thread_id;
    cap.create_depth = ctx.call_depth;
  } else {
    cap.revocation_id = revocations_.Allocate(ctx.current_domain);
    cap.revocation_epoch = revocations_.Epoch(cap.revocation_id);
  }
  ++mints_;
  m_mints_->Add();
  // Attribute the mint to the minting domain (the runtime domain for
  // channels, a proxy domain for dIPC calls).
  obs::Registry::Default()
      .GetCounter("domain/" + std::to_string(ctx.current_domain) + "/caps_minted")
      ->Add();
  return cap;
}

base::Result<Capability> Codoms::CapDerive(const Capability& parent, ThreadCapContext& ctx,
                                           hw::VirtAddr base, uint64_t size, Perm rights,
                                           CapType type, sim::Duration* cost) {
  *cost = machine_.costs().cap_setup;
  if (!parent.ValidFor(ctx.thread_id, ctx.call_depth, revocations_)) {
    return base::ErrorCode::kFault;  // deriving from a dead capability
  }
  Capability child;
  child.base = base;
  child.size = size;
  child.rights = rights;
  child.type = type;
  if (!parent.CanDerive(child)) {
    return base::ErrorCode::kPermissionDenied;  // widening is impossible
  }
  if (type == CapType::kSync) {
    child.owner_thread = ctx.thread_id;
    child.create_depth = ctx.call_depth;
  } else {
    // Async children share the parent's revocation counter when the parent is
    // async (revoking the parent kills the tree); otherwise get a fresh one.
    if (parent.type == CapType::kAsync) {
      child.revocation_id = parent.revocation_id;
      child.revocation_epoch = parent.revocation_epoch;
    } else {
      child.revocation_id = revocations_.Allocate(ctx.current_domain);
      child.revocation_epoch = revocations_.Epoch(child.revocation_id);
    }
  }
  return child;
}

base::Status Codoms::CapRevoke(const Capability& cap) {
  if (cap.type != CapType::kAsync) {
    return base::ErrorCode::kInvalidArgument;  // sync caps die with their frame
  }
  revocations_.Revoke(cap.revocation_id);
  m_revokes_->Add();
  return base::Status::Ok();
}

base::Result<Capability> Codoms::CapRebind(const Capability& cap, const ThreadCapContext& ctx,
                                           sim::Duration* cost) {
  *cost = machine_.costs().cap_epoch_rebind;
  {
    fault::Decision d = DIPC_FAULT_POINT(kCapRebind);
    if (d.fail()) {
      return base::ErrorCode::kFault;
    }
    *cost += d.delay;
  }
  if (cap.type != CapType::kAsync) {
    return base::ErrorCode::kInvalidArgument;  // sync caps have no counter
  }
  if (revocations_.Creator(cap.revocation_id) != ctx.current_domain ||
      ctx.current_domain == hw::kInvalidDomainTag) {
    // Re-snapshotting from any other domain would resurrect revoked grants;
    // outsiders must go through CapFromApl/CapDerive and prove rights.
    return base::ErrorCode::kPermissionDenied;
  }
  Capability fresh = cap;
  fresh.revocation_epoch = revocations_.Epoch(cap.revocation_id);
  revocations_.ReGrant(cap.revocation_id);  // the counter is granted again
  m_rebinds_->Add();
  return fresh;
}

base::Status Codoms::CapStore(const hw::PageTable& pt, ThreadCapContext& ctx, hw::VirtAddr va,
                              const Capability& cap, sim::Duration* cost) {
  *cost = machine_.costs().cap_memory_op;
  {
    fault::Decision d = DIPC_FAULT_POINT(kCapStore);
    if (d.fail()) {
      return base::ErrorCode::kFault;
    }
    *cost += d.delay;
  }
  if (va % kCapMemBytes != 0) {
    return base::ErrorCode::kInvalidArgument;
  }
  const hw::Pte* pte = pt.Lookup(va);
  if (pte == nullptr || !pte->flags.cap_storage || !pte->flags.writable) {
    return base::ErrorCode::kFault;
  }
  if (!cap.ValidFor(ctx.thread_id, ctx.call_depth, revocations_)) {
    return base::ErrorCode::kFault;
  }
  // Sync capabilities cannot be laundered through memory into other threads:
  // storing is allowed, but ValidFor still binds them to the owner.
  auto pa = pt.Translate(va);
  DIPC_CHECK(pa.has_value());
  stored_caps_[*pa] = cap;
  return base::Status::Ok();
}

base::Result<Capability> Codoms::CapLoad(const hw::PageTable& pt, ThreadCapContext& ctx,
                                         hw::VirtAddr va, sim::Duration* cost) {
  *cost = machine_.costs().cap_memory_op;
  (void)ctx;
  if (va % kCapMemBytes != 0) {
    return base::ErrorCode::kInvalidArgument;
  }
  const hw::Pte* pte = pt.Lookup(va);
  if (pte == nullptr || !pte->flags.cap_storage) {
    return base::ErrorCode::kFault;
  }
  auto pa = pt.Translate(va);
  DIPC_CHECK(pa.has_value());
  auto it = stored_caps_.find(*pa);
  if (it == stored_caps_.end()) {
    return base::ErrorCode::kFault;  // no (valid) capability at this slot
  }
  return it->second;
}

void Codoms::NotifyPlainWrite(hw::PhysAddr pa, uint64_t len) {
  if (stored_caps_.empty() || len == 0) {
    return;
  }
  // Any plain write overlapping a stored capability destroys it.
  hw::PhysAddr first_slot = (pa / kCapMemBytes) * kCapMemBytes;
  hw::PhysAddr last = pa + len - 1;
  for (hw::PhysAddr slot = first_slot; slot <= last; slot += kCapMemBytes) {
    stored_caps_.erase(slot);
  }
}

}  // namespace dipc::codoms
