// Per-hardware-thread software-managed APL cache (§4.1, §4.3).
//
// The cache holds the access-grant information of recently executed domains.
// Each entry maps a domain tag to (1) a snapshot of that domain's APL and
// (2) a small hardware domain tag — the entry's slot index — used internally
// for access checks. The dIPC extension (§4.3) adds a privileged instruction
// that retrieves the hardware tag of any cached domain; dIPC's
// track_process_call fast path indexes a per-thread array with it (§6.1.2).
//
// The cache is software managed: on a miss the hardware raises an exception
// and the kernel refills the entry; the scheduler may swap contents lazily on
// context switches (§7.5).
#ifndef DIPC_CODOMS_APL_CACHE_H_
#define DIPC_CODOMS_APL_CACHE_H_

#include <array>
#include <cstdint>
#include <optional>

#include "codoms/apl.h"

namespace dipc::codoms {

// 32 entries -> 5-bit hardware domain tags (§4.3).
inline constexpr uint32_t kAplCacheEntries = 32;
using HwDomainTag = uint8_t;

class AplCache {
 public:
  struct Entry {
    DomainTag tag = hw::kInvalidDomainTag;
    uint64_t apl_version = 0;
    Apl apl;  // snapshot at fill time
    uint64_t lru = 0;
  };

  // Returns the slot (hardware tag) for `tag` if cached with a current
  // snapshot, else nullopt (a miss: the kernel must Fill()).
  std::optional<HwDomainTag> Lookup(DomainTag tag) const {
    for (uint32_t i = 0; i < kAplCacheEntries; ++i) {
      if (entries_[i].tag == tag) {
        return static_cast<HwDomainTag>(i);
      }
    }
    return std::nullopt;
  }

  // The §4.3 privileged instruction: hardware tag of a cached domain.
  std::optional<HwDomainTag> HwTagOf(DomainTag tag) const { return Lookup(tag); }

  const Entry& entry(HwDomainTag hw_tag) const { return entries_[hw_tag]; }

  // True if the cached snapshot for `hw_tag` is stale w.r.t. the APL table.
  // A domain with no APL registered at all is equivalent to an empty APL at
  // version 0 (fresh domains grant nothing), so only a version change —
  // grant_create/revoke bump it — invalidates the snapshot.
  bool IsStale(HwDomainTag hw_tag, const AplTable& table) const {
    const Entry& e = entries_[hw_tag];
    const Apl* current = table.Find(e.tag);
    uint64_t current_version = current != nullptr ? current->version() : 0;
    return current_version != e.apl_version;
  }

  // Kernel refill: snapshots `tag`'s APL into an LRU slot; returns the slot.
  HwDomainTag Fill(DomainTag tag, const AplTable& table) {
    uint32_t victim = 0;
    for (uint32_t i = 0; i < kAplCacheEntries; ++i) {
      if (entries_[i].tag == tag) {
        victim = i;  // refresh in place
        break;
      }
      if (entries_[i].lru < entries_[victim].lru) {
        victim = i;
      }
    }
    Entry& e = entries_[victim];
    e.tag = tag;
    const Apl* apl = table.Find(tag);
    if (apl != nullptr) {
      e.apl = *apl;
      e.apl_version = apl->version();
    } else {
      e.apl = Apl{};
      e.apl_version = 0;
    }
    e.lru = ++clock_;
    return static_cast<HwDomainTag>(victim);
  }

  void TouchLru(HwDomainTag hw_tag) { entries_[hw_tag].lru = ++clock_; }

  void Clear() {
    for (Entry& e : entries_) {
      e = Entry{};
    }
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void CountHit() { ++hits_; }
  void CountMiss() { ++misses_; }

 private:
  std::array<Entry, kAplCacheEntries> entries_{};
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_APL_CACHE_H_
