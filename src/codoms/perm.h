// CODOMs access permissions (§4.1).
//
// An APL entry grants the source domain one of three ordered permissions on
// the target domain: Call < Read < Write. dIPC adds a software-only "owner"
// permission on top (§5.2), which lives in dipc/, not here.
#ifndef DIPC_CODOMS_PERM_H_
#define DIPC_CODOMS_PERM_H_

#include <cstdint>
#include <string_view>

#include "hw/types.h"

namespace dipc::codoms {

enum class Perm : uint8_t {
  kNone = 0,
  // Call into public entry points (addresses aligned to kEntryAlign).
  kCall = 1,
  // Read data; also call/jump to arbitrary addresses.
  kRead = 2,
  // Read plus write (per-page protection bits still honored).
  kWrite = 3,
};

constexpr bool AtLeast(Perm have, Perm want) {
  return static_cast<uint8_t>(have) >= static_cast<uint8_t>(want);
}

constexpr Perm Weaker(Perm a, Perm b) { return AtLeast(a, b) ? b : a; }

constexpr std::string_view PermName(Perm p) {
  switch (p) {
    case Perm::kNone: return "none";
    case Perm::kCall: return "call";
    case Perm::kRead: return "read";
    case Perm::kWrite: return "write";
  }
  return "?";
}

// System-configurable entry point alignment (§4.1): calls through a Call
// grant must target addresses aligned to this value.
inline constexpr uint64_t kEntryAlign = 64;

constexpr bool IsEntryAligned(hw::VirtAddr va) { return (va % kEntryAlign) == 0; }

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_PERM_H_
