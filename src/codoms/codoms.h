// The CODOMs protection engine (§4).
//
// Ties together page-table tags, APLs, the per-CPU APL caches, and per-thread
// capability state, and implements the architectural checks:
//   - code-centric data access checks (the *instruction pointer's domain* is
//     the subject of access control, not the process);
//   - control-transfer checks (call/jump across domains switches the
//     effective domain implicitly, at negligible cost);
//   - capability creation/derivation/spill with unforgeability;
//   - the privileged-capability page bit (privileged code without syscalls);
//   - the dIPC extension: retrieving a cached domain's 5-bit hardware tag.
//
// Every operation returns the architectural cost for the caller to charge to
// the running thread; checks themselves run in parallel with TLB/cache
// lookups on real CODOMs and thus cost ~nothing on hits.
#ifndef DIPC_CODOMS_CODOMS_H_
#define DIPC_CODOMS_CODOMS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "codoms/apl.h"
#include "codoms/apl_cache.h"
#include "codoms/cap_context.h"
#include "codoms/capability.h"
#include "codoms/perm.h"
#include "hw/machine.h"
#include "hw/page_table.h"
#include "hw/types.h"
#include "obs/metrics.h"

namespace dipc::codoms {

class Codoms {
 public:
  explicit Codoms(hw::Machine& machine);
  Codoms(const Codoms&) = delete;
  Codoms& operator=(const Codoms&) = delete;

  AplTable& apl_table() { return apl_table_; }
  RevocationTable& revocations() { return revocations_; }
  AplCache& apl_cache(hw::CpuId cpu) { return *apl_caches_[cpu]; }

  // --- APL cache management ---

  // Ensures `tag`'s APL snapshot is present and current in `cpu`'s cache.
  // Returns the hardware tag; `cost` includes the miss exception + refill
  // when one occurred.
  struct CacheRef {
    HwDomainTag hw_tag;
    sim::Duration cost;
    bool missed;
  };
  CacheRef EnsureCached(hw::CpuId cpu, DomainTag tag);

  // The §4.3 privileged instruction: 5-bit hardware tag of a cached domain.
  // Takes "less than a L1 cache hit".
  base::Result<HwDomainTag> ReadHwTag(hw::CpuId cpu, DomainTag tag, sim::Duration* cost);

  // --- Architectural checks ---

  // Data access from `ctx.current_domain` to [va, va+len). On success returns
  // the protection-check cost (TLB/cache costs are charged separately by the
  // memory system).
  base::Result<sim::Duration> CheckDataAccess(hw::CpuId cpu, const hw::PageTable& pt,
                                              ThreadCapContext& ctx, hw::VirtAddr va, uint64_t len,
                                              hw::AccessType type);

  // Control transfer (call/jump) to code address `target`. On success the
  // thread's current domain is switched to the target page's domain and the
  // (near-zero) cost is returned. Enforces entry-point alignment for
  // Call-permission transfers, both via APL and via capabilities.
  base::Result<sim::Duration> ControlTransfer(hw::CpuId cpu, const hw::PageTable& pt,
                                              ThreadCapContext& ctx, hw::VirtAddr target);

  // True if code at `ip` may execute privileged instructions (per-page
  // privileged-capability bit, §4.1).
  bool CanExecutePrivileged(const hw::PageTable& pt, hw::VirtAddr ip) const;

  // --- Capability instructions (unprivileged) ---

  // Creates a capability over [base, base+size) derived from the current
  // domain's access rights (own pages or APL grants). Fails if the domain
  // cannot access the whole range with `rights`.
  base::Result<Capability> CapFromApl(hw::CpuId cpu, const hw::PageTable& pt,
                                      ThreadCapContext& ctx, hw::VirtAddr base, uint64_t size,
                                      Perm rights, CapType type, sim::Duration* cost);

  // Derives a narrower/weaker capability from an existing one.
  base::Result<Capability> CapDerive(const Capability& parent, ThreadCapContext& ctx,
                                     hw::VirtAddr base, uint64_t size, Perm rights, CapType type,
                                     sim::Duration* cost);

  // Immediate revocation of an async capability tree (bumps its counter).
  base::Status CapRevoke(const Capability& cap);

  // Epoch rebind: re-snapshots a cached async capability against its
  // revocation counter's current value, making the cached grant live again
  // after a revocation rotated ownership away and back. Only the domain
  // that created the counter may rebind (the counter is its private state),
  // so revocation stays authoritative for every other holder. O(1): one
  // counter load, no APL traversal, no mint.
  base::Result<Capability> CapRebind(const Capability& cap, const ThreadCapContext& ctx,
                                     sim::Duration* cost);

  // Spills/loads a capability to/from memory. The page needs the
  // capability-storage bit; plain data writes to the slot destroy the
  // capability (unforgeability without full memory tagging, §4.2).
  base::Status CapStore(const hw::PageTable& pt, ThreadCapContext& ctx, hw::VirtAddr va,
                        const Capability& cap, sim::Duration* cost);
  base::Result<Capability> CapLoad(const hw::PageTable& pt, ThreadCapContext& ctx, hw::VirtAddr va,
                                   sim::Duration* cost);

  // Called by the memory system on every plain write so overlapping stored
  // capabilities are invalidated.
  void NotifyPlainWrite(hw::PhysAddr pa, uint64_t len);

  uint64_t stored_cap_count() const { return stored_caps_.size(); }
  // Full mints performed through CapFromApl; lets tests assert a warmed
  // epoch-cached hot path never mints.
  uint64_t mint_count() const { return mints_; }

 private:
  // Permission the current domain has over `page_tag`, consulting the APL
  // cache; accumulates cost into *cost.
  Perm EffectivePerm(hw::CpuId cpu, DomainTag current, DomainTag page_tag, sim::Duration* cost);

  hw::Machine& machine_;
  AplTable apl_table_;
  RevocationTable revocations_;
  std::vector<std::unique_ptr<AplCache>> apl_caches_;
  uint64_t mints_ = 0;
  // Global capability-churn counters, registered in the ctor ("codoms/...");
  // mints additionally count into "domain/<tag>/caps_minted" for attribution
  // (per-mint registry lookup — mints are cold by design, so that's fine).
  obs::Counter* m_mints_ = nullptr;
  obs::Counter* m_rebinds_ = nullptr;
  obs::Counter* m_revokes_ = nullptr;
  // Physical address (32 B aligned) -> stored capability.
  std::unordered_map<hw::PhysAddr, Capability> stored_caps_;
};

}  // namespace dipc::codoms

#endif  // DIPC_CODOMS_CODOMS_H_
