// Batched channel hot path: steady-state per-message cost of the zero-copy
// channel as a function of the publish batch size, across payload sizes.
//
// batch == 1 is the single-message API: every Send/Recv pays the full
// per-message software toll (free-list pop, descriptor push/pop, free-list
// push, accounting, and a futex wake whenever the peer parked). batch == N
// publishes N descriptors per queue operation and pays that toll once per
// batch — the doorbell/notification-batching cure for fixed per-operation
// overhead ("Rethinking Programmed I/O"; MOO-IPC's control-plane argument).
// The capability work itself (epoch rebind + store + load + revoke) stays
// per message but is already mint-free in steady state (§4.2 revocation
// counters as the rotation mechanism), so the amortizable toll is exactly
// what this sweep shows shrinking.
//
// Pass --json to also write BENCH_chan_batch.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::ChanStreamConfig;
using dipc::bench::JsonEmitter;
using dipc::bench::MeasureChannelStream;

constexpr int kBatches[] = {1, 2, 4, 8, 16, 32, 64};
constexpr uint64_t kPayloads[] = {64, 4096, 65536};

void PrintBatchSweep(JsonEmitter& json) {
  std::printf("=== Batched channel: per-message cost vs batch size [ns] ===\n");
  std::printf("%9s", "batch");
  for (uint64_t p : kPayloads) {
    std::printf(" %9lluB", static_cast<unsigned long long>(p));
  }
  std::printf("\n");
  double small_b1 = 0, small_b32 = 0;
  for (int b : kBatches) {
    std::printf("%9d", b);
    for (uint64_t p : kPayloads) {
      char series[32];
      std::snprintf(series, sizeof(series), "payload%llu", static_cast<unsigned long long>(p));
      // Each (payload, batch) point is its own metrics window: under
      // --metrics the registry is snapshotted + zeroed at this boundary.
      char point[48];
      std::snprintf(point, sizeof(point), "%s_b%d", series, b);
      json.BeginSeries(point);
      double ns = MeasureChannelStream({.payload_bytes = p, .batch = b, .cross_cpu = true});
      std::printf(" %10.1f", ns);
      json.Row(series, static_cast<uint64_t>(b), ns);
      if (p == kPayloads[0] && b == 1) {
        small_b1 = ns;
      }
      if (p == kPayloads[0] && b == 32) {
        small_b32 = ns;
      }
    }
    std::printf("\n");
  }
  json.Row("speedup_b32_vs_b1_small_x1000", kPayloads[0],
           small_b32 > 0 ? small_b1 / small_b32 * 1000.0 : 0);
  std::printf(
      "(batch amortizes the fixed per-message toll: queue ops, accounting and futex\n"
      " wakes are paid once per batch; capability rotation stays per message but is\n"
      " mint-free in steady state. batch=32 vs batch=1 at %lluB: %.2fx)\n\n",
      static_cast<unsigned long long>(kPayloads[0]),
      small_b32 > 0 ? small_b1 / small_b32 : 0);
}

void BM_ChannelBatch(benchmark::State& state) {
  int b = static_cast<int>(state.range(0));
  double ns = MeasureChannelStream({.payload_bytes = 64, .batch = b, .cross_cpu = true});
  for (auto _ : state) {
    state.SetIterationTime(ns * 1e-9);
  }
  state.counters["batch"] = static_cast<double>(b);
}
BENCHMARK(BM_ChannelBatch)->Arg(1)->Arg(8)->Arg(32)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("chan_batch", &argc, argv);
  PrintBatchSweep(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
