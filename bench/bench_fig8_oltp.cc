// Figure 8: throughput of the dynamic web stack under vanilla Linux, dIPC
// and the Ideal unsafe build, for the on-disk and in-memory database
// configurations across 4..512 threads per component. The paper reports
// dIPC speedups up to 3.18x (on-disk) and 5.12x (in-memory), always >= 94%
// of the Ideal configuration's efficiency.
// Pass --json to also write BENCH_fig8_oltp.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "apps/oltp/oltp.h"
#include "micro_harness.h"

namespace {

using dipc::apps::DbStorage;
using dipc::apps::OltpConfig;
using dipc::apps::OltpMode;
using dipc::apps::OltpResult;
using dipc::apps::RunOltp;
using dipc::bench::JsonEmitter;

constexpr int kThreadSweep[] = {4, 16, 64, 256, 512};

OltpConfig Fig8Config(OltpMode mode, DbStorage storage, int threads) {
  OltpConfig c;
  c.mode = mode;
  c.storage = storage;
  c.threads = threads;
  c.warmup = dipc::sim::Duration::Millis(50);
  c.measure = dipc::sim::Duration::Millis(350);
  return c;
}

void PrintPanel(JsonEmitter& json, DbStorage storage) {
  const char* skey = storage == DbStorage::kDisk ? "disk" : "mem";
  std::printf("--- %s DB ---\n", storage == DbStorage::kDisk ? "on-disk" : "in-memory");
  std::printf("%8s %14s %14s %14s %14s %10s %10s %8s\n", "threads", "Linux[op/m]", "Chan[op/m]",
              "dIPC[op/m]", "Ideal[op/m]", "dIPC x", "Ideal x", "dIPC eff");
  for (int threads : kThreadSweep) {
    // Each configuration is its own metrics window: under --metrics the
    // registry is snapshotted + zeroed at this boundary, so a snapshot
    // covers exactly one RunOltp and not the whole binary's history.
    auto run = [&](OltpMode mode, const char* prefix) {
      json.BeginSeries(std::string(prefix) + "_" + skey + "_t" + std::to_string(threads));
      return RunOltp(Fig8Config(mode, storage, threads));
    };
    OltpResult linux_r = run(OltpMode::kLinuxIpc, "linux");
    OltpResult chan_r = run(OltpMode::kChan, "chan");
    OltpResult dipc_r = run(OltpMode::kDipc, "dipc");
    OltpResult ideal_r = run(OltpMode::kIdeal, "ideal");
    std::printf("%8d %14.0f %14.0f %14.0f %14.0f %9.2fx %9.2fx %7.0f%%\n", threads,
                linux_r.ops_per_min, chan_r.ops_per_min, dipc_r.ops_per_min, ideal_r.ops_per_min,
                dipc_r.ops_per_min / linux_r.ops_per_min,
                ideal_r.ops_per_min / linux_r.ops_per_min,
                100.0 * dipc_r.ops_per_min / ideal_r.ops_per_min);
    auto per_op_ns = [](const OltpResult& r) {
      return r.operations > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.operations) : 0.0;
    };
    json.Row(std::string("linux_") + skey, threads, per_op_ns(linux_r));
    json.Row(std::string("chan_") + skey, threads, per_op_ns(chan_r));
    json.Row(std::string("dipc_") + skey, threads, per_op_ns(dipc_r));
    json.Row(std::string("ideal_") + skey, threads, per_op_ns(ideal_r));
  }
  std::printf("\n");
}

// Receiver-count sweep for the fan-out-sharded channel mode: how the chan
// tier scales with the number of PHP/DB worker domains the web tier shards
// across (64 web threads, in-memory DB).
void PrintWorkerSweep(JsonEmitter& json) {
  std::printf("--- Chan mode: PHP/DB worker-domain sweep (64 threads, in-memory) ---\n");
  std::printf("%8s %14s %14s\n", "workers", "Chan[op/m]", "ns/op");
  for (int workers : {1, 2, 4, 8}) {
    OltpConfig c = Fig8Config(OltpMode::kChan, DbStorage::kMemory, 64);
    c.chan_workers = workers;
    json.BeginSeries("chan_mem_workers_w" + std::to_string(workers));
    OltpResult r = RunOltp(c);
    double per_op_ns =
        r.operations > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.operations) : 0.0;
    std::printf("%8d %14.0f %14.0f\n", workers, r.ops_per_min, per_op_ns);
    json.Row("chan_mem_workers", workers, per_op_ns);
  }
  std::printf("\n");
}

// Multi-tenant fabric sweep: many web-tier client domains sharing the same
// 4-worker PHP tier through the service fabric. With shared trios the whole
// fabric presents a handful of domain tags to the 32-entry per-CPU APL
// cache no matter the tenant count; with per-channel trios every tenant's
// plane pair brings its own, and hundreds of tenants thrash the cache.
void PrintTenantSweep(JsonEmitter& json) {
  std::printf("--- Chan mode: multi-tenant fabric sweep (64 threads, 4 workers, in-memory) ---\n");
  std::printf("%8s %10s %14s %14s\n", "tenants", "trios", "Chan[op/m]", "ns/op");
  for (bool shared : {true, false}) {
    const char* series = shared ? "oltp_tenants_shared" : "oltp_tenants_pertrio";
    for (int tenants : {1, 8, 32, 128}) {
      OltpConfig c = Fig8Config(OltpMode::kChan, DbStorage::kMemory, 64);
      c.chan_workers = 4;
      c.tenants = tenants;
      c.shared_trios = shared;
      // The big rows multiply the live-channel count into the thousands;
      // a shorter window keeps the whole sweep tractable.
      c.measure = dipc::sim::Duration::Millis(tenants >= 32 ? 100 : 250);
      json.BeginSeries(std::string(series) + "_n" + std::to_string(tenants));
      OltpResult r = RunOltp(c);
      double per_op_ns =
          r.operations > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.operations) : 0.0;
      std::printf("%8d %10s %14.0f %14.0f\n", tenants, shared ? "shared" : "per-chan",
                  r.ops_per_min, per_op_ns);
      json.Row(series, static_cast<uint64_t>(tenants), per_op_ns);
    }
  }
  std::printf("\n");
}

void PrintFig8(JsonEmitter& json) {
  std::printf("=== Figure 8: dynamic web serving throughput (4 CPUs) ===\n");
  PrintPanel(json, DbStorage::kDisk);
  PrintPanel(json, DbStorage::kMemory);
  PrintWorkerSweep(json);
  PrintTenantSweep(json);
  std::printf("paper: dIPC up to 3.18x (disk) / 5.12x (memory) over Linux;\n");
  std::printf("       speedups peak at 16 threads; dIPC >= 94%% of Ideal everywhere.\n");
  std::printf("(Chan: fan-out-sharded worker domains over zero-copy channels; JSON rows\n");
  std::printf(" are per-operation wall time in ns)\n\n");
}

void BM_Oltp(benchmark::State& state) {
  OltpMode mode = static_cast<OltpMode>(state.range(0));
  DbStorage storage = state.range(1) == 0 ? DbStorage::kDisk : DbStorage::kMemory;
  int threads = static_cast<int>(state.range(2));
  OltpResult r = RunOltp(Fig8Config(mode, storage, threads));
  for (auto _ : state) {
    state.SetIterationTime(r.operations > 0
                               ? r.wall_seconds / static_cast<double>(r.operations)
                               : r.wall_seconds);
  }
  state.counters["ops_per_min"] = r.ops_per_min;
}
BENCHMARK(BM_Oltp)
    ->Args({0, 1, 64})   // Linux, memory
    ->Args({1, 1, 64})   // dIPC, memory
    ->Args({2, 1, 64})   // Ideal, memory
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("fig8_oltp", &argc, argv);
  PrintFig8(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
