// Figure 5: performance of synchronous calls in dIPC and other primitives
// (1-byte argument). Also §7.2's derived claims: dIPC is 64.12x faster than
// local RPC and 8.87x faster than L4; asymmetric policies span up to 8.47x;
// cross-process speedups range 14.16x-120.67x; eliding the TLS switch would
// buy 1.54x-3.22x.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::DipcMicroConfig;
using dipc::bench::MeasureDipc;
using dipc::bench::MeasureDipcUserRpc;
using dipc::bench::MeasureFunction;
using dipc::bench::MeasureL4;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MeasureSemaphore;
using dipc::bench::MeasureSyscall;
using dipc::bench::MicroConfig;

using dipc::bench::JsonEmitter;

struct Row {
  const char* name;
  const char* key;
  double ns;
};

void PrintFig5Table(JsonEmitter& json) {
  MicroConfig same{.arg_bytes = 1, .rounds = 400, .cross_cpu = false};
  MicroConfig cross{.arg_bytes = 1, .rounds = 400, .cross_cpu = true};

  // Each primitive gets its own metrics series (BeginSeries resets the
  // registry), so --metrics counters attribute to one measurement each.
  json.BeginSeries("func");
  double func = MeasureFunction(same).roundtrip_ns;
  json.BeginSeries("syscall");
  double sys = MeasureSyscall(same).roundtrip_ns;
  json.BeginSeries("dipc_low");
  double dipc_low = MeasureDipc({.cross_process = false, .high_policy = false}).roundtrip_ns;
  json.BeginSeries("dipc_high");
  double dipc_high = MeasureDipc({.cross_process = false, .high_policy = true}).roundtrip_ns;
  json.BeginSeries("sem_same");
  double sem_same = MeasureSemaphore(same).roundtrip_ns;
  json.BeginSeries("sem_cross");
  double sem_cross = MeasureSemaphore(cross).roundtrip_ns;
  json.BeginSeries("pipe_same");
  double pipe_same = MeasurePipe(same).roundtrip_ns;
  json.BeginSeries("pipe_cross");
  double pipe_cross = MeasurePipe(cross).roundtrip_ns;
  json.BeginSeries("dipc_proc_low");
  double proc_low = MeasureDipc({.cross_process = true, .high_policy = false}).roundtrip_ns;
  json.BeginSeries("dipc_proc_high");
  double proc_high = MeasureDipc({.cross_process = true, .high_policy = true}).roundtrip_ns;
  json.BeginSeries("rpc_same");
  double rpc_same = MeasureLocalRpc(same).roundtrip_ns;
  json.BeginSeries("rpc_cross");
  double rpc_cross = MeasureLocalRpc(cross).roundtrip_ns;
  json.BeginSeries("l4_same");
  double l4_same = MeasureL4(same).roundtrip_ns;
  json.BeginSeries("l4_cross");
  double l4_cross = MeasureL4(cross).roundtrip_ns;
  json.BeginSeries("dipc_user_rpc");
  double user_rpc = MeasureDipcUserRpc(cross).roundtrip_ns;
  json.BeginSeries("dipc_proc_low_notls");
  double proc_low_notls =
      MeasureDipc({.cross_process = true, .high_policy = false, .arg_bytes = 1, .rounds = 300,
                   .elide_tls_switch = true})
          .roundtrip_ns;
  json.BeginSeries("dipc_proc_high_notls");
  double proc_high_notls =
      MeasureDipc({.cross_process = true, .high_policy = true, .arg_bytes = 1, .rounds = 300,
                   .elide_tls_switch = true})
          .roundtrip_ns;

  std::printf("=== Figure 5: synchronous calls, 1-byte argument ===\n");
  std::printf("%-28s %12s %10s\n", "primitive", "time [ns]", "x func");
  Row rows[] = {
      {"Func.", "func", func},
      {"Syscall", "syscall", sys},
      {"dIPC - Low (=CPU)", "dipc_low", dipc_low},
      {"dIPC - High (=CPU)", "dipc_high", dipc_high},
      {"Sem. (=CPU)", "sem_same", sem_same},
      {"Sem. (!=CPU)", "sem_cross", sem_cross},
      {"Pipe (=CPU)", "pipe_same", pipe_same},
      {"Pipe (!=CPU)", "pipe_cross", pipe_cross},
      {"dIPC +proc - Low (=CPU)", "dipc_proc_low", proc_low},
      {"dIPC +proc - High (=CPU)", "dipc_proc_high", proc_high},
      {"L4 (=CPU)", "l4_same", l4_same},
      {"L4 (!=CPU)", "l4_cross", l4_cross},
      {"Local RPC (=CPU)", "rpc_same", rpc_same},
      {"Local RPC (!=CPU)", "rpc_cross", rpc_cross},
      {"dIPC - User RPC (!=CPU)", "dipc_user_rpc", user_rpc},
  };
  for (const Row& r : rows) {
    std::printf("%-28s %12.1f %9.0fx\n", r.name, r.ns, r.ns / func);
    json.Row(r.key, 0, r.ns);
  }
  json.Row("dipc_proc_low_notls", 0, proc_low_notls);
  json.Row("dipc_proc_high_notls", 0, proc_high_notls);
  std::printf("\n--- paper anchors (measured vs paper) ---\n");
  std::printf("RPC(=CPU) / dIPC+proc-High : %7.2fx   (paper: 64.12x)\n", rpc_same / proc_high);
  std::printf("L4(=CPU)  / dIPC+proc-High : %7.2fx   (paper:  8.87x)\n", l4_same / proc_high);
  std::printf("dIPC High / Low (=CPU)     : %7.2fx   (paper:  8.47x)\n", dipc_high / dipc_low);
  std::printf("Sem(=CPU) / dIPC+proc-High : %7.2fx   (paper: 14.16x)\n", sem_same / proc_high);
  std::printf("RPC(=CPU) / dIPC+proc-Low  : %7.2fx   (paper: 120.67x)\n", rpc_same / proc_low);
  std::printf("User RPC vs RPC(!=CPU)     : %7.2fx   (paper: ~2x faster)\n", rpc_cross / user_rpc);
  std::printf("TLS elision: +proc Low %.2fx, High %.2fx   (paper: 1.54x-3.22x)\n",
              proc_low / proc_low_notls, proc_high / proc_high_notls);
  std::printf("\n");
}

// Benchmark entries report the simulated round-trip time as manual time.
void ReportManual(benchmark::State& state, double ns) {
  for (auto _ : state) {
    state.SetIterationTime(ns * 1e-9);
  }
}

void BM_Function(benchmark::State& s) { ReportManual(s, MeasureFunction({}).roundtrip_ns); }
void BM_Syscall(benchmark::State& s) { ReportManual(s, MeasureSyscall({}).roundtrip_ns); }
void BM_DipcLow(benchmark::State& s) {
  ReportManual(s, MeasureDipc({.cross_process = false, .high_policy = false}).roundtrip_ns);
}
void BM_DipcHigh(benchmark::State& s) {
  ReportManual(s, MeasureDipc({.cross_process = false, .high_policy = true}).roundtrip_ns);
}
void BM_DipcProcLow(benchmark::State& s) {
  ReportManual(s, MeasureDipc({.cross_process = true, .high_policy = false}).roundtrip_ns);
}
void BM_DipcProcHigh(benchmark::State& s) {
  ReportManual(s, MeasureDipc({.cross_process = true, .high_policy = true}).roundtrip_ns);
}
void BM_Semaphore(benchmark::State& s) { ReportManual(s, MeasureSemaphore({}).roundtrip_ns); }
void BM_Pipe(benchmark::State& s) { ReportManual(s, MeasurePipe({}).roundtrip_ns); }
void BM_L4(benchmark::State& s) { ReportManual(s, MeasureL4({}).roundtrip_ns); }
void BM_LocalRpc(benchmark::State& s) { ReportManual(s, MeasureLocalRpc({}).roundtrip_ns); }

BENCHMARK(BM_Function)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Syscall)->UseManualTime()->Iterations(1);
BENCHMARK(BM_DipcLow)->UseManualTime()->Iterations(1);
BENCHMARK(BM_DipcHigh)->UseManualTime()->Iterations(1);
BENCHMARK(BM_DipcProcLow)->UseManualTime()->Iterations(1);
BENCHMARK(BM_DipcProcHigh)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Semaphore)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Pipe)->UseManualTime()->Iterations(1);
BENCHMARK(BM_L4)->UseManualTime()->Iterations(1);
BENCHMARK(BM_LocalRpc)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("fig5_sync_calls", &argc, argv);
  PrintFig5Table(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
