// Figure 7: bandwidth and latency overheads of isolating the Infiniband
// user-level driver, vs the in-application baseline, across transfer sizes
// 2^0..2^12. The paper: only dIPC sustains the NIC's low latency (~1%
// overhead); syscalls cost ~10%; full IPC costs >100% latency and >60%
// bandwidth at 4 KB.
// Pass --json to also write BENCH_fig7_driver.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/netpipe/netpipe.h"
#include "micro_harness.h"

namespace {

using dipc::apps::DriverIsolation;
using dipc::apps::NetpipeResult;
using dipc::apps::RunNetpipe;
using dipc::bench::JsonEmitter;

struct Variant {
  DriverIsolation iso;
  const char* key;
};

constexpr Variant kVariants[] = {
    {DriverIsolation::kDipcDomain, "dipc"},   {DriverIsolation::kDipcProcess, "dipc_proc"},
    {DriverIsolation::kKernel, "kernel"},     {DriverIsolation::kSemaphore, "sem"},
    {DriverIsolation::kPipe, "pipe"},         {DriverIsolation::kChannel, "chan"},
};

void PrintFig7(JsonEmitter& json) {
  std::printf("=== Figure 7: Infiniband driver isolation overheads ===\n");
  std::printf("latency overhead [%%] (lower is better)\n");
  std::printf("%9s %10s %10s %10s %10s %10s %10s\n", "size[B]", "dIPC", "dIPC+proc", "Kernel",
              "Sem", "Pipe", "Chan");
  for (int p = 0; p <= 12; p += 2) {
    uint64_t n = 1ull << p;
    // One metrics series per size row (baseline + all variants), so the
    // --metrics counters of each sweep point stay attributable.
    json.BeginSeries("lat_n" + std::to_string(n));
    double base = RunNetpipe({.isolation = DriverIsolation::kInline, .transfer_bytes = n})
                      .latency_us;
    std::printf("%9llu", static_cast<unsigned long long>(n));
    for (const Variant& v : kVariants) {
      double lat = RunNetpipe({.isolation = v.iso, .transfer_bytes = n}).latency_us;
      std::printf(" %9.1f%%", 100.0 * (lat - base) / base);
      json.Row(std::string(v.key) + "_lat_overhead_pct", n, 100.0 * (lat - base) / base);
    }
    std::printf("\n");
  }
  std::printf("\nbandwidth overhead [%%] (lower is better)\n");
  std::printf("%9s %10s %10s %10s %10s %10s %10s\n", "size[B]", "dIPC", "dIPC+proc", "Kernel",
              "Sem", "Pipe", "Chan");
  for (int p = 6; p <= 12; p += 2) {
    uint64_t n = 1ull << p;
    json.BeginSeries("bw_n" + std::to_string(n));
    double base = RunNetpipe({.isolation = DriverIsolation::kInline, .transfer_bytes = n})
                      .bandwidth_mbps;
    std::printf("%9llu", static_cast<unsigned long long>(n));
    for (const Variant& v : kVariants) {
      double bw = RunNetpipe({.isolation = v.iso, .transfer_bytes = n}).bandwidth_mbps;
      std::printf(" %9.1f%%", 100.0 * (base - bw) / base);
      json.Row(std::string(v.key) + "_bw_overhead_pct", n, 100.0 * (base - bw) / base);
    }
    std::printf("\n");
  }
  // Streaming burst sweep for the channel variant: batched post_send
  // publication amortizes the per-request driver-invocation toll (the
  // doorbell-batching argument applied to the isolated-driver hop).
  std::printf("\nchannel driver, streaming bursts (64 B): per-request time [us]\n");
  std::printf("%9s %12s\n", "burst", "per-req[us]");
  for (int burst : {1, 4, 16, 64}) {
    json.BeginSeries("chan_burst_b" + std::to_string(burst));
    NetpipeResult r = RunNetpipe({.isolation = DriverIsolation::kChannel,
                                  .transfer_bytes = 64,
                                  .rounds = 64,
                                  .burst = burst});
    std::printf("%9d %12.3f\n", burst, r.round_trip_us);
    json.Row("chan_burst_per_req", static_cast<uint64_t>(burst), r.round_trip_us * 1e3);
  }
  std::printf("\npaper: dIPC ~1%% latency overhead, syscalls ~10%%, IPC >100%%;\n");
  std::printf("       pipe copies push bandwidth overhead above 60%% at 4 KB.\n\n");
}

void BM_NetpipeLatency(benchmark::State& state) {
  DriverIsolation iso = static_cast<DriverIsolation>(state.range(0));
  NetpipeResult r = RunNetpipe({.isolation = iso, .transfer_bytes = 4});
  for (auto _ : state) {
    state.SetIterationTime(r.latency_us * 1e-6);
  }
  state.SetLabel(std::string(DriverIsolationName(iso)));
}
BENCHMARK(BM_NetpipeLatency)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("fig7_driver", &argc, argv);
  PrintFig7(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
