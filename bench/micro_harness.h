// Shared micro-benchmark harness: one synchronous producer->consumer call
// with an argument of a given size, measured over every IPC primitive the
// paper compares (§7.2, Figures 2, 5 and 6).
//
// Semantics follow the paper: the caller writes the argument, the callee
// reads it. Arguments <= 8 bytes travel in registers for function calls,
// dIPC and L4; Sem uses a pre-shared buffer (no copies); Pipe and RPC copy
// through the kernel; dIPC passes a pointer plus a CODOMs capability.
#ifndef DIPC_BENCH_MICRO_HARNESS_H_
#define DIPC_BENCH_MICRO_HARNESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "os/accounting.h"

namespace dipc::bench {

struct MicroConfig {
  uint64_t arg_bytes = 1;
  int rounds = 300;
  bool cross_cpu = false;
};

struct MicroResult {
  double roundtrip_ns = 0;
  os::TimeBreakdown breakdown;  // per round trip, summed over CPUs
};

MicroResult MeasureFunction(const MicroConfig& config);
MicroResult MeasureSyscall(const MicroConfig& config);
MicroResult MeasureSemaphore(const MicroConfig& config);
MicroResult MeasurePipe(const MicroConfig& config);
MicroResult MeasureLocalRpc(const MicroConfig& config);
MicroResult MeasureL4(const MicroConfig& config);

struct DipcMicroConfig {
  bool cross_process = false;  // "+proc"
  bool high_policy = false;    // Low vs High isolation
  uint64_t arg_bytes = 1;
  int rounds = 300;
  bool elide_tls_switch = false;  // §6.1.2's wrfsbase optimization headroom
};
MicroResult MeasureDipc(const DipcMicroConfig& config);

// "dIPC - User RPC (!=CPU)": cross-CPU RPC semantics implemented at user
// level — the arguments are copied into a shared buffer and a thread on
// another CPU processes them; the OS only synchronizes the threads (§7.2).
MicroResult MeasureDipcUserRpc(const MicroConfig& config);

// Zero-copy shared-memory channel (src/chan/): a one-slot channel gives
// synchronous producer->consumer semantics; the payload moves by capability
// grant, so the transfer cost is O(1) in arg_bytes.
MicroResult MeasureChannel(const MicroConfig& config);

// Streaming (pipelined) channel transfer: the producer keeps `batch`
// messages in flight per batched publish, the consumer drains batches.
// batch == 1 uses the single-message API (per-message queue ops, wakes and
// accounting); batch > 1 uses AcquireBufBatch/SendBatch/RecvBatch/
// ReleaseBatch, which pay the fixed software toll once per batch. Epoch
// caching warms during the warmup rotation either way. Returns the
// steady-state *per-message* cost in ns.
struct ChanStreamConfig {
  uint64_t payload_bytes = 64;
  int batch = 1;
  int messages = 2048;
  bool cross_cpu = true;
};
double MeasureChannelStream(const ChanStreamConfig& config);

// Fan-out streaming (src/chan/fanout.h): one producer publishes `messages`
// payloads to `receivers` receivers through a FanOutChannel — per-receiver
// epoch-cached read grants, credit-based flow control — either broadcast
// (every receiver gets every message) or round-robin sharded (each message
// to one receiver, the OLTP request-distribution shape). Receivers run on
// their own CPUs. Returns the steady-state wall time in ns per *published*
// message, i.e. what one producer-side message admission costs end to end.
struct FanOutStreamConfig {
  uint64_t payload_bytes = 64;
  uint32_t receivers = 4;
  int batch = 1;
  int messages = 1024;
  bool shard = false;
};
double MeasureFanOutStream(const FanOutStreamConfig& config);

// Fan-in streaming (src/chan/fanin.h): `producers` producer domains each
// publish their share of `messages` payloads into one consumer through a
// FanInChannel — per-producer epoch-cached write grants, per-producer
// credit lines, one shared descriptor FIFO. Producers run on their own
// CPUs. Returns the steady-state wall time in ns per *delivered* message,
// i.e. what one admission into the shared consumer costs end to end.
struct FanInStreamConfig {
  uint64_t payload_bytes = 64;
  uint32_t producers = 4;
  int batch = 1;
  int messages = 1024;  // total across all producers
};
double MeasureFanInStream(const FanInStreamConfig& config);

// Service-fabric echo (src/fabric/fabric.h): `tenants` client domains each
// drive `calls_per_tenant` request/response round trips across `workers`
// worker domains through the N x M fabric (per-tenant fan-out request
// plane + fan-in response plane, opid-matched dispatch). `shared_trio`
// toggles one domain-tag trio per plane direction (APL-cache friendly, the
// default) against a private trio per channel — at hundreds of tenants the
// latter overwhelms the 32-entry per-CPU APL cache and every access pays
// the miss. Returns the steady-state ns per completed call.
struct FabricEchoConfig {
  uint32_t tenants = 8;
  uint32_t workers = 4;
  int calls_per_tenant = 32;
  uint64_t req_bytes = 64;
  uint64_t resp_bytes = 64;
  bool shared_trio = true;
};
double MeasureFabricEcho(const FabricEchoConfig& config);

// --json flag support: benches record (series, x, value) rows and, when the
// flag was passed, write them to BENCH_<name>.json on destruction — the
// machine-readable perf trajectory consumed by CI. The constructor strips
// the flag from argv so benchmark::Initialize never sees it.
//
// Observability flags (also stripped):
//   --metrics        embed the obs::Registry snapshot as a "metrics" object
//                    in BENCH_<name>.json (or print it to stdout when --json
//                    is absent).
//   --trace[=path]   enable the global obs::TraceRing for the run and export
//                    Chrome trace_event JSON to `path` on destruction
//                    (default BENCH_<name>.trace.json). Tracing charges a
//                    modeled per-event cost, so traced numbers are *not*
//                    comparable with untraced ones — CI runs --trace as a
//                    separate invocation.
class JsonEmitter {
 public:
  JsonEmitter(std::string name, int* argc, char** argv);
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;
  ~JsonEmitter();

  bool enabled() const { return enabled_; }
  bool metrics() const { return metrics_; }
  bool tracing() const { return !trace_path_.empty(); }
  void Row(const std::string& series, uint64_t x, double value_ns);

  // Marks a series boundary for --metrics: snapshots the metric registry
  // under the previously opened label and zeroes it, so each series'
  // counters cover only its own measurement instead of accumulating
  // everything the binary ran before it. No-op without --metrics. Benches
  // that never call this keep the old single whole-run snapshot.
  void BeginSeries(const std::string& label);

 private:
  std::string name_;
  bool enabled_ = false;
  bool metrics_ = false;
  std::string trace_path_;  // empty = tracing off
  struct RowData {
    std::string series;
    uint64_t x;
    double value_ns;
  };
  std::vector<RowData> rows_;
  // --metrics per-series snapshots, in BeginSeries order; open_series_ is
  // the label accumulating since the last boundary ("" = none opened yet).
  std::vector<std::pair<std::string, std::string>> series_metrics_;
  std::string open_series_;
};

}  // namespace dipc::bench

#endif  // DIPC_BENCH_MICRO_HARNESS_H_
