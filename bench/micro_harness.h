// Shared micro-benchmark harness: one synchronous producer->consumer call
// with an argument of a given size, measured over every IPC primitive the
// paper compares (§7.2, Figures 2, 5 and 6).
//
// Semantics follow the paper: the caller writes the argument, the callee
// reads it. Arguments <= 8 bytes travel in registers for function calls,
// dIPC and L4; Sem uses a pre-shared buffer (no copies); Pipe and RPC copy
// through the kernel; dIPC passes a pointer plus a CODOMs capability.
#ifndef DIPC_BENCH_MICRO_HARNESS_H_
#define DIPC_BENCH_MICRO_HARNESS_H_

#include <cstdint>

#include "os/accounting.h"

namespace dipc::bench {

struct MicroConfig {
  uint64_t arg_bytes = 1;
  int rounds = 300;
  bool cross_cpu = false;
};

struct MicroResult {
  double roundtrip_ns = 0;
  os::TimeBreakdown breakdown;  // per round trip, summed over CPUs
};

MicroResult MeasureFunction(const MicroConfig& config);
MicroResult MeasureSyscall(const MicroConfig& config);
MicroResult MeasureSemaphore(const MicroConfig& config);
MicroResult MeasurePipe(const MicroConfig& config);
MicroResult MeasureLocalRpc(const MicroConfig& config);
MicroResult MeasureL4(const MicroConfig& config);

struct DipcMicroConfig {
  bool cross_process = false;  // "+proc"
  bool high_policy = false;    // Low vs High isolation
  uint64_t arg_bytes = 1;
  int rounds = 300;
  bool elide_tls_switch = false;  // §6.1.2's wrfsbase optimization headroom
};
MicroResult MeasureDipc(const DipcMicroConfig& config);

// "dIPC - User RPC (!=CPU)": cross-CPU RPC semantics implemented at user
// level — the arguments are copied into a shared buffer and a thread on
// another CPU processes them; the OS only synchronizes the threads (§7.2).
MicroResult MeasureDipcUserRpc(const MicroConfig& config);

}  // namespace dipc::bench

#endif  // DIPC_BENCH_MICRO_HARNESS_H_
