#include "micro_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "chan/channel.h"
#include "chan/fanin.h"
#include "chan/fanout.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "fabric/fabric.h"
#include "hw/machine.h"
#include "l4/l4_gate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/kernel.h"
#include "os/pipe.h"
#include "os/semaphore.h"
#include "rpc/rpc.h"

namespace dipc::bench {
namespace {

using os::TimeCat;
using sim::Duration;

// One self-contained simulated machine per measurement.
struct World {
  World() : machine(4), codoms(machine), kernel(machine, codoms) {}

  hw::Machine machine;
  codoms::Codoms codoms;
  os::Kernel kernel;
};

// Maps `len` bytes of shared memory into both processes at the same VA
// (each side sees its own domain tag; the frames are shared).
hw::VirtAddr MapShared(World& w, os::Process& a, os::Process& b, uint64_t len) {
  auto va = w.kernel.MapAnonymous(a, len, hw::PageFlags{.writable = true});
  DIPC_CHECK(va.ok());
  uint64_t pages = hw::PageRoundUp(len) / hw::kPageSize;
  for (uint64_t i = 0; i < pages; ++i) {
    const hw::Pte* pte = a.page_table().Lookup(va.value() + i * hw::kPageSize);
    DIPC_CHECK(pte != nullptr);
    DIPC_CHECK(b.page_table()
                   .MapPage(va.value() + i * hw::kPageSize, pte->frame,
                            hw::PageFlags{.writable = true}, b.default_domain())
                   .ok());
  }
  return va.value();
}

// Measurement wrapper: runs `rounds+warmup` with accounting reset after the
// warmup; converts totals to per-round values.
struct Window {
  explicit Window(World& w, int rounds) : w(w), rounds(rounds) {}
  void Begin() {
    w.kernel.accounting().Reset();
    t0 = w.kernel.now();
  }
  MicroResult Finish() {
    MicroResult r;
    r.roundtrip_ns = (w.kernel.now() - t0).nanos() / rounds;
    r.breakdown = w.kernel.accounting().Summed();
    for (auto& d : r.breakdown.by_cat) {
      d = Duration::Picos(d.picos() / rounds);
    }
    return r;
  }
  World& w;
  int rounds;
  sim::Time t0;
};

constexpr int kWarmup = 8;

}  // namespace

MicroResult MeasureFunction(const MicroConfig& config) {
  World w;
  os::Process& p = w.kernel.CreateProcess("app");
  auto buf = w.kernel.MapAnonymous(p, hw::PageRoundUp(config.arg_bytes + 1),
                                   hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  Window win(w, config.rounds);
  w.kernel.Spawn(p, "main", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    bool mem_arg = config.arg_bytes > 8;
    for (int i = -kWarmup; i < config.rounds; ++i) {
      if (i == 0) {
        win.Begin();
      }
      if (mem_arg) {
        (void)co_await k.TouchUser(env, buf.value(), config.arg_bytes, hw::AccessType::kWrite);
      }
      co_await k.Spend(*env.self, k.costs().function_call, TimeCat::kUser);
      if (mem_arg) {
        (void)co_await k.TouchUser(env, buf.value(), config.arg_bytes, hw::AccessType::kRead);
      }
    }
  });
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureSyscall(const MicroConfig& config) {
  World w;
  os::Process& p = w.kernel.CreateProcess("app");
  auto buf = w.kernel.MapAnonymous(p, hw::PageRoundUp(config.arg_bytes + 1),
                                   hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());
  hw::PhysAddr kbuf = w.kernel.AllocKernelBuffer(hw::PageRoundUp(config.arg_bytes + 1));
  Window win(w, config.rounds);
  w.kernel.Spawn(p, "main", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    for (int i = -kWarmup; i < config.rounds; ++i) {
      if (i == 0) {
        win.Begin();
      }
      (void)co_await k.TouchUser(env, buf.value(), config.arg_bytes, hw::AccessType::kWrite);
      co_await k.SyscallEnter(env);
      (void)co_await k.CopyFromUser(env, kbuf, buf.value(), config.arg_bytes);
      co_await k.SyscallExit(env);
    }
  });
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureSemaphore(const MicroConfig& config) {
  World w;
  os::Process& client = w.kernel.CreateProcess("client");
  os::Process& server = w.kernel.CreateProcess("server");
  hw::VirtAddr shared = MapShared(w, client, server, hw::PageRoundUp(config.arg_bytes + 1));
  auto req = std::make_shared<os::Semaphore>(0);
  auto resp = std::make_shared<os::Semaphore>(0);
  int server_cpu = config.cross_cpu ? 1 : 0;
  Window win(w, config.rounds);
  w.kernel.Spawn(
      server, "server",
      [&, req, resp](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          co_await req->Wait(env);
          (void)co_await k.TouchUser(env, shared, config.arg_bytes, hw::AccessType::kRead);
          co_await resp->Post(env);
        }
      },
      server_cpu);
  w.kernel.Spawn(
      client, "client",
      [&, req, resp](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          (void)co_await k.TouchUser(env, shared, config.arg_bytes, hw::AccessType::kWrite);
          co_await req->Post(env);
          co_await resp->Wait(env);
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasurePipe(const MicroConfig& config) {
  World w;
  os::Process& client = w.kernel.CreateProcess("client");
  os::Process& server = w.kernel.CreateProcess("server");
  auto to_srv = std::make_shared<os::Pipe>(w.kernel);
  auto to_cli = std::make_shared<os::Pipe>(w.kernel);
  uint64_t buf_len = hw::PageRoundUp(config.arg_bytes + 1);
  auto cbuf = w.kernel.MapAnonymous(client, buf_len, hw::PageFlags{.writable = true});
  auto sbuf = w.kernel.MapAnonymous(server, buf_len, hw::PageFlags{.writable = true});
  DIPC_CHECK(cbuf.ok() && sbuf.ok());
  int server_cpu = config.cross_cpu ? 1 : 0;
  Window win(w, config.rounds);
  w.kernel.Spawn(
      server, "server",
      [&, to_srv, to_cli](os::Env env) -> sim::Task<void> {
        for (int i = -kWarmup; i < config.rounds; ++i) {
          uint64_t got = 0;
          while (got < config.arg_bytes) {
            auto n = co_await to_srv->Read(env, sbuf.value() + got, config.arg_bytes - got);
            DIPC_CHECK(n.ok() && n.value() > 0);
            got += n.value();
          }
          (void)co_await to_cli->Write(env, sbuf.value(), 1);
        }
      },
      server_cpu);
  w.kernel.Spawn(
      client, "client",
      [&, to_srv, to_cli](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          (void)co_await k.TouchUser(env, cbuf.value(), config.arg_bytes, hw::AccessType::kWrite);
          (void)co_await to_srv->Write(env, cbuf.value(), config.arg_bytes);
          auto n = co_await to_cli->Read(env, cbuf.value(), 1);
          DIPC_CHECK(n.ok());
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureLocalRpc(const MicroConfig& config) {
  World w;
  os::Process& client_proc = w.kernel.CreateProcess("client");
  os::Process& server_proc = w.kernel.CreateProcess("server");
  auto server = std::make_shared<rpc::RpcServer>(w.kernel);
  server->RegisterHandler(
      1, [](os::Env env, std::vector<std::byte> body) -> sim::Task<std::vector<std::byte>> {
        // The handler "reads" the argument it was handed (already charged as
        // unmarshal cost); reply is one byte.
        (void)env;
        (void)body;
        co_return std::vector<std::byte>(1);
      });
  auto listener = server->Bind("/rpc/echo");
  DIPC_CHECK(listener.ok());
  int server_cpu = config.cross_cpu ? 1 : 0;
  w.kernel.Spawn(
      server_proc, "svc",
      [&, server](os::Env env) -> sim::Task<void> {
        auto conn = co_await listener.value()->Accept(env);
        DIPC_CHECK(conn.ok());
        co_await server->ServeConn(env, std::move(conn).value());
      },
      server_cpu);
  Window win(w, config.rounds);
  w.kernel.Spawn(
      client_proc, "cli",
      [&](os::Env env) -> sim::Task<void> {
        auto client = co_await rpc::RpcClient::Connect(env, "/rpc/echo");
        DIPC_CHECK(client.ok());
        std::vector<std::byte> args(config.arg_bytes);
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          auto r = co_await client.value()->Call(env, 1, args);
          DIPC_CHECK(r.ok());
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureL4(const MicroConfig& config) {
  World w;
  os::Process& client = w.kernel.CreateProcess("client");
  os::Process& server = w.kernel.CreateProcess("server");
  auto gate = std::make_shared<l4::L4Gate>(w.kernel);
  int server_cpu = config.cross_cpu ? 1 : 0;
  w.kernel.Spawn(
      server, "svc",
      [&, gate](os::Env env) -> sim::Task<void> {
        l4::Message m = co_await gate->Recv(env);
        while (m.mr[0] != UINT64_MAX) {
          m = co_await gate->ReplyWait(env, m);
        }
        co_return;
      },
      server_cpu);
  Window win(w, config.rounds);
  w.kernel.Spawn(
      client, "cli",
      [&, gate](os::Env env) -> sim::Task<void> {
        l4::Message m;
        m.mr[0] = 1;  // one-byte argument inlined in registers
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          (void)co_await gate->Call(env, m);
        }
        l4::Message stop;
        stop.mr[0] = UINT64_MAX;
        (void)co_await gate->Call(env, stop);
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  MicroResult r = win.Finish();
  // The stop round leaks into the window tail; its cost is sub-1% at 300
  // rounds and outside [t0, finish) anyway because Finish snapshots first.
  return r;
}

MicroResult MeasureDipc(const DipcMicroConfig& config) {
  World w;
  if (config.elide_tls_switch) {
    w.machine.costs().tls_switch = Duration::Zero();
  }
  core::Dipc dipc(w.kernel);
  os::Process& caller = dipc.CreateDipcProcess("caller");
  os::Process& callee_proc =
      config.cross_process ? dipc.CreateDipcProcess("callee") : caller;
  auto callee_dom =
      config.cross_process ? dipc.DomDefault(callee_proc) : dipc.DomCreate(caller).value();
  core::IsolationPolicy policy =
      config.high_policy ? core::IsolationPolicy::High() : core::IsolationPolicy::Low();
  bool mem_arg = config.arg_bytes > 8;
  auto buf = w.kernel.MapAnonymous(caller, hw::PageRoundUp(config.arg_bytes + 1),
                                   hw::PageFlags{.writable = true});
  DIPC_CHECK(buf.ok());

  core::EntryDesc entry;
  entry.name = "consume";
  entry.signature = core::EntrySignature{.in_regs = 2, .out_regs = 1, .stack_bytes = 0};
  entry.policy = policy;
  entry.fn = [mem_arg](os::Env env, core::CallArgs args) -> sim::Task<uint64_t> {
    if (mem_arg) {
      // Consume the by-reference argument through the passed capability.
      auto s = co_await env.kernel->TouchUser(env, args.regs[0], args.regs[1],
                                              hw::AccessType::kRead);
      DIPC_CHECK(s.ok());
    }
    co_return 0;
  };
  auto handle = dipc.EntryRegister(callee_proc, *callee_dom, {entry});
  DIPC_CHECK(handle.ok());
  auto req = dipc.EntryRequest(caller, *handle.value(), {{entry.signature, policy}});
  DIPC_CHECK(req.ok());
  DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(caller), *req.value().proxy_domain).ok());
  core::ProxyRef proxy = req.value().proxies[0];

  Window win(w, config.rounds);
  w.kernel.Spawn(caller, "main", [&, proxy](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    for (int i = -kWarmup; i < config.rounds; ++i) {
      if (i == 0) {
        win.Begin();
      }
      core::CallArgs args;
      if (mem_arg) {
        (void)co_await k.TouchUser(env, buf.value(), config.arg_bytes, hw::AccessType::kWrite);
        sim::Duration cap_cost;
        auto cap = k.codoms().CapFromApl(env.self->last_cpu(), env.self->process().page_table(),
                                         env.self->cap_ctx(), buf.value(), config.arg_bytes,
                                         codoms::Perm::kRead, codoms::CapType::kSync, &cap_cost);
        DIPC_CHECK(cap.ok());
        co_await k.Spend(*env.self, cap_cost, TimeCat::kUser);
        env.self->cap_ctx().regs.Set(0, cap.value());
        args.regs[0] = buf.value();
        args.regs[1] = config.arg_bytes;
      }
      (void)co_await proxy.Call(env, args);
      DIPC_CHECK(env.self->TakeError() == base::ErrorCode::kOk);
    }
  });
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureDipcUserRpc(const MicroConfig& config) {
  // Cross-CPU RPC semantics at user level: the client copies the arguments
  // into a shared buffer and a service thread on another CPU consumes them;
  // only futexes enter the kernel.
  World w;
  core::Dipc dipc(w.kernel);
  os::Process& proc = dipc.CreateDipcProcess("app");
  uint64_t buf_len = hw::PageRoundUp(config.arg_bytes + 1);
  auto src = w.kernel.MapAnonymous(proc, buf_len, hw::PageFlags{.writable = true});
  auto shared = w.kernel.MapAnonymous(proc, buf_len, hw::PageFlags{.writable = true});
  DIPC_CHECK(src.ok() && shared.ok());
  auto req = std::make_shared<os::Semaphore>(0);
  auto resp = std::make_shared<os::Semaphore>(0);
  w.kernel.Spawn(
      proc, "service",
      [&, req, resp](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          co_await req->Wait(env);
          (void)co_await k.TouchUser(env, shared.value(), config.arg_bytes,
                                     hw::AccessType::kRead);
          co_await resp->Post(env);
        }
      },
      /*pin_cpu=*/1);
  Window win(w, config.rounds);
  w.kernel.Spawn(
      proc, "client",
      [&, req, resp](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          (void)co_await k.TouchUser(env, src.value(), config.arg_bytes, hw::AccessType::kWrite);
          // User-level copy into the buffer the service thread reads.
          (void)co_await k.TouchUser(env, src.value(), config.arg_bytes, hw::AccessType::kRead);
          (void)co_await k.TouchUser(env, shared.value(), config.arg_bytes,
                                     hw::AccessType::kWrite);
          co_await req->Post(env);
          co_await resp->Wait(env);
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  return win.Finish();
}

MicroResult MeasureChannel(const MicroConfig& config) {
  World w;
  core::Dipc dipc(w.kernel);
  os::Process& prod = dipc.CreateDipcProcess("producer");
  os::Process& cons = dipc.CreateDipcProcess("consumer");
  // One slot makes the stream synchronous: AcquireBuf blocks until the
  // consumer released the previous message, matching the round-trip
  // semantics of the other design points.
  chan::ChannelConfig cc{.slots = 1,
                         .buf_bytes = std::max<uint64_t>(config.arg_bytes, 64)};
  auto ch = chan::Channel::Create(dipc, prod, cons, cc);
  DIPC_CHECK(ch.ok());
  std::shared_ptr<chan::Channel> chan_ptr = ch.value();
  int cons_cpu = config.cross_cpu ? 1 : 0;
  w.kernel.Spawn(
      cons, "consumer",
      [&, chan_ptr](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          auto msg = co_await chan_ptr->Recv(env);
          DIPC_CHECK(msg.ok());
          (void)co_await k.TouchUser(env, msg.value().va, msg.value().len,
                                     hw::AccessType::kRead);
          auto rel = co_await chan_ptr->Release(env, msg.value());
          DIPC_CHECK(rel.ok());
        }
      },
      cons_cpu);
  Window win(w, config.rounds);
  w.kernel.Spawn(
      prod, "producer",
      [&, chan_ptr](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        for (int i = -kWarmup; i < config.rounds; ++i) {
          if (i == 0) {
            win.Begin();
          }
          auto buf = co_await chan_ptr->AcquireBuf(env);
          DIPC_CHECK(buf.ok());
          (void)co_await k.TouchUser(env, buf.value().va, config.arg_bytes,
                                     hw::AccessType::kWrite);
          auto sent = co_await chan_ptr->Send(env, buf.value(), config.arg_bytes);
          DIPC_CHECK(sent.ok());
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  return win.Finish();
}

double MeasureChannelStream(const ChanStreamConfig& config) {
  World w;
  core::Dipc dipc(w.kernel);
  os::Process& prod = dipc.CreateDipcProcess("producer");
  os::Process& cons = dipc.CreateDipcProcess("consumer");
  const int batch = std::max(1, config.batch);
  chan::ChannelConfig cc{.slots = std::max<uint32_t>(8, static_cast<uint32_t>(2 * batch)),
                         .buf_bytes = std::max<uint64_t>(config.payload_bytes, 64)};
  auto ch = chan::Channel::Create(dipc, prod, cons, cc);
  DIPC_CHECK(ch.ok());
  std::shared_ptr<chan::Channel> chan_ptr = ch.value();
  // Warm one full slot rotation so every per-slot capability template is
  // minted and the segments are cache-warm; the measured window then runs
  // the epoch-cached steady state.
  const int warmup = static_cast<int>(cc.slots) + batch;
  const int total = config.messages + warmup;
  sim::Time t0, t_end;
  int measured_from = -1;  // messages already sent when the window opened
  w.kernel.Spawn(
      cons, "consumer",
      [&, chan_ptr](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        int consumed = 0;
        while (consumed < total) {
          if (batch == 1) {
            auto msg = co_await chan_ptr->Recv(env);
            DIPC_CHECK(msg.ok());
            (void)co_await k.TouchUser(env, msg.value().va, msg.value().len,
                                       hw::AccessType::kRead);
            DIPC_CHECK((co_await chan_ptr->Release(env, msg.value())).ok());
            ++consumed;
          } else {
            auto msgs = co_await chan_ptr->RecvBatch(env, static_cast<uint32_t>(batch));
            DIPC_CHECK(msgs.ok());
            for (const chan::Msg& m : msgs.value()) {
              chan_ptr->BindRecvCap(*env.self, m);
              (void)co_await k.TouchUser(env, m.va, m.len, hw::AccessType::kRead);
            }
            DIPC_CHECK((co_await chan_ptr->ReleaseBatch(env, msgs.value())).ok());
            consumed += static_cast<int>(msgs.value().size());
          }
        }
        t_end = env.kernel->now();
      },
      /*pin_cpu=*/config.cross_cpu ? 1 : 0);
  w.kernel.Spawn(
      prod, "producer",
      [&, chan_ptr](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        int sent = 0;
        while (sent < total) {
          if (sent >= warmup && measured_from < 0) {
            measured_from = sent;
            t0 = env.kernel->now();
          }
          int n = std::min(batch, total - sent);
          if (batch == 1) {
            auto buf = co_await chan_ptr->AcquireBuf(env);
            DIPC_CHECK(buf.ok());
            (void)co_await k.TouchUser(env, buf.value().va, config.payload_bytes,
                                       hw::AccessType::kWrite);
            DIPC_CHECK((co_await chan_ptr->Send(env, buf.value(), config.payload_bytes)).ok());
          } else {
            auto bufs = co_await chan_ptr->AcquireBufBatch(env, static_cast<uint32_t>(n));
            DIPC_CHECK(bufs.ok());
            std::vector<chan::SendItem> items;
            items.reserve(bufs.value().size());
            for (const chan::SendBuf& b : bufs.value()) {
              chan_ptr->BindSendCap(*env.self, b);
              (void)co_await k.TouchUser(env, b.va, config.payload_bytes,
                                         hw::AccessType::kWrite);
              items.push_back(chan::SendItem{b, config.payload_bytes});
            }
            DIPC_CHECK((co_await chan_ptr->SendBatch(env, items)).ok());
            n = static_cast<int>(items.size());
          }
          sent += n;
        }
      },
      /*pin_cpu=*/0);
  w.kernel.Run();
  DIPC_CHECK(measured_from >= 0 && measured_from < total);
  return (t_end - t0).nanos() / (total - measured_from);
}

double MeasureFanOutStream(const FanOutStreamConfig& config) {
  const uint32_t n_recv = std::max<uint32_t>(1, config.receivers);
  const int batch = std::max(1, config.batch);
  // One CPU for the producer plus one per receiver, so fan-out consumption
  // parallelizes the way the many-worker server scenarios do.
  hw::Machine machine(1 + n_recv);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);
  os::Process& prod = dipc.CreateDipcProcess("producer");
  std::vector<os::Process*> recv_procs;
  for (uint32_t r = 0; r < n_recv; ++r) {
    recv_procs.push_back(&dipc.CreateDipcProcess("worker"));
  }
  chan::FanOutConfig cc{.slots = std::max<uint32_t>(8, static_cast<uint32_t>(2 * batch)),
                        .buf_bytes = std::max<uint64_t>(config.payload_bytes, 64)};
  auto ch = chan::FanOutChannel::Create(dipc, prod, recv_procs, cc);
  DIPC_CHECK(ch.ok());
  std::shared_ptr<chan::FanOutChannel> fan = ch.value();
  const int warmup = static_cast<int>(cc.slots) + batch;
  const int total = config.messages + warmup;
  sim::Time t0, t_end;
  int measured_from = -1;
  // Receivers: drain batches until the orderly close; the last release
  // timestamp across all receivers closes the measurement window.
  for (uint32_t r = 0; r < n_recv; ++r) {
    kernel.Spawn(
        *recv_procs[r], "worker",
        [&, fan, r](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          while (true) {
            auto msgs = co_await fan->RecvBatch(env, r, static_cast<uint32_t>(batch));
            if (!msgs.ok()) {
              co_return;  // kBrokenChannel after the drain
            }
            for (const chan::Msg& m : msgs.value()) {
              fan->BindRecvCap(*env.self, r, m);
              (void)co_await k.TouchUser(env, m.va, m.len, hw::AccessType::kRead);
            }
            DIPC_CHECK((co_await fan->ReleaseBatch(env, r, msgs.value())).ok());
            t_end = env.kernel->now();
          }
        },
        /*pin_cpu=*/static_cast<int>(1 + r));
  }
  kernel.Spawn(
      prod, "producer",
      [&, fan](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        int sent = 0;
        while (sent < total) {
          if (sent >= warmup && measured_from < 0) {
            measured_from = sent;
            t0 = env.kernel->now();
          }
          uint32_t want = static_cast<uint32_t>(std::min(batch, total - sent));
          auto bufs = co_await fan->AcquireBufBatch(env, want);
          DIPC_CHECK(bufs.ok());
          std::vector<chan::SendItem> items;
          items.reserve(bufs.value().size());
          for (const chan::SendBuf& b : bufs.value()) {
            fan->BindSendCap(*env.self, b);
            (void)co_await k.TouchUser(env, b.va, config.payload_bytes, hw::AccessType::kWrite);
            items.push_back(chan::SendItem{b, config.payload_bytes});
          }
          base::Status sent_s = base::ErrorCode::kFault;
          if (config.shard) {
            uint32_t shard = fan->NextShard();
            DIPC_CHECK(shard < fan->receiver_count());
            sent_s = co_await fan->SendToBatch(env, items, shard);
          } else {
            sent_s = co_await fan->SendBatch(env, items);
          }
          DIPC_CHECK(sent_s.ok());
          sent += static_cast<int>(items.size());
        }
        fan->Close();
      },
      /*pin_cpu=*/0);
  kernel.Run();
  DIPC_CHECK(measured_from >= 0 && measured_from < total);
  return (t_end - t0).nanos() / (total - measured_from);
}

double MeasureFanInStream(const FanInStreamConfig& config) {
  const uint32_t n_prod = std::max<uint32_t>(1, config.producers);
  const int batch = std::max(1, config.batch);
  // One CPU for the consumer plus one per producer, mirroring the fan-out
  // harness (many client domains feeding one server tier).
  hw::Machine machine(1 + n_prod);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);
  std::vector<os::Process*> prod_procs;
  for (uint32_t p = 0; p < n_prod; ++p) {
    prod_procs.push_back(&dipc.CreateDipcProcess("client"));
  }
  os::Process& cons = dipc.CreateDipcProcess("server");
  chan::FanInConfig cc{
      .slots = std::max<uint32_t>(8, static_cast<uint32_t>(2 * batch) * n_prod),
      .buf_bytes = std::max<uint64_t>(config.payload_bytes, 64)};
  auto ch = chan::FanInChannel::Create(dipc, prod_procs, cons, cc);
  DIPC_CHECK(ch.ok());
  std::shared_ptr<chan::FanInChannel> fan = ch.value();
  const int warmup = static_cast<int>(cc.slots) + batch * static_cast<int>(n_prod);
  const int per_prod =
      (config.messages + warmup + static_cast<int>(n_prod) - 1) / static_cast<int>(n_prod);
  const int total = per_prod * static_cast<int>(n_prod);
  sim::Time t0, t_end;
  int received = 0;
  kernel.Spawn(
      cons, "server",
      [&, fan](os::Env env) -> sim::Task<void> {
        os::Kernel& k = *env.kernel;
        while (true) {
          auto msgs = co_await fan->RecvBatch(env, static_cast<uint32_t>(batch));
          if (!msgs.ok()) {
            co_return;  // kBrokenChannel after the drain
          }
          for (const chan::Msg& m : msgs.value()) {
            fan->BindRecvCap(*env.self, m);
            (void)co_await k.TouchUser(env, m.va, m.len, hw::AccessType::kRead);
          }
          DIPC_CHECK((co_await fan->ReleaseBatch(env, msgs.value())).ok());
          received += static_cast<int>(msgs.value().size());
          if (received <= warmup) {
            t0 = env.kernel->now();
          }
          t_end = env.kernel->now();
        }
      },
      /*pin_cpu=*/0);
  int producers_done = 0;
  for (uint32_t p = 0; p < n_prod; ++p) {
    kernel.Spawn(
        *prod_procs[p], "client",
        [&, fan, p](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          int sent = 0;
          while (sent < per_prod) {
            uint32_t want = static_cast<uint32_t>(std::min(batch, per_prod - sent));
            auto bufs = co_await fan->AcquireBufBatch(env, p, want);
            DIPC_CHECK(bufs.ok());
            std::vector<chan::SendItem> items;
            items.reserve(bufs.value().size());
            for (const chan::SendBuf& b : bufs.value()) {
              fan->BindSendCap(*env.self, b);
              (void)co_await k.TouchUser(env, b.va, config.payload_bytes,
                                         hw::AccessType::kWrite);
              items.push_back(chan::SendItem{b, config.payload_bytes});
            }
            DIPC_CHECK((co_await fan->SendBatch(env, p, items)).ok());
            sent += static_cast<int>(items.size());
          }
          if (++producers_done == static_cast<int>(n_prod)) {
            fan->Close();  // consumer drains, then sees the close
          }
        },
        /*pin_cpu=*/static_cast<int>(1 + p));
  }
  kernel.Run();
  DIPC_CHECK(received == total && total > warmup);
  return (t_end - t0).nanos() / (total - warmup);
}

double MeasureFabricEcho(const FabricEchoConfig& config) {
  const uint32_t tenants = std::max<uint32_t>(1, config.tenants);
  const uint32_t workers = std::max<uint32_t>(1, config.workers);
  const int calls = std::max(2, config.calls_per_tenant);
  hw::Machine machine(6);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);
  std::vector<os::Process*> clients;
  std::vector<os::Process*> worker_procs;
  for (uint32_t c = 0; c < tenants; ++c) {
    clients.push_back(&dipc.CreateDipcProcess("tenant"));
  }
  for (uint32_t w = 0; w < workers; ++w) {
    worker_procs.push_back(&dipc.CreateDipcProcess("worker"));
  }
  auto f = fabric::ServiceFabric::Create(dipc, clients, worker_procs,
                                         {.req_slots = 4,
                                          .req_bytes = std::max<uint64_t>(config.req_bytes, 8),
                                          .resp_slots = 4,
                                          .resp_bytes = std::max<uint64_t>(config.resp_bytes, 8),
                                          .shared_trio = config.shared_trio});
  DIPC_CHECK(f.ok());
  std::shared_ptr<fabric::ServiceFabric> fab = f.value();
  fab->StartAllDispatchers();
  fabric::ServiceFabric::Handler echo = [](os::Env, const chan::Msg&) -> sim::Task<void> {
    co_return;
  };
  for (uint32_t w = 0; w < workers; ++w) {
    for (uint32_t c = 0; c < tenants; ++c) {
      kernel.Spawn(*worker_procs[w], "serve", [fab, c, w, echo](os::Env env) -> sim::Task<void> {
        co_await fab->Serve(env, c, w, echo);
      });
    }
  }
  // First quarter of every tenant's calls warms the epoch caches (and, per
  // tenant, the APL entries the run will keep touching); the measurement
  // window covers the rest.
  const int warmup = static_cast<int>(tenants) * std::max(1, calls / 4);
  const int total = static_cast<int>(tenants) * calls;
  sim::Time t0, t_end;
  int completed = 0;
  int remaining = static_cast<int>(tenants);
  for (uint32_t c = 0; c < tenants; ++c) {
    kernel.Spawn(*clients[c], "web", [&, fab, c](os::Env env) -> sim::Task<void> {
      for (int i = 0; i < calls; ++i) {
        DIPC_CHECK((co_await fab->Call(env, c, fab->config().req_bytes)).ok());
        ++completed;
        if (completed <= warmup) {
          t0 = env.kernel->now();
        }
        t_end = env.kernel->now();
      }
      if (--remaining == 0) {
        fab->Close();
      }
    });
  }
  kernel.Run();
  DIPC_CHECK(completed == total && total > warmup);
  return (t_end - t0).nanos() / (total - warmup);
}

JsonEmitter::JsonEmitter(std::string name, int* argc, char** argv) : name_(std::move(name)) {
  for (int i = 1; i < *argc;) {
    const char* arg = argv[i];
    bool strip = true;
    if (std::strcmp(arg, "--json") == 0) {
      enabled_ = true;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_ = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path_ = "BENCH_" + name_ + ".trace.json";
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path_ = arg + 8;
      if (trace_path_.empty()) {
        trace_path_ = "BENCH_" + name_ + ".trace.json";
      }
    } else {
      strip = false;
    }
    if (strip) {
      // Shift including the argv[argc] null terminator the C runtime
      // guarantees, preserving that invariant for later parsers.
      for (int j = i; j < *argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --*argc;
    } else {
      ++i;
    }
  }
  if (tracing()) {
    obs::Trace().Enable();
  }
}

void JsonEmitter::Row(const std::string& series, uint64_t x, double value_ns) {
  rows_.push_back(RowData{series, x, value_ns});
}

void JsonEmitter::BeginSeries(const std::string& label) {
  if (!metrics_) {
    return;
  }
  if (!open_series_.empty()) {
    series_metrics_.emplace_back(open_series_, obs::Registry::Default().SnapshotJson());
  }
  obs::Registry::Default().Reset();
  open_series_ = label;
}

JsonEmitter::~JsonEmitter() {
  if (tracing()) {
    if (obs::Trace().ExportChromeTrace(trace_path_)) {
      std::fprintf(stderr, "wrote %s\n", trace_path_.c_str());
    } else {
      std::fprintf(stderr, "JsonEmitter: cannot write %s\n", trace_path_.c_str());
    }
    obs::Trace().Disable();
  }
  if (metrics_ && !open_series_.empty()) {
    series_metrics_.emplace_back(open_series_, obs::Registry::Default().SnapshotJson());
    open_series_.clear();
  }
  if (!enabled_) {
    if (metrics_) {
      // No BENCH json to embed into: print the snapshot(s) for eyeballing.
      if (series_metrics_.empty()) {
        std::printf("%s\n", obs::Registry::Default().SnapshotJson().c_str());
      } else {
        for (const auto& [label, snap] : series_metrics_) {
          std::printf("%s: %s\n", label.c_str(), snap.c_str());
        }
      }
    }
    return;
  }
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonEmitter: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\": \"%s\", \"unit\": \"ns\", \"rows\": [", name_.c_str());
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "%s\n  {\"series\": \"%s\", \"x\": %llu, \"value\": %.3f}",
                 i == 0 ? "" : ",", rows_[i].series.c_str(),
                 static_cast<unsigned long long>(rows_[i].x), rows_[i].value_ns);
  }
  std::fprintf(f, "\n]");
  if (metrics_) {
    if (series_metrics_.empty()) {
      // Whole-run snapshot (bench never declared series boundaries).
      std::fprintf(f, ",\n\"metrics\": %s", obs::Registry::Default().SnapshotJson().c_str());
    } else {
      // Per-series snapshots: each label's counters cover only its own
      // measurement (the registry was reset at every BeginSeries).
      std::fprintf(f, ",\n\"metrics\": {");
      for (size_t i = 0; i < series_metrics_.size(); ++i) {
        std::fprintf(f, "%s\n  \"%s\": %s", i == 0 ? "" : ",",
                     series_metrics_[i].first.c_str(), series_metrics_[i].second.c_str());
      }
      std::fprintf(f, "\n}");
    }
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows_.size());
}

}  // namespace dipc::bench
