// §7.5 ablations on the OLTP macro-benchmark (in-memory, 256 threads):
//
//  (a) Cross-domain call cost sensitivity: the paper argues proxy-mediated
//      calls could be up to 14x slower before voiding dIPC's benefit. We
//      sweep a proxy-cost multiplier and report the retained speedup.
//  (b) Worst-case capability pressure: one 32 B capability load for every
//      cross-domain memory access models ~12% throughput overhead, still
//      leaving ~1.59x over Linux.
//  Also reports the measured cross-domain calls per operation (~211).
// Pass --json to also write BENCH_s75_ablation.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "apps/oltp/oltp.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "hw/machine.h"
#include "micro_harness.h"
#include "os/kernel.h"

namespace {

using dipc::apps::DbStorage;
using dipc::apps::OltpConfig;
using dipc::apps::OltpMode;
using dipc::apps::OltpResult;
using dipc::apps::RunOltp;
using dipc::bench::JsonEmitter;

double PerOpNs(const OltpResult& r) {
  return r.operations > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.operations) : 0.0;
}

OltpConfig BaseConfig(OltpMode mode) {
  OltpConfig c;
  c.mode = mode;
  c.storage = DbStorage::kMemory;
  c.threads = 256;
  c.warmup = dipc::sim::Duration::Millis(50);
  c.measure = dipc::sim::Duration::Millis(350);
  return c;
}

void PrintAblation(JsonEmitter& json) {
  // Series boundaries bracket each simulated run so --metrics counters
  // attribute per measurement instead of smearing over the whole process.
  json.BeginSeries("linux_base");
  OltpResult linux_r = RunOltp(BaseConfig(OltpMode::kLinuxIpc));
  std::printf("=== §7.5 ablations (in-memory DB, 256 threads) ===\n");
  std::printf("Linux baseline: %.0f ops/min\n\n", linux_r.ops_per_min);
  json.Row("linux_per_op", 0, PerOpNs(linux_r));

  std::printf("(a) proxy-cost sensitivity\n");
  std::printf("%12s %14s %12s\n", "multiplier", "dIPC[op/m]", "vs Linux");
  for (double scale : {1.0, 2.0, 4.0, 8.0, 14.0, 20.0}) {
    OltpConfig c = BaseConfig(OltpMode::kDipc);
    c.proxy_cost_scale = scale;
    json.BeginSeries("proxy_scale_x" + std::to_string(static_cast<int>(scale)));
    OltpResult r = RunOltp(c);
    std::printf("%11.0fx %14.0f %11.2fx\n", scale, r.ops_per_min,
                r.ops_per_min / linux_r.ops_per_min);
    json.Row("dipc_per_op_vs_proxy_scale", static_cast<uint64_t>(scale), PerOpNs(r));
  }
  std::printf("paper: benefit survives up to ~14x slower cross-domain calls.\n\n");

  std::printf("(b) worst-case capability loads\n");
  OltpConfig base = BaseConfig(OltpMode::kDipc);
  json.BeginSeries("dipc_base");
  OltpResult r_base = RunOltp(base);
  OltpConfig caps = base;
  caps.worst_case_cap_loads = true;
  json.BeginSeries("dipc_worst_case_caps");
  OltpResult r_caps = RunOltp(caps);
  std::printf("dIPC             : %14.0f ops/min (%.2fx vs Linux)\n", r_base.ops_per_min,
              r_base.ops_per_min / linux_r.ops_per_min);
  std::printf("dIPC + cap loads : %14.0f ops/min (%.2fx vs Linux, %.1f%% overhead)\n",
              r_caps.ops_per_min, r_caps.ops_per_min / linux_r.ops_per_min,
              100.0 * (1.0 - r_caps.ops_per_min / r_base.ops_per_min));
  std::printf("paper: ~12%% modeled overhead, 1.59x speedup retained.\n\n");
  json.Row("dipc_per_op", 0, PerOpNs(r_base));
  json.Row("dipc_worst_case_caps_per_op", 0, PerOpNs(r_caps));

  double calls_per_op = r_base.operations > 0
                            ? static_cast<double>(r_base.cross_domain_calls) /
                                  static_cast<double>(r_base.operations)
                            : 0;
  std::printf("cross-domain calls per operation: %.0f (paper: 211)\n\n", calls_per_op);
}

// (c) APL-cache pressure: §7.5's first limitation notes that APL-cache
// misses never fire in the paper's benchmarks (7 domains << 32 entries).
// Here we cycle calls over N callee domains to show the cliff once the
// per-CPU working set exceeds the 32-entry cache.
double MeasureAplPressure(int num_domains) {
  dipc::hw::Machine machine(1);
  dipc::codoms::Codoms codoms(machine);
  dipc::os::Kernel kernel(machine, codoms);
  dipc::core::Dipc dipc(kernel);
  dipc::os::Process& caller = dipc.CreateDipcProcess("caller");
  std::vector<dipc::core::ProxyRef> proxies;
  for (int i = 0; i < num_domains; ++i) {
    auto dom = dipc.DomCreate(caller);
    dipc::core::EntryDesc e;
    e.name = "f";
    e.signature = dipc::core::EntrySignature{};
    e.policy = dipc::core::IsolationPolicy::Low();
    e.fn = [](dipc::os::Env, dipc::core::CallArgs) -> dipc::sim::Task<uint64_t> { co_return 0; };
    auto handle = dipc.EntryRegister(caller, *dom.value(), {e});
    auto req = dipc.EntryRequest(caller, *handle.value(), {{e.signature, {}}});
    (void)dipc.GrantCreate(*dipc.DomDefault(caller), *req.value().proxy_domain);
    proxies.push_back(req.value().proxies[0]);
  }
  double per_call = 0;
  kernel.Spawn(caller, "main", [&](dipc::os::Env env) -> dipc::sim::Task<void> {
    // Warm every proxy once.
    for (auto& p : proxies) {
      (void)co_await p.Call(env, dipc::core::CallArgs{});
    }
    dipc::sim::Time t0 = env.kernel->now();
    constexpr int kRounds = 40;
    for (int r = 0; r < kRounds; ++r) {
      for (auto& p : proxies) {
        (void)co_await p.Call(env, dipc::core::CallArgs{});
      }
    }
    per_call = (env.kernel->now() - t0).nanos() / (kRounds * proxies.size());
  });
  kernel.Run();
  return per_call;
}

void PrintAplPressure(JsonEmitter& json) {
  std::printf("(c) APL-cache pressure (32 entries per hardware thread)\n");
  std::printf("%14s %16s\n", "domains cycled", "ns/call (Low)");
  // Each call touches caller + proxy + callee-domain APL entries, so the
  // cache covers roughly 32/3 concurrently-cycling entry points.
  for (int n : {2, 4, 8, 10, 16, 32}) {
    json.BeginSeries("apl_pressure_d" + std::to_string(n));
    double ns = MeasureAplPressure(n);
    std::printf("%14d %16.1f\n", n, ns);
    json.Row("apl_pressure_ns_per_call", static_cast<uint64_t>(n), ns);
  }
  std::printf("paper: misses never occur in its benchmarks (7 domains);\n");
  std::printf("beyond the cache the 300 ns refill exception dominates.\n\n");
}

void BM_ProxyScale(benchmark::State& state) {
  OltpConfig c = BaseConfig(OltpMode::kDipc);
  c.proxy_cost_scale = static_cast<double>(state.range(0));
  c.threads = 64;
  c.measure = dipc::sim::Duration::Millis(200);
  OltpResult r = RunOltp(c);
  for (auto _ : state) {
    state.SetIterationTime(r.operations > 0
                               ? r.wall_seconds / static_cast<double>(r.operations)
                               : r.wall_seconds);
  }
  state.counters["ops_per_min"] = r.ops_per_min;
}
BENCHMARK(BM_ProxyScale)->Arg(1)->Arg(14)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("s75_ablation", &argc, argv);
  PrintAblation(json);
  PrintAplPressure(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
