// §5.3.1's co-optimization experiment, run natively on the host: exception
// recovery by saving registers (setjmp) vs a C++ `try` statement around a
// simple call. The paper measured try-based code ~2.5x faster because the
// compiler reconstructs state from constants and stack data on the (cold)
// error path instead of always saving registers.
//
// This is the one benchmark in the suite measuring *real* host time.
//
// Pass --json to also write BENCH_s531_unwind.json (a short chrono-timed
// run of both variants, since google-benchmark's own output bypasses the
// emitter).
#include <benchmark/benchmark.h>

#include <chrono>
#include <csetjmp>
#include <cstdio>

#include "micro_harness.h"

namespace {

// A small opaque callee, like the paper's "simple function".
int g_sink = 0;
__attribute__((noinline)) int SimpleFunction(int x) {
  benchmark::DoNotOptimize(x);
  return x * 3 + 1;
}

void BM_SetjmpGuardedCall(benchmark::State& state) {
  std::jmp_buf env;
  int acc = 0;
  for (auto _ : state) {
    if (setjmp(env) == 0) {  // always saves the register state
      acc += SimpleFunction(acc);
    } else {
      acc = 0;  // recovery path (never taken here)
    }
    benchmark::DoNotOptimize(acc);
  }
  g_sink = acc;
}
BENCHMARK(BM_SetjmpGuardedCall);

void BM_TryGuardedCall(benchmark::State& state) {
  int acc = 0;
  for (auto _ : state) {
    try {  // zero-cost until thrown: nothing saved on the hot path
      acc += SimpleFunction(acc);
    } catch (...) {
      acc = 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  g_sink = acc;
}
BENCHMARK(BM_TryGuardedCall);

// Host-timed per-call ns for the JSON trajectory (median-free quick run;
// the google-benchmark entries below remain the precise measurement).
template <typename Fn>
double TimePerCallNs(Fn&& fn) {
  constexpr int kIters = 2000000;
  auto t0 = std::chrono::steady_clock::now();
  int acc = 0;
  for (int i = 0; i < kIters; ++i) {
    acc = fn(acc);
  }
  benchmark::DoNotOptimize(acc);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  dipc::bench::JsonEmitter json("s531_unwind", &argc, argv);
  std::printf("=== §5.3.1: setjmp vs C++ try recovery around a simple call ===\n");
  std::printf("paper: try-based code ~2.5x faster (compiler co-optimization).\n");
  std::printf("compare BM_SetjmpGuardedCall vs BM_TryGuardedCall below.\n\n");
  if (json.enabled()) {
    // Host-timed code emits no simulator counters; the series boundary keeps
    // the --metrics schema uniform with the simulated benches.
    json.BeginSeries("setjmp_guarded_call");
    double setjmp_ns = TimePerCallNs([](int acc) {
      std::jmp_buf env;
      if (setjmp(env) == 0) {
        acc += SimpleFunction(acc);
      } else {
        acc = 0;
      }
      return acc;
    });
    json.BeginSeries("try_guarded_call");
    double try_ns = TimePerCallNs([](int acc) {
      try {
        acc += SimpleFunction(acc);
      } catch (...) {
        acc = 0;
      }
      return acc;
    });
    json.Row("setjmp_guarded_call", 0, setjmp_ns);
    json.Row("try_guarded_call", 0, try_ns);
    json.Row("setjmp_over_try_x1000", 0, try_ns > 0 ? setjmp_ns / try_ns * 1000.0 : 0);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
