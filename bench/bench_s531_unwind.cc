// §5.3.1's co-optimization experiment, run natively on the host: exception
// recovery by saving registers (setjmp) vs a C++ `try` statement around a
// simple call. The paper measured try-based code ~2.5x faster because the
// compiler reconstructs state from constants and stack data on the (cold)
// error path instead of always saving registers.
//
// This is the one benchmark in the suite measuring *real* host time.
#include <benchmark/benchmark.h>

#include <csetjmp>
#include <cstdio>

namespace {

// A small opaque callee, like the paper's "simple function".
int g_sink = 0;
__attribute__((noinline)) int SimpleFunction(int x) {
  benchmark::DoNotOptimize(x);
  return x * 3 + 1;
}

void BM_SetjmpGuardedCall(benchmark::State& state) {
  std::jmp_buf env;
  int acc = 0;
  for (auto _ : state) {
    if (setjmp(env) == 0) {  // always saves the register state
      acc += SimpleFunction(acc);
    } else {
      acc = 0;  // recovery path (never taken here)
    }
    benchmark::DoNotOptimize(acc);
  }
  g_sink = acc;
}
BENCHMARK(BM_SetjmpGuardedCall);

void BM_TryGuardedCall(benchmark::State& state) {
  int acc = 0;
  for (auto _ : state) {
    try {  // zero-cost until thrown: nothing saved on the hot path
      acc += SimpleFunction(acc);
    } catch (...) {
      acc = 0;
    }
    benchmark::DoNotOptimize(acc);
  }
  g_sink = acc;
}
BENCHMARK(BM_TryGuardedCall);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== §5.3.1: setjmp vs C++ try recovery around a simple call ===\n");
  std::printf("paper: try-based code ~2.5x faster (compiler co-optimization).\n");
  std::printf("compare BM_SetjmpGuardedCall vs BM_TryGuardedCall below.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
