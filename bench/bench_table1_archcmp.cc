// Table 1: best-case round-trip domain switch with bulk data communication
// across architectures, modeled with this library's cost model:
//
//   Conventional: 2 syscalls + 4 swapgs + 2 sysret + page-table switch,
//                 data by memcpy.
//   CHERI:        2 exceptions for the switch, capability setup for data.
//   MMP:          2 pipeline flushes, data via pre-shared buffer copy or
//                 privileged protection-table writes.
//   CODOMs:       call + return, capability setup for data.
// Pass --json to also write BENCH_table1_archcmp.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "hw/cost_model.h"
#include "micro_harness.h"

namespace {

using dipc::bench::JsonEmitter;
using dipc::hw::CostModel;
using dipc::sim::Duration;

struct ArchCosts {
  double switch_ns;   // round-trip domain switch
  double data64_ns;   // communicate 64 B
  double data4k_ns;   // communicate 4 KB
};

// memcpy through warm caches: ~1 line per 64 B at L1 speed.
double CopyCost(const CostModel& cm, uint64_t bytes) {
  double lines = static_cast<double>((bytes + 63) / 64);
  return cm.l1_hit.nanos() * lines * 2;  // read src + write dst
}

ArchCosts Conventional(const CostModel& cm) {
  double sw = 2 * (cm.syscall_trap + cm.sysret + cm.syscall_dispatch).nanos() +
              2 * cm.page_table_switch.nanos() + 2 * cm.current_switch.nanos();
  return {sw, CopyCost(cm, 64), CopyCost(cm, 4096)};
}

ArchCosts Cheri(const CostModel& cm) {
  double sw = 2 * cm.exception_roundtrip.nanos();
  return {sw, cm.cap_setup.nanos(), cm.cap_setup.nanos()};
}

ArchCosts Mmp(const CostModel& cm) {
  double sw = 2 * cm.pipeline_flush.nanos();
  // Data: copy into a pre-shared buffer, or write+invalidate entries in the
  // privileged protection table (one table write per 4 KB region, kernel
  // mediated). We show the copy variant (the cheap one for small data).
  return {sw, CopyCost(cm, 64), CopyCost(cm, 4096)};
}

ArchCosts Codoms(const CostModel& cm) {
  double sw = cm.function_call.nanos() + 2 * cm.domain_switch.nanos() +
              2 * cm.apl_cache_lookup.nanos();
  return {sw, cm.cap_setup.nanos(), cm.cap_setup.nanos()};
}

void PrintTable1(JsonEmitter& json) {
  CostModel cm;
  std::printf("=== Table 1: best-case round-trip domain switch + bulk data [ns] ===\n");
  std::printf("%-16s %12s %12s %12s %14s\n", "architecture", "switch", "64B data", "4KB data",
              "switch+4KB");
  auto row = [&json](const char* name, const char* key, ArchCosts c) {
    std::printf("%-16s %12.1f %12.1f %12.1f %14.1f\n", name, c.switch_ns, c.data64_ns, c.data4k_ns,
                c.switch_ns + c.data4k_ns);
    // Pure cost-model arithmetic emits no counters, but the series boundary
    // keeps the --metrics schema uniform across all benches (and would catch
    // any simulation sneaking into a future cost model).
    json.BeginSeries(key);
    json.Row(std::string(key) + "_switch", 0, c.switch_ns);
    json.Row(std::string(key) + "_data64", 0, c.data64_ns);
    json.Row(std::string(key) + "_data4k", 0, c.data4k_ns);
  };
  row("Conventional", "conventional", Conventional(cm));
  row("CHERI", "cheri", Cheri(cm));
  row("MMP", "mmp", Mmp(cm));
  row("CODOMs", "codoms", Codoms(cm));
  std::printf("(CODOMs: call+return with capability setup; no traps, no flushes)\n\n");
}

void BM_ArchSwitch(benchmark::State& state) {
  CostModel cm;
  ArchCosts c{};
  switch (state.range(0)) {
    case 0: c = Conventional(cm); break;
    case 1: c = Cheri(cm); break;
    case 2: c = Mmp(cm); break;
    case 3: c = Codoms(cm); break;
  }
  for (auto _ : state) {
    state.SetIterationTime(c.switch_ns * 1e-9);
  }
}
BENCHMARK(BM_ArchSwitch)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("table1_archcmp", &argc, argv);
  PrintTable1(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
