// Figure 6: added execution time of a producer->consumer synchronous call as
// the argument size grows (2^0 .. 2^20 bytes), relative to the baseline
// function call. Copy-based primitives (Pipe, RPC) grow with size; Sem only
// pays production/consumption; dIPC passes references (capabilities) and
// stays flat until cache effects. The L1$/L2$ knees come out of the cache
// model.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "micro_harness.h"

namespace {

using dipc::bench::DipcMicroConfig;
using dipc::bench::MeasureDipc;
using dipc::bench::MeasureDipcUserRpc;
using dipc::bench::MeasureFunction;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MeasureSemaphore;
using dipc::bench::MeasureSyscall;
using dipc::bench::MicroConfig;

void PrintFig6(dipc::bench::JsonEmitter& json) {
  std::printf("=== Figure 6: added time vs argument size [ns], relative to a function call ===\n");
  std::printf("%9s %9s %9s %9s %9s %9s %9s %9s %9s\n", "size[B]", "syscall", "sem!=", "pipe!=",
              "rpc!=", "dipcL=", "dipcH=", "+procL=", "userRPC");
  for (int p = 0; p <= 20; p += 2) {
    uint64_t n = 1ull << p;
    int rounds = n >= (1 << 16) ? 40 : 150;
    MicroConfig same{.arg_bytes = n, .rounds = rounds, .cross_cpu = false};
    MicroConfig cross{.arg_bytes = n, .rounds = rounds, .cross_cpu = true};
    double func = MeasureFunction(same).roundtrip_ns;
    double sys = MeasureSyscall(same).roundtrip_ns - func;
    double sem = MeasureSemaphore(cross).roundtrip_ns - func;
    double pipe = MeasurePipe(cross).roundtrip_ns - func;
    double rpc = MeasureLocalRpc(cross).roundtrip_ns - func;
    double dl = MeasureDipc({.cross_process = false, .high_policy = false, .arg_bytes = n,
                             .rounds = rounds})
                    .roundtrip_ns -
                func;
    double dh = MeasureDipc({.cross_process = false, .high_policy = true, .arg_bytes = n,
                             .rounds = rounds})
                    .roundtrip_ns -
                func;
    double dpl = MeasureDipc({.cross_process = true, .high_policy = false, .arg_bytes = n,
                              .rounds = rounds})
                     .roundtrip_ns -
                 func;
    double urpc = MeasureDipcUserRpc(cross).roundtrip_ns - func;
    std::printf("%9llu %9.0f %9.0f %9.0f %9.0f %9.1f %9.1f %9.1f %9.0f\n",
                static_cast<unsigned long long>(n), sys, sem, pipe, rpc, dl, dh, dpl, urpc);
    json.Row("syscall", n, sys);
    json.Row("sem", n, sem);
    json.Row("pipe", n, pipe);
    json.Row("rpc", n, rpc);
    json.Row("dipc_low", n, dl);
    json.Row("dipc_high", n, dh);
    json.Row("dipc_proc_low", n, dpl);
    json.Row("user_rpc", n, urpc);
  }
  std::printf("(L1$ = 32 KB, L2$ = 256 KB: expect knees there for the copying primitives)\n\n");
}

void BM_AddedTime(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  double func = MeasureFunction({.arg_bytes = n, .rounds = 60}).roundtrip_ns;
  double pipe = MeasurePipe({.arg_bytes = n, .rounds = 60, .cross_cpu = true}).roundtrip_ns;
  for (auto _ : state) {
    state.SetIterationTime((pipe - func) * 1e-9);
  }
  state.counters["bytes"] = static_cast<double>(n);
}
BENCHMARK(BM_AddedTime)->Arg(1)->Arg(1 << 10)->Arg(1 << 20)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  dipc::bench::JsonEmitter json("fig6_argsize", &argc, argv);
  PrintFig6(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
