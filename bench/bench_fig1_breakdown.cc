// Figure 1: time breakdown of the OLTP web application stack — unmodified
// Linux (process isolation + IPC) vs an Ideal unsafe single-process build.
// The paper reports Linux 51%/23%/24% user/kernel/idle, Ideal 81%/16%/1%,
// and a 1.92x IPC-overhead gap on the in-memory configuration.
// Pass --json to also write BENCH_fig1_breakdown.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/oltp/oltp.h"
#include "micro_harness.h"

namespace {

using dipc::apps::DbStorage;
using dipc::apps::OltpConfig;
using dipc::apps::OltpMode;
using dipc::apps::OltpModeName;
using dipc::apps::OltpResult;
using dipc::apps::RunOltp;

OltpConfig Fig1Config(OltpMode mode) {
  OltpConfig c;
  c.mode = mode;
  c.storage = DbStorage::kMemory;
  // Lightly loaded (one primary thread per CPU): Figure 1 reports per-op
  // *latency* and its breakdown; the idle share is the synchronous-IPC
  // stall time, visible when the system is not saturated.
  c.threads = 4;
  c.warmup = dipc::sim::Duration::Millis(60);
  c.measure = dipc::sim::Duration::Millis(500);
  return c;
}

void PrintFig1(dipc::bench::JsonEmitter& json) {
  // Series boundaries bracket each configuration so --metrics counters
  // attribute to the run that produced them, not the whole process.
  json.BeginSeries("linux");
  OltpResult linux_r = RunOltp(Fig1Config(OltpMode::kLinuxIpc));
  json.BeginSeries("chan");
  OltpResult chan_r = RunOltp(Fig1Config(OltpMode::kChan));
  json.BeginSeries("ideal");
  OltpResult ideal_r = RunOltp(Fig1Config(OltpMode::kIdeal));
  std::printf("=== Figure 1: OLTP stack time breakdown (in-memory DB, lightly loaded) ===\n");
  std::printf("%-16s %12s %8s %8s %8s\n", "config", "latency[ms]", "user%", "kernel%", "idle%");
  auto row = [&json](const char* name, const char* key, const OltpResult& r) {
    std::printf("%-16s %12.2f %7.0f%% %7.0f%% %7.0f%%\n", name, r.avg_latency_ms,
                100 * r.UserFrac(), 100 * r.KernelFrac(), 100 * r.IdleFrac());
    json.Row(std::string(key) + "_latency", 0, r.avg_latency_ms * 1e6);
    json.Row(std::string(key) + "_user_pct", 0, 100 * r.UserFrac());
    json.Row(std::string(key) + "_kernel_pct", 0, 100 * r.KernelFrac());
    json.Row(std::string(key) + "_idle_pct", 0, 100 * r.IdleFrac());
  };
  row("Linux", "linux", linux_r);
  row("Chan (zero-copy)", "chan", chan_r);
  row("Ideal (unsafe)", "ideal", ideal_r);
  std::printf("\nIPC overhead (latency ratio Linux/Ideal): %.2fx   (paper: 1.92x)\n",
              linux_r.avg_latency_ms / ideal_r.avg_latency_ms);
  std::printf("paper breakdowns: Linux 51%%/23%%/24%%, Ideal 81%%/16%%/1%%\n");
  std::printf("(Chan: Linux thread structure over zero-copy channels — the copy+glue\n"
              " share of the Linux gap disappears, the false-concurrency share stays)\n\n");
}

void BM_OltpLatency(benchmark::State& state) {
  OltpMode mode = state.range(0) == 0 ? OltpMode::kLinuxIpc : OltpMode::kIdeal;
  OltpResult r = RunOltp(Fig1Config(mode));
  for (auto _ : state) {
    state.SetIterationTime(r.avg_latency_ms * 1e-3);
  }
  state.counters["ops_per_min"] = r.ops_per_min;
  state.SetLabel(std::string(OltpModeName(mode)));
}
BENCHMARK(BM_OltpLatency)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dipc::bench::JsonEmitter json("fig1_breakdown", &argc, argv);
  PrintFig1(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
