// Channel design points: the same synchronous producer->consumer payload
// sweep as Figure 6, run over four IPC designs —
//   pipe     copy through the kernel (2 crossings + 2 copies per message),
//   rpc      UNIX-socket RPC with user-level (de)marshalling,
//   dipc     synchronous cross-process dIPC call passing a capability,
//   chan     the zero-copy shared-memory channel (src/chan/): ownership
//            moves by capability grant/revoke (epoch-cached: steady state
//            mints nothing), so transfer cost is O(1) in payload size,
//   stream1/stream32   the same channel driven as a pipeline instead of a
//            ping-pong, publishing 1 vs 32 descriptors per batch — the
//            batched hot path's per-message cost.
// Copy-based designs grow linearly with the argument size; dipc and chan
// only pay production/consumption of the payload (cache effects), which is
// the paper's Fig. 6 argument extended to streaming channels.
//
// Pass --json to also write BENCH_chan_designpoints.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::JsonEmitter;
using dipc::bench::MeasureChannel;
using dipc::bench::MeasureChannelStream;
using dipc::bench::MeasureDipc;
using dipc::bench::MeasureFunction;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MicroConfig;

void PrintDesignPoints(JsonEmitter& json) {
  std::printf(
      "=== Channel design points: added producer->consumer time vs payload size [ns] ===\n");
  std::printf("%9s %10s %10s %10s %10s %10s %10s %10s\n", "size[B]", "pipe!=", "rpc!=",
              "dipc+proc", "chan!=", "chan=", "stream1", "stream32");
  for (int p = 0; p <= 20; p += 2) {
    uint64_t n = 1ull << p;
    // One metrics window per payload size: under --metrics the registry is
    // snapshotted + zeroed here, so each size row's counters stand alone.
    char point[48];
    std::snprintf(point, sizeof(point), "designpoints_n%llu", static_cast<unsigned long long>(n));
    json.BeginSeries(point);
    int rounds = n >= (1 << 16) ? 40 : 150;
    MicroConfig cross{.arg_bytes = n, .rounds = rounds, .cross_cpu = true};
    MicroConfig same{.arg_bytes = n, .rounds = rounds, .cross_cpu = false};
    double func = MeasureFunction({.arg_bytes = n, .rounds = rounds}).roundtrip_ns;
    double pipe = MeasurePipe(cross).roundtrip_ns - func;
    double rpc = MeasureLocalRpc(cross).roundtrip_ns - func;
    double dipc = MeasureDipc({.cross_process = true, .high_policy = false, .arg_bytes = n,
                               .rounds = rounds})
                      .roundtrip_ns -
                  func;
    double chan_x = MeasureChannel(cross).roundtrip_ns - func;
    double chan_s = MeasureChannel(same).roundtrip_ns - func;
    int messages = n >= (1 << 16) ? 256 : 1024;
    double stream1 = MeasureChannelStream(
        {.payload_bytes = n, .batch = 1, .messages = messages, .cross_cpu = true});
    double stream32 = MeasureChannelStream(
        {.payload_bytes = n, .batch = 32, .messages = messages, .cross_cpu = true});
    std::printf("%9llu %10.0f %10.0f %10.1f %10.0f %10.0f %10.1f %10.1f\n",
                static_cast<unsigned long long>(n), pipe, rpc, dipc, chan_x, chan_s, stream1,
                stream32);
    json.Row("pipe", n, pipe);
    json.Row("rpc", n, rpc);
    json.Row("dipc", n, dipc);
    json.Row("chan_cross_cpu", n, chan_x);
    json.Row("chan_same_cpu", n, chan_s);
    json.Row("chan_stream_b1", n, stream1);
    json.Row("chan_stream_b32", n, stream32);
  }
  std::printf(
      "(pipe/rpc grow with size: per-byte kernel copies. chan's grant/revoke transfer\n"
      " is O(1); chan!= residual growth is the cross-core cache transfer of the\n"
      " payload itself, which every design pays and chan= avoids. stream1/stream32\n"
      " are pipelined per-message costs; 32-batching amortizes the fixed toll)\n\n");
}

// Receiver-count sweep: the fan-out channel's per-published-message cost as
// the group grows — broadcast (every receiver gets its own grant over every
// message) vs round-robin sharding (the OLTP request-distribution shape),
// at batch 1 and 32. Broadcast pays one grant+store+descriptor-push per
// receiver; everything else (runtime entry, free-pool op, sender revoke,
// fast path) is shared, so per-message cost grows sublinearly in N.
void PrintFanOutSweep(dipc::bench::JsonEmitter& json) {
  std::printf("=== Fan-out: per-published-message cost vs receiver count [ns] ===\n");
  std::printf("%10s %12s %12s %12s %12s\n", "receivers", "bcast b1", "bcast b32", "shard b1",
              "shard b32");
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    char point[48];
    std::snprintf(point, sizeof(point), "fanout_r%u", n);
    json.BeginSeries(point);
    double bcast1 = dipc::bench::MeasureFanOutStream(
        {.payload_bytes = 64, .receivers = n, .batch = 1, .messages = 768});
    double bcast32 = dipc::bench::MeasureFanOutStream(
        {.payload_bytes = 64, .receivers = n, .batch = 32, .messages = 768});
    double shard1 = dipc::bench::MeasureFanOutStream(
        {.payload_bytes = 64, .receivers = n, .batch = 1, .messages = 768, .shard = true});
    double shard32 = dipc::bench::MeasureFanOutStream(
        {.payload_bytes = 64, .receivers = n, .batch = 32, .messages = 768, .shard = true});
    std::printf("%10u %12.1f %12.1f %12.1f %12.1f\n", n, bcast1, bcast32, shard1, shard32);
    json.Row("fanout_bcast_b1", n, bcast1);
    json.Row("fanout_bcast_b32", n, bcast32);
    json.Row("fanout_shard_b1", n, shard1);
    json.Row("fanout_shard_b32", n, shard32);
  }
  std::printf(
      "(broadcast at N receivers delivers N messages per publish; sharding keeps one\n"
      " delivery per publish and parallelizes consumption across receiver CPUs)\n\n");
}

// Producer-count sweep for the mirror-image fan-in channel: per-delivered-
// message cost as more client domains feed the one consumer. Every producer
// has its own per-slot write templates and credit line, but the descriptor
// plane is one shared MpmcQueue, so per-message cost stays near-flat while
// admission parallelizes across producer CPUs.
void PrintFanInSweep(dipc::bench::JsonEmitter& json) {
  std::printf("=== Fan-in: per-delivered-message cost vs producer count [ns] ===\n");
  std::printf("%10s %12s %12s\n", "producers", "b1", "b32");
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    char point[48];
    std::snprintf(point, sizeof(point), "fanin_p%u", n);
    json.BeginSeries(point);
    double b1 = dipc::bench::MeasureFanInStream(
        {.payload_bytes = 64, .producers = n, .batch = 1, .messages = 768});
    double b32 = dipc::bench::MeasureFanInStream(
        {.payload_bytes = 64, .producers = n, .batch = 32, .messages = 768});
    std::printf("%10u %12.1f %12.1f\n", n, b1, b32);
    json.Row("fanin_b1", n, b1);
    json.Row("fanin_b32", n, b32);
  }
  std::printf(
      "(all producers publish into one shared consumer FIFO; credit lines keep one\n"
      " producer from pinning the pool, write grants stay per-producer)\n\n");
}

// Multi-tenant fabric echo: ns per request/response round trip as the
// tenant count grows, shared-trio vs per-channel trios. Shared trios keep
// the whole fabric inside the 32-entry per-CPU APL cache at any tenant
// count; per-channel trios exceed it somewhere past ~5 tenants (2 planes x
// 3 tags each) and every cross-domain access starts paying the miss.
void PrintFabricSweep(dipc::bench::JsonEmitter& json) {
  std::printf("=== Service fabric: ns per echo call vs tenants (4 workers) ===\n");
  std::printf("%10s %14s %14s\n", "tenants", "shared-trio", "per-chan trios");
  for (uint32_t tenants : {1u, 16u, 64u, 512u}) {
    // Hundreds of tenants mean thousands of live channels; fewer calls per
    // tenant keep the big rows tractable.
    int calls = tenants >= 64 ? 8 : 32;
    char point[48];
    std::snprintf(point, sizeof(point), "fabric_n%u", tenants);
    json.BeginSeries(point);
    double shared = dipc::bench::MeasureFabricEcho(
        {.tenants = tenants, .workers = 4, .calls_per_tenant = calls, .shared_trio = true});
    double pertrio = dipc::bench::MeasureFabricEcho(
        {.tenants = tenants, .workers = 4, .calls_per_tenant = calls, .shared_trio = false});
    std::printf("%10u %14.1f %14.1f\n", tenants, shared, pertrio);
    json.Row("fabric_shared_trio", tenants, shared);
    json.Row("fabric_pertrio", tenants, pertrio);
  }
  std::printf(
      "(each tenant is a client domain with its own fan-out request plane and\n"
      " fan-in response plane over 4 shared worker domains; opid-matched dispatch)\n\n");
}

void BM_ChannelTransfer(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  double func = MeasureFunction({.arg_bytes = n, .rounds = 60}).roundtrip_ns;
  double chan = MeasureChannel({.arg_bytes = n, .rounds = 60, .cross_cpu = true}).roundtrip_ns;
  for (auto _ : state) {
    state.SetIterationTime((chan - func) * 1e-9);
  }
  state.counters["bytes"] = static_cast<double>(n);
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(1 << 10)->Arg(1 << 20)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("chan_designpoints", &argc, argv);
  PrintDesignPoints(json);
  PrintFanOutSweep(json);
  PrintFanInSweep(json);
  PrintFabricSweep(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
