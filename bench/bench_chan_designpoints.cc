// Channel design points: the same synchronous producer->consumer payload
// sweep as Figure 6, run over four IPC designs —
//   pipe     copy through the kernel (2 crossings + 2 copies per message),
//   rpc      UNIX-socket RPC with user-level (de)marshalling,
//   dipc     synchronous cross-process dIPC call passing a capability,
//   chan     the zero-copy shared-memory channel (src/chan/): ownership
//            moves by capability grant/revoke (epoch-cached: steady state
//            mints nothing), so transfer cost is O(1) in payload size,
//   stream1/stream32   the same channel driven as a pipeline instead of a
//            ping-pong, publishing 1 vs 32 descriptors per batch — the
//            batched hot path's per-message cost.
// Copy-based designs grow linearly with the argument size; dipc and chan
// only pay production/consumption of the payload (cache effects), which is
// the paper's Fig. 6 argument extended to streaming channels.
//
// Pass --json to also write BENCH_chan_designpoints.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::JsonEmitter;
using dipc::bench::MeasureChannel;
using dipc::bench::MeasureChannelStream;
using dipc::bench::MeasureDipc;
using dipc::bench::MeasureFunction;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MicroConfig;

void PrintDesignPoints(JsonEmitter& json) {
  std::printf(
      "=== Channel design points: added producer->consumer time vs payload size [ns] ===\n");
  std::printf("%9s %10s %10s %10s %10s %10s %10s %10s\n", "size[B]", "pipe!=", "rpc!=",
              "dipc+proc", "chan!=", "chan=", "stream1", "stream32");
  for (int p = 0; p <= 20; p += 2) {
    uint64_t n = 1ull << p;
    int rounds = n >= (1 << 16) ? 40 : 150;
    MicroConfig cross{.arg_bytes = n, .rounds = rounds, .cross_cpu = true};
    MicroConfig same{.arg_bytes = n, .rounds = rounds, .cross_cpu = false};
    double func = MeasureFunction({.arg_bytes = n, .rounds = rounds}).roundtrip_ns;
    double pipe = MeasurePipe(cross).roundtrip_ns - func;
    double rpc = MeasureLocalRpc(cross).roundtrip_ns - func;
    double dipc = MeasureDipc({.cross_process = true, .high_policy = false, .arg_bytes = n,
                               .rounds = rounds})
                      .roundtrip_ns -
                  func;
    double chan_x = MeasureChannel(cross).roundtrip_ns - func;
    double chan_s = MeasureChannel(same).roundtrip_ns - func;
    int messages = n >= (1 << 16) ? 256 : 1024;
    double stream1 = MeasureChannelStream(
        {.payload_bytes = n, .batch = 1, .messages = messages, .cross_cpu = true});
    double stream32 = MeasureChannelStream(
        {.payload_bytes = n, .batch = 32, .messages = messages, .cross_cpu = true});
    std::printf("%9llu %10.0f %10.0f %10.1f %10.0f %10.0f %10.1f %10.1f\n",
                static_cast<unsigned long long>(n), pipe, rpc, dipc, chan_x, chan_s, stream1,
                stream32);
    json.Row("pipe", n, pipe);
    json.Row("rpc", n, rpc);
    json.Row("dipc", n, dipc);
    json.Row("chan_cross_cpu", n, chan_x);
    json.Row("chan_same_cpu", n, chan_s);
    json.Row("chan_stream_b1", n, stream1);
    json.Row("chan_stream_b32", n, stream32);
  }
  std::printf(
      "(pipe/rpc grow with size: per-byte kernel copies. chan's grant/revoke transfer\n"
      " is O(1); chan!= residual growth is the cross-core cache transfer of the\n"
      " payload itself, which every design pays and chan= avoids. stream1/stream32\n"
      " are pipelined per-message costs; 32-batching amortizes the fixed toll)\n\n");
}

void BM_ChannelTransfer(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  double func = MeasureFunction({.arg_bytes = n, .rounds = 60}).roundtrip_ns;
  double chan = MeasureChannel({.arg_bytes = n, .rounds = 60, .cross_cpu = true}).roundtrip_ns;
  for (auto _ : state) {
    state.SetIterationTime((chan - func) * 1e-9);
  }
  state.counters["bytes"] = static_cast<double>(n);
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(1 << 10)->Arg(1 << 20)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("chan_designpoints", &argc, argv);
  PrintDesignPoints(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
