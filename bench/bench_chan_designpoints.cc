// Channel design points: the same synchronous producer->consumer payload
// sweep as Figure 6, run over four IPC designs —
//   pipe     copy through the kernel (2 crossings + 2 copies per message),
//   rpc      UNIX-socket RPC with user-level (de)marshalling,
//   dipc     synchronous cross-process dIPC call passing a capability,
//   chan     the zero-copy shared-memory channel (src/chan/): ownership
//            moves by capability grant/revoke, so transfer cost is O(1)
//            in payload size.
// Copy-based designs grow linearly with the argument size; dipc and chan
// only pay production/consumption of the payload (cache effects), which is
// the paper's Fig. 6 argument extended to streaming channels.
//
// Pass --json to also write BENCH_chan_designpoints.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::JsonEmitter;
using dipc::bench::MeasureChannel;
using dipc::bench::MeasureDipc;
using dipc::bench::MeasureFunction;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MicroConfig;

void PrintDesignPoints(JsonEmitter& json) {
  std::printf(
      "=== Channel design points: added producer->consumer time vs payload size [ns] ===\n");
  std::printf("%9s %10s %10s %10s %10s %10s\n", "size[B]", "pipe!=", "rpc!=", "dipc+proc",
              "chan!=", "chan=");
  for (int p = 0; p <= 20; p += 2) {
    uint64_t n = 1ull << p;
    int rounds = n >= (1 << 16) ? 40 : 150;
    MicroConfig cross{.arg_bytes = n, .rounds = rounds, .cross_cpu = true};
    MicroConfig same{.arg_bytes = n, .rounds = rounds, .cross_cpu = false};
    double func = MeasureFunction({.arg_bytes = n, .rounds = rounds}).roundtrip_ns;
    double pipe = MeasurePipe(cross).roundtrip_ns - func;
    double rpc = MeasureLocalRpc(cross).roundtrip_ns - func;
    double dipc = MeasureDipc({.cross_process = true, .high_policy = false, .arg_bytes = n,
                               .rounds = rounds})
                      .roundtrip_ns -
                  func;
    double chan_x = MeasureChannel(cross).roundtrip_ns - func;
    double chan_s = MeasureChannel(same).roundtrip_ns - func;
    std::printf("%9llu %10.0f %10.0f %10.1f %10.0f %10.0f\n",
                static_cast<unsigned long long>(n), pipe, rpc, dipc, chan_x, chan_s);
    json.Row("pipe", n, pipe);
    json.Row("rpc", n, rpc);
    json.Row("dipc", n, dipc);
    json.Row("chan_cross_cpu", n, chan_x);
    json.Row("chan_same_cpu", n, chan_s);
  }
  std::printf(
      "(pipe/rpc grow with size: per-byte kernel copies. chan's grant/revoke transfer\n"
      " is O(1); chan!= residual growth is the cross-core cache transfer of the\n"
      " payload itself, which every design pays and chan= avoids)\n\n");
}

void BM_ChannelTransfer(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  double func = MeasureFunction({.arg_bytes = n, .rounds = 60}).roundtrip_ns;
  double chan = MeasureChannel({.arg_bytes = n, .rounds = 60, .cross_cpu = true}).roundtrip_ns;
  for (auto _ : state) {
    state.SetIterationTime((chan - func) * 1e-9);
  }
  state.counters["bytes"] = static_cast<double>(n);
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(1 << 10)->Arg(1 << 20)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("chan_designpoints", &argc, argv);
  PrintDesignPoints(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
