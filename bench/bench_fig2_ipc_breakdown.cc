// Figure 2: time breakdown of different IPC primitives (1-byte argument)
// into the paper's blocks: (1) user code, (2) syscall+2*swapgs+sysret,
// (3) syscall dispatch trampoline, (4) kernel/privileged code,
// (5) schedule/context switch, (6) page table switch, (7) idle/IO wait.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "micro_harness.h"

namespace {

using dipc::bench::MeasureL4;
using dipc::bench::MeasureLocalRpc;
using dipc::bench::MeasurePipe;
using dipc::bench::MeasureSemaphore;
using dipc::bench::MicroConfig;
using dipc::bench::MicroResult;
using dipc::os::TimeCat;

using dipc::bench::JsonEmitter;

void PrintRow(JsonEmitter& json, const char* name, const char* key, const MicroResult& r) {
  std::printf("%-20s %8.0f | %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f\n", name, r.roundtrip_ns,
              r.breakdown[TimeCat::kUser].nanos(), r.breakdown[TimeCat::kSyscallCrossing].nanos(),
              r.breakdown[TimeCat::kSyscallDispatch].nanos(), r.breakdown[TimeCat::kKernel].nanos(),
              r.breakdown[TimeCat::kSchedule].nanos(),
              r.breakdown[TimeCat::kPageTableSwitch].nanos(),
              r.breakdown[TimeCat::kIdle].nanos());
  const std::string k(key);
  json.Row(k + "_total", 0, r.roundtrip_ns);
  json.Row(k + "_user", 0, r.breakdown[TimeCat::kUser].nanos());
  json.Row(k + "_syscall", 0, r.breakdown[TimeCat::kSyscallCrossing].nanos());
  json.Row(k + "_dispatch", 0, r.breakdown[TimeCat::kSyscallDispatch].nanos());
  json.Row(k + "_kernel", 0, r.breakdown[TimeCat::kKernel].nanos());
  json.Row(k + "_sched", 0, r.breakdown[TimeCat::kSchedule].nanos());
  json.Row(k + "_pgtable", 0, r.breakdown[TimeCat::kPageTableSwitch].nanos());
  json.Row(k + "_idle", 0, r.breakdown[TimeCat::kIdle].nanos());
}

void PrintFig2(JsonEmitter& json) {
  std::printf("=== Figure 2: IPC primitive time breakdown [ns per round trip] ===\n");
  std::printf("%-20s %8s | %6s %6s %6s %6s %6s %6s %6s\n", "primitive", "total", "(1)usr",
              "(2)sys", "(3)dsp", "(4)krn", "(5)sch", "(6)pgt", "(7)idl");
  MicroConfig same{.arg_bytes = 1, .rounds = 400, .cross_cpu = false};
  MicroConfig cross{.arg_bytes = 1, .rounds = 400, .cross_cpu = true};
  // One metrics series per primitive: BeginSeries resets the registry, so
  // --metrics counters attribute to the measurement that produced them.
  json.BeginSeries("sem_same");
  PrintRow(json, "Sem. (=CPU)", "sem_same", MeasureSemaphore(same));
  json.BeginSeries("sem_cross");
  PrintRow(json, "Sem. (!=CPU)", "sem_cross", MeasureSemaphore(cross));
  json.BeginSeries("l4_same");
  PrintRow(json, "L4 (=CPU)", "l4_same", MeasureL4(same));
  json.BeginSeries("l4_cross");
  PrintRow(json, "L4 (!=CPU)", "l4_cross", MeasureL4(cross));
  json.BeginSeries("rpc_same");
  PrintRow(json, "Local RPC (=CPU)", "rpc_same", MeasureLocalRpc(same));
  json.BeginSeries("rpc_cross");
  PrintRow(json, "Local RPC (!=CPU)", "rpc_cross", MeasureLocalRpc(cross));
  std::printf("(reference: function call ~2 ns, empty syscall ~34 ns)\n\n");
}

void BM_SemBreakdown(benchmark::State& state) {
  MicroResult r = MeasureSemaphore({.arg_bytes = 1, .rounds = 300,
                                    .cross_cpu = state.range(0) != 0});
  for (auto _ : state) {
    state.SetIterationTime(r.roundtrip_ns * 1e-9);
  }
  state.counters["kernel_ns"] = r.breakdown[TimeCat::kKernel].nanos();
  state.counters["sched_ns"] = r.breakdown[TimeCat::kSchedule].nanos();
}
BENCHMARK(BM_SemBreakdown)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1);

void BM_RpcBreakdown(benchmark::State& state) {
  MicroResult r = MeasureLocalRpc({.arg_bytes = 1, .rounds = 300,
                                   .cross_cpu = state.range(0) != 0});
  for (auto _ : state) {
    state.SetIterationTime(r.roundtrip_ns * 1e-9);
  }
  state.counters["user_ns"] = r.breakdown[TimeCat::kUser].nanos();
}
BENCHMARK(BM_RpcBreakdown)->Arg(0)->Arg(1)->UseManualTime()->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  JsonEmitter json("fig2_ipc_breakdown", &argc, argv);
  PrintFig2(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
