// Property-based / parameterized sweeps over the core invariants:
// capability monotonicity, APL-cache coherence, policy-cost monotonicity,
// proxy-template bijectivity, event-queue time monotonicity, DCS bounds,
// pipe stream integrity, and scheduler time conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "codoms/codoms.h"
#include "dipc/policy.h"
#include "dipc/proxy_template.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/pipe.h"
#include "os/semaphore.h"
#include "rpc/marshal.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace dipc {
namespace {

using base::ErrorCode;
using sim::Duration;
using sim::Rng;

// --- Capability monotonicity: random derivation chains never widen ---

class CapChainProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CapChainProperty, DerivationNeverWidens) {
  hw::Machine machine(1);
  codoms::Codoms cd(machine);
  hw::PageTable& pt = machine.CreatePageTable();
  hw::DomainTag dom = cd.apl_table().AllocateTag();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pt.MapPage(0x10000 + i * hw::kPageSize, machine.mem().AllocFrame(),
                           hw::PageFlags{.writable = true}, dom)
                    .ok());
  }
  codoms::ThreadCapContext ctx(1);
  ctx.current_domain = dom;
  Rng rng(GetParam());
  sim::Duration cost;
  auto root = cd.CapFromApl(0, pt, ctx, 0x10000, 16 * hw::kPageSize, codoms::Perm::kWrite,
                            codoms::CapType::kSync, &cost);
  ASSERT_TRUE(root.ok());
  codoms::Capability cur = root.value();
  for (int step = 0; step < 24; ++step) {
    // Random sub-range and random (possibly wider) rights request.
    uint64_t off = rng.UniformInt(0, cur.size - 1);
    uint64_t len = rng.UniformInt(1, cur.size - off);
    auto rights = static_cast<codoms::Perm>(rng.UniformInt(1, 3));
    auto child = cd.CapDerive(cur, ctx, cur.base + off, len, rights, codoms::CapType::kSync,
                              &cost);
    if (codoms::AtLeast(cur.rights, rights)) {
      ASSERT_TRUE(child.ok());
      // Invariant: the child covers no byte the parent did not.
      EXPECT_GE(child->base, cur.base);
      EXPECT_LE(child->base + child->size, cur.base + cur.size);
      EXPECT_TRUE(codoms::AtLeast(cur.rights, child->rights));
      cur = child.value();
    } else {
      EXPECT_EQ(child.code(), ErrorCode::kPermissionDenied);
    }
    if (cur.size <= 1) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapChainProperty, ::testing::Range<uint64_t>(1, 17));

// --- APL cache coherence: cached decisions always match the table ---

class AplCoherenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AplCoherenceProperty, CacheNeverServesStaleGrants) {
  hw::Machine machine(2);
  codoms::Codoms cd(machine);
  Rng rng(GetParam());
  std::vector<hw::DomainTag> tags;
  for (int i = 0; i < 6; ++i) {
    tags.push_back(cd.apl_table().AllocateTag());
  }
  for (int step = 0; step < 200; ++step) {
    hw::DomainTag src = tags[rng.UniformInt(0, tags.size() - 1)];
    hw::DomainTag dst = tags[rng.UniformInt(0, tags.size() - 1)];
    hw::CpuId cpu = static_cast<hw::CpuId>(rng.UniformInt(0, 1));
    switch (rng.UniformInt(0, 2)) {
      case 0:
        cd.apl_table().Grant(src, dst, static_cast<codoms::Perm>(rng.UniformInt(1, 3)));
        break;
      case 1:
        cd.apl_table().Revoke(src, dst);
        break;
      default: {
        // The coherence check: what the (possibly stale) cache path decides
        // must equal what the authoritative table says right now.
        auto ref = cd.EnsureCached(cpu, src);
        codoms::Perm cached = cd.apl_cache(cpu).entry(ref.hw_tag).apl.PermFor(dst);
        codoms::Perm truth = cd.apl_table().For(src).PermFor(dst);
        EXPECT_EQ(cached, truth) << "step " << step;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AplCoherenceProperty, ::testing::Range<uint64_t>(100, 112));

// --- Policy costs: monotone in the property set ---

TEST(PolicyCostProperty, UnionIsCommutativeAndIdempotent) {
  for (uint32_t a = 0; a < 64; ++a) {
    for (uint32_t b = 0; b < 64; ++b) {
      core::IsolationPolicy pa{a}, pb{b};
      EXPECT_EQ(pa.Union(pb).bits, pb.Union(pa).bits);
      EXPECT_EQ(pa.Union(pa).bits, pa.bits);
    }
  }
}

TEST(PolicyCostProperty, MoreIsolationNeverCostsLess) {
  hw::CostModel cm;
  core::EntrySignature sig{.in_regs = 3, .out_regs = 1, .stack_bytes = 64};
  auto total = [&](uint32_t bits) {
    core::PolicyCosts c = core::ComputePolicyCosts(cm, core::IsolationPolicy{bits}, sig);
    return (c.caller_call + c.caller_ret + c.callee_entry + c.callee_ret + c.proxy_call +
            c.proxy_ret)
        .nanos();
  };
  for (uint32_t bits = 0; bits < 64; ++bits) {
    for (uint32_t bit = 1; bit < 64; bit <<= 1) {
      if ((bits & bit) == 0) {
        EXPECT_GE(total(bits | bit), total(bits)) << "adding bit " << bit << " to " << bits;
      }
    }
  }
}

// --- Proxy templates: the id space is a bijection over the buckets ---

TEST(ProxyTemplateProperty, IdsAreUniqueAcrossAllBuckets) {
  std::set<uint32_t> ids;
  for (uint32_t in = 0; in < core::ProxyTemplateLibrary::kInRegsBuckets; ++in) {
    for (uint32_t out = 0; out < core::ProxyTemplateLibrary::kOutRegsBuckets; ++out) {
      for (uint32_t stack : {0u, 32u, 256u, 4096u}) {
        for (uint32_t bits = 0; bits < core::ProxyTemplateLibrary::kPolicySets; ++bits) {
          for (bool cross : {false, true}) {
            core::EntrySignature sig{.in_regs = in, .out_regs = out, .stack_bytes = stack};
            ids.insert(
                core::ProxyTemplateLibrary::Select(sig, core::IsolationPolicy{bits}, cross).id);
          }
        }
      }
    }
  }
  EXPECT_EQ(ids.size(), core::ProxyTemplateLibrary::Count());
}

// --- Event queue: firing order is globally monotone under random load ---

class EventQueueProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventQueueProperty, TimeNeverRunsBackwards) {
  sim::EventQueue q;
  Rng rng(GetParam());
  std::vector<double> fire_times;
  std::vector<sim::EventId> pending;
  for (int i = 0; i < 300; ++i) {
    sim::EventId id = q.ScheduleAfter(Duration::Nanos(rng.UniformInt(0, 1000)),
                                      [&] { fire_times.push_back(q.now().nanos()); });
    pending.push_back(id);
    if (rng.Chance(0.25) && !pending.empty()) {
      q.Cancel(pending[rng.UniformInt(0, pending.size() - 1)]);
    }
    if (rng.Chance(0.3)) {
      q.RunOne();
    }
  }
  q.RunUntilIdle();
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty, ::testing::Range<uint64_t>(7, 19));

// --- DCS: the visible window always respects base <= top <= capacity ---

class DcsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DcsProperty, BoundsInvariantUnderRandomOps) {
  codoms::Dcs dcs(64);
  Rng rng(GetParam());
  codoms::Capability cap;
  cap.base = 0x1000;
  cap.size = 64;
  cap.rights = codoms::Perm::kRead;
  std::vector<uint64_t> saved_bases;
  for (int i = 0; i < 500; ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        (void)dcs.Push(cap);
        break;
      case 1:
        (void)dcs.Pop();
        break;
      case 2:
        saved_bases.push_back(dcs.SetBase(dcs.top()));
        break;
      default:
        if (!saved_bases.empty() && saved_bases.back() <= dcs.top()) {
          dcs.RestoreBase(saved_bases.back());
          saved_bases.pop_back();
        }
        break;
    }
    ASSERT_LE(dcs.base(), dcs.top());
    ASSERT_LE(dcs.top(), 64u);
    ASSERT_EQ(dcs.visible_entries(), dcs.top() - dcs.base());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcsProperty, ::testing::Range<uint64_t>(21, 29));

// --- Pipes: a random chunked stream arrives intact and in order ---

class PipeStreamProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipeStreamProperty, ChunkedTransferPreservesBytes) {
  hw::Machine machine(2);
  codoms::Codoms cd(machine);
  os::Kernel kernel(machine, cd);
  os::Process& p = kernel.CreateProcess("p");
  auto pipe = std::make_shared<os::Pipe>(kernel);
  constexpr uint64_t kTotal = 48 * 1024;
  auto wbuf = kernel.MapAnonymous(p, kTotal, hw::PageFlags{.writable = true});
  auto rbuf = kernel.MapAnonymous(p, kTotal, hw::PageFlags{.writable = true});
  ASSERT_TRUE(wbuf.ok() && rbuf.ok());
  uint64_t seed = GetParam();
  std::vector<std::byte> sent(kTotal);
  Rng fill(seed);
  for (auto& b : sent) {
    b = static_cast<std::byte>(fill.Next() & 0xFF);
  }
  kernel.Spawn(p, "writer", [&, pipe](os::Env env) -> sim::Task<void> {
    EXPECT_TRUE(env.kernel->UserWrite(*env.self, wbuf.value(), sent).ok());
    Rng rng(seed ^ 1);
    uint64_t off = 0;
    while (off < kTotal) {
      uint64_t n = std::min<uint64_t>(rng.UniformInt(1, 9000), kTotal - off);
      auto r = co_await pipe->Write(env, wbuf.value() + off, n);
      EXPECT_TRUE(r.ok());
      off += n;
    }
    pipe->CloseWriteEnd();
  });
  std::vector<std::byte> got;
  kernel.Spawn(p, "reader", [&, pipe](os::Env env) -> sim::Task<void> {
    Rng rng(seed ^ 2);
    while (true) {
      uint64_t want = rng.UniformInt(1, 7000);
      auto r = co_await pipe->Read(env, rbuf.value(), want);
      EXPECT_TRUE(r.ok());
      if (r.value() == 0) {
        co_return;
      }
      std::vector<std::byte> chunk(r.value());
      EXPECT_TRUE(env.kernel->UserRead(*env.self, rbuf.value(), chunk).ok());
      got.insert(got.end(), chunk.begin(), chunk.end());
    }
  });
  kernel.Run();
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipeStreamProperty, ::testing::Values(31, 32, 33, 34));

// --- Marshal: encode/decode round-trips arbitrary field sequences ---

class MarshalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarshalProperty, RandomFieldSequencesRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    rpc::Encoder enc;
    std::vector<int> kinds;
    std::vector<uint64_t> nums;
    std::vector<std::string> strs;
    int fields = static_cast<int>(rng.UniformInt(1, 12));
    for (int f = 0; f < fields; ++f) {
      int kind = static_cast<int>(rng.UniformInt(0, 2));
      kinds.push_back(kind);
      if (kind == 0) {
        uint64_t v = rng.Next();
        nums.push_back(v);
        enc.PutU64(v);
      } else if (kind == 1) {
        uint64_t v = rng.Next() & 0xFFFFFFFF;
        nums.push_back(v);
        enc.PutU32(static_cast<uint32_t>(v));
      } else {
        std::string s(rng.UniformInt(0, 40), 'x');
        for (auto& ch : s) {
          ch = static_cast<char>('a' + rng.UniformInt(0, 25));
        }
        strs.push_back(s);
        enc.PutString(s);
      }
    }
    rpc::Decoder dec(enc.bytes());
    size_t ni = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        EXPECT_EQ(dec.GetU64().value(), nums[ni++]);
      } else if (kind == 1) {
        EXPECT_EQ(dec.GetU32().value(), static_cast<uint32_t>(nums[ni++]));
      } else {
        EXPECT_EQ(dec.GetString().value(), strs[si++]);
      }
    }
    EXPECT_TRUE(dec.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarshalProperty, ::testing::Range<uint64_t>(41, 47));

// --- Scheduler: accounted time per CPU never exceeds wall time ---

class ConservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationProperty, AccountedTimeBoundedByWallTime) {
  hw::Machine machine(4);
  codoms::Codoms cd(machine);
  os::Kernel kernel(machine, cd);
  os::Process& p = kernel.CreateProcess("p");
  auto sem = std::make_shared<os::Semaphore>(2);
  Rng seeds(GetParam());
  for (int i = 0; i < 10; ++i) {
    uint64_t seed = seeds.Next();
    kernel.Spawn(p, "w", [&, sem, seed](os::Env env) -> sim::Task<void> {
      Rng rng(seed);
      for (int op = 0; op < 20; ++op) {
        co_await env.kernel->Spend(*env.self, Duration::Nanos(rng.UniformInt(50, 5000)),
                                   os::TimeCat::kUser);
        if (rng.Chance(0.5)) {
          co_await sem->Wait(env);
          co_await env.kernel->Spend(*env.self, Duration::Nanos(rng.UniformInt(10, 500)),
                                     os::TimeCat::kKernel);
          co_await sem->Post(env);
        }
        if (rng.Chance(0.2)) {
          co_await env.kernel->Sleep(env, Duration::Nanos(rng.UniformInt(100, 3000)));
        }
      }
    });
  }
  kernel.Run();
  kernel.FlushIdleAccounting();
  double wall = kernel.now().nanos();
  for (uint32_t c = 0; c < 4; ++c) {
    double total = kernel.accounting().cpu(c).Total().nanos();
    EXPECT_LE(total, wall * 1.0001) << "cpu " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationProperty, ::testing::Range<uint64_t>(51, 59));

}  // namespace
}  // namespace dipc
