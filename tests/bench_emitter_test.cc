// Regression tests for JsonEmitter's --metrics series windows
// (bench/micro_harness.h): BeginSeries must snapshot the metric registry
// under the open label and zero it, so each series' counters cover exactly
// its own measurement — the bug being pinned down is a bench that never
// calls BeginSeries (or only some sweeps do) silently attributing the whole
// binary's accumulated counters to every series.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "micro_harness.h"
#include "obs/metrics.h"

namespace dipc::bench {
namespace {

// Builds a mutable argv the emitter can strip flags from.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& a : storage) {
      ptrs.push_back(a.data());
    }
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchEmitter, BeginSeriesIsolatesMetricsPerSeries) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#endif
  obs::Registry::Default().Reset();
  const std::string path = "BENCH_emitter_iso_test.json";
  std::remove(path.c_str());
  {
    Argv av({"bench", "--json", "--metrics"});
    JsonEmitter json("emitter_iso_test", &av.argc, av.ptrs.data());
    ASSERT_TRUE(json.enabled());
    ASSERT_TRUE(json.metrics());
    json.BeginSeries("window_a");
    obs::Registry::Default().GetCounter("emitter_test/x")->Add(3);
    json.Row("a", 1, 10.0);
    json.BeginSeries("window_b");
    obs::Registry::Default().GetCounter("emitter_test/x")->Add(5);
    json.Row("b", 1, 20.0);
  }  // destructor closes window_b and writes the file
  const std::string body = ReadFile(path);
  ASSERT_FALSE(body.empty());
  // Each window sees only its own increments: 3 then 5, never the
  // accumulated 8 a missing reset would produce.
  const size_t a = body.find("\"window_a\"");
  const size_t b = body.find("\"window_b\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_LT(a, b);
  const std::string win_a = body.substr(a, b - a);
  const std::string win_b = body.substr(b);
  EXPECT_NE(win_a.find("\"emitter_test/x\": 3"), std::string::npos) << win_a;
  EXPECT_NE(win_b.find("\"emitter_test/x\": 5"), std::string::npos) << win_b;
  EXPECT_EQ(body.find("\"emitter_test/x\": 8"), std::string::npos);
  std::remove(path.c_str());
}

// Extracts the integer value of `counter` from one series window of the
// emitted JSON, or -1 when the counter is absent.
long long CounterIn(const std::string& window, const std::string& counter) {
  const std::string needle = "\"" + counter + "\": ";
  const size_t pos = window.find(needle);
  if (pos == std::string::npos) {
    return -1;
  }
  return std::atoll(window.c_str() + pos + needle.size());
}

// Regression for the audited benches (fig1/2/5/7, table1, s531, s75): run a
// real fig2-style measurement under two series windows and check the second
// window reports only its own simulator counters. Before the audit those
// benches never called BeginSeries, so every series silently carried the
// binary's entire accumulated counter state.
TEST(BenchEmitter, Fig2StyleSeriesWindowsIsolateSimulatorCounters) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#endif
  obs::Registry::Default().Reset();
  const std::string path = "BENCH_emitter_fig2_test.json";
  std::remove(path.c_str());
  {
    Argv av({"bench", "--json", "--metrics"});
    JsonEmitter json("emitter_fig2_test", &av.argc, av.ptrs.data());
    MicroConfig cfg{.arg_bytes = 1, .rounds = 40, .cross_cpu = false};
    json.BeginSeries("sem_first");
    json.Row("sem_first", 0, MeasureSemaphore(cfg).roundtrip_ns);
    json.BeginSeries("sem_second");
    json.Row("sem_second", 0, MeasureSemaphore(cfg).roundtrip_ns);
  }
  const std::string body = ReadFile(path);
  ASSERT_FALSE(body.empty());
  const size_t a = body.find("\"sem_first\": {");
  const size_t b = body.find("\"sem_second\": {");
  ASSERT_NE(a, std::string::npos) << body;
  ASSERT_NE(b, std::string::npos) << body;
  ASSERT_LT(a, b);
  const long long waits_a = CounterIn(body.substr(a, b - a), "os/sem/futex_waits");
  const long long waits_b = CounterIn(body.substr(b), "os/sem/futex_waits");
  // Identical configs park a comparable number of times per window. A
  // missing reset would make the second window cumulative (~2x the first).
  ASSERT_GT(waits_a, 0);
  ASSERT_GT(waits_b, 0);
  EXPECT_LT(waits_b, waits_a * 2) << "second series inherited the first's counters";
  std::remove(path.c_str());
}

TEST(BenchEmitter, NoBeginSeriesKeepsWholeRunSnapshot) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#endif
  obs::Registry::Default().Reset();
  const std::string path = "BENCH_emitter_whole_test.json";
  std::remove(path.c_str());
  {
    Argv av({"bench", "--json", "--metrics"});
    JsonEmitter json("emitter_whole_test", &av.argc, av.ptrs.data());
    obs::Registry::Default().GetCounter("emitter_test/y")->Add(4);
    json.Row("a", 1, 10.0);
    obs::Registry::Default().GetCounter("emitter_test/y")->Add(4);
    json.Row("a", 2, 20.0);
  }
  const std::string body = ReadFile(path);
  ASSERT_FALSE(body.empty());
  // Legacy shape: one cumulative snapshot for the whole binary.
  EXPECT_NE(body.find("\"emitter_test/y\": 8"), std::string::npos) << body;
  std::remove(path.c_str());
}

TEST(BenchEmitter, MetricsFlagOffMakesBeginSeriesFree) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#endif
  obs::Registry::Default().Reset();
  const std::string path = "BENCH_emitter_off_test.json";
  std::remove(path.c_str());
  {
    Argv av({"bench", "--json"});
    JsonEmitter json("emitter_off_test", &av.argc, av.ptrs.data());
    json.BeginSeries("window_a");
    obs::Registry::Default().GetCounter("emitter_test/z")->Add(7);
    json.Row("a", 1, 10.0);
    // Without --metrics, BeginSeries must not reset the registry (another
    // concurrent consumer may be reading it) and no metrics key is emitted.
    EXPECT_EQ(obs::Registry::Default().GetCounter("emitter_test/z")->value(), 7u);
    json.BeginSeries("window_b");
    EXPECT_EQ(obs::Registry::Default().GetCounter("emitter_test/z")->value(), 7u);
  }
  const std::string body = ReadFile(path);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.find("\"metrics\""), std::string::npos) << body;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dipc::bench
