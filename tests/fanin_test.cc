// Unit tests for the fan-in channel (src/chan/fanin.h): M->1 delivery with
// per-producer grants, per-producer credit isolation, the death matrix
// (producer dies mid-send, consumer dies with queued descriptors,
// credit-exhaustion timeouts) and supervisor-style RebindProducer.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/fanin.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/deadline.h"
#include "os/kernel.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;

class FanInTest : public ::testing::Test {
 protected:
  FanInTest() : machine_(6), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  std::vector<os::Process*> MakeProducers(int n) {
    std::vector<os::Process*> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(&dipc_.CreateDipcProcess("client-" + std::to_string(i)));
    }
    return out;
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

TEST_F(FanInTest, ManyProducersDeliverIntoOneConsumerFifo) {
  auto producers = MakeProducers(3);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  auto ch = FanInChannel::Create(dipc_, producers, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  constexpr int kPerProducer = 5;  // 15 total > slots: rotates the pool
  std::vector<int> got(3, 0);
  int total = 0;
  kernel_.Spawn(cons, "server", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env);
      if (!msg.ok()) {
        EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);  // orderly close
        co_return;
      }
      uint8_t tag = 0xff;
      EXPECT_TRUE(env.kernel
                      ->UserRead(*env.self, msg.value().va,
                                 std::span<std::byte>(reinterpret_cast<std::byte*>(&tag), 1))
                      .ok());
      EXPECT_LT(tag, 3);
      if (tag < 3) {
        ++got[tag];
      }
      ++total;
      EXPECT_TRUE((co_await fan->Release(env, msg.value())).ok());
    }
  });
  for (uint32_t p = 0; p < 3; ++p) {
    kernel_.Spawn(*producers[p], "client", [&, fan, p](os::Env env) -> sim::Task<void> {
      for (int i = 0; i < kPerProducer; ++i) {
        auto buf = co_await fan->AcquireBuf(env, p);
        DIPC_CHECK(buf.ok());
        uint8_t tag = static_cast<uint8_t>(p);
        DIPC_CHECK(env.kernel
                       ->UserWrite(*env.self, buf.value().va,
                                   std::span<const std::byte>(
                                       reinterpret_cast<const std::byte*>(&tag), 1))
                       .ok());
        DIPC_CHECK((co_await fan->Send(env, p, buf.value(), 64)).ok());
      }
      if (p == 0) {  // one producer closes after everyone quiesces
        co_await env.kernel->Sleep(env, Duration::Millis(1));
        fan->Close();
      }
    });
  }
  kernel_.Run();
  EXPECT_EQ(total, 3 * kPerProducer);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(got[p], kPerProducer) << "producer " << p;
  }
  EXPECT_EQ(fan->sends(), static_cast<uint64_t>(3 * kPerProducer));
  EXPECT_EQ(fan->recvs(), static_cast<uint64_t>(3 * kPerProducer));
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanInTest, CreditLineBoundsOneGreedyProducerWithoutStarvingTheGroup) {
  auto producers = MakeProducers(2);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  // Shared pool of 8 slots, but each producer may pin at most 2 at a time.
  auto ch = FanInChannel::Create(dipc_, producers, cons,
                                 {.slots = 8, .buf_bytes = 4096, .credits = 2});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  bool greedy_timed_out = false;
  int delivered = 0;
  kernel_.Spawn(*producers[0], "greedy", [&, fan](os::Env env) -> sim::Task<void> {
    // Hoard the full credit line without ever sending...
    auto a = co_await fan->AcquireBuf(env, 0);
    auto b = co_await fan->AcquireBuf(env, 0);
    DIPC_CHECK(a.ok() && b.ok());
    EXPECT_EQ(fan->credits(0), 0u);
    // ...then the third acquire must starve on *credit*, not pool space.
    auto c = co_await fan->AcquireBuf(
        env, 0, os::Deadline::After(env.kernel->now(), Duration::Micros(200)));
    EXPECT_EQ(c.code(), ErrorCode::kTimedOut);
    greedy_timed_out = true;
    EXPECT_EQ(fan->credits(0), 0u);  // a timeout consumes no credit
    // Hand the hoard back so teardown is clean.
    EXPECT_TRUE((co_await fan->AbandonBuf(env, 0, a.value())).ok());
    EXPECT_TRUE((co_await fan->AbandonBuf(env, 0, b.value())).ok());
    EXPECT_EQ(fan->credits(0), 2u);
    fan->Close();
  });
  kernel_.Spawn(*producers[1], "polite", [&, fan](os::Env env) -> sim::Task<void> {
    // The greedy neighbour's exhausted line must not block this producer:
    // six of the eight pool slots are still free and p1 has its own credits.
    co_await env.kernel->Sleep(env, Duration::Micros(50));
    auto buf = co_await fan->AcquireBuf(env, 1);
    DIPC_CHECK(buf.ok());
    DIPC_CHECK((co_await fan->Send(env, 1, buf.value(), 64)).ok());
  });
  kernel_.Spawn(cons, "server", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env);
      if (!msg.ok()) {
        co_return;
      }
      ++delivered;
      EXPECT_TRUE((co_await fan->Release(env, msg.value())).ok());
    }
  });
  kernel_.Run();
  EXPECT_TRUE(greedy_timed_out);
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(fan->blocked_on_credit(), 1u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanInTest, ProducerDeathMidSendExcisesOnlyThatProducer) {
  // Death matrix row 1: a producer dies while suspended inside Send's
  // runtime charge. Its grants must be revoked (its owner key fully drained
  // from the RevocationTable), its held slots recycled, and the surviving
  // producers must keep flowing.
  auto producers = MakeProducers(2);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  auto ch = FanInChannel::Create(dipc_, producers, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  const uint64_t doomed_owner = fan->producer_owner(0);
  int delivered = 0;
  kernel_.Spawn(*producers[0], "doomed", [&, fan](os::Env env) -> sim::Task<void> {
    auto buf = co_await fan->AcquireBuf(env, 0);
    DIPC_CHECK(buf.ok());
    // Widen the send's Spend window so the killer (t=5us) lands inside it.
    machine_.costs().chan_fast_path = Duration::Micros(10);
    auto s = co_await fan->Send(env, 0, buf.value(), 64);
    // The process was killed mid-charge; whatever the coroutine observes on
    // resume, it must not be a successful publish of a revoked grant.
    (void)s;
    co_return;
  });
  kernel_.Spawn(*producers[1], "survivor", [&, fan](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // after the kill
    machine_.costs().chan_fast_path = Duration::Nanos(80);
    EXPECT_FALSE(fan->producer_alive(0));
    EXPECT_TRUE(fan->producer_alive(1));
    EXPECT_EQ(fan->broken(), ErrorCode::kOk);  // group not broken
    for (int i = 0; i < 6; ++i) {  // > slots: the doomed slot was recycled
      auto buf = co_await fan->AcquireBuf(env, 1);
      DIPC_CHECK(buf.ok());
      DIPC_CHECK((co_await fan->Send(env, 1, buf.value(), 64)).ok());
    }
    co_await env.kernel->Sleep(env, Duration::Millis(1));
    fan->Close();
  });
  kernel_.Spawn(cons, "server", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env);
      if (!msg.ok()) {
        co_return;
      }
      ++delivered;
      EXPECT_TRUE((co_await fan->Release(env, msg.value())).ok());
    }
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(5));
    dipc_.KillProcess(*producers[0]);
  });
  kernel_.Run();
  EXPECT_GE(delivered, 6);  // all survivor sends arrived
  EXPECT_EQ(codoms_.revocations().LiveCountForOwner(doomed_owner), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanInTest, ConsumerDeathWithQueuedDescriptorsRevokesEverything) {
  // Death matrix row 2: the consumer dies with published-but-undelivered
  // descriptors in the FIFO and a producer parked on exhausted credit. The
  // whole channel breaks, every grant (both owner keys) is swept, and the
  // parked producer is woken with the breakage instead of wedging.
  auto producers = MakeProducers(2);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  auto ch = FanInChannel::Create(dipc_, producers, cons,
                                 {.slots = 4, .buf_bytes = 4096, .credits = 2});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  const uint64_t p0_owner = fan->producer_owner(0);
  const uint64_t cons_owner = fan->consumer_owner();
  bool woke_with_breakage = false;
  kernel_.Spawn(*producers[0], "client", [&, fan](os::Env env) -> sim::Task<void> {
    // Queue two messages the consumer will never drain (it never Recvs),
    // exhausting p0's credit line...
    for (int i = 0; i < 2; ++i) {
      auto buf = co_await fan->AcquireBuf(env, 0);
      DIPC_CHECK(buf.ok());
      DIPC_CHECK((co_await fan->Send(env, 0, buf.value(), 64)).ok());
    }
    // ...then park on credit. The killer fires at t=30us; the consumer's
    // death must fail this wait rather than leave it wedged forever.
    auto buf = co_await fan->AcquireBuf(env, 0);
    EXPECT_FALSE(buf.ok());
    EXPECT_EQ(buf.code(), ErrorCode::kCalleeFailed);
    woke_with_breakage = true;
    // Post-breakage producer ops fail fast.
    auto again = co_await fan->AcquireBuf(env, 1);
    EXPECT_EQ(again.code(), ErrorCode::kCalleeFailed);
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    dipc_.KillProcess(cons);
  });
  kernel_.Run();
  EXPECT_TRUE(woke_with_breakage);
  EXPECT_EQ(fan->broken(), ErrorCode::kCalleeFailed);
  // Nothing leaks: the queued descriptors' read grants, the write grants,
  // both owner keys, all drained.
  EXPECT_EQ(codoms_.revocations().LiveCountForOwner(p0_owner), 0u);
  EXPECT_EQ(codoms_.revocations().LiveCountForOwner(cons_owner), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanInTest, CreditExhaustionTimeoutLeaksNoGrantsOrCredits) {
  // Death matrix row 3: a deadline expires while waiting on credit. The
  // timeout must consume no credit, mint no grant, and the producer must be
  // able to proceed normally once the consumer frees a slot.
  auto producers = MakeProducers(1);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  auto ch = FanInChannel::Create(dipc_, producers, cons,
                                 {.slots = 2, .buf_bytes = 4096, .credits = 1});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  int delivered = 0;
  kernel_.Spawn(*producers[0], "client", [&, fan](os::Env env) -> sim::Task<void> {
    auto first = co_await fan->AcquireBuf(env, 0);
    DIPC_CHECK(first.ok());
    DIPC_CHECK((co_await fan->Send(env, 0, first.value(), 64)).ok());
    EXPECT_EQ(fan->credits(0), 0u);
    const uint64_t grants_before = fan->LiveGrantCount();
    // The consumer sits on the message until t=100us; this wait dies first.
    auto timed = co_await fan->AcquireBuf(
        env, 0, os::Deadline::After(env.kernel->now(), Duration::Micros(20)));
    EXPECT_EQ(timed.code(), ErrorCode::kTimedOut);
    EXPECT_EQ(fan->credits(0), 0u);
    EXPECT_EQ(fan->LiveGrantCount(), grants_before);  // no grant minted
    // Once the release lands, the same producer proceeds with no residue.
    auto after = co_await fan->AcquireBuf(
        env, 0, os::Deadline::After(env.kernel->now(), Duration::Millis(1)));
    DIPC_CHECK(after.ok());
    DIPC_CHECK((co_await fan->Send(env, 0, after.value(), 64)).ok());
    co_await env.kernel->Sleep(env, Duration::Millis(1));
    fan->Close();
  });
  kernel_.Spawn(cons, "server", [&, fan](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(100));
    while (true) {
      auto msg = co_await fan->Recv(env);
      if (!msg.ok()) {
        co_return;
      }
      ++delivered;
      EXPECT_TRUE((co_await fan->Release(env, msg.value())).ok());
    }
  });
  kernel_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_GE(fan->blocked_on_credit(), 1u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanInTest, RebindProducerSplicesFreshIncarnationWithFullCreditLine) {
  // Supervisor respawn path: kill a producer that is holding an acquired
  // slot AND has a message queued, rebind the slot to a fresh process, and
  // verify the fresh incarnation gets a clean line while the dead
  // incarnation's late-released message refunds nobody.
  auto producers = MakeProducers(2);
  os::Process& cons = dipc_.CreateDipcProcess("server");
  auto ch = FanInChannel::Create(dipc_, producers, cons,
                                 {.slots = 4, .buf_bytes = 4096, .credits = 2});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanInChannel> fan = ch.value();
  const uint64_t old_owner = fan->producer_owner(0);
  int delivered = 0;
  kernel_.Spawn(*producers[0], "doomed", [&, fan](os::Env env) -> sim::Task<void> {
    auto queued = co_await fan->AcquireBuf(env, 0);
    DIPC_CHECK(queued.ok());
    DIPC_CHECK((co_await fan->Send(env, 0, queued.value(), 64)).ok());
    auto held = co_await fan->AcquireBuf(env, 0);  // held, never sent
    DIPC_CHECK(held.ok());
    co_await env.kernel->Sleep(env, Duration::Millis(10));  // killed at 30us
  });
  kernel_.Spawn(cons, "server", [&, fan](os::Env env) -> sim::Task<void> {
    // Wait past kill (30us) + rebind (60us) before draining, so the queued
    // message's release happens against the *rebound* incarnation.
    co_await env.kernel->Sleep(env, Duration::Micros(100));
    while (true) {
      auto msg = co_await fan->Recv(env);
      if (!msg.ok()) {
        co_return;
      }
      ++delivered;
      EXPECT_TRUE((co_await fan->Release(env, msg.value())).ok());
    }
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "supervisor", [&, fan](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    dipc_.KillProcess(*producers[0]);
    EXPECT_FALSE(fan->producer_alive(0));
    // The dead incarnation's owner key is already fully drained even though
    // its published message is still queued (read grant belongs to the
    // consumer's key, not the producer's).
    EXPECT_EQ(codoms_.revocations().LiveCountForOwner(old_owner), 0u);
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    os::Process& fresh = dipc_.CreateDipcProcess("client-0b");
    EXPECT_TRUE(fan->RebindProducer(0, fresh).ok());
    EXPECT_TRUE(fan->producer_alive(0));
    EXPECT_NE(fan->producer_owner(0), old_owner);  // fresh owner key
    EXPECT_EQ(fan->credits(0), fan->credit_line());  // full line, no residue
    kernel_.Spawn(fresh, "client", [&, fan](os::Env env2) -> sim::Task<void> {
      // Let the consumer drain the old incarnation's queued message first;
      // its release must NOT overfill our fresh credit line.
      co_await env2.kernel->Sleep(env2, Duration::Micros(200));
      EXPECT_LE(fan->credits(0), fan->credit_line());
      for (int i = 0; i < 3; ++i) {
        auto buf = co_await fan->AcquireBuf(env2, 0);
        DIPC_CHECK(buf.ok());
        DIPC_CHECK((co_await fan->Send(env2, 0, buf.value(), 64)).ok());
      }
      co_await env2.kernel->Sleep(env2, Duration::Millis(1));
      EXPECT_EQ(fan->credits(0), fan->credit_line());
      fan->Close();
    });
  });
  kernel_.Run();
  EXPECT_EQ(delivered, 1 + 3);  // the dead incarnation's publish + 3 fresh
  EXPECT_EQ(codoms_.revocations().LiveCountForOwner(old_owner), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

}  // namespace
}  // namespace dipc::chan
