// Unit tests for the discrete-event engine and coroutine tasks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "sim/time.h"

namespace dipc::sim {
namespace {

using Nanos = Duration;

TEST(Time, DurationArithmetic) {
  Duration a = Duration::Nanos(2.0);
  Duration b = Duration::Micros(1.0);
  EXPECT_EQ((a + b).nanos(), 1002.0);
  EXPECT_EQ((b - a).nanos(), 998.0);
  EXPECT_EQ((a * 3).nanos(), 6.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(Duration::Seconds(1.0).picos(), 1'000'000'000'000LL);
}

TEST(Time, TimePlusDuration) {
  Time t = Time::Zero() + Duration::Nanos(5);
  EXPECT_EQ(t.nanos(), 5.0);
  EXPECT_EQ((t - Time::Zero()).nanos(), 5.0);
}

TEST(Time, SubNanosecondResolution) {
  // A 3.1 GHz cycle (~322.6 ps) must not round to zero.
  Duration cycle = Duration::Nanos(1.0 / 3.1);
  EXPECT_GT(cycle.picos(), 0);
  Duration sum = Duration::Zero();
  for (int i = 0; i < 31; ++i) {
    sum += cycle;
  }
  EXPECT_NEAR(sum.nanos(), 10.0, 0.02);  // 31 cycles; <=1 ps rounding per cycle
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Time::Zero() + Duration::Nanos(30), [&] { order.push_back(3); });
  q.ScheduleAt(Time::Zero() + Duration::Nanos(10), [&] { order.push_back(1); });
  q.ScheduleAt(Time::Zero() + Duration::Nanos(20), [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().nanos(), 30.0);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(Time::Zero() + Duration::Nanos(5), [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  EventId id = q.ScheduleAfter(Duration::Nanos(10), [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel
  q.RunUntilIdle();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RunUntilAdvancesClockPastDrain) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAfter(Duration::Nanos(10), [&] { ++fired; });
  q.RunUntil(Time::Zero() + Duration::Nanos(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now().nanos(), 100.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAfter(Duration::Nanos(10), [&] { ++fired; });
  q.ScheduleAfter(Duration::Nanos(200), [&] { ++fired; });
  q.RunUntil(Time::Zero() + Duration::Nanos(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(Duration::Nanos(1), chain);
    }
  };
  q.ScheduleAfter(Duration::Nanos(1), chain);
  q.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now().nanos(), 5.0);
}

// --- Task / coroutine tests ---

Task<int> ReturnsValue() { co_return 42; }

Task<int> AddsNested() {
  int a = co_await ReturnsValue();
  int b = co_await ReturnsValue();
  co_return a + b;
}

TEST(Task, TopLevelCompletion) {
  bool done = false;
  Task<int> t = ReturnsValue();
  EXPECT_FALSE(t.done());
  t.Start([&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(t.TakeResult(), 42);
}

TEST(Task, NestedComposition) {
  Task<int> t = AddsNested();
  t.Start();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.TakeResult(), 84);
}

Task<void> SuspendsOnce(std::coroutine_handle<>* out, int* stage) {
  *stage = 1;
  co_await SuspendTo([out](std::coroutine_handle<> h) { *out = h; });
  *stage = 2;
}

TEST(Task, SuspendToParksAndResumes) {
  std::coroutine_handle<> h;
  int stage = 0;
  Task<void> t = SuspendsOnce(&h, &stage);
  t.Start();
  EXPECT_EQ(stage, 1);
  EXPECT_FALSE(t.done());
  ASSERT_TRUE(h);
  h.resume();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(t.done());
}

Task<int> SuspendingChild(std::coroutine_handle<>* out) {
  co_await SuspendTo([out](std::coroutine_handle<> h) { *out = h; });
  co_return 7;
}

Task<int> ParentOfSuspending(std::coroutine_handle<>* out) {
  int v = co_await SuspendingChild(out);
  co_return v * 3;
}

TEST(Task, ResumeOfInnermostDrivesWholeStack) {
  std::coroutine_handle<> h;
  Task<int> t = ParentOfSuspending(&h);
  t.Start();
  EXPECT_FALSE(t.done());
  h.resume();  // resuming the child must also complete the parent
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.TakeResult(), 21);
}

struct TestError {};

Task<void> Throws() {
  throw TestError{};
  co_return;  // unreachable; makes this a coroutine
}

Task<void> PropagatesFromChild() { co_await Throws(); }

TEST(Task, ExceptionPropagatesThroughAwait) {
  Task<void> t = PropagatesFromChild();
  t.Start();
  ASSERT_TRUE(t.done());
  EXPECT_THROW(t.TakeResult(), TestError);
}

// Coroutine + event queue: the integration the whole simulator relies on.
Task<void> WaitsTwice(EventQueue* q, std::vector<double>* stamps) {
  stamps->push_back(q->now().nanos());
  co_await SuspendTo([q](std::coroutine_handle<> h) {
    q->ScheduleAfter(Duration::Nanos(10), [h] { h.resume(); });
  });
  stamps->push_back(q->now().nanos());
  co_await SuspendTo([q](std::coroutine_handle<> h) {
    q->ScheduleAfter(Duration::Nanos(5), [h] { h.resume(); });
  });
  stamps->push_back(q->now().nanos());
}

TEST(Task, DrivenByEventQueue) {
  EventQueue q;
  std::vector<double> stamps;
  Task<void> t = WaitsTwice(&q, &stamps);
  t.Start();
  q.RunUntilIdle();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(stamps, (std::vector<double>{0.0, 10.0, 15.0}));
}

// --- Rng / stats ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.Exponential(50.0));
  }
  EXPECT_NEAR(s.mean(), 50.0, 2.0);
}

TEST(RunningStat, MeanAndStddev) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.Percentile(100), 100.0, 0.01);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.1);
}

}  // namespace
}  // namespace dipc::sim
