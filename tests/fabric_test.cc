// Tests for the N x M service fabric (src/fabric/fabric.h): opid-matched
// request/response round trips across tenants, shard fairness, and the
// multi-tenant acceptance run — >= 100 tenants on >= 4 workers surviving
// scripted worker kills (which take out both the worker's request-plane
// receiver slot and its response-plane producer slot) with exactly-once
// completions and a fully drained RevocationTable.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "fabric/fabric.h"
#include "hw/machine.h"
#include "os/kernel.h"

namespace dipc::fabric {
namespace {

using base::ErrorCode;
using sim::Duration;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : machine_(6), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  std::vector<os::Process*> MakeProcs(const std::string& stem, int n) {
    std::vector<os::Process*> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(&dipc_.CreateDipcProcess(stem + "-" + std::to_string(i)));
    }
    return out;
  }

  // Spawns the (client, worker) serve loops for worker slot `w` on `proc` —
  // the same shape the OLTP supervisor uses after a respawn.
  void SpawnServeLoops(std::shared_ptr<ServiceFabric> fab, uint32_t w, os::Process& proc,
                       ServiceFabric::Handler handler) {
    for (uint32_t c = 0; c < fab->client_count(); ++c) {
      kernel_.Spawn(proc, "serve", [fab, c, w, handler](os::Env env) -> sim::Task<void> {
        co_await fab->Serve(env, c, w, handler);
      });
    }
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

TEST_F(FabricTest, CallsRoundTripAndShardEvenlyAcrossWorkers) {
  auto clients = MakeProcs("tenant", 3);
  auto workers = MakeProcs("worker", 2);
  auto f = ServiceFabric::Create(dipc_, clients, workers,
                                 {.req_slots = 4, .req_bytes = 64, .resp_slots = 4,
                                  .resp_bytes = 64});
  ASSERT_TRUE(f.ok());
  std::shared_ptr<ServiceFabric> fab = f.value();
  fab->StartAllDispatchers();
  ServiceFabric::Handler echo = [](os::Env, const chan::Msg&) -> sim::Task<void> {
    co_return;
  };
  for (uint32_t w = 0; w < 2; ++w) {
    SpawnServeLoops(fab, w, *workers[w], echo);
  }
  constexpr int kPerTenant = 4;
  int ok_calls = 0;
  int remaining = 3;
  for (uint32_t c = 0; c < 3; ++c) {
    kernel_.Spawn(*clients[c], "web", [&, fab, c](os::Env env) -> sim::Task<void> {
      for (int i = 0; i < kPerTenant; ++i) {
        auto s = co_await fab->Call(env, c, 16);
        EXPECT_TRUE(s.ok()) << "tenant " << c << " call " << i;
        if (s.ok()) {
          ++ok_calls;
        }
      }
      if (--remaining == 0) {
        fab->Close();
      }
    });
  }
  kernel_.Run();
  EXPECT_EQ(ok_calls, 3 * kPerTenant);
  EXPECT_EQ(fab->calls(), static_cast<uint64_t>(3 * kPerTenant));
  EXPECT_EQ(fab->completions(), static_cast<uint64_t>(3 * kPerTenant));
  EXPECT_EQ(fab->failures(), 0u);
  EXPECT_EQ(fab->retries(), 0u);
  EXPECT_EQ(fab->duplicate_completions(), 0u);
  // Each tenant's round-robin cursor alternates its two workers: an even
  // per-tenant count lands exactly half on each slot.
  EXPECT_EQ(fab->WorkerProgress(0), static_cast<uint64_t>(3 * kPerTenant / 2));
  EXPECT_EQ(fab->WorkerProgress(1), static_cast<uint64_t>(3 * kPerTenant / 2));
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(fab->request_plane(c)->LiveGrantCount(), 0u);
    EXPECT_EQ(fab->response_plane(c)->LiveGrantCount(), 0u);
  }
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FabricTest, SharedTrioKeepsTagFootprintConstantAcrossTenants) {
  // The APL-cache design point: with shared_trio every request plane uses
  // one trio and every response plane another, so 8 tenants still present
  // only two distinct data tags to the cache.
  auto clients = MakeProcs("tenant", 8);
  auto workers = MakeProcs("worker", 2);
  auto f = ServiceFabric::Create(dipc_, clients, workers, {.req_bytes = 64, .resp_bytes = 64});
  ASSERT_TRUE(f.ok());
  std::shared_ptr<ServiceFabric> fab = f.value();
  for (uint32_t c = 1; c < 8; ++c) {
    EXPECT_EQ(fab->request_plane(c)->config().data_tag,
              fab->request_plane(0)->config().data_tag);
    EXPECT_EQ(fab->response_plane(c)->config().data_tag,
              fab->response_plane(0)->config().data_tag);
  }
  EXPECT_NE(fab->request_plane(0)->config().data_tag,
            fab->response_plane(0)->config().data_tag);
  fab->Close();
  kernel_.Run();
}

TEST_F(FabricTest, MultiTenantFabricSurvivesScriptedWorkerKillsExactlyOnce) {
  // The acceptance run: 100 tenants sharded over 4 workers, two workers
  // murdered mid-run on a script. Killing a worker kills both halves of its
  // fabric identity — the fan-out receiver slot on every tenant's request
  // plane and the fan-in producer slot on every tenant's response plane —
  // so this is the worker-kill AND producer-kill case at once. A scripted
  // supervisor rebinds each victim to a fresh process. Every operation must
  // complete exactly once and the RevocationTable must drain to zero.
  constexpr int kTenants = 100;
  constexpr int kWorkers = 4;
  constexpr int kPerTenant = 3;
  auto clients = MakeProcs("tenant", kTenants);
  auto workers = MakeProcs("worker", kWorkers);
  auto f = ServiceFabric::Create(
      dipc_, clients, workers,
      {.req_slots = 4, .req_bytes = 64, .resp_slots = 8, .resp_bytes = 64,
       .call_deadline = Duration::Millis(1), .max_call_retries = 20});
  ASSERT_TRUE(f.ok());
  std::shared_ptr<ServiceFabric> fab = f.value();
  fab->StartAllDispatchers();
  ServiceFabric::Handler echo = [](os::Env, const chan::Msg&) -> sim::Task<void> {
    co_return;
  };
  for (uint32_t w = 0; w < kWorkers; ++w) {
    SpawnServeLoops(fab, w, *workers[w], echo);
  }
  int ok_calls = 0;
  int remaining = kTenants;
  for (uint32_t c = 0; c < kTenants; ++c) {
    kernel_.Spawn(*clients[c], "web", [&, fab, c](os::Env env) -> sim::Task<void> {
      for (int i = 0; i < kPerTenant; ++i) {
        // Pace the calls so the run spans both scripted kills.
        co_await env.kernel->Sleep(env, Duration::Micros(150));
        auto s = co_await fab->Call(env, c, 16);
        EXPECT_TRUE(s.ok()) << "tenant " << c << " call " << i;
        if (s.ok()) {
          ++ok_calls;
        }
      }
      if (--remaining == 0) {
        fab->Close();
      }
    });
  }
  os::Process& sup = dipc_.CreateDipcProcess("supervisor");
  kernel_.Spawn(sup, "supervisor", [&, fab](os::Env env) -> sim::Task<void> {
    for (uint32_t victim : {1u, 2u}) {
      co_await env.kernel->Sleep(env, Duration::Micros(200));
      dipc_.KillProcess(*workers[victim]);
      EXPECT_FALSE(fab->worker_alive(victim));
      co_await env.kernel->Sleep(env, Duration::Micros(100));
      os::Process& fresh =
          dipc_.CreateDipcProcess("worker-" + std::to_string(victim) + "b");
      EXPECT_TRUE(fab->RebindWorker(victim, fresh).ok());
      EXPECT_TRUE(fab->worker_alive(victim));
      SpawnServeLoops(fab, victim, fresh, echo);
    }
  });
  kernel_.Run();
  constexpr uint64_t kTotal = uint64_t{kTenants} * kPerTenant;
  // Exactly once: every operation returned kOk exactly one time, none were
  // abandoned, and any late completions of superseded attempts were dropped
  // at dispatch (counted, never double-delivered).
  EXPECT_EQ(ok_calls, static_cast<int>(kTotal));
  EXPECT_EQ(fab->calls(), kTotal);
  EXPECT_EQ(fab->completions(), kTotal);
  EXPECT_EQ(fab->failures(), 0u);
  EXPECT_EQ(fab->worker_rebinds(), 2u);
  uint64_t progress = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(fab->worker_alive(w));
    EXPECT_GE(fab->WorkerProgress(w), 1u) << "worker " << w;
    progress += fab->WorkerProgress(w);
  }
  EXPECT_GE(progress, kTotal);  // retried attempts may be served twice
  for (uint32_t c = 0; c < kTenants; ++c) {
    EXPECT_EQ(fab->request_plane(c)->LiveGrantCount(), 0u) << "tenant " << c;
    EXPECT_EQ(fab->response_plane(c)->LiveGrantCount(), 0u) << "tenant " << c;
  }
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

}  // namespace
}  // namespace dipc::fabric
