// Robustness regressions for the deadline-aware blocking paths: timed
// channel/fan-out operations return kTimedOut (not hang) with no leaked
// capability grants, peer death beats a pending deadline, the semaphore's
// kernel-entry failure window, and the fan-out receiver rebind that the
// OLTP supervisor uses to respawn dead workers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/fanout.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "os/semaphore.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : machine_(4), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

TEST_F(RobustnessTest, ChannelRecvBatchTimesOutWithNoLeakedGrants) {
  os::Process& a = dipc_.CreateDipcProcess("a");
  os::Process& b = dipc_.CreateDipcProcess("b");
  auto ch = Channel::Create(dipc_, a, b, {.slots = 4, .buf_bytes = 256});
  ASSERT_TRUE(ch.ok());
  const Duration limit = Duration::Millis(1);
  bool checked = false;
  kernel_.Spawn(b, "rx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    const sim::Time deadline_at = k.now() + limit;
    // Nobody ever sends: the blocked batch must come back kTimedOut, by the
    // deadline, having minted no receive grants.
    auto msgs = co_await ch.value()->RecvBatch(env, 4, os::Deadline::At(deadline_at));
    EXPECT_EQ(msgs.code(), ErrorCode::kTimedOut);
    EXPECT_LE(k.now(), deadline_at + Duration::Micros(1));
    EXPECT_EQ(ch.value()->LiveGrantCount(), 0u);
    checked = true;
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RobustnessTest, ChannelAcquireBufTimesOutWhenSlotsExhausted) {
  os::Process& a = dipc_.CreateDipcProcess("a");
  os::Process& b = dipc_.CreateDipcProcess("b");
  constexpr uint32_t kSlots = 2;
  auto ch = Channel::Create(dipc_, a, b, {.slots = kSlots, .buf_bytes = 256});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<Channel> c = ch.value();
  bool timed_out = false;
  kernel_.Spawn(a, "tx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    // Hold every slot, then ask for one more under a deadline.
    auto held = co_await c->AcquireBufBatch(env, kSlots);
    EXPECT_TRUE(held.ok());
    EXPECT_EQ(held.value().size(), kSlots);
    auto extra = co_await c->AcquireBuf(env, os::Deadline::After(k.now(), Duration::Millis(1)));
    EXPECT_EQ(extra.code(), ErrorCode::kTimedOut);
    timed_out = true;
    // The held buffers' grants are legitimate; the timed-out acquire must
    // not have added any. Send them on so teardown drains cleanly.
    for (const SendBuf& buf : held.value()) {
      c->BindSendCap(*env.self, buf);
      EXPECT_TRUE((co_await c->Send(env, buf, 16)).ok());
    }
    c->Close();
  });
  kernel_.Spawn(b, "rx", [&](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await c->Recv(env);
      if (!msg.ok()) {
        EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);
        co_return;
      }
      EXPECT_TRUE((co_await c->Release(env, msg.value())).ok());
    }
  });
  kernel_.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(c->LiveGrantCount(), 0u);
}

TEST_F(RobustnessTest, FanOutRecvBatchTimesOutAgainstWedgedProducer) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  std::vector<os::Process*> rxs{&dipc_.CreateDipcProcess("w0"), &dipc_.CreateDipcProcess("w1")};
  auto fr = FanOutChannel::Create(dipc_, prod, rxs, {.slots = 4, .buf_bytes = 256});
  ASSERT_TRUE(fr.ok());
  std::shared_ptr<FanOutChannel> fan = fr.value();
  bool checked = false;
  kernel_.Spawn(*rxs[0], "rx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    const sim::Time deadline_at = k.now() + Duration::Millis(1);
    auto msgs = co_await fan->RecvBatch(env, 0, 4, os::Deadline::At(deadline_at));
    EXPECT_EQ(msgs.code(), ErrorCode::kTimedOut);
    EXPECT_LE(k.now(), deadline_at + Duration::Micros(1));
    EXPECT_EQ(fan->LiveGrantCount(), 0u);
    checked = true;
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RobustnessTest, FanOutSendTimesOutWhenCreditsExhausted) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  std::vector<os::Process*> rxs{&dipc_.CreateDipcProcess("w0")};
  // credit line == slots == 2: two unconsumed sends exhaust admission.
  auto fr = FanOutChannel::Create(dipc_, prod, rxs, {.slots = 2, .buf_bytes = 256});
  ASSERT_TRUE(fr.ok());
  std::shared_ptr<FanOutChannel> fan = fr.value();
  bool timed_out = false;
  kernel_.Spawn(prod, "tx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    for (int i = 0; i < 2; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      EXPECT_TRUE(buf.ok());
      EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 16, 0)).ok());
    }
    // The receiver never releases: the third send must give up at its
    // deadline inside credit admission, still owning no slot.
    auto buf = co_await fan->AcquireBuf(env, os::Deadline::After(k.now(), Duration::Millis(1)));
    EXPECT_EQ(buf.code(), ErrorCode::kTimedOut);
    timed_out = true;
  });
  kernel_.Run();
  EXPECT_TRUE(timed_out);
  // Two delivered-but-unconsumed messages hold their read grants; the
  // timed-out acquire added none on top.
  EXPECT_EQ(fan->credits(0), fan->credit_line() - 2);
}

TEST_F(RobustnessTest, PeerDeathBeatsPendingDeadline) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  std::vector<os::Process*> rxs{&dipc_.CreateDipcProcess("w0")};
  auto fr = FanOutChannel::Create(dipc_, prod, rxs, {.slots = 2, .buf_bytes = 256});
  ASSERT_TRUE(fr.ok());
  std::shared_ptr<FanOutChannel> fan = fr.value();
  bool checked = false;
  kernel_.Spawn(*rxs[0], "rx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    const sim::Time deadline_at = k.now() + Duration::Millis(50);
    // The producer dies at ~1ms: the blocked receive must fail with the
    // death code well before its 50ms deadline, not sit out the timer.
    auto msg = co_await fan->Recv(env, 0, os::Deadline::At(deadline_at));
    EXPECT_FALSE(msg.ok());
    EXPECT_EQ(msg.code(), ErrorCode::kCalleeFailed);
    EXPECT_LT(k.now(), deadline_at - Duration::Millis(40));
    checked = true;
  });
  os::Process& reaper_home = dipc_.CreateDipcProcess("reaper-home");
  kernel_.Spawn(reaper_home, "reaper", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Millis(1));
    dipc_.KillProcess(prod);
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(RobustnessTest, SemaphoreWaitUntilTimesOutWithoutConsumingTokens) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto sem = std::make_shared<os::Semaphore>(0);
  bool checked = false;
  kernel_.Spawn(p, "waiter", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    const sim::Time deadline_at = k.now() + Duration::Millis(1);
    auto s = co_await sem->WaitUntil(env, os::Deadline::At(deadline_at));
    EXPECT_EQ(s.code(), ErrorCode::kTimedOut);
    EXPECT_LE(k.now(), deadline_at + Duration::Micros(1));
    checked = true;
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
  EXPECT_EQ(sem->count(), 0);
  EXPECT_EQ(sem->waiter_count(), 0u);
}

TEST_F(RobustnessTest, SemaphoreFailWakesParkedWaiterWithItsCode) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto sem = std::make_shared<os::Semaphore>(0);
  bool checked = false;
  kernel_.Spawn(p, "waiter", [&](os::Env env) -> sim::Task<void> {
    auto s = co_await sem->WaitUntil(env, os::Deadline::Never());
    EXPECT_EQ(s.code(), ErrorCode::kBrokenChannel);
    checked = true;
  });
  kernel_.Spawn(p, "failer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Millis(1));
    sem->Fail(kernel_, ErrorCode::kBrokenChannel);
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
  EXPECT_TRUE(sem->failed());
}

TEST_F(RobustnessTest, SemaphoreFailBeforeWaitFailsFast) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto sem = std::make_shared<os::Semaphore>(0);
  sem->Fail(kernel_, ErrorCode::kCalleeFailed);
  bool checked = false;
  kernel_.Spawn(p, "waiter", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    const sim::Time start = k.now();
    auto s = co_await sem->WaitUntil(env, os::Deadline::After(k.now(), Duration::Millis(100)));
    EXPECT_EQ(s.code(), ErrorCode::kCalleeFailed);
    EXPECT_LT(k.now() - start, Duration::Micros(1));  // no park, no timer wait
    checked = true;
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
}

// The historical hang: Fail() lands AFTER the user-space failed_/count_
// checks but BEFORE the futex park. The wakeup sweep finds no parked waiter,
// so without the in-kernel re-check the thread would park on an object
// nobody will ever post again. The window here is [t+9ns, t+~150ns] (user
// fast path, then kernel entry + futex-wait work); the Fail event at t+50ns
// lands squarely inside it.
TEST_F(RobustnessTest, SemaphoreFailInKernelEntryWindowDoesNotHang) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto sem = std::make_shared<os::Semaphore>(0);
  bool checked = false;
  kernel_.Spawn(p, "waiter", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    k.machine().events().ScheduleAt(k.now() + Duration::Nanos(50), [&] {
      sem->Fail(kernel_, ErrorCode::kCalleeFailed);
    });
    auto s = co_await sem->WaitUntil(env, os::Deadline::Never());
    EXPECT_EQ(s.code(), ErrorCode::kCalleeFailed);
    checked = true;
  });
  kernel_.Run();  // terminating at all proves the no-hang property
  EXPECT_TRUE(checked);
}

// The supervisor's healing step: a receiver dies, OnProcessDeath sweeps its
// slot, RebindReceiver re-homes the slot to a fresh process, and delivery
// resumes with a full credit line. Undelivered messages to the dead
// incarnation are recycled, never delivered twice.
TEST_F(RobustnessTest, RebindReceiverRestoresDeliveryAfterDeath) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  std::vector<os::Process*> rxs{&dipc_.CreateDipcProcess("w0"), &dipc_.CreateDipcProcess("w1")};
  auto fr = FanOutChannel::Create(dipc_, prod, rxs, {.slots = 4, .buf_bytes = 256});
  ASSERT_TRUE(fr.ok());
  std::shared_ptr<FanOutChannel> fan = fr.value();

  int delivered_to_fresh = 0;
  kernel_.Spawn(prod, "tx", [&](os::Env env) -> sim::Task<void> {
    os::Kernel& k = *env.kernel;
    // Phase 1: two messages parked at w0, which dies without consuming them.
    for (int i = 0; i < 2; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      EXPECT_TRUE(buf.ok());
      EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 16, 0)).ok());
    }
    dipc_.KillProcess(*rxs[0]);
    EXPECT_FALSE(fan->receiver_alive(0));
    // Phase 2: heal slot 0 into a fresh process and verify the full credit
    // line came back (the dead incarnation's undelivered messages were
    // recycled by the sweep, not carried over).
    os::Process& fresh = dipc_.CreateDipcProcess("w0-respawn");
    EXPECT_TRUE(fan->RebindReceiver(0, fresh).ok());
    EXPECT_TRUE(fan->receiver_alive(0));
    EXPECT_EQ(fan->credits(0), fan->credit_line());
    kernel_.Spawn(fresh, "rx", [&](os::Env env2) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env2, 0);
        if (!msg.ok()) {
          EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);
          co_return;
        }
        ++delivered_to_fresh;
        EXPECT_TRUE((co_await fan->Release(env2, 0, msg.value())).ok());
      }
    });
    for (int i = 0; i < 3; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      EXPECT_TRUE(buf.ok());
      EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 16, 0)).ok());
    }
    // Let the fresh receiver drain, then shut down in order.
    co_await k.Sleep(env, Duration::Millis(1));
    fan->Close();
  });
  kernel_.Run();
  EXPECT_EQ(delivered_to_fresh, 3);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

}  // namespace
}  // namespace dipc::chan
