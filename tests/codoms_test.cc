// Unit tests for the CODOMs architecture model: APLs, the APL cache,
// capabilities (sync/async, derivation, revocation, spill), data-access and
// control-transfer checks, and the privileged-capability bit.
#include <gtest/gtest.h>

#include "codoms/apl.h"
#include "codoms/apl_cache.h"
#include "codoms/cap_context.h"
#include "codoms/capability.h"
#include "codoms/codoms.h"
#include "codoms/perm.h"
#include "hw/machine.h"

namespace dipc::codoms {
namespace {

using base::ErrorCode;
using hw::AccessType;
using hw::kPageSize;

TEST(Perm, Ordering) {
  EXPECT_TRUE(AtLeast(Perm::kWrite, Perm::kRead));
  EXPECT_TRUE(AtLeast(Perm::kRead, Perm::kCall));
  EXPECT_FALSE(AtLeast(Perm::kCall, Perm::kRead));
  EXPECT_TRUE(AtLeast(Perm::kCall, Perm::kNone));
  EXPECT_EQ(Weaker(Perm::kWrite, Perm::kRead), Perm::kRead);
}

TEST(Apl, GrantAndRevoke) {
  AplTable table;
  DomainTag a = table.AllocateTag();
  DomainTag b = table.AllocateTag();
  table.Grant(a, b, Perm::kCall);
  EXPECT_EQ(table.For(a).PermFor(b), Perm::kCall);
  table.Revoke(a, b);
  EXPECT_EQ(table.For(a).PermFor(b), Perm::kNone);
}

TEST(Apl, VersionBumpsOnChange) {
  AplTable table;
  DomainTag a = table.AllocateTag();
  uint64_t v0 = table.For(a).version();
  table.Grant(a, 99, Perm::kRead);
  EXPECT_GT(table.For(a).version(), v0);
}

// Fixture with the Figure 4 scenario: domains A, B, C where A may call into
// B's entry points and B may read (and thus jump into) C.
class Figure4Test : public ::testing::Test {
 protected:
  Figure4Test() : machine_(1), codoms_(machine_), pt_(machine_.CreatePageTable()), ctx_(1) {
    a_ = codoms_.apl_table().AllocateTag();
    b_ = codoms_.apl_table().AllocateTag();
    c_ = codoms_.apl_table().AllocateTag();
    // Figure 4 layout: pages 1,2,4,7 in A; page 3 in B; pages 0,5,6 in C.
    MapCode(0x0000, c_);
    MapData(0x1000, a_);
    MapCode(0x2000, a_);
    MapCode(0x3000, b_);
    MapData(0x4000, a_);
    MapCode(0x5000, c_);
    MapData(0x6000, c_);
    MapData(0x7000, a_);
    codoms_.apl_table().Grant(a_, b_, Perm::kCall);
    codoms_.apl_table().Grant(b_, c_, Perm::kRead);
    ctx_.current_domain = a_;
  }

  void MapCode(hw::VirtAddr va, DomainTag tag) {
    ASSERT_TRUE(pt_.MapPage(va, machine_.mem().AllocFrame(),
                            hw::PageFlags{.writable = false, .executable = true}, tag)
                    .ok());
  }
  void MapData(hw::VirtAddr va, DomainTag tag) {
    ASSERT_TRUE(
        pt_.MapPage(va, machine_.mem().AllocFrame(), hw::PageFlags{.writable = true}, tag).ok());
  }

  hw::Machine machine_;
  Codoms codoms_;
  hw::PageTable& pt_;
  ThreadCapContext ctx_;
  DomainTag a_, b_, c_;
};

TEST_F(Figure4Test, DomainAccessesOwnPages) {
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, ctx_, 0x1000, 64, AccessType::kWrite).ok());
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, ctx_, 0x7000, 64, AccessType::kRead).ok());
}

TEST_F(Figure4Test, CallGrantDoesNotAllowDataAccess) {
  // A can call into B but cannot read B's pages.
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x3000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(Figure4Test, NoGrantMeansNoAccess) {
  // A has no APL entry for C at all.
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x6000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(Figure4Test, CallIntoAlignedEntryPointSwitchesDomain) {
  auto r = codoms_.ControlTransfer(0, pt_, ctx_, 0x3000);  // page-aligned => 64 B aligned
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx_.current_domain, b_);
}

TEST_F(Figure4Test, MisalignedEntryCallFaults) {
  auto r = codoms_.ControlTransfer(0, pt_, ctx_, 0x3004);
  EXPECT_EQ(r.code(), ErrorCode::kFault);
  EXPECT_EQ(ctx_.current_domain, a_);  // unchanged
}

TEST_F(Figure4Test, ReadGrantAllowsArbitraryJump) {
  // Move to B first, then B can jump anywhere into C (read permission).
  ASSERT_TRUE(codoms_.ControlTransfer(0, pt_, ctx_, 0x3000).ok());
  auto r = codoms_.ControlTransfer(0, pt_, ctx_, 0x5004);  // misaligned is fine with read
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx_.current_domain, c_);
}

TEST_F(Figure4Test, TransitiveAccessIsNotGranted) {
  // A cannot jump into C even though B can (per-domain APLs, Figure 4).
  EXPECT_EQ(codoms_.ControlTransfer(0, pt_, ctx_, 0x5000).code(), ErrorCode::kFault);
}

TEST_F(Figure4Test, ReadGrantAllowsDataReadButNotWrite) {
  ASSERT_TRUE(codoms_.ControlTransfer(0, pt_, ctx_, 0x3000).ok());  // now in B
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, ctx_, 0x6000, 16, AccessType::kRead).ok());
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x6000, 16, AccessType::kWrite).code(),
            ErrorCode::kFault);
}

TEST_F(Figure4Test, PerPageProtectionBitsHonored) {
  // A's own code page is read-only: write faults despite implicit self-write.
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x2000, 8, AccessType::kWrite).code(),
            ErrorCode::kFault);
}

TEST_F(Figure4Test, UnmappedAccessFaults) {
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x9000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(Figure4Test, IntraDomainJumpIsFree) {
  auto r = codoms_.ControlTransfer(0, pt_, ctx_, 0x2004);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx_.current_domain, a_);
  EXPECT_EQ(r.value(), sim::Duration::Zero());
}

TEST_F(Figure4Test, RevokedGrantTakesEffectDespiteCache) {
  // Warm the APL cache with A's grant to B, then revoke: the stale snapshot
  // must not authorize further calls (version check => refill).
  ASSERT_TRUE(codoms_.ControlTransfer(0, pt_, ctx_, 0x3000).ok());
  ctx_.current_domain = a_;
  codoms_.apl_table().Revoke(a_, b_);
  EXPECT_EQ(codoms_.ControlTransfer(0, pt_, ctx_, 0x3000).code(), ErrorCode::kFault);
}

TEST_F(Figure4Test, AplCacheHitIsCheapMissIsNot) {
  auto first = codoms_.EnsureCached(0, a_);
  EXPECT_TRUE(first.missed);
  auto second = codoms_.EnsureCached(0, a_);
  EXPECT_FALSE(second.missed);
  EXPECT_LT(second.cost, first.cost);
}

TEST_F(Figure4Test, HwTagStableWhileCached) {
  auto ref = codoms_.EnsureCached(0, b_);
  sim::Duration cost;
  auto tag = codoms_.ReadHwTag(0, b_, &cost);
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag.value(), ref.hw_tag);
  EXPECT_LT(tag.value(), kAplCacheEntries);
}

TEST_F(Figure4Test, HwTagOfUncachedDomainFails) {
  sim::Duration cost;
  EXPECT_EQ(codoms_.ReadHwTag(0, 999, &cost).code(), ErrorCode::kNotFound);
}

TEST_F(Figure4Test, PerCpuCachesAreIndependent) {
  hw::Machine machine(2);
  Codoms codoms(machine);
  DomainTag t = codoms.apl_table().AllocateTag();
  codoms.EnsureCached(0, t);
  EXPECT_TRUE(codoms.apl_cache(0).Lookup(t).has_value());
  EXPECT_FALSE(codoms.apl_cache(1).Lookup(t).has_value());
}

TEST(AplCache, LruEvictionAt33Domains) {
  AplTable table;
  AplCache cache;
  std::vector<DomainTag> tags;
  for (int i = 0; i < 33; ++i) {
    tags.push_back(table.AllocateTag());
  }
  for (int i = 0; i < 32; ++i) {
    cache.Fill(tags[i], table);
  }
  EXPECT_TRUE(cache.Lookup(tags[0]).has_value());
  cache.Fill(tags[32], table);  // evicts the LRU entry (tags[0])
  EXPECT_FALSE(cache.Lookup(tags[0]).has_value());
  EXPECT_TRUE(cache.Lookup(tags[32]).has_value());
}

// --- Capability tests ---

class CapTest : public Figure4Test {};

TEST_F(CapTest, CapGrantsAccessOutsideApl) {
  // A gets a capability to C's data page (e.g. passed by C); access works.
  ThreadCapContext c_ctx(2);
  c_ctx.current_domain = c_;
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, c_ctx, 0x6000, 256, Perm::kWrite, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  ctx_.regs.Set(0, cap.value());
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, ctx_, 0x6010, 64, AccessType::kWrite).ok());
  // But not beyond the capability's range.
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x6100, 64, AccessType::kWrite).code(),
            ErrorCode::kFault);
}

TEST_F(CapTest, CannotCreateCapBeyondOwnRights) {
  // A cannot mint a capability to C's memory (no APL grant).
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x6000, 64, Perm::kRead, CapType::kSync, &cost);
  EXPECT_EQ(cap.code(), ErrorCode::kPermissionDenied);
}

TEST_F(CapTest, CallGrantCannotMintReadCap) {
  // A's Call permission over B must not convert into a data capability.
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x3000, 64, Perm::kRead, CapType::kSync, &cost);
  EXPECT_EQ(cap.code(), ErrorCode::kPermissionDenied);
}

TEST_F(CapTest, DeriveNarrowsNeverWidens) {
  sim::Duration cost;
  auto parent = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 512, Perm::kWrite, CapType::kSync, &cost);
  ASSERT_TRUE(parent.ok());
  auto child =
      codoms_.CapDerive(parent.value(), ctx_, 0x1100, 128, Perm::kRead, CapType::kSync, &cost);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child->rights, Perm::kRead);
  // Widening rights fails.
  auto widened =
      codoms_.CapDerive(child.value(), ctx_, 0x1100, 64, Perm::kWrite, CapType::kSync, &cost);
  EXPECT_EQ(widened.code(), ErrorCode::kPermissionDenied);
  // Widening range fails.
  auto grown =
      codoms_.CapDerive(parent.value(), ctx_, 0x1000, 1024, Perm::kRead, CapType::kSync, &cost);
  EXPECT_EQ(grown.code(), ErrorCode::kPermissionDenied);
}

TEST_F(CapTest, AsyncRevocationIsImmediate) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  ThreadCapContext other(7);
  other.current_domain = c_;
  other.regs.Set(0, cap.value());
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, other, 0x1000, 8, AccessType::kRead).ok());
  ASSERT_TRUE(codoms_.CapRevoke(cap.value()).ok());
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, other, 0x1000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(CapTest, RevokingParentKillsDerivedTree) {
  sim::Duration cost;
  auto parent = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 512, Perm::kWrite, CapType::kAsync, &cost);
  ASSERT_TRUE(parent.ok());
  auto child =
      codoms_.CapDerive(parent.value(), ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(codoms_.CapRevoke(parent.value()).ok());
  ctx_.regs.Set(0, child.value());
  ThreadCapContext probe(9);
  probe.current_domain = c_;
  probe.regs.Set(0, child.value());
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, probe, 0x1000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(CapTest, SyncCapBoundToOwnerThread) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kSync, &cost);
  ASSERT_TRUE(cap.ok());
  ThreadCapContext thief(99);
  thief.current_domain = c_;
  thief.regs.Set(0, cap.value());
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, thief, 0x1000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(CapTest, SyncCapDiesWhenFrameReturns) {
  ctx_.call_depth = 3;
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kSync, &cost);
  ASSERT_TRUE(cap.ok());
  ctx_.regs.Set(0, cap.value());
  // Probe from a domain with no direct access to A's page, so only the
  // capability can authorize the read (in-place dIPC switch keeps thread id).
  ctx_.current_domain = c_;
  EXPECT_TRUE(codoms_.CheckDataAccess(0, pt_, ctx_, 0x1000, 8, AccessType::kRead).ok());
  ctx_.call_depth = 2;  // the creating frame returned
  EXPECT_EQ(codoms_.CheckDataAccess(0, pt_, ctx_, 0x1000, 8, AccessType::kRead).code(),
            ErrorCode::kFault);
}

TEST_F(CapTest, CapAuthorizesControlTransfer) {
  // The dIPC proxy-return pattern: callee gets a capability to a code address
  // its APL does not cover, and may return through it (P3).
  ThreadCapContext callee(3);
  callee.current_domain = b_;
  // Mint from A's rights over its own code page (0x2000), entry-aligned.
  sim::Duration cost;
  auto ret_cap = codoms_.CapFromApl(0, pt_, ctx_, 0x2040, 64, Perm::kCall, CapType::kSync, &cost);
  ASSERT_TRUE(ret_cap.ok());
  // Transfer to the callee thread-context is modeled by copying the register
  // (same thread id in dIPC's in-place switch; reuse ctx_ here).
  ctx_.current_domain = b_;
  ctx_.regs.Set(7, ret_cap.value());
  auto r = codoms_.ControlTransfer(0, pt_, ctx_, 0x2040);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx_.current_domain, a_);
}

// --- Capability spill (DCS and tagged memory) ---

TEST_F(CapTest, DcsPushPopRoundTrip) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kSync, &cost);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(ctx_.dcs.Push(cap.value()).ok());
  EXPECT_EQ(ctx_.dcs.visible_entries(), 1u);
  auto popped = ctx_.dcs.Pop();
  ASSERT_TRUE(popped.ok());
  EXPECT_EQ(popped->base, cap->base);
}

TEST_F(CapTest, DcsBaseHidesCallerEntries) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kSync, &cost);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(ctx_.dcs.Push(cap.value()).ok());
  uint64_t saved = ctx_.dcs.SetBase(ctx_.dcs.top());  // proxy: DCS integrity
  EXPECT_EQ(ctx_.dcs.visible_entries(), 0u);
  EXPECT_EQ(ctx_.dcs.Pop().code(), ErrorCode::kPermissionDenied);  // callee can't pop
  ctx_.dcs.RestoreBase(saved);
  EXPECT_TRUE(ctx_.dcs.Pop().ok());
}

class CapStorageTest : public Figure4Test {
 protected:
  CapStorageTest() {
    // A capability-storage page owned by A.
    EXPECT_TRUE(pt_.MapPage(0x8000, machine_.mem().AllocFrame(),
                            hw::PageFlags{.writable = true, .cap_storage = true}, a_)
                    .ok());
  }
};

TEST_F(CapStorageTest, StoreLoadRoundTrip) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(codoms_.CapStore(pt_, ctx_, 0x8000, cap.value(), &cost).ok());
  auto loaded = codoms_.CapLoad(pt_, ctx_, 0x8000, &cost);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->base, cap->base);
  EXPECT_EQ(loaded->size, cap->size);
}

TEST_F(CapStorageTest, StoreToNonCapPageFaults) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(codoms_.CapStore(pt_, ctx_, 0x1000, cap.value(), &cost).code(), ErrorCode::kFault);
}

TEST_F(CapStorageTest, MisalignedSlotRejected) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(codoms_.CapStore(pt_, ctx_, 0x8010, cap.value(), &cost).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(CapStorageTest, PlainWriteDestroysStoredCap) {
  sim::Duration cost;
  auto cap = codoms_.CapFromApl(0, pt_, ctx_, 0x1000, 64, Perm::kRead, CapType::kAsync, &cost);
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(codoms_.CapStore(pt_, ctx_, 0x8000, cap.value(), &cost).ok());
  auto pa = pt_.Translate(0x8000);
  ASSERT_TRUE(pa.has_value());
  codoms_.NotifyPlainWrite(*pa + 8, 4);  // forging attempt
  EXPECT_EQ(codoms_.CapLoad(pt_, ctx_, 0x8000, &cost).code(), ErrorCode::kFault);
}

TEST_F(CapStorageTest, LoadFromEmptySlotFaults) {
  sim::Duration cost;
  EXPECT_EQ(codoms_.CapLoad(pt_, ctx_, 0x8020, &cost).code(), ErrorCode::kFault);
}

// --- Privileged capability bit ---

TEST_F(Figure4Test, PrivCapBitGatesPrivilegedInstructions) {
  EXPECT_FALSE(codoms_.CanExecutePrivileged(pt_, 0x2000));
  ASSERT_TRUE(pt_.MapPage(0xA000, machine_.mem().AllocFrame(),
                          hw::PageFlags{.executable = true, .priv_cap = true}, b_)
                  .ok());
  EXPECT_TRUE(codoms_.CanExecutePrivileged(pt_, 0xA000));
  // Data pages never execute privileged instructions.
  EXPECT_FALSE(codoms_.CanExecutePrivileged(pt_, 0x1000));
}

}  // namespace
}  // namespace dipc::codoms
