// Unit tests for the deterministic fault-injection engine (src/fault/):
// plan-text parsing, scripted and probabilistic triggers, the kill-handler
// contract, and the replay-determinism guarantee (same seed + plan ==>
// byte-identical decision log).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace dipc::fault {
namespace {

using sim::Duration;

#ifndef DIPC_FAULT_OFF

// Every test arms the process-wide singleton; disarm on the way out so no
// state bleeds into unrelated suites running in the same process.
class FaultTest : public ::testing::Test {
 protected:
  ~FaultTest() override { Injector::Global().Disarm(); }
};

TEST_F(FaultTest, ParseAcceptsFullGrammar) {
  const std::string text =
      "# chaos plan\n"
      "seed 99\n"
      "rule chan/send fail p=0.25 max=3\n"
      "rule chan/slot_claim delay every=4 delay_ns=1500\n"
      "rule fanout/credit_grant drop_wake at=7\n"
      "rule dipc/proxy_invoke kill at=2 victim=php-worker\n";
  auto plan = Plan::Parse(text);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().seed, 99u);
  ASSERT_EQ(plan.value().rules.size(), 4u);
  const Rule& r0 = plan.value().rules[0];
  EXPECT_EQ(r0.point, points::kChanSend);
  EXPECT_EQ(r0.action, Action::kFail);
  EXPECT_DOUBLE_EQ(r0.probability, 0.25);
  EXPECT_EQ(r0.max_fires, 3u);
  const Rule& r1 = plan.value().rules[1];
  EXPECT_EQ(r1.action, Action::kDelay);
  EXPECT_EQ(r1.every, 4u);
  EXPECT_EQ(r1.delay, Duration::Nanos(1500));
  const Rule& r3 = plan.value().rules[3];
  EXPECT_EQ(r3.action, Action::kKill);
  EXPECT_EQ(r3.at, 2u);
  EXPECT_EQ(r3.victim, "php-worker");
}

TEST_F(FaultTest, ParseRejectsMalformedPlans) {
  const char* bad[] = {
      "rule chan/send explode p=0.5",        // unknown action
      "rule chan/send delay at=1",           // delay without delay_ns
      "rule chan/send kill at=1",            // kill without victim
      "rule chan/send fail",                 // no trigger at all
      "rule chan/send fail p=1.5",           // probability out of range
      "seed banana",                         // non-numeric seed
      "rule\n",                              // truncated directive
  };
  for (const char* text : bad) {
    std::string error;
    auto plan = Plan::Parse(text, &error);
    EXPECT_FALSE(plan.ok()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST_F(FaultTest, ParseRejectsUnknownProbePoints) {
  // The probe manifest (src/fault/probes.def) is the source of truth: a
  // typo'd point must be a parse error, not a rule that silently never
  // fires.
  std::string error;
  auto plan = Plan::Parse("rule chan/nonexistent fail at=1\n", &error);
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(error.find("unknown probe point"), std::string::npos) << error;
  EXPECT_NE(error.find("chan/nonexistent"), std::string::npos) << error;
}

TEST_F(FaultTest, ScriptedTriggersFireAtExactProbes) {
  auto plan = Plan::Parse("rule chan/send fail at=3\n");
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();
  inj.Arm(plan.value(), nullptr);
  for (int i = 1; i <= 5; ++i) {
    Decision d = inj.Probe(points::kChanSend);
    EXPECT_EQ(d.fail(), i == 3) << "probe " << i;
  }
  EXPECT_EQ(inj.fire_count(), 1u);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].seq, 0u);
  EXPECT_EQ(inj.log()[0].point_hash, HashPoint(points::kChanSend));
  EXPECT_EQ(inj.log()[0].action, static_cast<uint32_t>(Action::kFail));
}

TEST_F(FaultTest, EveryTriggerAndMaxCapCompose) {
  auto plan = Plan::Parse("rule chan/slot_claim delay every=2 max=3 delay_ns=10\n");
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();
  inj.Arm(plan.value(), nullptr);
  int fired = 0;
  for (int i = 1; i <= 12; ++i) {
    Decision d = inj.Probe(points::kSlotClaim);
    if (d.action == Action::kDelay) {
      ++fired;
      EXPECT_EQ(i % 2, 0) << "probe " << i;
      EXPECT_EQ(d.delay, Duration::Nanos(10));
    }
  }
  EXPECT_EQ(fired, 3);  // every=2 would give 6; max=3 caps it
  EXPECT_EQ(inj.fire_count(), 3u);
}

TEST_F(FaultTest, PointsAreCountedIndependently) {
  auto plan = Plan::Parse("rule chan/send fail at=2\n");
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();
  inj.Arm(plan.value(), nullptr);
  // Probes of OTHER points must not advance chan/send's ordinal.
  EXPECT_FALSE(inj.Probe(points::kFutexWake).fail());
  EXPECT_FALSE(inj.Probe(points::kChanSend).fail());  // chan/send probe #1
  EXPECT_FALSE(inj.Probe(points::kCapMint).fail());
  EXPECT_TRUE(inj.Probe(points::kChanSend).fail());  // chan/send probe #2
}

TEST_F(FaultTest, KillRunsHandlerAndLetsOperationProceed) {
  auto plan = Plan::Parse("rule dipc/death_sweep kill at=1 victim=bob max=1\n");
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();
  inj.Arm(plan.value(), nullptr);
  std::vector<std::string> victims;
  inj.SetKillHandler([&victims](const std::string& v) { victims.push_back(v); });
  Decision d = inj.Probe(points::kDeathSweep);
  // The kill is the side effect; the probed operation itself proceeds.
  EXPECT_EQ(d.action, Action::kNone);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], "bob");
  EXPECT_EQ(inj.fire_count(), 1u);
}

TEST_F(FaultTest, DisarmedProbesAreInert) {
  Injector& inj = Injector::Global();
  inj.Disarm();
  Decision d = inj.Probe(points::kChanSend);
  EXPECT_EQ(d.action, Action::kNone);
  EXPECT_FALSE(inj.armed());
}

// The replay-determinism contract: arming the same (seed, plan) and probing
// the same sequence yields a byte-identical decision log — including the
// probabilistic rules, whose RNG stream restarts from the plan seed.
TEST_F(FaultTest, SameSeedAndPlanReplaysByteIdenticalLog) {
  const std::string text =
      "seed 1234\n"
      "rule chan/send fail p=0.3\n"
      "rule chan/futex_wake drop_wake p=0.15\n"
      "rule chan/slot_claim delay every=7 delay_ns=250\n";
  auto plan = Plan::Parse(text);
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();

  auto run = [&inj, &plan] {
    sim::EventQueue clock;
    inj.Arm(plan.value(), &clock);
    for (int i = 0; i < 500; ++i) {
      (void)inj.Probe(points::kChanSend);
      (void)inj.Probe(points::kFutexWake);
      (void)inj.Probe(points::kSlotClaim);
    }
    return inj.log();
  };
  std::vector<FiredRecord> first = run();
  std::vector<FiredRecord> second = run();
  EXPECT_GT(first.size(), 0u);  // p=0.3 over 500 probes: statistically certain
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(0, std::memcmp(first.data(), second.data(),
                           first.size() * sizeof(FiredRecord)));
}

TEST_F(FaultTest, DifferentSeedsDiverge) {
  auto mk = [](uint64_t seed) {
    Plan p;
    p.seed = seed;
    Rule r;
    r.point = std::string(points::kChanSend);
    r.action = Action::kFail;
    r.probability = 0.5;
    p.rules.push_back(std::move(r));
    return p;
  };
  Injector& inj = Injector::Global();
  auto run = [&inj](Plan p) {
    inj.Arm(std::move(p), nullptr);
    std::vector<bool> hits;
    for (int i = 0; i < 200; ++i) {
      hits.push_back(inj.Probe(points::kChanSend).fail());
    }
    return hits;
  };
  EXPECT_NE(run(mk(1)), run(mk(2)));
}

TEST_F(FaultTest, RearmResetsAllState) {
  auto plan = Plan::Parse("rule chan/send fail at=1 max=1\n");
  ASSERT_TRUE(plan.ok());
  Injector& inj = Injector::Global();
  inj.Arm(plan.value(), nullptr);
  EXPECT_TRUE(inj.Probe(points::kChanSend).fail());
  EXPECT_FALSE(inj.Probe(points::kChanSend).fail());  // max=1 spent
  inj.Arm(plan.value(), nullptr);                     // re-arm: counters reset
  EXPECT_EQ(inj.fire_count(), 0u);
  EXPECT_TRUE(inj.Probe(points::kChanSend).fail());
}

#endif  // !DIPC_FAULT_OFF

}  // namespace
}  // namespace dipc::fault
