// Edge cases across small modules: base::Result/Status, loader error paths,
// socket hangup semantics, KCS whole-chain-dead unwinding, and global-VAS
// bookkeeping.
#include <gtest/gtest.h>

#include "base/result.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/kcs.h"
#include "dipc/loader.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/unix_socket.h"

namespace dipc {
namespace {

using base::ErrorCode;
using base::Result;
using base::Status;
using sim::Duration;

TEST(Status, OkByDefaultAndNamed) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.name(), "kOk");
  Status e = ErrorCode::kFault;
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.name(), "kFault");
  EXPECT_NE(s, e);
}

TEST(ResultT, ValueAndErrorPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);
  Result<int> bad(ErrorCode::kNotFound);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultT, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultT, EveryErrorCodeHasAName) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(ErrorCode::kNotSupported); ++c) {
    EXPECT_NE(base::ErrorCodeName(static_cast<ErrorCode>(c)), "kUnknown");
  }
}

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : machine_(2), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}
  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

TEST_F(EdgeTest, LoaderRejectsUnknownDomains) {
  core::Loader loader(dipc_);
  os::Process& p = dipc_.CreateDipcProcess("p");
  bool checked = false;
  kernel_.Spawn(p, "main", [&](os::Env env) -> sim::Task<void> {
    core::ModuleSpec perm_spec;
    perm_spec.name = "m";
    perm_spec.perms.push_back(core::PermSpec{"", "nonexistent", core::DomPerm::kRead});
    EXPECT_EQ(loader.Load(env, std::move(perm_spec)).code(), ErrorCode::kNotFound);
    core::ModuleSpec entry_spec;
    entry_spec.name = "m2";
    entry_spec.entries.push_back(core::EntrySpec{
        .domain = "missing",
        .name = "f",
        .signature = {},
        .callee_policy = {},
        .fn = [](os::Env, core::CallArgs) -> sim::Task<uint64_t> { co_return 0; }});
    EXPECT_EQ(loader.Load(env, std::move(entry_spec)).code(), ErrorCode::kNotFound);
    checked = true;
    co_return;
  });
  kernel_.Run();
  EXPECT_TRUE(checked);
}

TEST_F(EdgeTest, EntryRegisterRejectsEmptyAndNullFn) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto dom = dipc_.DomDefault(p);
  EXPECT_EQ(dipc_.EntryRegister(p, *dom, {}).code(), ErrorCode::kInvalidArgument);
  core::EntryDesc no_fn;
  no_fn.name = "f";
  EXPECT_EQ(dipc_.EntryRegister(p, *dom, {no_fn}).code(), ErrorCode::kInvalidArgument);
}

TEST_F(EdgeTest, SocketCloseUnblocksPeer) {
  os::Process& p = kernel_.CreateProcess("p");
  auto [a, b] = os::UnixStreamCore::CreatePair(kernel_);
  auto buf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  bool got_eof = false;
  bool send_failed = false;
  kernel_.Spawn(p, "reader", [&, b = b](os::Env env) -> sim::Task<void> {
    auto n = co_await b->Recv(env, buf.value(), 8);
    got_eof = n.ok() && n.value() == 0;
    // Sending on a closed stream fails cleanly.
    auto s = co_await b->Send(env, buf.value(), 8);
    send_failed = !s.ok();
  });
  kernel_.Spawn(p, "closer", [&, a = a](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(10));
    a->Close();
    co_return;
  });
  kernel_.Run();
  EXPECT_TRUE(got_eof);
  EXPECT_TRUE(send_failed);
}

TEST_F(EdgeTest, KcsUnwindWithEveryCallerDeadReturnsNull) {
  core::Kcs kcs;
  os::Process& p1 = kernel_.CreateProcess("p1");
  os::Process& p2 = kernel_.CreateProcess("p2");
  kcs.Push(core::KcsEntry{.caller_process = &p1});
  kcs.Push(core::KcsEntry{.caller_process = &p2});
  p1.MarkDead();
  p2.MarkDead();
  EXPECT_EQ(kcs.UnwindToLiveCaller(), nullptr);
  EXPECT_TRUE(kcs.empty());
}

TEST_F(EdgeTest, KcsUnwindSkipsDeadAndStopsAtLive) {
  core::Kcs kcs;
  os::Process& live = kernel_.CreateProcess("live");
  os::Process& dead = kernel_.CreateProcess("dead");
  kcs.Push(core::KcsEntry{.caller_process = &live});
  kcs.Push(core::KcsEntry{.caller_process = &dead});
  dead.MarkDead();
  const core::KcsEntry* e = kcs.UnwindToLiveCaller();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->caller_process, &live);
  EXPECT_TRUE(kcs.empty());
}

TEST_F(EdgeTest, GlobalVasBlocksAreDisjointAndCounted) {
  core::GlobalVas& vas = dipc_.vas();
  uint64_t before = vas.blocks_allocated();
  hw::VirtAddr a = vas.AllocBlock();
  hw::VirtAddr b = vas.AllocBlock();
  EXPECT_EQ(b - a, core::GlobalVas::kBlockSize);
  EXPECT_EQ(vas.blocks_allocated(), before + 2);
}

TEST_F(EdgeTest, DomMmapZeroLengthRejected) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto dom = dipc_.DomDefault(p);
  EXPECT_EQ(dipc_.DomMmap(p, *dom, 0, hw::PageFlags{.writable = true}).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EdgeTest, DomRemapRejectsUnalignedAddress) {
  os::Process& p = dipc_.CreateDipcProcess("p");
  auto def = dipc_.DomDefault(p);
  auto pool = dipc_.DomCreate(p);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(dipc_.DomRemap(p, *pool.value(), *def, 0x1001, 4096).code(),
            ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace dipc
