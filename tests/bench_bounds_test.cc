// Performance bounds asserted as regular ctests, so the perf properties the
// benches demonstrate are gates, not dashboards:
//   - batched channel streaming must be >= 2x cheaper per message at batch
//     32 than at batch 1 (promoted from the PR-2 chan_test);
//   - fan-out at 4 receivers must publish a message (with four per-receiver
//     grants, stores and descriptor pushes) for under 2x the point-to-point
//     per-message cost on the batched hot path — the shared tolls (runtime
//     entry, free-pool op, sender revoke, fast path) must actually amortize;
//   - the observability layer's modeled per-event trace cost must stay
//     within 5% of the untraced batched hot path (the observer effect is a
//     budget, not a hope).
// The measurements are the bench harness's own (bench/micro_harness.cc), so
// the gate and the reported numbers can never drift apart; the simulation
// is deterministic, so the ratios are stable.
#include <gtest/gtest.h>

#include "micro_harness.h"
#include "obs/trace.h"

namespace dipc::bench {
namespace {

double ChannelPerMessageNs(int batch) {
  return MeasureChannelStream(
      {.payload_bytes = 64, .batch = batch, .messages = 512, .cross_cpu = true});
}

double FanOutPerMessageNs(uint32_t receivers, int batch) {
  return MeasureFanOutStream(
      {.payload_bytes = 64, .receivers = receivers, .batch = batch, .messages = 512});
}

TEST(BenchBounds, BatchedStreamingIsAtLeastTwiceAsCheapPerMessageAtBatch32) {
  double b1 = ChannelPerMessageNs(1);
  double b32 = ChannelPerMessageNs(32);
  EXPECT_GE(b1 / b32, 2.0) << "batch=1: " << b1 << " ns/msg, batch=32: " << b32 << " ns/msg";
}

TEST(BenchBounds, FanOutAtFourReceiversStaysUnderTwicePointToPointCost) {
  // Publishing to four receivers does 4x the per-receiver work (grant,
  // store, descriptor push) but shares everything else; on the batched hot
  // path the total must stay under 2x one point-to-point message.
  double p2p = ChannelPerMessageNs(32);
  double fan4 = FanOutPerMessageNs(4, 32);
  EXPECT_LT(fan4 / p2p, 2.0) << "p2p: " << p2p << " ns/msg, fanout N=4: " << fan4 << " ns/msg";
  // And fanning out to one receiver must not regress the point-to-point
  // design it specializes to.
  double fan1 = FanOutPerMessageNs(1, 32);
  EXPECT_LT(fan1 / p2p, 1.25) << "p2p: " << p2p << " ns/msg, fanout N=1: " << fan1 << " ns/msg";
}

TEST(BenchBounds, TracingOverheadAtBatch32StaysWithinFivePercent) {
  // Tracing charges obs::TraceRing::kEventCost simulated time per recorded
  // event on costed paths. At batch=32 the per-batch events (acquire, send,
  // recv, release) and per-message warm rebinds must amortize to <= 5% of
  // the untraced per-message cost; metric counters are free by design.
  obs::Trace().Disable();
  double off = ChannelPerMessageNs(32);
  obs::Trace().Enable();
  obs::Trace().Clear();
  double on = ChannelPerMessageNs(32);
  // The measured window must fit the ring: a wraparound would silently
  // discard the oldest events and the "traced" cost would be measured on a
  // run whose trace is no longer reconstructible.
  EXPECT_EQ(obs::Trace().total_dropped(), 0u)
      << "trace ring wrapped during the overhead measurement";
  obs::Trace().Disable();
  EXPECT_LE(on, off * 1.05) << "untraced: " << off << " ns/msg, traced: " << on << " ns/msg";
#ifndef DIPC_OBS_OFF
  // The observer effect is modeled, so tracing must perturb the timeline —
  // identical numbers would mean the events are not on the costed paths at
  // all. (Not strictly slower: shifted park/wake timing can batch wakeups
  // differently, so the net per-message delta is small and can go either
  // way; the 5% bound above is the real budget.)
  EXPECT_NE(on, off);
#endif
}

}  // namespace
}  // namespace dipc::bench
